// Hash-based sharding of image ids across cluster nodes.
//
// The paper's prototype distributes the 60M-image dataset randomly over 256
// nodes; each node indexes its shard and queries fan out to all shards. The
// shard map is the glue between the index structures and the ClusterModel
// makespan computation.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/hashes.hpp"

namespace fast::storage {

class ShardMap {
 public:
  explicit ShardMap(std::size_t shards, std::uint64_t seed = 0x54a2d)
      : shards_(shards == 0 ? 1 : shards), salt_(hash::mix64(seed)) {}

  std::size_t shard_count() const noexcept { return shards_; }

  /// Owning shard of an image id (stable, uniform).
  std::size_t shard_of(std::uint64_t id) const noexcept {
    return hash::mix64(id ^ salt_) % shards_;
  }

  /// Partitions `ids` into per-shard id lists.
  std::vector<std::vector<std::uint64_t>> partition(
      const std::vector<std::uint64_t>& ids) const;

 private:
  std::size_t shards_;
  std::uint64_t salt_;
};

}  // namespace fast::storage
