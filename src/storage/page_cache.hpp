// LRU page cache in front of the simulated disk.
//
// The SIFT / PCA-SIFT baselines are disk-bound because their feature stores
// dwarf main memory; FAST's summaries fit in RAM entirely. The page cache is
// what turns that size difference into the latency difference of Fig. 4:
// reads that hit cost a RAM access, misses charge a disk seek + transfer.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace fast::storage {

class PageCache {
 public:
  /// `capacity_pages` resident pages; 0 disables caching entirely.
  explicit PageCache(std::size_t capacity_pages);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t hits() const noexcept { return hits_; }
  std::size_t misses() const noexcept { return misses_; }

  /// Touches `page`; returns true on hit. On miss the page is faulted in,
  /// evicting the least recently used page if at capacity.
  bool access(std::uint64_t page);

  /// Empties the cache AND resets the hit/miss counters: a cleared cache
  /// starts a fresh measurement (hit-rate stats used to leak across bench
  /// runs). Use reset_stats() to zero the counters without evicting.
  void clear();

  /// Zeroes hits/misses while keeping the resident pages.
  void reset_stats() noexcept;

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace fast::storage
