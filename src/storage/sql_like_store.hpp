// Disk-backed record store with simulated I/O costs — the "SQL-based
// database" the paper's SIFT and PCA-SIFT baselines keep their features and
// image metadata in.
//
// Records live on a simulated disk laid out append-only; reads fault whole
// pages through an LRU page cache and charge CostModel disk constants into
// the caller's SimClock. The store does not keep the record payloads (only
// their extents): the experiments need byte-accurate sizes and I/O counts,
// not the bytes themselves, which keeps a 200 TB-scale layout simulable in
// a few MB of host memory.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/cost_model.hpp"
#include "sim/sim_clock.hpp"
#include "storage/page_cache.hpp"

namespace fast::storage {

class SqlLikeStore {
 public:
  /// `cache_pages` is the page-cache size; typical baseline configs give the
  /// cache a small fraction of the store so large feature sets thrash.
  SqlLikeStore(sim::CostModel cost, std::size_t cache_pages);

  /// Appends a record of `bytes` bytes under `id`, charging a write of the
  /// spanned pages. Overwriting an id is not supported (append-only log,
  /// like the bulk-load path of the baselines).
  void put(std::uint64_t id, std::size_t bytes, sim::SimClock& clock);

  /// Reads the record, charging page faults for every page of its extent
  /// that misses the cache. Returns the record size, or nullopt if absent.
  std::optional<std::size_t> read(std::uint64_t id, sim::SimClock& clock);

  /// Durability barrier for the appended tail: charges one seek when
  /// records were appended since the last flush (the fsync of the simulated
  /// log). No-op otherwise.
  void flush(sim::SimClock& clock);

  /// Flushes and seals the store. Idempotent; the store previously had no
  /// explicit lifecycle end, so callers leaked the final unflushed tail from
  /// the cost accounting and could keep writing to a "closed" baseline
  /// store unnoticed. put/read after close abort.
  void close(sim::SimClock& clock);

  bool closed() const noexcept { return closed_; }

  bool contains(std::uint64_t id) const noexcept {
    return extents_.count(id) != 0;
  }

  std::size_t record_count() const noexcept { return extents_.size(); }
  std::size_t total_bytes() const noexcept { return tail_; }
  std::size_t page_count() const noexcept {
    return (tail_ + cost_.disk_page_bytes - 1) / cost_.disk_page_bytes;
  }
  const PageCache& cache() const noexcept { return cache_; }

 private:
  struct Extent {
    std::uint64_t offset;
    std::size_t bytes;
  };

  sim::CostModel cost_;
  PageCache cache_;
  std::unordered_map<std::uint64_t, Extent> extents_;
  std::uint64_t tail_ = 0;  ///< append position (== total bytes)
  std::size_t pending_bytes_ = 0;  ///< appended since the last flush
  bool closed_ = false;
};

}  // namespace fast::storage
