// Versioned, checksummed snapshot container.
//
// A snapshot is a point-in-time image of the full index state, written as a
// generic sectioned file so this layer stays independent of core/hash types
// — the index supplies each section's payload bytes and interprets them on
// load. Layout:
//
//   "FASTsnp1" | u32 version | u64 config_fingerprint | u64 last_seq
//             | u32 header_crc
//   repeated:  u32 section_id | u32 len | payload | u32 crc(id|len|payload)
//   trailer:   section_id 0 (end marker, same framing, empty payload)
//
// Publication is atomic: the image is written to snapshot-<seq>.fast.tmp,
// fsynced, then renamed into place. A crash mid-write leaves only a .tmp
// that recovery ignores; a crash mid-rename leaves either the old state or
// the complete new file. Recovery tries snapshots newest-first and falls
// back past corrupt ones, so a damaged latest snapshot degrades to the
// previous one plus a longer WAL replay instead of data loss.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/io.hpp"

namespace fast::storage {

inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Section ids used by FastIndex (other writers may add their own; readers
/// skip unknown ids for forward compatibility within a format version).
inline constexpr std::uint32_t kSectionEnd = 0;
inline constexpr std::uint32_t kSectionParams = 1;
inline constexpr std::uint32_t kSectionSignatures = 2;
inline constexpr std::uint32_t kSectionGroups = 3;
inline constexpr std::uint32_t kSectionStore = 4;
// Tiered-index sections (core::TieredIndex): the manifest lists every live
// segment per lane; each memtable and each sealed segment is one section so
// a damaged section fails the whole image's CRC and recovery falls back.
inline constexpr std::uint32_t kSectionTierManifest = 5;
inline constexpr std::uint32_t kSectionTierMemtable = 6;
inline constexpr std::uint32_t kSectionTierSegment = 7;
// CHS store serialized by the fingerprint-compressed compact backend. A
// distinct id (on top of the chs_backend config-fingerprint gate) so
// readers built before the compact backend reject such snapshots outright
// instead of misreading the section as a full-key store.
inline constexpr std::uint32_t kSectionStoreCompact = 8;

struct SnapshotSection {
  std::uint32_t id = 0;
  std::vector<std::uint8_t> payload;
};

struct SnapshotFile {
  std::uint32_t version = kSnapshotFormatVersion;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t last_seq = 0;  ///< WAL records <= this are already applied
  std::vector<SnapshotSection> sections;

  /// First section with this id, or nullptr.
  const SnapshotSection* find(std::uint32_t id) const;
};

/// Serializes `snapshot` to dir/snapshot-<last_seq>.fast via tmp+sync+rename.
/// Returns the published file name (not path) on success.
StatusOr<std::string> write_snapshot(Env& env, const std::string& dir,
                                     const SnapshotFile& snapshot);

/// Parses and fully validates a snapshot file: kBadMagic when it is not a
/// snapshot, kBadVersion for files written by a future format, kCorrupt for
/// any CRC or framing failure (header or section).
StatusOr<SnapshotFile> read_snapshot(Env& env, const std::string& path);

/// "snapshot-<20-digit seq>.fast"
std::string snapshot_file_name(std::uint64_t seq);
bool parse_snapshot_file_name(const std::string& name, std::uint64_t* seq);

class WalWriter;

/// Post-snapshot WAL rotation + retention, shared by every durable index
/// flavor. Closes *wal, starts a fresh segment at last_seq + 1, and deletes
/// files covered by the RETAINED previous snapshot generation: snapshots
/// older than it, and WAL segments whose records it contains. One previous
/// generation always survives so a latent-corrupt newest image still
/// recovers exactly. On error the closed writer stays in *wal so further
/// mutations fail loudly instead of going unlogged.
Status rotate_wal_and_retire(Env& env, const std::string& dir,
                             std::uint64_t last_seq,
                             std::unique_ptr<WalWriter>* wal);

}  // namespace fast::storage
