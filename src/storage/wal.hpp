// Append-only write-ahead log for FastIndex mutations.
//
// The index logs every insert/erase here BEFORE applying it in memory, so a
// crash can lose at most the un-fsynced tail. Each record is framed as
//
//   [u32 crc][u32 len][body]     body = u64 seq | u8 type | u64 id | payload
//
// with the CRC taken over the body. The payload is opaque to this layer —
// the index encodes its own SparseSignature bytes — which keeps storage free
// of core/hash dependencies. Recovery reads records until the first frame
// whose CRC or length does not check out, treats that point as the torn tail
// of an in-flight append, and truncates there; a damaged segment HEADER means
// no record of the segment was ever acknowledged, so it reads as empty.
//
// Segments are named wal-<start_seq>.log (zero-padded so lexicographic order
// is numeric order). A snapshot at sequence S makes every segment whose
// records are all <= S dead; rotation removes them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/io.hpp"

namespace fast::storage {

inline constexpr std::uint8_t kWalRecordInsert = 1;
inline constexpr std::uint8_t kWalRecordErase = 2;

struct WalRecord {
  std::uint64_t seq = 0;
  std::uint8_t type = 0;
  std::uint64_t id = 0;
  std::vector<std::uint8_t> payload;
};

/// Appends records to one segment file. Records are durable only after
/// sync(); the caller (FastIndex) owns the fsync cadence.
class WalWriter {
 public:
  /// Creates (truncates) segment wal-<start_seq>.log in `dir` and writes the
  /// segment header. The header is synced immediately so an empty segment is
  /// never mistaken for a torn one.
  static StatusOr<std::unique_ptr<WalWriter>> create(Env& env,
                                                     const std::string& dir,
                                                     std::uint64_t start_seq);

  /// Appends one record with sequence number next_seq(); does NOT sync.
  Status append(std::uint8_t type, std::uint64_t id,
                std::span<const std::uint8_t> payload);

  Status sync();

  /// Idempotent; further appends fail.
  Status close();

  std::uint64_t next_seq() const noexcept { return next_seq_; }
  std::uint64_t start_seq() const noexcept { return start_seq_; }
  /// Total frame bytes appended (headers excluded) — feeds wal.bytes.
  std::uint64_t bytes_appended() const noexcept { return bytes_; }
  /// Frame bytes appended since the last successful sync() — the amount a
  /// crash right now could lose; exported on "wal.sync" trace spans.
  std::uint64_t bytes_since_sync() const noexcept { return bytes_since_sync_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::uint64_t start_seq)
      : file_(std::move(file)), start_seq_(start_seq), next_seq_(start_seq) {}

  std::unique_ptr<WritableFile> file_;
  std::uint64_t start_seq_;
  std::uint64_t next_seq_;
  std::uint64_t bytes_ = 0;
  std::uint64_t bytes_since_sync_ = 0;
  bool closed_ = false;
};

/// One parsed segment. `torn` reports whether the read stopped at a corrupt
/// frame (expected after a crash mid-append) rather than a clean EOF.
struct WalSegment {
  std::uint64_t start_seq = 0;
  std::vector<WalRecord> records;
  bool torn = false;
};

/// Reads a segment, truncating at the first corrupt frame. Only kBadMagic /
/// kIoError are hard errors; torn tails and a damaged header are normal
/// crash artifacts and produce a (possibly empty) record list.
StatusOr<WalSegment> read_wal_segment(Env& env, const std::string& path);

/// Segment file name for a start sequence: "wal-<20-digit seq>.log".
std::string wal_segment_name(std::uint64_t start_seq);

/// True iff `name` parses as a segment file name; start seq in *start_seq.
bool parse_wal_segment_name(const std::string& name, std::uint64_t* start_seq);

}  // namespace fast::storage
