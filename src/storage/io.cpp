#include "storage/io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include <unistd.h>

namespace fast::storage {

namespace {

const char* code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kCorrupt: return "corrupt";
    case StatusCode::kBadMagic: return "bad_magic";
    case StatusCode::kBadVersion: return "bad_version";
    case StatusCode::kConfigMismatch: return "config_mismatch";
    case StatusCode::kInjectedFault: return "injected_fault";
  }
  return "unknown";
}

Status errno_status(const std::string& op, const std::string& path) {
  return Status::error(StatusCode::kIoError,
                       op + " " + path + ": " + std::strerror(errno));
}

// ---------------------------------------------------------------------------
// POSIX env
// ---------------------------------------------------------------------------

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) (void)std::fclose(file_);
  }

  Status append(std::span<const std::uint8_t> data) override {
    if (file_ == nullptr) {
      return Status::error(StatusCode::kIoError, "append on closed " + path_);
    }
    if (data.empty()) return Status{};
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return errno_status("write", path_);
    }
    return Status{};
  }

  Status sync() override {
    if (file_ == nullptr) {
      return Status::error(StatusCode::kIoError, "sync on closed " + path_);
    }
    if (std::fflush(file_) != 0) return errno_status("flush", path_);
    if (::fsync(fileno(file_)) != 0) return errno_status("fsync", path_);
    return Status{};
  }

  Status close() override {
    if (file_ == nullptr) return Status{};
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return errno_status("close", path_);
    return Status{};
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixSequentialFile() override {
    if (file_ != nullptr) (void)std::fclose(file_);
  }

  StatusOr<std::size_t> read(std::span<std::uint8_t> out) override {
    const std::size_t n = std::fread(out.data(), 1, out.size(), file_);
    if (n < out.size() && std::ferror(file_) != 0) {
      return errno_status("read", path_);
    }
    return n;
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv final : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> new_writable(
      const std::string& path, bool truncate) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) return errno_status("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(f, path));
  }

  StatusOr<std::unique_ptr<SequentialFile>> new_sequential(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      if (errno == ENOENT) {
        return Status::error(StatusCode::kNotFound, "no such file: " + path);
      }
      return errno_status("open", path);
    }
    return std::unique_ptr<SequentialFile>(
        std::make_unique<PosixSequentialFile>(f, path));
  }

  Status make_dirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::error(StatusCode::kIoError,
                           "mkdir " + dir + ": " + ec.message());
    }
    return Status{};
  }

  StatusOr<std::vector<std::string>> list_dir(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) {
      return Status::error(StatusCode::kIoError,
                           "list " + dir + ": " + ec.message());
    }
    return names;
  }

  Status rename_file(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return errno_status("rename", from + " -> " + to);
    }
    return Status{};
  }

  Status remove_file(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) return errno_status("remove", path);
    return Status{};
  }

  bool file_exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }
};

}  // namespace

std::string Status::to_string() const {
  if (ok()) return "ok";
  return std::string(code_name(code_)) + ": " + message_;
}

Env& Env::posix() {
  static PosixEnv env;
  return env;
}

StatusOr<std::vector<std::uint8_t>> read_file(Env& env,
                                              const std::string& path) {
  auto file = env.new_sequential(path);
  if (!file.ok()) return file.status();
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    auto n = file.value()->read(chunk);
    if (!n.ok()) return n.status();
    out.insert(out.end(), chunk, chunk + n.value());
    if (n.value() < sizeof(chunk)) break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv
// ---------------------------------------------------------------------------

namespace {
/// Cheap stateless scrambler for deriving per-op values from the plan seed.
std::uint64_t scramble(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

/// Buffers appends until sync, so a crash drops everything un-synced — the
/// page-cache loss model that makes "acknowledged == fsynced" testable.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv& env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status append(std::span<const std::uint8_t> data) override {
    if (env_.crashed_) return env_.crashed_status();
    if (env_.tick()) return inject(data);
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    return Status{};
  }

  Status sync() override {
    if (env_.crashed_) return env_.crashed_status();
    if (env_.tick()) {
      // A failed fsync may lose everything since the last barrier.
      buffer_.clear();
      return env_.crashed_status();
    }
    Status s = base_->append(buffer_);
    if (s.ok()) s = base_->sync();
    buffer_.clear();
    return s;
  }

  Status close() override {
    // A clean close leaves the buffered bytes in the OS page cache; they
    // reach the disk eventually, so flush them through (no op charged, not
    // a crash point — the process survived to close the file).
    if (env_.crashed_) return env_.crashed_status();
    Status s = base_->append(buffer_);
    buffer_.clear();
    if (s.ok()) s = base_->close();
    return s;
  }

 private:
  /// The planned fault fires on this append: a deterministic prefix of the
  /// data (plus corrupted trailing bytes for torn writes) lands in the base
  /// file, un-synced buffered bytes are lost, and the env is crashed.
  Status inject(std::span<const std::uint8_t> data) {
    const FaultPlan& plan = env_.plan_;
    if (plan.kind != FaultPlan::Kind::kFail && !data.empty()) {
      const std::uint64_t r = scramble(plan.seed ^ (env_.ops_ * 0x9e37ULL));
      const std::size_t landed = static_cast<std::size_t>(
          r % (static_cast<std::uint64_t>(data.size()) + 1));
      std::vector<std::uint8_t> partial(data.begin(),
                                        data.begin() + landed);
      if (plan.kind == FaultPlan::Kind::kTornWrite) {
        // A torn sector: a few more bytes land, but scrambled.
        const std::size_t torn = std::min<std::size_t>(8, data.size() - landed);
        for (std::size_t i = 0; i < torn; ++i) {
          partial.push_back(static_cast<std::uint8_t>(
              data[landed + i] ^ (0xa5u + static_cast<std::uint8_t>(i)) ^
              static_cast<std::uint8_t>(r >> (8 * (i % 8)))));
        }
      }
      (void)base_->append(partial);
      (void)base_->sync();
    }
    buffer_.clear();
    return env_.crashed_status();
  }

  FaultInjectingEnv& env_;
  std::unique_ptr<WritableFile> base_;
  std::vector<std::uint8_t> buffer_;
};

bool FaultInjectingEnv::tick() {
  const std::size_t op = ops_++;
  if (plan_.kind != FaultPlan::Kind::kNone && op == plan_.fail_at_op) {
    crashed_ = true;
    return true;
  }
  return false;
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::new_writable(
    const std::string& path, bool truncate) {
  if (crashed_) return crashed_status();
  auto base = base_.new_writable(path, truncate);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(std::make_unique<FaultWritableFile>(
      *this, std::move(base).value()));
}

StatusOr<std::unique_ptr<SequentialFile>> FaultInjectingEnv::new_sequential(
    const std::string& path) {
  if (crashed_) return crashed_status();
  return base_.new_sequential(path);
}

Status FaultInjectingEnv::make_dirs(const std::string& dir) {
  if (crashed_) return crashed_status();
  return base_.make_dirs(dir);
}

StatusOr<std::vector<std::string>> FaultInjectingEnv::list_dir(
    const std::string& dir) {
  if (crashed_) return crashed_status();
  return base_.list_dir(dir);
}

Status FaultInjectingEnv::rename_file(const std::string& from,
                                      const std::string& to) {
  if (crashed_) return crashed_status();
  if (tick()) return crashed_status();  // rename either happens or does not
  return base_.rename_file(from, to);
}

Status FaultInjectingEnv::remove_file(const std::string& path) {
  if (crashed_) return crashed_status();
  if (tick()) return crashed_status();
  return base_.remove_file(path);
}

bool FaultInjectingEnv::file_exists(const std::string& path) {
  return base_.file_exists(path);
}

}  // namespace fast::storage
