#include "storage/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "storage/wal.hpp"
#include "util/codec.hpp"
#include "util/crc32.hpp"
#include "util/trace.hpp"

namespace fast::storage {

namespace {

constexpr char kSnapshotMagic[8] = {'F', 'A', 'S', 'T', 's', 'n', 'p', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 4;
constexpr std::uint32_t kMaxSectionBytes = 1u << 30;

void append_section(util::ByteWriter& out, std::uint32_t id,
                    std::span<const std::uint8_t> payload) {
  util::ByteWriter framed;
  framed.u32(id);
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  framed.bytes(payload);
  out.bytes(framed.data());
  out.u32(util::crc32(framed.data()));
}

}  // namespace

const SnapshotSection* SnapshotFile::find(std::uint32_t id) const {
  for (const SnapshotSection& section : sections) {
    if (section.id == id) return &section;
  }
  return nullptr;
}

std::string snapshot_file_name(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.fast",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool parse_snapshot_file_name(const std::string& name, std::uint64_t* seq) {
  constexpr std::size_t kLen = 9 + 20 + 5;  // "snapshot-" + digits + ".fast"
  if (name.size() != kLen || name.rfind("snapshot-", 0) != 0 ||
      name.compare(kLen - 5, 5, ".fast") != 0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = 9; i < kLen - 5; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

StatusOr<std::string> write_snapshot(Env& env, const std::string& dir,
                                     const SnapshotFile& snapshot) {
  util::TraceSpan span("snapshot.write");
  util::ByteWriter image;
  image.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kSnapshotMagic),
      sizeof(kSnapshotMagic)));
  image.u32(snapshot.version);
  image.u64(snapshot.config_fingerprint);
  image.u64(snapshot.last_seq);
  image.u32(util::crc32(std::span(image.data()).first(kHeaderBytes - 4)));
  for (const SnapshotSection& section : snapshot.sections) {
    FAST_CHECK_MSG(section.id != kSectionEnd,
                   "section id 0 is reserved for the end marker");
    append_section(image, section.id, section.payload);
  }
  append_section(image, kSectionEnd, {});

  span.attr("bytes", static_cast<double>(image.data().size()));
  const std::string name = snapshot_file_name(snapshot.last_seq);
  const std::string tmp_path = dir + "/" + name + ".tmp";
  auto file = env.new_writable(tmp_path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  Status s = file.value()->append(image.data());
  if (s.ok()) s = file.value()->sync();
  if (s.ok()) s = file.value()->close();
  if (s.ok()) s = env.rename_file(tmp_path, dir + "/" + name);
  if (!s.ok()) return s;
  return name;
}

StatusOr<SnapshotFile> read_snapshot(Env& env, const std::string& path) {
  util::TraceSpan span("snapshot.read");
  auto bytes = read_file(env, path);
  if (!bytes.ok()) return bytes.status();
  const std::vector<std::uint8_t>& raw = bytes.value();
  span.attr("bytes", static_cast<double>(raw.size()));

  if (raw.size() < kHeaderBytes ||
      std::memcmp(raw.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::error(StatusCode::kBadMagic, "not a snapshot: " + path);
  }
  util::ByteReader header{std::span(raw).first(kHeaderBytes)};
  (void)header.bytes(sizeof(kSnapshotMagic));
  SnapshotFile snapshot;
  snapshot.version = header.u32();
  snapshot.config_fingerprint = header.u64();
  snapshot.last_seq = header.u64();
  const std::uint32_t header_crc = header.u32();
  if (header_crc != util::crc32(std::span(raw).first(kHeaderBytes - 4))) {
    return Status::error(StatusCode::kCorrupt,
                         "snapshot header checksum mismatch: " + path);
  }
  if (snapshot.version > kSnapshotFormatVersion) {
    return Status::error(
        StatusCode::kBadVersion,
        "snapshot " + path + " is format version " +
            std::to_string(snapshot.version) + "; this build reads <= " +
            std::to_string(kSnapshotFormatVersion));
  }

  std::size_t pos = kHeaderBytes;
  bool saw_end = false;
  while (!saw_end) {
    if (raw.size() - pos < 4 + 4) {
      return Status::error(StatusCode::kCorrupt,
                           "snapshot truncated mid-section: " + path);
    }
    util::ByteReader frame{std::span(raw).subspan(pos, 8)};
    const std::uint32_t id = frame.u32();
    const std::uint32_t len = frame.u32();
    if (len > kMaxSectionBytes || raw.size() - pos - 8 < len + 4u) {
      return Status::error(StatusCode::kCorrupt,
                           "snapshot section overruns file: " + path);
    }
    const auto framed = std::span(raw).subspan(pos, 8 + len);
    util::ByteReader crc_reader{std::span(raw).subspan(pos + 8 + len, 4)};
    if (crc_reader.u32() != util::crc32(framed)) {
      return Status::error(StatusCode::kCorrupt,
                           "snapshot section " + std::to_string(id) +
                               " checksum mismatch: " + path);
    }
    if (id == kSectionEnd) {
      saw_end = true;
    } else {
      SnapshotSection section;
      section.id = id;
      section.payload.assign(framed.begin() + 8, framed.end());
      snapshot.sections.push_back(std::move(section));
    }
    pos += 8 + len + 4;
  }
  if (pos != raw.size()) {
    return Status::error(StatusCode::kCorrupt,
                         "snapshot has trailing bytes: " + path);
  }
  return snapshot;
}

Status rotate_wal_and_retire(Env& env, const std::string& dir,
                             std::uint64_t last_seq,
                             std::unique_ptr<WalWriter>* wal) {
  // On create failure the closed writer stays in place: the index remains
  // "durable" and every further mutation fails loudly at the closed WAL
  // instead of silently going unlogged.
  (void)(*wal)->close();
  auto rotated = WalWriter::create(env, dir, last_seq + 1);
  if (!rotated.ok()) return rotated.status();
  *wal = std::move(rotated).value();

  // Retention: keep ONE previous snapshot generation and the WAL segments
  // it does not cover, so a latent-corrupt newest image (bit rot, torn
  // sector) still recovers exactly — previous snapshot + surviving segments
  // replay to the same state. Only files the RETAINED generation covers are
  // dead: snapshots older than it, and segments whose records it contains
  // (rotation happens at every snapshot, so a segment starting at or before
  // the previous snapshot's seq ends there too). Before the first snapshot
  // the fallback generation is the empty index, which needs every segment.
  auto names = env.list_dir(dir);
  if (!names.ok()) return Status{};  // best-effort cleanup
  std::uint64_t prev_snapshot = 0;
  for (const std::string& name : names.value()) {
    std::uint64_t seq = 0;
    if (parse_snapshot_file_name(name, &seq) && seq < last_seq) {
      prev_snapshot = std::max(prev_snapshot, seq);
    }
  }
  for (const std::string& name : names.value()) {
    std::uint64_t seq = 0;
    const bool dead_snapshot =
        parse_snapshot_file_name(name, &seq) && seq < prev_snapshot;
    const bool dead_segment =
        parse_wal_segment_name(name, &seq) && seq <= prev_snapshot;
    if (dead_snapshot || dead_segment) {
      (void)env.remove_file(dir + "/" + name);  // best-effort cleanup
    }
  }
  return Status{};
}

}  // namespace fast::storage
