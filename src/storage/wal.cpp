#include "storage/wal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/codec.hpp"
#include "util/crc32.hpp"
#include "util/trace.hpp"

namespace fast::storage {

namespace {

constexpr char kWalMagic[8] = {'F', 'A', 'S', 'T', 'w', 'a', 'l', '1'};
constexpr std::size_t kHeaderBytes = 8 + 8 + 4;  // magic | start_seq | crc
constexpr std::size_t kFrameOverhead = 4 + 4;    // crc | len
// seq + type + id precede the payload inside every record body.
constexpr std::size_t kBodyFixed = 8 + 1 + 8;
// Frames larger than this are treated as corrupt length fields, not
// allocation requests; real records are a few KB (one sparse signature).
constexpr std::uint32_t kMaxFrameBody = 64u << 20;

}  // namespace

std::string wal_segment_name(std::uint64_t start_seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(start_seq));
  return buf;
}

bool parse_wal_segment_name(const std::string& name,
                            std::uint64_t* start_seq) {
  constexpr std::size_t kLen = 4 + 20 + 4;  // "wal-" + digits + ".log"
  if (name.size() != kLen || name.rfind("wal-", 0) != 0 ||
      name.compare(kLen - 4, 4, ".log") != 0) {
    return false;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = 4; i < kLen - 4; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *start_seq = seq;
  return true;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::create(
    Env& env, const std::string& dir, std::uint64_t start_seq) {
  const std::string path = dir + "/" + wal_segment_name(start_seq);
  auto file = env.new_writable(path, /*truncate=*/true);
  if (!file.ok()) return file.status();

  util::ByteWriter header;
  header.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kWalMagic), sizeof(kWalMagic)));
  header.u64(start_seq);
  header.u32(util::crc32(std::span(header.data()).first(8 + 8)));

  std::unique_ptr<WalWriter> writer(
      new WalWriter(std::move(file).value(), start_seq));
  Status s = writer->file_->append(header.data());
  if (s.ok()) s = writer->file_->sync();
  if (!s.ok()) return s;
  return writer;
}

Status WalWriter::append(std::uint8_t type, std::uint64_t id,
                         std::span<const std::uint8_t> payload) {
  util::TraceSpan span("wal.append");
  if (closed_) {
    return Status::error(StatusCode::kIoError, "append on closed WAL");
  }
  util::ByteWriter body;
  body.u64(next_seq_);
  body.u8(type);
  body.u64(id);
  body.bytes(payload);

  util::ByteWriter frame;
  frame.u32(util::crc32(body.data()));
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.bytes(body.data());

  const Status s = file_->append(frame.data());
  if (!s.ok()) return s;
  ++next_seq_;
  bytes_ += frame.size();
  bytes_since_sync_ += frame.size();
  span.attr("bytes", static_cast<double>(frame.size()));
  return Status{};
}

Status WalWriter::sync() {
  util::TraceSpan span("wal.sync");
  span.attr("bytes", static_cast<double>(bytes_since_sync_));
  if (closed_) {
    return Status::error(StatusCode::kIoError, "sync on closed WAL");
  }
  const Status s = file_->sync();
  if (s.ok()) bytes_since_sync_ = 0;
  return s;
}

Status WalWriter::close() {
  if (closed_) return Status{};
  closed_ = true;
  return file_->close();
}

StatusOr<WalSegment> read_wal_segment(Env& env, const std::string& path) {
  auto bytes = read_file(env, path);
  if (!bytes.ok()) return bytes.status();
  const std::vector<std::uint8_t>& raw = bytes.value();

  WalSegment segment;
  if (raw.size() < kHeaderBytes ||
      std::memcmp(raw.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    // A crash before the header sync leaves a short, zeroed, or partially
    // scrambled header — a torn prefix of OUR magic included. No record in
    // such a segment can have been acknowledged, so it reads as an empty
    // torn segment. Only a complete intact tag of ANOTHER format (a
    // snapshot handed to the WAL reader) means the caller pointed us at the
    // wrong file kind; a crash cannot plausibly forge those 7 bytes.
    constexpr char kSnapshotTag[7] = {'F', 'A', 'S', 'T', 's', 'n', 'p'};
    if (raw.size() >= sizeof(kSnapshotTag) &&
        std::memcmp(raw.data(), kSnapshotTag, sizeof(kSnapshotTag)) == 0) {
      return Status::error(StatusCode::kBadMagic,
                           "not a WAL segment: " + path);
    }
    segment.torn = true;
    return segment;
  }

  util::ByteReader header{std::span(raw).first(kHeaderBytes)};
  (void)header.bytes(sizeof(kWalMagic));
  segment.start_seq = header.u64();
  const std::uint32_t want_crc = header.u32();
  if (want_crc != util::crc32(std::span(raw).first(8 + 8))) {
    segment.start_seq = 0;
    segment.torn = true;
    return segment;
  }

  std::size_t pos = kHeaderBytes;
  std::uint64_t expect_seq = segment.start_seq;
  while (pos < raw.size()) {
    if (raw.size() - pos < kFrameOverhead) {
      segment.torn = true;  // partial frame header: in-flight append
      break;
    }
    util::ByteReader frame{std::span(raw).subspan(pos, kFrameOverhead)};
    const std::uint32_t crc = frame.u32();
    const std::uint32_t len = frame.u32();
    if (len < kBodyFixed || len > kMaxFrameBody ||
        raw.size() - pos - kFrameOverhead < len) {
      segment.torn = true;
      break;
    }
    const auto body = std::span(raw).subspan(pos + kFrameOverhead, len);
    if (util::crc32(body) != crc) {
      segment.torn = true;
      break;
    }
    util::ByteReader reader(body);
    WalRecord record;
    record.seq = reader.u64();
    record.type = reader.u8();
    record.id = reader.u64();
    const auto payload = reader.bytes(reader.remaining());
    record.payload.assign(payload.begin(), payload.end());
    if (record.seq != expect_seq) {
      // Sequence discontinuity inside an intact frame: the file was
      // tampered with or mis-assembled, not torn by a crash.
      return Status::error(StatusCode::kCorrupt,
                           "WAL sequence gap in " + path + ": expected " +
                               std::to_string(expect_seq) + ", found " +
                               std::to_string(record.seq));
    }
    ++expect_seq;
    segment.records.push_back(std::move(record));
    pos += kFrameOverhead + len;
  }
  return segment;
}

}  // namespace fast::storage
