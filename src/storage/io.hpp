// Pluggable file I/O for the persistence subsystem (snapshot + WAL).
//
// All durable state flows through the Env abstraction: a small filesystem
// interface (sequential reads, append-only writes with an explicit fsync
// barrier, atomic rename) with two implementations — the real POSIX
// filesystem, and FaultInjectingEnv, which wraps another Env and turns
// "the process crashed at byte N of operation K" into a deterministic,
// seed-controlled event. That determinism is what lets the recovery tests
// sweep every failure point of the snapshot-write and WAL-append paths and
// prove, not hope, that recovery never loses an acknowledged record.
//
// Error handling is value-based (Status / StatusOr) so corrupt or torn
// files surface as typed errors instead of UB; IoError is the exception
// bridge used by index mutation paths whose signatures predate persistence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace fast::storage {

enum class StatusCode {
  kOk,
  kIoError,          ///< underlying filesystem operation failed
  kNotFound,         ///< file or directory absent
  kCorrupt,          ///< checksum mismatch / malformed framing
  kBadMagic,         ///< file is not the expected format at all
  kBadVersion,       ///< written by a future format version
  kConfigMismatch,   ///< snapshot fingerprint != caller's config
  kInjectedFault,    ///< FaultInjectingEnv fired its planned fault
};

class Status {
 public:
  Status() = default;  // ok

  static Status error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code>: <message>" for logs and test diagnostics.
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    FAST_CHECK_MSG(!status_.ok(), "StatusOr built from an ok Status");
  }
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}

  bool ok() const noexcept { return status_.ok(); }
  const Status& status() const noexcept { return status_; }

  T& value() & {
    FAST_CHECK_MSG(ok(), "StatusOr::value on an error");
    return *value_;
  }
  const T& value() const& {
    FAST_CHECK_MSG(ok(), "StatusOr::value on an error");
    return *value_;
  }
  T&& value() && {
    FAST_CHECK_MSG(ok(), "StatusOr::value on an error");
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Exception bridge for write-ahead logging inside mutation paths
/// (FastIndex::insert_signature / erase return domain results, not Status).
/// A thrown IoError means the index must be treated as crashed: discard the
/// instance and open_or_recover from disk.
class IoError : public std::runtime_error {
 public:
  explicit IoError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Append-only byte sink. Appends are durable only after a successful
/// sync() — exactly the POSIX write/fsync contract the WAL relies on.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status append(std::span<const std::uint8_t> data) = 0;
  virtual Status sync() = 0;
  virtual Status close() = 0;
};

/// Forward-only byte source.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  /// Reads up to out.size() bytes; returns the count read (< out.size()
  /// only at end of file).
  virtual StatusOr<std::size_t> read(std::span<std::uint8_t> out) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual StatusOr<std::unique_ptr<WritableFile>> new_writable(
      const std::string& path, bool truncate) = 0;
  virtual StatusOr<std::unique_ptr<SequentialFile>> new_sequential(
      const std::string& path) = 0;

  virtual Status make_dirs(const std::string& dir) = 0;
  /// File names (not paths) inside `dir`, unsorted.
  virtual StatusOr<std::vector<std::string>> list_dir(
      const std::string& dir) = 0;
  virtual Status rename_file(const std::string& from,
                             const std::string& to) = 0;
  virtual Status remove_file(const std::string& path) = 0;
  virtual bool file_exists(const std::string& path) = 0;

  /// The process-wide real-filesystem Env.
  static Env& posix();
};

/// Convenience: reads a whole file into memory (snapshot/WAL loading).
StatusOr<std::vector<std::uint8_t>> read_file(Env& env,
                                              const std::string& path);

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One planned crash. Ops are counted across the env: every WritableFile
/// append and sync, and every rename/remove, is one op. At op index
/// `fail_at_op` the planned fault fires and the env enters the crashed
/// state, in which every subsequent mutating operation fails — modeling the
/// process dying mid-write. Recovery then reopens the directory with a
/// clean Env, exactly like a restart.
struct FaultPlan {
  enum class Kind {
    kNone,        ///< never fire (dry runs that only count ops)
    kFail,        ///< the op performs no I/O and fails
    kShortWrite,  ///< a seed-chosen prefix of the append lands, then crash
    kTornWrite,   ///< short prefix + a few corrupted trailing bytes land
  };
  Kind kind = Kind::kNone;
  std::size_t fail_at_op = ~std::size_t{0};
  std::uint64_t seed = 0;
};

/// Wraps a base Env with the write-loss semantics of a real crash:
/// appended bytes live in a buffer (the "page cache") until sync() flushes
/// them to the base env, so un-synced appends VANISH when the planned fault
/// fires — only synced data, plus the deterministic partial bytes of the
/// failing append itself, survive to be seen by recovery.
class FaultInjectingEnv : public Env {
 public:
  FaultInjectingEnv(Env& base, FaultPlan plan)
      : base_(base), plan_(plan) {}

  StatusOr<std::unique_ptr<WritableFile>> new_writable(
      const std::string& path, bool truncate) override;
  StatusOr<std::unique_ptr<SequentialFile>> new_sequential(
      const std::string& path) override;
  Status make_dirs(const std::string& dir) override;
  StatusOr<std::vector<std::string>> list_dir(const std::string& dir) override;
  Status rename_file(const std::string& from, const std::string& to) override;
  Status remove_file(const std::string& path) override;
  bool file_exists(const std::string& path) override;

  /// Mutating ops observed so far (append/sync/rename/remove). A dry run
  /// with Kind::kNone sizes the crash matrix: every N < ops_attempted() is
  /// a distinct deterministic failure point.
  std::size_t ops_attempted() const noexcept { return ops_; }
  bool crashed() const noexcept { return crashed_; }

 private:
  friend class FaultWritableFile;

  /// Counts one op; returns true when the planned fault fires on it.
  bool tick();
  Status crashed_status() const {
    return Status::error(StatusCode::kInjectedFault,
                         "injected crash at op " +
                             std::to_string(plan_.fail_at_op));
  }

  Env& base_;
  FaultPlan plan_;
  std::size_t ops_ = 0;
  bool crashed_ = false;
};

}  // namespace fast::storage
