#include "storage/page_cache.hpp"

namespace fast::storage {

PageCache::PageCache(std::size_t capacity_pages) : capacity_(capacity_pages) {}

bool PageCache::access(std::uint64_t page) {
  if (capacity_ == 0) {
    ++misses_;
    return false;
  }
  const auto it = map_.find(page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
  return false;
}

void PageCache::clear() {
  lru_.clear();
  map_.clear();
  reset_stats();
}

void PageCache::reset_stats() noexcept {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace fast::storage
