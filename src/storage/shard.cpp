#include "storage/shard.hpp"

namespace fast::storage {

std::vector<std::vector<std::uint64_t>> ShardMap::partition(
    const std::vector<std::uint64_t>& ids) const {
  std::vector<std::vector<std::uint64_t>> out(shards_);
  for (std::uint64_t id : ids) {
    out[shard_of(id)].push_back(id);
  }
  return out;
}

}  // namespace fast::storage
