#include "storage/sql_like_store.hpp"

#include "util/check.hpp"

namespace fast::storage {

SqlLikeStore::SqlLikeStore(sim::CostModel cost, std::size_t cache_pages)
    : cost_(cost), cache_(cache_pages) {}

void SqlLikeStore::put(std::uint64_t id, std::size_t bytes,
                       sim::SimClock& clock) {
  FAST_CHECK_MSG(!closed_, "put on a closed store");
  FAST_CHECK_MSG(extents_.count(id) == 0, "duplicate record id");
  extents_[id] = Extent{tail_, bytes};
  tail_ += bytes;
  pending_bytes_ += bytes;
  clock.charge_disk_write(cost_.disk_write_s(bytes));
}

void SqlLikeStore::flush(sim::SimClock& clock) {
  if (pending_bytes_ == 0) return;
  // The tail was already transferred page-by-page in put(); the barrier
  // costs one seek (the fsync of the simulated log's metadata).
  clock.charge_disk_write(cost_.disk_seek_s);
  pending_bytes_ = 0;
}

void SqlLikeStore::close(sim::SimClock& clock) {
  if (closed_) return;
  flush(clock);
  closed_ = true;
}

std::optional<std::size_t> SqlLikeStore::read(std::uint64_t id,
                                              sim::SimClock& clock) {
  FAST_CHECK_MSG(!closed_, "read on a closed store");
  const auto it = extents_.find(id);
  if (it == extents_.end()) return std::nullopt;
  const Extent& e = it->second;
  const std::uint64_t first_page = e.offset / cost_.disk_page_bytes;
  const std::uint64_t last_page =
      e.bytes == 0 ? first_page
                   : (e.offset + e.bytes - 1) / cost_.disk_page_bytes;
  std::size_t missed_pages = 0;
  for (std::uint64_t p = first_page; p <= last_page; ++p) {
    if (cache_.access(p)) {
      clock.charge_ram(cost_.ram_access_s);
    } else {
      ++missed_pages;
    }
  }
  if (missed_pages > 0) {
    // One seek to the extent, then sequential transfer of the missed pages
    // (they are contiguous in the append-only layout).
    clock.charge_disk_read(
        cost_.disk_read_s(missed_pages * cost_.disk_page_bytes));
  }
  return e.bytes;
}

}  // namespace fast::storage
