#include "util/trace.hpp"

#include "util/env.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace fast::util {

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Microseconds with sub-µs precision, the unit chrome://tracing expects.
std::string fmt_us(std::uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

/// Per-thread tracing state. The buffer pointer stays valid for the process
/// lifetime (Tracer::global() is never destroyed and keeps every buffer).
struct TlsState {
  Tracer::ThreadBuffer* buffer = nullptr;
  std::uint32_t depth = 0;       ///< spans open on this thread
  bool sampled = false;          ///< decision of the current request root
  std::uint64_t request_id = 0;
};

TlsState& tls_state() noexcept {
  thread_local TlsState state;
  return state;
}

void write_text(const std::string& path, const std::string& text,
                const char* what) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error(std::string(what) + ": cannot open " + path);
  }
  out << text;
  if (!out) {
    throw std::runtime_error(std::string(what) + ": write failed: " + path);
  }
}

}  // namespace

std::string QueryProfile::to_json() const {
  std::string out = "{";
  out += "\"request_id\": " + std::to_string(request_id);
  out += ", \"sampled\": " + std::string(sampled ? "true" : "false");
  out += ", \"start_s\": " + fmt_double(start_s);
  out += ", \"wall_s\": " + fmt_double(wall_s);
  out += ", \"sa_keys_s\": " + fmt_double(sa_keys_s);
  out += ", \"probe_rank_s\": " + fmt_double(probe_rank_s);
  out += ", \"k\": " + std::to_string(k);
  out += ", \"hits\": " + std::to_string(hits);
  out += ", \"candidates\": " + std::to_string(candidates);
  out += ", \"bucket_probes\": " + std::to_string(bucket_probes);
  out += ", \"probe_keys\": " + std::to_string(probe_keys);
  out += ", \"slot_reads\": " + std::to_string(slot_reads);
  out += "}";
  return out;
}

Tracer& Tracer::global() noexcept {
  // Deliberately leaked: thread buffers referenced from thread_local state
  // must outlive every thread, including ones still unwinding at exit.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer()
    : slow_threshold_bits_(
          std::bit_cast<std::uint64_t>(TraceOptions{}.slow_query_s)),
      epoch_ns_(steady_ns()) {}

void Tracer::configure(const TraceOptions& options) {
  std::uint64_t period = 0;
  if (options.sample_rate >= 1.0) {
    period = 1;
  } else if (options.sample_rate > 0.0) {
    period = static_cast<std::uint64_t>(std::llround(1.0 / options.sample_rate));
    if (period == 0) period = 1;
  }
  {
    std::lock_guard lock(registry_mutex_);
    sample_rate_ = options.sample_rate;
  }
  max_events_per_thread_.store(options.max_events_per_thread,
                               std::memory_order_relaxed);
  {
    std::lock_guard lock(profile_mutex_);
    slow_ring_capacity_ = options.slow_ring_capacity;
    max_profiles_ = options.max_profiles;
  }
  slow_threshold_bits_.store(std::bit_cast<std::uint64_t>(options.slow_query_s),
                             std::memory_order_relaxed);
  period_.store(period, std::memory_order_relaxed);
}

TraceOptions Tracer::options() const {
  TraceOptions opts;
  {
    std::lock_guard lock(registry_mutex_);
    opts.sample_rate = sample_rate_;
  }
  opts.max_events_per_thread =
      max_events_per_thread_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(profile_mutex_);
    opts.slow_ring_capacity = slow_ring_capacity_;
    opts.max_profiles = max_profiles_;
  }
  opts.slow_query_s = slow_query_threshold_s();
  return opts;
}

double Tracer::slow_query_threshold_s() const noexcept {
  return std::bit_cast<double>(
      slow_threshold_bits_.load(std::memory_order_relaxed));
}

std::uint64_t Tracer::now_ns() const noexcept {
  return steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

void Tracer::reset() {
  {
    std::lock_guard lock(registry_mutex_);
    for (auto& buffer : buffers_) {
      std::lock_guard buffer_lock(buffer->mutex);
      buffer->events.clear();
      buffer->dropped = 0;
    }
  }
  {
    std::lock_guard lock(profile_mutex_);
    profiles_.clear();
    slow_ring_.clear();
    slow_head_ = 0;
    slow_total_ = 0;
    slow_evicted_ = 0;
  }
  sample_counter_.store(0, std::memory_order_relaxed);
  next_request_id_.store(0, std::memory_order_relaxed);
  requests_seen_.store(0, std::memory_order_relaxed);
  requests_sampled_.store(0, std::memory_order_relaxed);
  spans_recorded_.store(0, std::memory_order_relaxed);
  profiles_dropped_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

Tracer::Stats Tracer::stats() const {
  Stats stats;
  stats.requests_seen = requests_seen_.load(std::memory_order_relaxed);
  stats.requests_sampled = requests_sampled_.load(std::memory_order_relaxed);
  stats.spans_recorded = spans_recorded_.load(std::memory_order_relaxed);
  stats.profiles_dropped = profiles_dropped_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard buffer_lock(buffer->mutex);
      stats.spans_dropped += buffer->dropped;
    }
  }
  {
    std::lock_guard lock(profile_mutex_);
    stats.profiles_recorded = profiles_.size();
    stats.slow_queries = slow_total_;
    stats.slow_evicted = slow_evicted_;
  }
  return stats;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  TlsState& state = tls_state();
  if (state.buffer == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    std::lock_guard lock(registry_mutex_);
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(std::move(buffer));
    state.buffer = buffers_.back().get();
  }
  return *state.buffer;
}

void Tracer::record_event(const TraceEvent& event) {
  ThreadBuffer& buffer = local_buffer();
  const std::size_t cap =
      max_events_per_thread_.load(std::memory_order_relaxed);
  std::lock_guard lock(buffer.mutex);
  if (buffer.events.size() >= cap) {
    ++buffer.dropped;
    return;
  }
  TraceEvent stored = event;
  stored.tid = buffer.tid;
  buffer.events.push_back(stored);
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record_query(const QueryProfile& profile) {
  const bool slow = profile.wall_s >= slow_query_threshold_s();
  if (!profile.sampled && !slow) return;
  std::lock_guard lock(profile_mutex_);
  if (profile.sampled) {
    if (profiles_.size() < max_profiles_) {
      profiles_.push_back(profile);
    } else {
      profiles_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (slow && slow_ring_capacity_ > 0) {
    ++slow_total_;
    if (slow_ring_.size() < slow_ring_capacity_) {
      slow_ring_.push_back(profile);
    } else {
      slow_ring_[slow_head_] = profile;
      slow_head_ = (slow_head_ + 1) % slow_ring_capacity_;
      ++slow_evicted_;
    }
  }
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  std::lock_guard lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

std::vector<QueryProfile> Tracer::sampled_profiles() const {
  std::lock_guard lock(profile_mutex_);
  return profiles_;
}

std::vector<QueryProfile> Tracer::slow_queries() const {
  std::lock_guard lock(profile_mutex_);
  std::vector<QueryProfile> out;
  out.reserve(slow_ring_.size());
  for (std::size_t i = 0; i < slow_ring_.size(); ++i) {
    out.push_back(slow_ring_[(slow_head_ + i) % slow_ring_.size()]);
  }
  return out;
}

namespace {

/// The Chrome trace_event array ("[...]"), shared by chrome_trace_json and
/// the admin plane's tracez_json.
std::string emit_trace_events(const std::vector<TraceEvent>& all) {
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : all) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"";
    out += e.name;
    out += "\", \"cat\": \"fast\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"ts\": " + fmt_us(e.start_ns);
    out += ", \"dur\": " + fmt_us(e.dur_ns);
    out += ", \"args\": {\"req\": " + std::to_string(e.request_id) +
           ", \"depth\": " + std::to_string(e.depth);
    for (std::uint32_t a = 0; a < e.attr_count; ++a) {
      out += ", \"";
      out += e.attrs[a].key;
      out += "\": " + fmt_double(e.attrs[a].value);
    }
    out += "}}";
  }
  out += first ? "]" : "\n]";
  return out;
}

/// A QueryProfile array with 4-space item indent.
std::string emit_profiles(const std::vector<QueryProfile>& list) {
  std::string out = "[";
  bool first = true;
  for (const QueryProfile& p : list) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += p.to_json();
  }
  out += first ? "]" : "\n  ]";
  return out;
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  return "{\"displayTimeUnit\": \"ms\", \"traceEvents\": " +
         emit_trace_events(events()) + "}\n";
}

std::string Tracer::profiles_json() const {
  // Take both copies first so the two sections are mutually consistent.
  const std::vector<QueryProfile> sampled = sampled_profiles();
  const std::vector<QueryProfile> slow = slow_queries();
  std::string out = "{\n  \"slow_query_threshold_s\": ";
  out += fmt_double(slow_query_threshold_s());
  out += ",\n  \"profiles\": " + emit_profiles(sampled);
  out += ",\n  \"slow_queries\": " + emit_profiles(slow);
  out += "\n}\n";
  return out;
}

std::string Tracer::tracez_json() const {
  const Stats s = stats();
  const std::vector<QueryProfile> sampled = sampled_profiles();
  const std::vector<QueryProfile> slow = slow_queries();
  std::string out = "{\n  \"enabled\": ";
  out += enabled() ? "true" : "false";
  out += ",\n  \"slow_query_threshold_s\": ";
  out += fmt_double(slow_query_threshold_s());
  out += ",\n  \"stats\": {";
  out += "\"requests_seen\": " + std::to_string(s.requests_seen);
  out += ", \"requests_sampled\": " + std::to_string(s.requests_sampled);
  out += ", \"spans_recorded\": " + std::to_string(s.spans_recorded);
  out += ", \"spans_dropped\": " + std::to_string(s.spans_dropped);
  out += ", \"profiles_recorded\": " + std::to_string(s.profiles_recorded);
  out += ", \"profiles_dropped\": " + std::to_string(s.profiles_dropped);
  out += ", \"slow_queries\": " + std::to_string(s.slow_queries);
  out += ", \"slow_evicted\": " + std::to_string(s.slow_evicted);
  out += "},\n  \"slow_queries\": " + emit_profiles(slow);
  out += ",\n  \"profiles\": " + emit_profiles(sampled);
  out += ",\n  \"displayTimeUnit\": \"ms\"";
  out += ",\n  \"traceEvents\": " + emit_trace_events(events());
  out += "\n}\n";
  return out;
}

void Tracer::write_chrome_trace(const std::string& path) const {
  write_text(path, chrome_trace_json(), "Tracer::write_chrome_trace");
}

void Tracer::write_profiles(const std::string& path) const {
  write_text(path, profiles_json(), "Tracer::write_profiles");
}

TraceSpan::TraceSpan(const char* name) noexcept : name_(name) {
  Tracer& tracer = Tracer::global();
  const std::uint64_t period = tracer.period_.load(std::memory_order_relaxed);
  if (period == 0) return;  // disabled: one load, one branch, done
  TlsState& state = tls_state();
  if (state.depth == 0) {
    // Request root: make the sampling decision the whole request inherits.
    tracer.requests_seen_.fetch_add(1, std::memory_order_relaxed);
    state.sampled =
        period == 1 ||
        tracer.sample_counter_.fetch_add(1, std::memory_order_relaxed) %
                period ==
            0;
    if (state.sampled) {
      state.request_id =
          tracer.next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
      tracer.requests_sampled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  entered_ = true;
  ++state.depth;
  depth_ = state.depth;
  if (state.sampled) {
    active_ = true;
    request_id_ = state.request_id;
    start_ns_ = tracer.now_ns();
  }
}

TraceSpan::~TraceSpan() {
  if (!entered_) return;
  TlsState& state = tls_state();
  if (state.depth > 0) --state.depth;
  if (state.depth == 0) state.sampled = false;
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  const std::uint64_t end_ns = tracer.now_ns();
  event.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  event.request_id = request_id_;
  event.depth = depth_;
  event.attrs = attrs_;
  event.attr_count = attr_count_;
  tracer.record_event(event);
}

bool configure_global_tracer_from_env() {
  // The knobs are independent: FAST_TRACE_SLOW_MS / FAST_TRACE_RING apply
  // even when the sample rate comes from somewhere else (a bench's --trace
  // flag configures the rate after this call). Parsing is checked — a
  // garbage, negative or overflowing value warns once and leaves the knob
  // at its previous setting instead of silently becoming 0.
  TraceOptions opts = Tracer::global().options();
  bool changed = false;
  if (const auto rate = env_number("FAST_TRACE", 0.0, 1.0)) {
    opts.sample_rate = *rate;
    changed = true;
  }
  if (const auto slow_ms = env_number("FAST_TRACE_SLOW_MS", 0.0, 1e9)) {
    opts.slow_query_s = *slow_ms / 1e3;
    changed = true;
  }
  if (const auto ring = env_count("FAST_TRACE_RING", 1, 1u << 20)) {
    opts.slow_ring_capacity = static_cast<std::size_t>(*ring);
    changed = true;
  }
  if (changed) Tracer::global().configure(opts);
  return Tracer::global().enabled();
}

}  // namespace fast::util
