// Small dense-vector helpers shared by the vision (descriptors, PCA) and
// hashing (p-stable LSH projections) layers. Kept free-standing and span-based
// per the Core Guidelines (F.24) so they work on any contiguous storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fast::util {

/// Dot product of two equal-length vectors.
double dot(std::span<const float> a, std::span<const float> b) noexcept;

/// Euclidean (L2) distance between two equal-length vectors.
double l2_distance(std::span<const float> a, std::span<const float> b) noexcept;

/// Squared Euclidean distance (cheaper when only ordering matters).
double l2_distance_sq(std::span<const float> a,
                      std::span<const float> b) noexcept;

/// Euclidean norm.
double l2_norm(std::span<const float> v) noexcept;

/// Scales `v` in place to unit L2 norm; leaves an all-zero vector unchanged.
void normalize_l2(std::span<float> v) noexcept;

/// Hamming distance between equal-length bit arrays stored in 64-bit words.
std::size_t hamming_distance(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b) noexcept;

/// Number of set bits in a word array.
std::size_t popcount(std::span<const std::uint64_t> words) noexcept;

/// Element-wise mean of a set of equal-length vectors.
std::vector<float> mean_vector(std::span<const std::vector<float>> rows);

}  // namespace fast::util
