#include "util/vecmath.hpp"

#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace fast::util {

double dot(std::span<const float> a, std::span<const float> b) noexcept {
  FAST_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double l2_distance_sq(std::span<const float> a,
                      std::span<const float> b) noexcept {
  FAST_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

double l2_distance(std::span<const float> a,
                   std::span<const float> b) noexcept {
  return std::sqrt(l2_distance_sq(a, b));
}

double l2_norm(std::span<const float> v) noexcept {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(acc);
}

void normalize_l2(std::span<float> v) noexcept {
  const double n = l2_norm(v);
  if (n == 0.0) return;
  const auto inv = static_cast<float>(1.0 / n);
  for (float& x : v) x *= inv;
}

std::size_t hamming_distance(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b) noexcept {
  FAST_CHECK(a.size() == b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return d;
}

std::size_t popcount(std::span<const std::uint64_t> words) noexcept {
  std::size_t n = 0;
  for (std::uint64_t w : words) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

std::vector<float> mean_vector(std::span<const std::vector<float>> rows) {
  FAST_CHECK(!rows.empty());
  const std::size_t dim = rows.front().size();
  std::vector<double> acc(dim, 0.0);
  for (const auto& row : rows) {
    FAST_CHECK(row.size() == dim);
    for (std::size_t i = 0; i < dim; ++i) acc[i] += row[i];
  }
  std::vector<float> mean(dim);
  const double inv = 1.0 / static_cast<double>(rows.size());
  for (std::size_t i = 0; i < dim; ++i) {
    mean[i] = static_cast<float>(acc[i] * inv);
  }
  return mean;
}

}  // namespace fast::util
