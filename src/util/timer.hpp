// Wall-clock timing for the native microbenchmarks. Experiments whose paper
// numbers depend on cluster hardware use sim::SimClock instead (see
// src/sim/sim_clock.hpp); this timer is for host-machine measurements only.
#pragma once

#include <chrono>

namespace fast::util {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }
  double elapsed_us() const noexcept { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fast::util
