#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fast::util {

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::exponential(double rate) noexcept {
  // next_double() is in [0, 1); flip to (0, 1] so log() is finite.
  return -std::log(1.0 - next_double()) / rate;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double skew) {
  FAST_CHECK(n > 0);
  cdf_.resize(n);
  double norm = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i), skew);
  }
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    acc += 1.0 / (std::pow(static_cast<double>(i), skew) * norm);
    cdf_[i - 1] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding drift
}

std::size_t ZipfDistribution::operator()(Rng& rng) const noexcept {
  const double u = rng.next_double();
  // Binary search for the first index whose CDF exceeds u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace fast::util
