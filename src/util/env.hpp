// Checked parsing for environment/flag knobs.
//
// Operational knobs (trace sample rates, server ports, queue depths) arrive
// as untrusted strings. std::atoi/atof silently map garbage, negatives and
// overflow to 0 — which then reads as "knob disabled" or, worse, becomes a
// zero-sized ring or port 0 with no indication anything was ignored. These
// helpers parse with strtoul/strtod, validate the full token and an explicit
// [min, max] range, and reject bad input with a one-line stderr warning so a
// typo in FAST_TRACE_RING or FAST_SERVER_PORT is visible instead of silent.
#pragma once

#include <optional>

namespace fast::util {

/// Parses `text` (a value already read from env or argv) as an unsigned
/// integer in [min_value, max_value]. Returns nullopt — after printing a
/// one-line warning naming `name` — when `text` is empty, has trailing
/// garbage, is negative, overflows, or falls outside the range.
std::optional<unsigned long> parse_checked_count(const char* name,
                                                 const char* text,
                                                 unsigned long min_value,
                                                 unsigned long max_value);

/// Same contract for a floating-point knob (trace rates, thresholds).
/// Rejects NaN/inf and out-of-range values.
std::optional<double> parse_checked_number(const char* name, const char* text,
                                           double min_value, double max_value);

/// getenv(name) + parse_checked_count. nullopt when unset, empty or invalid
/// (invalid values warn; unset/empty is silent).
std::optional<unsigned long> env_count(const char* name,
                                       unsigned long min_value,
                                       unsigned long max_value);

/// getenv(name) + parse_checked_number.
std::optional<double> env_number(const char* name, double min_value,
                                 double max_value);

}  // namespace fast::util
