#include "util/crc32.hpp"

#include <array>

namespace fast::util {

namespace {

/// Reflected CRC-32 table for the IEEE polynomial 0xEDB88320, built once at
/// static-init time (constexpr, so it lands in .rodata).
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) noexcept {
  for (const std::uint8_t byte : data) {
    state = kTable[(state ^ byte) & 0xffu] ^ (state >> 8);
  }
  return state;
}

}  // namespace fast::util
