#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace fast::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FAST_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FAST_CHECK_MSG(cells.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c]
          << std::string(widths[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  if (!title.empty()) {
    std::printf("\n== %s ==\n", title.c_str());
  }
  std::fputs(to_text().c_str(), stdout);
  std::fflush(stdout);
}

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_sci(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", prec, v);
  return buf;
}

std::string fmt_percent(double fraction, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, fraction * 100.0);
  return buf;
}

std::string fmt_duration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60.0);
  }
  return buf;
}

std::string fmt_bytes(double bytes) {
  char buf[64];
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 5) {
    bytes /= 1024.0;
    ++u;
  }
  std::snprintf(buf, sizeof(buf), "%.2f%s", bytes, units[u]);
  return buf;
}

}  // namespace fast::util
