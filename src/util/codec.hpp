// Little-endian byte encoding helpers for the persistence formats.
//
// Every on-disk structure (snapshot sections, WAL record bodies, serialized
// hash tables) is built from these primitives so the byte layout is explicit
// and host-endianness-independent. The reader is fail-soft: reads past the
// end set a sticky failure flag and return zeros instead of invoking UB, so
// deserializers validate once with ok() instead of checking every field —
// exactly what parsing possibly-corrupt crash artifacts requires.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace fast::util {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (u32) byte blob.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    bytes(data);
  }

  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::uint8_t u8() noexcept {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t u16() noexcept {
    if (!ensure(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]);
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() noexcept {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() noexcept {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double f64() noexcept { return std::bit_cast<double>(u64()); }

  /// Borrows `n` bytes from the stream (valid while the source buffer
  /// lives). Returns an empty span and fails when fewer remain.
  std::span<const std::uint8_t> bytes(std::size_t n) noexcept {
    if (!ensure(n)) return {};
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Reads a u32-length-prefixed blob written by ByteWriter::blob.
  std::span<const std::uint8_t> blob() noexcept {
    const std::uint32_t n = u32();
    return bytes(n);
  }

  bool ok() const noexcept { return !failed_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// True when the stream was fully consumed without a failed read.
  bool exhausted() const noexcept { return ok() && remaining() == 0; }

 private:
  bool ensure(std::size_t n) noexcept {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace fast::util
