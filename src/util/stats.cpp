#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fast::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  FAST_CHECK(!samples.empty());
  FAST_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  OnlineStats acc;
  for (double x : samples) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p50 = percentile(samples, 0.50);
  s.p95 = percentile(samples, 0.95);
  s.p99 = percentile(samples, 0.99);
  return s;
}

}  // namespace fast::util
