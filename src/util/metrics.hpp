// Lightweight in-process metrics: named counters, gauges and fixed-bucket
// histograms behind a registry with JSON export.
//
// The paper's headline claims are quantitative (near-real-time latency,
// bounded probe counts, ~3-orders-lower rehash probability, multicore
// speedup), so every pipeline stage reports what it did — FE/SM timing, SA
// key derivations, CHS probe distributions and occupancy, lock and fan-out
// behaviour of the concurrent/sharded frontends — into one registry that
// benches dump next to their results (DESIGN.md §3b lists the names).
//
// Concurrency model: instruments are registered under a mutex (slow path,
// once per name) and returned by stable reference; every update afterwards
// is a relaxed atomic operation, safe from any thread and never a
// synchronization point. Hot paths cache the returned pointers so queries
// racing through ConcurrentFastIndex's shared lock do not touch the
// registry mutex at all.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fast::util {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (load factors, sizes, bytes).
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed-bucket histogram: observations land in the first bucket whose
/// upper bound is >= the value, or in the overflow bucket. Bounds are fixed
/// at registration, so observe() is one binary search plus relaxed atomic
/// increments — no allocation, no locking.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  double min() const noexcept;
  double max() const noexcept;
  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;
};

/// Point-in-time copy of every instrument, safe to read and serialize while
/// the live registry keeps updating.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /// Estimated value at percentile `p` in [0, 100]: linear interpolation
    /// inside the bucket holding that rank, clamped to the observed
    /// [min, max] (the overflow bucket interpolates toward max). 0 with no
    /// observations.
    double percentile(double p) const;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Pretty-printed JSON object ({"counters": .., "gauges": ..,
  /// "histograms": ..}). Metric names and the fields inside each histogram
  /// object are emitted in sorted order, so dumps from different runs diff
  /// cleanly line by line. Histograms include derived p50/p90/p99.
  std::string to_json() const;
};

/// Prometheus text exposition (version 0.0.4) of a snapshot: counters and
/// gauges as single samples, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum`/`_count`. Metric names are sanitized for Prometheus
/// ([a-zA-Z0-9_:] only — `.` becomes `_`, a leading digit is prefixed).
std::string metrics_to_prometheus(const MetricsSnapshot& snapshot);

/// Windowed event rates derived from cumulative counters at scrape time
/// (the admin plane's /varz feed, DESIGN.md §3j). feed() diffs every
/// counter against its last-seen cumulative value and credits the delta to
/// the current 1-second bucket of a fixed ring; rate() sums the trailing
/// window. The hot path never changes — counters stay plain relaxed
/// atomics — and the clock is an explicit argument so tests drive a fake
/// one. Not thread-safe: the single admin thread owns its instance.
class CounterRateTracker {
 public:
  /// `capacity_s` seconds of 1-second delta buckets per counter (also the
  /// largest usable rate window).
  explicit CounterRateTracker(std::size_t capacity_s = 64);

  /// Folds a cumulative-counter snapshot taken at `now_s` into the rings.
  /// The first sight of a counter only seeds its baseline; a value below
  /// the baseline is treated as a counter reset (the full new value is the
  /// delta); seconds skipped between feeds are zeroed.
  void feed(const std::map<std::string, std::uint64_t>& counters,
            double now_s);

  /// Events/second of `name` over the trailing `window_s` seconds ending
  /// at `now_s` (clamped to [1, capacity]). Seconds never fed count as
  /// zero; an unknown or just-seeded counter rates 0.
  double rate(const std::string& name, std::size_t window_s,
              double now_s) const;

  std::size_t capacity_s() const noexcept { return capacity_s_; }

 private:
  struct Ring {
    std::vector<std::uint64_t> buckets;  ///< delta per second, sec % capacity
    std::uint64_t last_value = 0;
    std::int64_t last_sec = 0;
    bool seeded = false;
  };

  std::size_t capacity_s_;
  std::map<std::string, Ring> rings_;
};

class MetricsRegistry;

/// Samples process-level gauges from /proc/self into `registry`:
/// process.rss_bytes, process.open_fds, process.threads, process.uptime_s.
/// Called at scrape time (admin plane and the wire kMetrics op) — never on
/// a request hot path. A failed /proc read leaves that gauge untouched.
void sample_process_gauges(MetricsRegistry& registry);

/// Seconds since this process started (0.0 when /proc is unreadable).
double process_uptime_s();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. References stay valid for the registry's lifetime. Registering a
  /// histogram name twice keeps the first bounds.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Histogram with the default wall/simulated-latency buckets (seconds).
  Histogram& latency_histogram(const std::string& name);
  /// Histogram with power-of-two count buckets (batch sizes, fan-outs,
  /// probe and candidate counts).
  Histogram& count_histogram(const std::string& name);

  static std::vector<double> latency_bounds();
  static std::vector<double> count_bounds();

  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }
  std::string to_prometheus() const {
    return metrics_to_prometheus(snapshot());
  }
  /// Writes to_json() to `path` (parent directories are not created).
  /// Throws std::runtime_error when the file cannot be written.
  void write_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fast::util
