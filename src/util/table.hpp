// Aligned text-table / CSV output used by every bench binary to print the
// rows and series of the paper's tables and figures in a uniform format.
#pragma once

#include <string>
#include <vector>

namespace fast::util {

/// Collects rows of string cells and renders them either as an aligned,
/// human-readable text table or as CSV. Cell values are formatted by the
/// caller (see fmt_* helpers below) so the table stays format-agnostic.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return header_.size(); }

  /// Renders with column alignment and a separator under the header.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline quoted).
  std::string to_csv() const;

  /// Prints the text rendering to stdout with an optional title banner.
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` digits after the decimal point.
std::string fmt_double(double v, int prec = 3);

/// Formats a double in scientific notation with `prec` significant digits.
std::string fmt_sci(double v, int prec = 2);

/// Formats a fraction as a percentage string, e.g. 0.9712 -> "97.12%".
std::string fmt_percent(double fraction, int prec = 2);

/// Formats a duration in seconds with an adaptive unit (us / ms / s / min).
std::string fmt_duration(double seconds);

/// Formats a byte count with an adaptive unit (B / KB / MB / GB / TB).
std::string fmt_bytes(double bytes);

}  // namespace fast::util
