#include "util/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace fast::util {

namespace {

/// Relaxed compare-exchange fold of a double stored as bits.
template <typename Better>
void update_extreme(std::atomic<std::uint64_t>& bits, double v,
                    Better better) noexcept {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (better(v, std::bit_cast<double>(cur)) &&
         !bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      min_bits_(
          std::bit_cast<std::uint64_t>(std::numeric_limits<double>::max())),
      max_bits_(
          std::bit_cast<std::uint64_t>(std::numeric_limits<double>::lowest())) {
  FAST_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly ascending");
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Sum as a CAS fold: atomic<double>::fetch_add is C++20 but keeping the
  // bit-packed representation makes every field the same width and idiom.
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + v),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
  update_extreme(min_bits_, v, std::less<double>{});
  update_extreme(max_bits_, v, std::greater<double>{});
}

double Histogram::min() const noexcept {
  return count() == 0
             ? 0.0
             : std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const noexcept {
  return count() == 0
             ? 0.0
             : std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

std::vector<double> MetricsRegistry::latency_bounds() {
  // Two points per decade from 100 ns to 10 s — wide enough for both native
  // wall timings and the simulated cluster latencies.
  return {1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
          1e-3, 3e-3, 1e-2, 3e-2, 0.1,  0.3,  1.0,  3.0, 10.0};
}

std::vector<double> MetricsRegistry::count_bounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 65536.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Histogram& MetricsRegistry::latency_histogram(const std::string& name) {
  return histogram(name, latency_bounds());
}

Histogram& MetricsRegistry::count_histogram(const std::string& name) {
  return histogram(name, count_bounds());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.counts.reserve(data.bounds.size() + 1);
    for (std::size_t i = 0; i <= data.bounds.size(); ++i) {
      data.counts.push_back(h->bucket_count(i));
    }
    data.count = h->count();
    data.sum = h->sum();
    data.min = h->min();
    data.max = h->max();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

double MetricsSnapshot::HistogramData::percentile(double p) const {
  if (count == 0) return 0.0;
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += counts[i];
    if (counts[i] == 0 || static_cast<double>(cumulative) < rank) continue;
    // Interpolate linearly inside bucket i. Its nominal range is
    // (bounds[i-1], bounds[i]]; the first bucket starts at the observed min
    // and the overflow bucket ends at the observed max. Clamping keeps the
    // estimate inside what was actually seen even for wide buckets.
    const double lo = i == 0 ? min : std::max(bounds[i - 1], min);
    const double hi = i < bounds.size() ? std::min(bounds[i], max) : max;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
    return std::clamp(lo + frac * (hi - lo), min, max);
  }
  return max;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": " + fmt_double(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  // Histogram fields in sorted (alphabetical) order, matching the sorted
  // metric names above, so dumps from different runs diff cleanly.
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": {\n";
    out += "      \"buckets\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "        {\"le\": " + fmt_double(h.bounds[i]) +
             ", \"count\": " + std::to_string(h.counts[i]) + "}";
    }
    out += h.bounds.empty() ? "],\n" : "\n      ],\n";
    out += "      \"count\": " + std::to_string(h.count) + ",\n";
    out += "      \"max\": " + fmt_double(h.max) + ",\n";
    out += "      \"min\": " + fmt_double(h.min) + ",\n";
    out += "      \"overflow\": " + std::to_string(h.counts.back()) + ",\n";
    out += "      \"p50\": " + fmt_double(h.percentile(50.0)) + ",\n";
    out += "      \"p90\": " + fmt_double(h.percentile(90.0)) + ",\n";
    out += "      \"p99\": " + fmt_double(h.percentile(99.0)) + ",\n";
    out += "      \"sum\": " + fmt_double(h.sum) + "\n";
    out += "    }";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:] with a non-digit first
/// character; our dotted stage names ("fe_sm.summarize_s") become
/// underscored ("fe_sm_summarize_s").
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

}  // namespace

std::string metrics_to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, v] : snapshot.counters) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + fmt_double(v) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += pname + "_bucket{le=\"" + fmt_double(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + fmt_double(h.sum) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry::write_json: cannot open " +
                             path);
  }
  out << to_json();
  if (!out) {
    throw std::runtime_error("MetricsRegistry::write_json: write failed: " +
                             path);
  }
}

}  // namespace fast::util
