#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iterator>
#include <limits>
#include <stdexcept>

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>
#endif

#include "util/check.hpp"

namespace fast::util {

namespace {

/// Relaxed compare-exchange fold of a double stored as bits.
template <typename Better>
void update_extreme(std::atomic<std::uint64_t>& bits, double v,
                    Better better) noexcept {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (better(v, std::bit_cast<double>(cur)) &&
         !bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      min_bits_(
          std::bit_cast<std::uint64_t>(std::numeric_limits<double>::max())),
      max_bits_(
          std::bit_cast<std::uint64_t>(std::numeric_limits<double>::lowest())) {
  FAST_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly ascending");
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Sum as a CAS fold: atomic<double>::fetch_add is C++20 but keeping the
  // bit-packed representation makes every field the same width and idiom.
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + v),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
  update_extreme(min_bits_, v, std::less<double>{});
  update_extreme(max_bits_, v, std::greater<double>{});
}

double Histogram::min() const noexcept {
  return count() == 0
             ? 0.0
             : std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const noexcept {
  return count() == 0
             ? 0.0
             : std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

std::vector<double> MetricsRegistry::latency_bounds() {
  // Two points per decade from 100 ns to 10 s — wide enough for both native
  // wall timings and the simulated cluster latencies.
  return {1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
          1e-3, 3e-3, 1e-2, 3e-2, 0.1,  0.3,  1.0,  3.0, 10.0};
}

std::vector<double> MetricsRegistry::count_bounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 65536.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Histogram& MetricsRegistry::latency_histogram(const std::string& name) {
  return histogram(name, latency_bounds());
}

Histogram& MetricsRegistry::count_histogram(const std::string& name) {
  return histogram(name, count_bounds());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.counts.reserve(data.bounds.size() + 1);
    for (std::size_t i = 0; i <= data.bounds.size(); ++i) {
      data.counts.push_back(h->bucket_count(i));
    }
    data.count = h->count();
    data.sum = h->sum();
    data.min = h->min();
    data.max = h->max();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

double MetricsSnapshot::HistogramData::percentile(double p) const {
  if (count == 0) return 0.0;
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += counts[i];
    if (counts[i] == 0 || static_cast<double>(cumulative) < rank) continue;
    // Interpolate linearly inside bucket i. Its nominal range is
    // (bounds[i-1], bounds[i]]; the first bucket starts at the observed min
    // and the overflow bucket ends at the observed max. Clamping keeps the
    // estimate inside what was actually seen even for wide buckets.
    const double lo = i == 0 ? min : std::max(bounds[i - 1], min);
    const double hi = i < bounds.size() ? std::min(bounds[i], max) : max;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
    return std::clamp(lo + frac * (hi - lo), min, max);
  }
  return max;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": " + fmt_double(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  // Histogram fields in sorted (alphabetical) order, matching the sorted
  // metric names above, so dumps from different runs diff cleanly.
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": {\n";
    out += "      \"buckets\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "        {\"le\": " + fmt_double(h.bounds[i]) +
             ", \"count\": " + std::to_string(h.counts[i]) + "}";
    }
    out += h.bounds.empty() ? "],\n" : "\n      ],\n";
    out += "      \"count\": " + std::to_string(h.count) + ",\n";
    out += "      \"max\": " + fmt_double(h.max) + ",\n";
    out += "      \"min\": " + fmt_double(h.min) + ",\n";
    out += "      \"overflow\": " + std::to_string(h.counts.back()) + ",\n";
    out += "      \"p50\": " + fmt_double(h.percentile(50.0)) + ",\n";
    out += "      \"p90\": " + fmt_double(h.percentile(90.0)) + ",\n";
    out += "      \"p99\": " + fmt_double(h.percentile(99.0)) + ",\n";
    out += "      \"sum\": " + fmt_double(h.sum) + "\n";
    out += "    }";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:] with a non-digit first
/// character; our dotted stage names ("fe_sm.summarize_s") become
/// underscored ("fe_sm_summarize_s").
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

}  // namespace

std::string metrics_to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, v] : snapshot.counters) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + fmt_double(v) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += pname + "_bucket{le=\"" + fmt_double(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + fmt_double(h.sum) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

CounterRateTracker::CounterRateTracker(std::size_t capacity_s)
    : capacity_s_(std::max<std::size_t>(1, capacity_s)) {}

void CounterRateTracker::feed(
    const std::map<std::string, std::uint64_t>& counters, double now_s) {
  const std::int64_t sec = static_cast<std::int64_t>(std::floor(now_s));
  for (const auto& [name, value] : counters) {
    Ring& ring = rings_[name];
    if (ring.buckets.empty()) ring.buckets.assign(capacity_s_, 0);
    if (!ring.seeded) {
      ring.seeded = true;
      ring.last_sec = sec;
      ring.last_value = value;
      continue;
    }
    if (sec < ring.last_sec) continue;  // clock went backwards; ignore
    // A cumulative value below the last sample means the counter was reset
    // (process restart between feeds never happens in-process, but the
    // tracker is generic): the whole new value is this interval's delta.
    const std::uint64_t delta =
        value >= ring.last_value ? value - ring.last_value : value;
    const std::int64_t gap = sec - ring.last_sec;
    const std::int64_t cap = static_cast<std::int64_t>(capacity_s_);
    // Zero the seconds skipped since the last feed; a gap past the ring
    // capacity wipes everything (every live bucket is stale).
    const std::int64_t zero_from =
        gap >= cap ? sec - cap + 1 : ring.last_sec + 1;
    for (std::int64_t s = zero_from; s <= sec; ++s) {
      ring.buckets[static_cast<std::size_t>(((s % cap) + cap) % cap)] = 0;
    }
    ring.buckets[static_cast<std::size_t>(((sec % cap) + cap) % cap)] += delta;
    ring.last_sec = sec;
    ring.last_value = value;
  }
}

double CounterRateTracker::rate(const std::string& name, std::size_t window_s,
                                double now_s) const {
  const auto it = rings_.find(name);
  if (it == rings_.end() || !it->second.seeded) return 0.0;
  const Ring& ring = it->second;
  const std::int64_t cap = static_cast<std::int64_t>(capacity_s_);
  const std::int64_t window = static_cast<std::int64_t>(
      std::clamp<std::size_t>(window_s, 1, capacity_s_));
  const std::int64_t sec = static_cast<std::int64_t>(std::floor(now_s));
  std::uint64_t sum = 0;
  for (std::int64_t s = sec - window + 1; s <= sec; ++s) {
    if (s > ring.last_sec) continue;        // not yet fed: zero events
    if (s <= ring.last_sec - cap) continue;  // overwritten by a newer second
    sum += ring.buckets[static_cast<std::size_t>(
        ((s % cap) + cap) % cap)];
  }
  return static_cast<double>(sum) / static_cast<double>(window);
}

#if defined(__linux__)

namespace {

/// Small bounded /proc read; these files are tiny and never seekable.
bool read_proc_file(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return !out->empty();
}

/// Whitespace token `index` (0-based) of /proc/self/stat AFTER the ')'
/// that closes the comm field — the only robust way to parse stat, since
/// comm may itself contain spaces. Field N of proc(5) is token N - 3 here.
bool stat_token_after_comm(std::size_t index, std::uint64_t* out) {
  std::string stat;
  if (!read_proc_file("/proc/self/stat", &stat)) return false;
  const std::size_t paren = stat.rfind(')');
  if (paren == std::string::npos) return false;
  std::size_t pos = paren + 1;
  for (std::size_t tok = 0;; ++tok) {
    while (pos < stat.size() && stat[pos] == ' ') ++pos;
    const std::size_t end = stat.find(' ', pos);
    if (pos >= stat.size()) return false;
    if (tok == index) {
      *out = std::strtoull(stat.c_str() + pos, nullptr, 10);
      return true;
    }
    if (end == std::string::npos) return false;
    pos = end;
  }
}

}  // namespace

double process_uptime_s() {
  std::string uptime;
  std::uint64_t start_ticks = 0;
  // starttime is field 22 of proc(5) => token 19 after the comm ')'.
  if (!read_proc_file("/proc/uptime", &uptime) ||
      !stat_token_after_comm(19, &start_ticks)) {
    return 0.0;
  }
  const double system_up_s = std::strtod(uptime.c_str(), nullptr);
  const long ticks_per_s = ::sysconf(_SC_CLK_TCK);
  if (ticks_per_s <= 0) return 0.0;
  const double up = system_up_s - static_cast<double>(start_ticks) /
                                      static_cast<double>(ticks_per_s);
  return up > 0.0 ? up : 0.0;
}

void sample_process_gauges(MetricsRegistry& registry) {
  std::string statm;
  if (read_proc_file("/proc/self/statm", &statm)) {
    // statm field 2 is resident pages.
    const char* p = statm.c_str();
    char* end = nullptr;
    std::strtoull(p, &end, 10);
    const std::uint64_t resident_pages = std::strtoull(end, nullptr, 10);
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page > 0) {
      registry.gauge("process.rss_bytes")
          .set(static_cast<double>(resident_pages) *
               static_cast<double>(page));
    }
  }
  if (DIR* dir = ::opendir("/proc/self/fd")) {
    std::size_t fds = 0;
    while (const dirent* ent = ::readdir(dir)) {
      if (ent->d_name[0] != '.') ++fds;
    }
    ::closedir(dir);
    registry.gauge("process.open_fds").set(static_cast<double>(fds));
  }
  // num_threads is field 20 of proc(5) => token 17 after the comm ')'.
  if (std::uint64_t threads = 0; stat_token_after_comm(17, &threads)) {
    registry.gauge("process.threads").set(static_cast<double>(threads));
  }
  registry.gauge("process.uptime_s").set(process_uptime_s());
}

#else  // !__linux__

double process_uptime_s() { return 0.0; }
void sample_process_gauges(MetricsRegistry&) {}

#endif

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry::write_json: cannot open " +
                             path);
  }
  out << to_json();
  if (!out) {
    throw std::runtime_error("MetricsRegistry::write_json: write failed: " +
                             path);
  }
}

}  // namespace fast::util
