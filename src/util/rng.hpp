// Deterministic, fast pseudo-random number generation.
//
// All experiments in this repository are seeded so that every table and figure
// regenerates bit-identically. We use SplitMix64 for seeding / hashing-style
// scrambling and xoshiro256** as the workhorse generator (both public-domain
// algorithms by Blackman & Vigna).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace fast::util {

/// SplitMix64: a tiny 64-bit generator mainly used to expand a single seed
/// into well-distributed state for larger generators.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the repository-wide default generator. Satisfies the
/// UniformRandomBitGenerator concept so it composes with <random>
/// distributions, but we also provide the handful of distributions used by
/// the experiments directly (uniform, gaussian, exponential, zipf) to keep
/// results reproducible across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's multiply-shift
  /// rejection method for an unbiased result.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method (cached spare value).
  double gaussian() noexcept;

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Exponential with the given rate.
  double exponential(double rate) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Zipf-distributed integers in [1, n] with skew parameter s, built by
/// explicit inverse-CDF table. Models the skewed popularity of landmarks /
/// near-duplicate cluster sizes observed in the paper's photo workload.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double skew);

  /// Draws a value in [1, n].
  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t n() const noexcept { return cdf_.size(); }

 private:
  // cdf_[i] = P(X <= i + 1); strictly increasing, back() == 1.0.
  std::vector<double> cdf_;
};

}  // namespace fast::util
