#include "util/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fast::util {

namespace {

void warn(const char* name, const char* text, const char* why) {
  std::fprintf(stderr, "fast: ignoring %s=\"%s\" (%s)\n", name, text, why);
}

/// strtoul accepts leading whitespace and a '-' sign (wrapping the value);
/// neither is a sane knob spelling, so scan for them explicitly.
bool has_sign_or_space(const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (std::isspace(static_cast<unsigned char>(*p)) || *p == '-' ||
        *p == '+') {
      return true;
    }
    break;
  }
  return false;
}

}  // namespace

std::optional<unsigned long> parse_checked_count(const char* name,
                                                 const char* text,
                                                 unsigned long min_value,
                                                 unsigned long max_value) {
  if (text == nullptr || text[0] == '\0') {
    warn(name, text == nullptr ? "" : text, "empty value");
    return std::nullopt;
  }
  if (has_sign_or_space(text)) {
    warn(name, text, "expected a plain non-negative integer");
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') {
    warn(name, text, "not an integer");
    return std::nullopt;
  }
  if (errno == ERANGE) {
    warn(name, text, "overflows");
    return std::nullopt;
  }
  if (value < min_value || value > max_value) {
    std::fprintf(stderr,
                 "fast: ignoring %s=\"%s\" (out of range [%lu, %lu])\n", name,
                 text, min_value, max_value);
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_checked_number(const char* name, const char* text,
                                           double min_value,
                                           double max_value) {
  if (text == nullptr || text[0] == '\0') {
    warn(name, text == nullptr ? "" : text, "empty value");
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    warn(name, text, "not a number");
    return std::nullopt;
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    warn(name, text, "not a finite number");
    return std::nullopt;
  }
  if (value < min_value || value > max_value) {
    std::fprintf(stderr, "fast: ignoring %s=\"%s\" (out of range [%g, %g])\n",
                 name, text, min_value, max_value);
    return std::nullopt;
  }
  return value;
}

std::optional<unsigned long> env_count(const char* name,
                                       unsigned long min_value,
                                       unsigned long max_value) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return std::nullopt;
  return parse_checked_count(name, text, min_value, max_value);
}

std::optional<double> env_number(const char* name, double min_value,
                                 double max_value) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return std::nullopt;
  return parse_checked_number(name, text, min_value, max_value);
}

}  // namespace fast::util
