// Per-request tracing with sampled spans, query profiles and a slow-query
// ring buffer.
//
// The metrics registry (metrics.hpp) aggregates; it can say queries are slow
// on average but not WHICH query, WHICH stage, or WHY. This layer attributes
// cost per request: a sampled query/insert opens a root TraceSpan, every
// pipeline stage it passes through (FE/SM summarize, SA key derivation, CHS
// probe, lock waits, WAL append/sync, snapshot write, recovery replay) nests
// a child span under it, and spans carry attributes (buckets probed,
// candidates examined, cuckoo rehash events, bytes fsynced). Completed spans
// land in thread-local buffers and export as Chrome trace_event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev.
//
// Sampling model and overhead budget: the process-wide Tracer holds a sample
// rate. At rate 0 (the default) a TraceSpan constructor is ONE relaxed atomic
// load and a branch — no thread-local access, no clock read, no allocation —
// so fully traced binaries run at production speed until tracing is switched
// on. The sampling decision is made once per request (the first span a thread
// opens at depth 0); nested spans inherit it, so a sampled request records
// its whole stage tree and an unsampled one records nothing. Rate r samples
// every round(1/r)-th request deterministically (rate 1 = every request).
//
// Concurrency model: span records go to a per-thread buffer behind a
// per-buffer mutex that only the owning thread and exporters ever touch
// (uncontended in steady state); sampling counters, request ids and stats are
// relaxed atomics. Work fanned across a thread pool opens depth-0 spans on
// the worker threads, which make their own sampling decision — at the rate-1
// setting used for trace capture the full fan-out records either way.
//
// Scoping: the tracer is process-global. Benches that run several
// configurations in one process must export-then-reset() between them (see
// bench::dump_trace) so spans from one configuration do not bleed into the
// next configuration's artifact.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fast::util {

struct TraceOptions {
  /// Fraction of requests that record spans: 0 disables tracing entirely,
  /// 1 records every request, r in (0, 1) records every round(1/r)-th.
  double sample_rate = 0.0;
  /// Queries whose native wall time exceeds this land in the slow-query
  /// ring buffer regardless of whether they were sampled.
  double slow_query_s = 0.050;
  /// Capacity of the slow-query ring (oldest entries are evicted).
  std::size_t slow_ring_capacity = 64;
  /// Per-thread span budget; spans past it are dropped and counted.
  std::size_t max_events_per_thread = 1u << 18;
  /// Sampled-profile budget (per-query records kept for export).
  std::size_t max_profiles = 4096;
};

/// One span attribute. Keys must be string literals (or otherwise outlive
/// the tracer) — they are stored by pointer, never copied.
struct TraceAttr {
  const char* key = nullptr;
  double value = 0.0;
};

/// A completed span, as stored in the thread buffers and returned by
/// Tracer::events().
struct TraceEvent {
  static constexpr std::size_t kMaxAttrs = 8;
  const char* name = nullptr;     ///< string literal, by pointer
  std::uint64_t start_ns = 0;     ///< since the tracer epoch (last reset)
  std::uint64_t dur_ns = 0;
  std::uint64_t request_id = 0;   ///< shared by every span of one request
  std::uint32_t depth = 0;        ///< 1 = root span of its request
  std::uint32_t tid = 0;          ///< stable per-thread export id
  std::array<TraceAttr, kMaxAttrs> attrs{};
  std::uint32_t attr_count = 0;
};

/// Structured per-query record: what one query did and where its time went.
/// Built by FastIndex::query_signature whenever the tracer is enabled;
/// sampled queries are kept for export and queries slower than
/// TraceOptions::slow_query_s enter the slow-query ring either way.
struct QueryProfile {
  std::uint64_t request_id = 0;  ///< 0 when the query was not sampled
  bool sampled = false;
  double start_s = 0;            ///< seconds since the tracer epoch
  double wall_s = 0;             ///< native wall time of the whole query
  double sa_keys_s = 0;          ///< SA key-derivation wall time
  double probe_rank_s = 0;       ///< CHS probe + candidate ranking wall time
  std::uint64_t k = 0;
  std::uint64_t hits = 0;
  std::uint64_t candidates = 0;
  std::uint64_t bucket_probes = 0;
  std::uint64_t probe_keys = 0;
  std::uint64_t slot_reads = 0;

  std::string to_json() const;
};

class TraceSpan;

class Tracer {
 public:
  /// The process-wide tracer every TraceSpan records into. Never destroyed
  /// (leaked on purpose), so spans on late-exiting threads stay safe.
  static Tracer& global() noexcept;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Sets the sampling/slow-query knobs. Takes effect for requests that
  /// START after the call; spans already in flight complete under their
  /// original decision. Does not clear recorded data — see reset().
  void configure(const TraceOptions& options);
  TraceOptions options() const;

  /// True when spans can record (sample_rate > 0). One relaxed load.
  bool enabled() const noexcept {
    return period_.load(std::memory_order_relaxed) != 0;
  }

  /// Drops every recorded span, profile, slow-query entry and stat, and
  /// restarts the epoch. Options are kept. Benches call this between
  /// configurations so per-config artifacts do not bleed into each other.
  void reset();

  struct Stats {
    std::uint64_t spans_recorded = 0;
    std::uint64_t spans_dropped = 0;
    std::uint64_t requests_seen = 0;     ///< depth-0 spans while enabled
    std::uint64_t requests_sampled = 0;
    std::uint64_t profiles_recorded = 0;
    std::uint64_t profiles_dropped = 0;
    std::uint64_t slow_queries = 0;      ///< entered the ring
    std::uint64_t slow_evicted = 0;      ///< pushed out of the ring
  };
  Stats stats() const;

  /// Files a per-query record: sampled profiles are kept (up to
  /// max_profiles), and any profile with wall_s >= slow_query_s enters the
  /// slow-query ring, evicting the oldest entry when full.
  void record_query(const QueryProfile& profile);

  /// Point-in-time copies, safe while other threads keep recording.
  std::vector<TraceEvent> events() const;
  std::vector<QueryProfile> sampled_profiles() const;
  std::vector<QueryProfile> slow_queries() const;  ///< oldest first

  /// Chrome trace_event JSON ({"traceEvents": [...]}), one complete ("X")
  /// event per span with its attributes under "args". Load in
  /// chrome://tracing or Perfetto.
  std::string chrome_trace_json() const;
  /// {"profiles": [...sampled...], "slow_queries": [...ring...]}.
  std::string profiles_json() const;
  /// Admin-plane export (GET /tracez, DESIGN.md §3j): one JSON object
  /// carrying the tracer stats, the slow-query ring, the sampled query
  /// profiles AND the recent sampled spans under "traceEvents" — the
  /// object loads directly in chrome://tracing / Perfetto (viewers ignore
  /// the extra top-level keys).
  std::string tracez_json() const;
  /// Write the corresponding *_json() to `path`; throws std::runtime_error
  /// when the file cannot be written.
  void write_chrome_trace(const std::string& path) const;
  void write_profiles(const std::string& path) const;

  /// Current slow-query threshold (relaxed read; hot-path safe).
  double slow_query_threshold_s() const noexcept;

  /// Nanoseconds / seconds since the epoch (construction or last reset()).
  std::uint64_t now_ns() const noexcept;
  double now_s() const noexcept {
    return static_cast<double>(now_ns()) * 1e-9;
  }

  /// Per-thread span storage (public only so the thread-local state in
  /// trace.cpp can hold a pointer; not part of the supported API).
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
  };

 private:
  friend class TraceSpan;

  /// The calling thread's buffer, created and registered on first use.
  ThreadBuffer& local_buffer();
  void record_event(const TraceEvent& event);

  std::atomic<std::uint64_t> period_{0};  ///< 0 = off, N = every Nth request
  std::atomic<std::uint64_t> slow_threshold_bits_;
  std::atomic<std::uint64_t> sample_counter_{0};
  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> epoch_ns_{0};

  std::atomic<std::uint64_t> requests_seen_{0};
  std::atomic<std::uint64_t> requests_sampled_{0};
  std::atomic<std::uint64_t> spans_recorded_{0};
  std::atomic<std::uint64_t> profiles_dropped_{0};

  std::atomic<std::size_t> max_events_per_thread_{
      TraceOptions{}.max_events_per_thread};

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::size_t slow_ring_capacity_ = TraceOptions{}.slow_ring_capacity;
  std::size_t max_profiles_ = TraceOptions{}.max_profiles;
  double sample_rate_ = 0.0;

  mutable std::mutex profile_mutex_;
  std::vector<QueryProfile> profiles_;
  std::vector<QueryProfile> slow_ring_;  ///< ring, head_ = oldest
  std::size_t slow_head_ = 0;
  std::uint64_t slow_total_ = 0;
  std::uint64_t slow_evicted_ = 0;
};

/// RAII scope that records one span into the global tracer.
///
/// Opened at depth 0 it is a request root and makes the sampling decision;
/// opened inside another span it inherits the request's decision. With the
/// tracer disabled, construction is a single relaxed load.
class TraceSpan {
 public:
  /// `name` must be a string literal (stored by pointer).
  explicit TraceSpan(const char* name) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span will be recorded (its request was sampled).
  bool active() const noexcept { return active_; }
  /// Request id shared by every span under the same root (0 if inactive).
  std::uint64_t request_id() const noexcept { return request_id_; }

  /// Attaches a key/value attribute (exported under "args"). `key` must be
  /// a string literal. Ignored when inactive or past kMaxAttrs.
  void attr(const char* key, double value) noexcept {
    if (active_ && attr_count_ < TraceEvent::kMaxAttrs) {
      attrs_[attr_count_++] = TraceAttr{key, value};
    }
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t request_id_ = 0;
  std::uint32_t depth_ = 0;
  bool entered_ = false;  ///< tracer was enabled at construction
  bool active_ = false;
  std::array<TraceAttr, TraceEvent::kMaxAttrs> attrs_{};
  std::uint32_t attr_count_ = 0;
};

/// Configures the global tracer from the environment: FAST_TRACE (sample
/// rate, e.g. "1" or "0.01"; unset or 0 leaves tracing off),
/// FAST_TRACE_SLOW_MS (slow-query threshold, default 50) and
/// FAST_TRACE_RING (slow-ring capacity). Returns Tracer::global().enabled().
bool configure_global_tracer_from_env();

}  // namespace fast::util
