// CRC-32 (IEEE 802.3 polynomial, reflected) for framing persisted records.
//
// Every snapshot section and WAL record carries a CRC so that recovery can
// distinguish "cleanly written" from "torn by a crash" without trusting file
// lengths: a record is accepted only when its checksum matches, and the
// first mismatch marks the truncation point of a torn tail.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace fast::util {

/// Incrementally extends a CRC-32 over `data`. Start from `kCrc32Init` and
/// finish with crc32_finish(); chaining update calls over consecutive chunks
/// yields the same value as one call over the concatenation.
inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) noexcept;

inline std::uint32_t crc32_finish(std::uint32_t state) noexcept {
  return state ^ 0xffffffffu;
}

/// One-shot CRC-32 of `data` (the standard "CRC-32" value, e.g.
/// crc32("123456789") == 0xcbf43926).
inline std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  return crc32_finish(crc32_update(kCrc32Init, data));
}

}  // namespace fast::util
