// Lightweight runtime contract checks, following the C++ Core Guidelines
// recommendation to express preconditions explicitly (I.6) without pulling in
// an external GSL dependency.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fast {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "FAST_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace fast

// Always-on check for API preconditions whose violation would corrupt state.
#define FAST_CHECK(expr)                                       \
  ((expr) ? static_cast<void>(0)                               \
          : ::fast::check_failed(#expr, __FILE__, __LINE__, nullptr))

#define FAST_CHECK_MSG(expr, msg)                              \
  ((expr) ? static_cast<void>(0)                               \
          : ::fast::check_failed(#expr, __FILE__, __LINE__, (msg)))
