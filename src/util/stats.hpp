// Streaming and batch statistics used by the benchmark harness to report the
// latency/accuracy series of the paper's tables and figures.
#pragma once

#include <cstddef>
#include <vector>

namespace fast::util {

/// Welford's online algorithm: numerically stable streaming mean/variance.
class OnlineStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n - 1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator (Chan et al. parallel formulation), so
  /// per-thread accumulators can be combined after a parallel_for.
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set by linear interpolation between closest ranks.
/// `q` in [0, 1]. The input is copied; the original order is preserved.
double percentile(std::vector<double> samples, double q);

/// Convenience batch summary of a latency sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& samples);

}  // namespace fast::util
