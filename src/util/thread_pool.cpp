#include "util/thread_pool.hpp"

#include <algorithm>

namespace fast::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t blocks = std::min(n, workers_.size());
  const std::size_t per_block = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * per_block;
    const std::size_t hi = std::min(n, lo + per_block);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Wait for EVERY block before letting any exception escape: an early
  // rethrow would abandon workers still executing blocks that reference
  // `fn` (and the caller's captures) after parallel_for returned. The
  // first exception, in block order, is propagated to the caller.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fast::util
