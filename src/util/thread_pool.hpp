// A small fixed-size thread pool used by the query engine for flat-structured
// parallel probes (the paper's Fig. 7 multicore experiment) and by the
// dataset generator for parallel feature extraction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fast::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future yields the task's result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is divided into contiguous blocks, one per worker, to keep memory
  /// access streams cache-friendly. If any invocation of fn throws, every
  /// block still runs to completion (or its own failure) and the first
  /// exception, in block order, is rethrown to the caller; the remaining
  /// iterations of a throwing block are skipped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fast::util
