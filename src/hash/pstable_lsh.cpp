#include "hash/pstable_lsh.hpp"

#include <cmath>

#include "hash/hashes.hpp"
#include "util/check.hpp"

namespace fast::hash {

PStableLsh::PStableLsh(const LshConfig& config) : config_(config) {
  FAST_CHECK(config.dim > 0 && config.tables > 0 &&
             config.hashes_per_table > 0 && config.omega > 0);
  util::Rng rng(config.seed);
  const std::size_t total = config.tables * config.hashes_per_table;
  a_.resize(total * config.dim);
  b_.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    for (std::size_t d = 0; d < config.dim; ++d) {
      a_[i * config.dim + d] = static_cast<float>(rng.gaussian());
    }
    b_[i] = static_cast<float>(rng.uniform(0.0, config.omega));
  }
  // Transposed layout for the sparse-gather path (same coefficients, so
  // both paths hash identically).
  a_t_.resize(total * config.dim);
  for (std::size_t i = 0; i < total; ++i) {
    for (std::size_t d = 0; d < config.dim; ++d) {
      a_t_[d * total + i] = a_[i * config.dim + d];
    }
  }
}

std::int32_t PStableLsh::hash_one(std::size_t t, std::size_t j,
                                  std::span<const float> v) const {
  FAST_CHECK(t < config_.tables && j < config_.hashes_per_table);
  FAST_CHECK(v.size() == config_.dim);
  const std::size_t idx = t * config_.hashes_per_table + j;
  const float* a = &a_[idx * config_.dim];
  double acc = static_cast<double>(b_[idx]);
  for (std::size_t d = 0; d < config_.dim; ++d) {
    acc += static_cast<double>(a[d]) * static_cast<double>(v[d]);
  }
  return static_cast<std::int32_t>(std::floor(acc / config_.omega));
}

BucketCoords PStableLsh::bucket_coords(std::size_t t,
                                       std::span<const float> v) const {
  BucketCoords coords(config_.hashes_per_table);
  for (std::size_t j = 0; j < config_.hashes_per_table; ++j) {
    coords[j] = hash_one(t, j, v);
  }
  return coords;
}

std::span<const std::int32_t> PStableLsh::bucket_coords_sparse(
    std::span<const std::uint32_t> bits, float scale,
    SparseProjectionScratch& scratch) const {
  const std::size_t total = config_.tables * config_.hashes_per_table;
  // Accumulators start at the b offsets, exactly like the dense loop.
  scratch.acc.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    scratch.acc[i] = static_cast<double>(b_[i]);
  }
  const double s = static_cast<double>(scale);
  double* const acc = scratch.acc.data();
  for (const std::uint32_t d : bits) {
    FAST_CHECK(static_cast<std::size_t>(d) < config_.dim);
    const float* const row = &a_t_[static_cast<std::size_t>(d) * total];
    // Unit-stride AXPY across all L*M accumulators; auto-vectorizable.
    for (std::size_t i = 0; i < total; ++i) {
      acc[i] += static_cast<double>(row[i]) * s;
    }
  }
  scratch.coords.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    scratch.coords[i] =
        static_cast<std::int32_t>(std::floor(acc[i] / config_.omega));
  }
  return std::span<const std::int32_t>(scratch.coords);
}

std::uint64_t PStableLsh::bucket_key(std::size_t t,
                                     const BucketCoords& coords) const {
  return bucket_key(t, std::span<const std::int32_t>(coords));
}

std::uint64_t PStableLsh::bucket_key(
    std::size_t t, std::span<const std::int32_t> coords) const {
  const Hash128 h =
      murmur3_128(coords.data(), coords.size() * sizeof(coords[0]),
                  0x9e3779b9ULL + t);
  return h.lo ^ (h.hi * 0x9ddfea08eb382d69ULL);
}

std::vector<std::uint64_t> PStableLsh::all_keys(
    std::span<const float> v) const {
  std::vector<std::uint64_t> keys(config_.tables);
  for (std::size_t t = 0; t < config_.tables; ++t) {
    keys[t] = bucket_key(t, bucket_coords(t, v));
  }
  return keys;
}

std::span<const std::uint64_t> PStableLsh::all_keys_sparse(
    std::span<const std::uint32_t> bits, float scale,
    SparseProjectionScratch& scratch) const {
  const std::size_t m = config_.hashes_per_table;
  const std::span<const std::int32_t> coords =
      bucket_coords_sparse(bits, scale, scratch);
  scratch.keys.resize(config_.tables);
  for (std::size_t t = 0; t < config_.tables; ++t) {
    scratch.keys[t] = bucket_key(t, coords.subspan(t * m, m));
  }
  return std::span<const std::uint64_t>(scratch.keys);
}

double PStableLsh::collision_probability(double c, double omega) {
  // P(c) = 1 - 2*Phi(-w/c) - (2c / (sqrt(2 pi) w)) * (1 - e^{-w^2 / 2c^2})
  // for the Gaussian (2-stable) family; P(0) := 1.
  if (c <= 0) return 1.0;
  const double r = omega / c;
  const auto phi = [](double x) {  // standard normal CDF
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
  };
  constexpr double kSqrt2Pi = 2.50662827463100050241;
  return 1.0 - 2.0 * phi(-r) -
         (2.0 / (kSqrt2Pi * r)) * (1.0 - std::exp(-r * r / 2.0));
}

}  // namespace fast::hash
