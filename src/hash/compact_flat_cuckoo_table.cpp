#include "hash/compact_flat_cuckoo_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fast::hash {

namespace {
/// Serialization tag so compact bytes can never be confused with the
/// untagged FlatCuckooTable format (belt-and-braces on top of the
/// config-fingerprint gate in the snapshot layer).
constexpr std::uint32_t kCompactTableMagic = 0xCF570001;
}  // namespace

CompactFlatCuckooTable::CompactFlatCuckooTable(const FlatCuckooConfig& config)
    : fps_(std::max<std::size_t>(config.capacity, 4 * config.window), 0),
      refs_(std::max<std::size_t>(config.capacity, 4 * config.window), 0),
      window_(std::max<std::size_t>(config.window, 1)),
      max_kicks_(config.max_kicks),
      salt1_(mix64(config.seed ^ 0x517cc1b727220a95ULL)),
      salt2_(mix64(config.seed ^ 0x2545f4914f6cdd1dULL)),
      salt_fp_(mix64(config.seed ^ 0x94d049bb133111ebULL)),
      rng_(config.seed ^ 0xf1a7ULL) {
  // salt1_/salt2_ and the RNG seed mirror FlatCuckooTable exactly: identical
  // candidate sets and victim choices are what make the two backends
  // bit-identical under the same operation history.
  FAST_CHECK(config.window >= 1);
  FAST_CHECK(config.window <= kMaxCuckooWindow);
}

CandidateSet CompactFlatCuckooTable::candidates(
    std::uint64_t key) const noexcept {
  CandidateSet out;
  const std::size_t b1 = base1(key);
  const std::size_t b2 = base2(key);
  for (std::size_t w = 0; w < window_; ++w) out.slot[out.count++] = wrap(b1, w);
  for (std::size_t w = 0; w < window_; ++w) out.slot[out.count++] = wrap(b2, w);
  return out;
}

std::uint32_t CompactFlatCuckooTable::alloc_entry(std::uint64_t key,
                                                  std::uint64_t value) {
  if (!free_.empty()) {
    const std::uint32_t r = free_.back();
    free_.pop_back();
    side_keys_[r] = key;
    side_values_[r] = value;
    return r;
  }
  const auto r = static_cast<std::uint32_t>(side_keys_.size());
  side_keys_.push_back(key);
  side_values_.push_back(value);
  return r;
}

void CompactFlatCuckooTable::free_entry(std::uint32_t ref) noexcept {
  free_.push_back(ref);
}

bool CompactFlatCuckooTable::insert(std::uint64_t key, std::uint64_t value) {
  CandidateSet cand = candidates(key);
  const std::uint16_t fp = fingerprint(key);

  // Overwrite in place if present; otherwise take the first free slot.
  // Mirrors FlatCuckooTable::insert slot-for-slot: "occupied" is a nonzero
  // fingerprint, and a key match is fingerprint match + side-array verify.
  std::size_t free_slot = fps_.size();
  for (std::size_t p : cand) {
    if (fps_[p] != 0) {
      if (fps_[p] == fp) {
        if (side_keys_[refs_[p]] == key) {
          side_values_[refs_[p]] = value;
          return true;
        }
        ++stats_.fingerprint_false_hits;
      }
    } else if (free_slot == fps_.size()) {
      free_slot = p;
    }
  }
  if (free_slot != fps_.size()) {
    fps_[free_slot] = fp;
    refs_[free_slot] = alloc_entry(key, value);
    ++size_;
    ++stats_.inserts;
    return true;
  }

  // All 2W candidates full: displacement chain. The kick loop moves only
  // (fingerprint, ref) pairs — 6 bytes per displacement instead of a whole
  // slot — and draws victims from the same RNG stream as FlatCuckooTable.
  std::uint16_t cur_fp = fp;
  std::uint32_t cur_ref = alloc_entry(key, value);
  std::vector<std::size_t> chain;
  chain.reserve(std::min<std::size_t>(max_kicks_, 64));
  std::size_t kicks = 0;
  while (kicks < max_kicks_) {
    const std::size_t victim = cand[rng_.uniform_u64(cand.size())];
    std::swap(cur_fp, fps_[victim]);
    std::swap(cur_ref, refs_[victim]);
    chain.push_back(victim);
    ++kicks;

    // The displaced item looks for a free slot among ITS candidates.
    cand = candidates(side_keys_[cur_ref]);
    std::size_t free_p = fps_.size();
    for (std::size_t p : cand) {
      if (fps_[p] == 0) {
        free_p = p;
        break;
      }
    }
    if (free_p != fps_.size()) {
      fps_[free_p] = cur_fp;
      refs_[free_p] = cur_ref;
      ++size_;
      ++stats_.inserts;
      stats_.total_kicks += kicks;
      stats_.max_kick_chain = std::max(stats_.max_kick_chain, kicks);
      return true;
    }
  }

  // Roll back all swaps in reverse; afterwards cur_ref is the rejected
  // key's side entry again, which is returned to the free list.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    std::swap(cur_fp, fps_[*it]);
    std::swap(cur_ref, refs_[*it]);
  }
  free_entry(cur_ref);
  ++stats_.failures;
  stats_.total_kicks += max_kicks_;
  stats_.max_kick_chain = std::max(stats_.max_kick_chain, max_kicks_);
  return false;
}

std::optional<std::uint64_t> CompactFlatCuckooTable::find(
    std::uint64_t key, ProbeProfile* profile) const noexcept {
  // SoA layout: the scan reads 2 bytes per candidate; the 4-byte ref and
  // 16-byte side entry are touched only behind a fingerprint match. False
  // hits are reported via the profile only — find() must stay free of
  // member writes because queries run concurrently under shared locks.
  const std::uint16_t fp = fingerprint(key);
  const std::size_t b1 = base1(key);
  for (std::size_t w = 0; w < window_; ++w) {
    const std::size_t p = wrap(b1, w);
    if (profile != nullptr) {
      ++profile->slots_scanned;
      profile->bytes_touched += sizeof(std::uint16_t);
    }
    if (fps_[p] == fp) {
      const std::uint32_t r = refs_[p];
      if (profile != nullptr) {
        profile->bytes_touched += sizeof(std::uint32_t) + sizeof(std::uint64_t);
      }
      if (side_keys_[r] == key) {
        if (profile != nullptr) profile->bytes_touched += sizeof(std::uint64_t);
        return side_values_[r];
      }
      if (profile != nullptr) ++profile->fingerprint_false_hits;
    }
  }
  const std::size_t b2 = base2(key);
  for (std::size_t w = 0; w < window_; ++w) {
    const std::size_t p = wrap(b2, w);
    if (profile != nullptr) {
      ++profile->slots_scanned;
      profile->bytes_touched += sizeof(std::uint16_t);
    }
    if (fps_[p] == fp) {
      const std::uint32_t r = refs_[p];
      if (profile != nullptr) {
        profile->bytes_touched += sizeof(std::uint32_t) + sizeof(std::uint64_t);
      }
      if (side_keys_[r] == key) {
        if (profile != nullptr) profile->bytes_touched += sizeof(std::uint64_t);
        return side_values_[r];
      }
      if (profile != nullptr) ++profile->fingerprint_false_hits;
    }
  }
  return std::nullopt;
}

bool CompactFlatCuckooTable::erase(std::uint64_t key) noexcept {
  const std::uint16_t fp = fingerprint(key);
  const auto try_erase = [&](std::size_t p) noexcept {
    if (fps_[p] != fp) return false;
    if (side_keys_[refs_[p]] != key) {
      ++stats_.fingerprint_false_hits;
      return false;
    }
    free_entry(refs_[p]);
    fps_[p] = 0;
    refs_[p] = 0;
    --size_;
    return true;
  };
  const std::size_t b1 = base1(key);
  for (std::size_t w = 0; w < window_; ++w) {
    if (try_erase(wrap(b1, w))) return true;
  }
  const std::size_t b2 = base2(key);
  for (std::size_t w = 0; w < window_; ++w) {
    if (try_erase(wrap(b2, w))) return true;
  }
  return false;
}

void CompactFlatCuckooTable::serialize(util::ByteWriter& out) const {
  out.u32(kCompactTableMagic);
  out.u64(fps_.size());
  out.u64(window_);
  out.u64(max_kicks_);
  out.u64(salt1_);
  out.u64(salt2_);
  out.u64(salt_fp_);
  out.u64(size_);
  out.u64(stats_.inserts);
  out.u64(stats_.failures);
  out.u64(stats_.total_kicks);
  out.u64(stats_.max_kick_chain);
  out.u64(stats_.fingerprint_false_hits);
  // Lanes packed one u64 per slot: fingerprint in the low 16 bits, side
  // index above it.
  for (std::size_t p = 0; p < fps_.size(); ++p) {
    out.u64(static_cast<std::uint64_t>(fps_[p]) |
            (static_cast<std::uint64_t>(refs_[p]) << 16));
  }
  out.u64(side_keys_.size());
  for (std::size_t i = 0; i < side_keys_.size(); ++i) {
    out.u64(side_keys_[i]);
    out.u64(side_values_[i]);
  }
  out.u64(free_.size());
  for (const std::uint32_t r : free_) out.u32(r);
}

std::optional<CompactFlatCuckooTable> CompactFlatCuckooTable::deserialize(
    util::ByteReader& in) {
  if (in.u32() != kCompactTableMagic || !in.ok()) return std::nullopt;
  CompactFlatCuckooTable table;
  const std::uint64_t capacity = in.u64();
  table.window_ = in.u64();
  table.max_kicks_ = in.u64();
  table.salt1_ = in.u64();
  table.salt2_ = in.u64();
  table.salt_fp_ = in.u64();
  table.size_ = in.u64();
  table.stats_.inserts = in.u64();
  table.stats_.failures = in.u64();
  table.stats_.total_kicks = in.u64();
  table.stats_.max_kick_chain = in.u64();
  table.stats_.fingerprint_false_hits = in.u64();
  if (!in.ok() || capacity == 0 || table.window_ == 0 ||
      table.window_ > kMaxCuckooWindow ||
      capacity > in.remaining() / 8) {  // 8 bytes per serialized slot word
    return std::nullopt;
  }
  table.fps_.resize(capacity);
  table.refs_.resize(capacity);
  std::size_t occupied = 0;
  for (std::size_t p = 0; p < capacity; ++p) {
    const std::uint64_t word = in.u64();
    table.fps_[p] = static_cast<std::uint16_t>(word & 0xffff);
    table.refs_[p] = static_cast<std::uint32_t>(word >> 16);
    if (table.fps_[p] != 0) ++occupied;
  }
  const std::uint64_t side = in.u64();
  if (!in.ok() || occupied != table.size_ || side > in.remaining() / 16) {
    return std::nullopt;
  }
  table.side_keys_.resize(side);
  table.side_values_.resize(side);
  for (std::uint64_t i = 0; i < side; ++i) {
    table.side_keys_[i] = in.u64();
    table.side_values_[i] = in.u64();
  }
  const std::uint64_t free_count = in.u64();
  if (!in.ok() || free_count > in.remaining() / 4 ||
      table.size_ + free_count != side) {
    return std::nullopt;
  }
  table.free_.resize(free_count);
  for (std::uint64_t i = 0; i < free_count; ++i) table.free_[i] = in.u32();
  // Every side entry must be referenced exactly once, by either an occupied
  // slot or the free list — catches ref corruption before it becomes an OOB.
  std::vector<std::uint8_t> used(side, 0);
  const auto claim = [&](std::uint32_t r) {
    if (r >= side || used[r] != 0) return false;
    used[r] = 1;
    return true;
  };
  for (std::size_t p = 0; p < capacity; ++p) {
    if (table.fps_[p] != 0 && !claim(table.refs_[p])) return std::nullopt;
  }
  for (const std::uint32_t r : table.free_) {
    if (!claim(r)) return std::nullopt;
  }
  if (!in.ok()) return std::nullopt;
  // Fresh deterministic kick RNG, matching FlatCuckooTable::deserialize so
  // post-recovery insert histories stay in lockstep across backends.
  table.rng_.reseed(table.salt1_ ^ 0xf1a7ULL);
  return table;
}

}  // namespace fast::hash
