#include "hash/bloom_filter.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/vecmath.hpp"

namespace fast::hash {

BloomFilter::BloomFilter(std::size_t bits, std::size_t k, std::uint64_t seed)
    : bits_((bits + 63) / 64 * 64), k_(k), seed_(seed),
      words_(bits_ / 64, 0) {
  FAST_CHECK(bits > 0 && k > 0);
}

BloomFilter BloomFilter::from_state(std::size_t bits, std::size_t k,
                                    std::uint64_t seed,
                                    std::vector<std::uint64_t> words,
                                    std::size_t inserted) {
  FAST_CHECK(bits % 64 == 0 && words.size() == bits / 64);
  BloomFilter filter(bits, k, seed);
  filter.words_ = std::move(words);
  filter.inserted_ = inserted;
  return filter;
}

void BloomFilter::insert(const void* data, std::size_t len) {
  const Hash128 h = murmur3_128(data, len, seed_);
  for (std::size_t i = 0; i < k_; ++i) {
    set_bit(derived_hash(h, i) % bits_);
  }
  ++inserted_;
}

bool BloomFilter::maybe_contains(const void* data, std::size_t len) const {
  const Hash128 h = murmur3_128(data, len, seed_);
  for (std::size_t i = 0; i < k_; ++i) {
    if (!test_bit(derived_hash(h, i) % bits_)) return false;
  }
  return true;
}

std::size_t BloomFilter::set_bit_count() const noexcept {
  return util::popcount(words_);
}

double BloomFilter::false_positive_rate() const noexcept {
  const double m = static_cast<double>(bits_);
  const double k = static_cast<double>(k_);
  const double n = static_cast<double>(inserted_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

std::vector<float> BloomFilter::to_float_vector() const {
  std::vector<float> v(bits_);
  for (std::size_t i = 0; i < bits_; ++i) {
    v[i] = test_bit(i) ? 1.0f : 0.0f;
  }
  return v;
}

std::size_t BloomFilter::hamming(const BloomFilter& a, const BloomFilter& b) {
  FAST_CHECK(a.bits_ == b.bits_ && a.seed_ == b.seed_);
  return util::hamming_distance(a.words_, b.words_);
}

void BloomFilter::merge(const BloomFilter& other) {
  FAST_CHECK(bits_ == other.bits_ && seed_ == other.seed_ && k_ == other.k_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  inserted_ += other.inserted_;
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
  inserted_ = 0;
}

}  // namespace fast::hash
