// Fingerprint-compressed variant of the flat windowed cuckoo table
// (DESIGN.md §3h). Same candidate geometry as FlatCuckooTable — two salted
// bases, W adjacent slots each — but the slot array is struct-of-arrays:
//
//   fps_  : dense 16-bit fingerprint lane (0 = empty sentinel)
//   refs_ : 32-bit index lane into the out-of-line side arrays
//   side_keys_/side_values_ : full 64-bit key/value pairs, one per entry
//
// A probe scans the 2*W candidate fingerprints first — 2 bytes per slot, so
// a whole window fits one cache line — and touches the side array only on a
// fingerprint match. Collisions (≈2^-16 per compared slot) fall back to
// full-key verification, so find/insert/erase stay exact: observable results
// are bit-identical to FlatCuckooTable built with the same config, because
// the salts, candidate sets, and kick RNG stream are mirrored exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/flat_cuckoo_table.hpp"  // FlatCuckooConfig, CandidateSet
#include "hash/hashes.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace fast::hash {

class CompactFlatCuckooTable {
 public:
  explicit CompactFlatCuckooTable(const FlatCuckooConfig& config);

  std::size_t capacity() const noexcept { return fps_.size(); }
  std::size_t size() const noexcept { return size_; }
  double load_factor() const noexcept {
    return static_cast<double>(size_) / static_cast<double>(fps_.size());
  }
  std::size_t window() const noexcept { return window_; }
  const CuckooStats& stats() const noexcept { return stats_; }

  /// Inserts key -> value (overwrites if present). Returns false when the
  /// displacement budget is exhausted; the table (including the side array)
  /// is rolled back exactly and the key is not stored. Success/failure is
  /// identical to FlatCuckooTable under the same operation history.
  bool insert(std::uint64_t key, std::uint64_t value);

  /// Probes the key's 2*W candidate fingerprints; side-array entries are
  /// read only on fingerprint match. `profile` (optional) accumulates slots
  /// scanned, bytes touched, and fingerprint false hits.
  std::optional<std::uint64_t> find(
      std::uint64_t key, ProbeProfile* profile = nullptr) const noexcept;

  bool contains(std::uint64_t key) const noexcept {
    return find(key).has_value();
  }

  bool erase(std::uint64_t key) noexcept;

  /// Fixed probe count per lookup: 2 * W independent fingerprint reads.
  std::size_t probes_per_lookup() const noexcept { return 2 * window_; }

  /// Modeled table bytes: 6 B/slot of lanes plus 16 B per resident entry
  /// out-of-line (free-list slack counted — it is allocated memory).
  std::size_t memory_bytes() const noexcept {
    return fps_.size() * (sizeof(std::uint16_t) + sizeof(std::uint32_t)) +
           side_keys_.size() * 2 * sizeof(std::uint64_t);
  }

  /// The 16-bit fingerprint of `key` (exposed so tests can craft forced
  /// collisions). Never 0 — 0 is the empty-slot sentinel.
  std::uint16_t fingerprint(std::uint64_t key) const noexcept {
    const auto fp = static_cast<std::uint16_t>(mix64(key ^ salt_fp_));
    return fp == 0 ? std::uint16_t{1} : fp;
  }

  /// Verbatim dump — magic tag, salts, stats, both lanes, side arrays and
  /// free list — so a deserialized table answers every find()
  /// bit-identically. The kick RNG position is not persisted (same argument
  /// as FlatCuckooTable::serialize).
  void serialize(util::ByteWriter& out) const;

  /// Inverse of serialize(). Returns nullopt on a bad magic tag, truncation,
  /// or internal inconsistency (occupancy/side-array/free-list mismatch).
  static std::optional<CompactFlatCuckooTable> deserialize(
      util::ByteReader& in);

 private:
  /// Uninitialized shell for deserialize() to fill.
  CompactFlatCuckooTable()
      : window_(1), max_kicks_(0), salt1_(0), salt2_(0), salt_fp_(0),
        rng_(0) {}

  std::size_t base1(std::uint64_t key) const noexcept {
    return mix64(key ^ salt1_) % fps_.size();
  }
  std::size_t base2(std::uint64_t key) const noexcept {
    return mix64(key ^ salt2_) % fps_.size();
  }
  std::size_t wrap(std::size_t base, std::size_t offset) const noexcept {
    const std::size_t p = base + offset;
    return p < fps_.size() ? p : p - fps_.size();
  }
  CandidateSet candidates(std::uint64_t key) const noexcept;

  /// Allocates a side-array entry (reusing the free list) and returns its
  /// index; the inverse returns an entry to the free list.
  std::uint32_t alloc_entry(std::uint64_t key, std::uint64_t value);
  void free_entry(std::uint32_t ref) noexcept;

  std::vector<std::uint16_t> fps_;   ///< fingerprint lane, 0 = empty
  std::vector<std::uint32_t> refs_;  ///< side-array index lane
  std::vector<std::uint64_t> side_keys_;
  std::vector<std::uint64_t> side_values_;
  std::vector<std::uint32_t> free_;  ///< recycled side-array indices
  std::size_t window_;
  std::size_t max_kicks_;
  std::uint64_t salt1_;
  std::uint64_t salt2_;
  std::uint64_t salt_fp_;
  std::size_t size_ = 0;
  CuckooStats stats_;
  util::Rng rng_;
};

}  // namespace fast::hash
