#include "hash/counting_bloom.hpp"

#include "util/check.hpp"

namespace fast::hash {

CountingBloomFilter::CountingBloomFilter(std::size_t counters, std::size_t k,
                                         std::uint64_t seed)
    : counters_(counters), k_(k), seed_(seed),
      cells_((counters + 1) / 2, 0) {
  FAST_CHECK(counters > 0 && k > 0);
}

void CountingBloomFilter::insert(const void* data, std::size_t len) {
  const Hash128 h = murmur3_128(data, len, seed_);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t pos = derived_hash(h, i) % counters_;
    const std::uint8_t c = get(pos);
    if (c < kMax) {
      set(pos, static_cast<std::uint8_t>(c + 1));
    } else {
      ++saturated_;
    }
  }
  ++inserted_;
}

void CountingBloomFilter::remove(const void* data, std::size_t len) {
  const Hash128 h = murmur3_128(data, len, seed_);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t pos = derived_hash(h, i) % counters_;
    const std::uint8_t c = get(pos);
    // Saturated counters are sticky: decrementing one would risk erasing
    // evidence of other keys that pushed it to the ceiling.
    if (c > 0 && c < kMax) {
      set(pos, static_cast<std::uint8_t>(c - 1));
    }
  }
  if (inserted_ > 0) --inserted_;
}

bool CountingBloomFilter::maybe_contains(const void* data,
                                         std::size_t len) const {
  const Hash128 h = murmur3_128(data, len, seed_);
  for (std::size_t i = 0; i < k_; ++i) {
    if (get(derived_hash(h, i) % counters_) == 0) return false;
  }
  return true;
}

}  // namespace fast::hash
