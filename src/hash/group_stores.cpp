#include "hash/group_stores.hpp"

#include <algorithm>

namespace fast::hash {

namespace {
/// Proactive growth threshold for the per-table cuckoo load factor.
constexpr double kGrowAt = 0.80;
}  // namespace

template <typename TableT>
WindowedCuckooGroupStore<TableT>::WindowedCuckooGroupStore(
    const FlatCuckooConfig& base, std::size_t tables)
    : base_(base) {
  tables_.reserve(tables);
  for (std::size_t t = 0; t < tables; ++t) {
    FlatCuckooConfig cc = base_;
    cc.seed = base_.seed + t * 0x9e37ULL;
    tables_.push_back(Table{TableT(cc), {}, cc.seed});
  }
}

template <typename TableT>
std::optional<std::uint64_t> WindowedCuckooGroupStore<TableT>::find(
    std::size_t t, std::uint64_t key, std::size_t* probes,
    ProbeProfile* profile) const {
  // Flat addressing: every lookup is the same fixed 2W slot reads.
  if (probes != nullptr) *probes = tables_[t].cuckoo.probes_per_lookup();
  ProbeProfile local;
  const auto hit = tables_[t].cuckoo.find(key, &local);
  if (local.fingerprint_false_hits != 0) {
    find_false_hits_.fetch_add(local.fingerprint_false_hits,
                               std::memory_order_relaxed);
  }
  if (profile != nullptr) profile->merge(local);
  return hit;
}

template <typename TableT>
void WindowedCuckooGroupStore<TableT>::maybe_grow(std::size_t t) {
  Table& table = tables_[t];
  if (table.cuckoo.load_factor() < kGrowAt) return;
  std::size_t capacity = table.cuckoo.capacity() * 2;
  for (;;) {
    table.seed = mix64(table.seed + 1);
    FlatCuckooConfig cc = base_;
    cc.capacity = capacity;
    cc.seed = table.seed;
    TableT rebuilt(cc);
    bool ok = true;
    for (const auto& [k, g] : table.entries) {
      if (!rebuilt.insert(k, g)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      table.cuckoo = std::move(rebuilt);
      return;
    }
    capacity *= 2;
  }
}

template <typename TableT>
std::size_t WindowedCuckooGroupStore<TableT>::place(std::size_t t,
                                                    std::uint64_t key,
                                                    std::uint64_t group) {
  maybe_grow(t);
  Table& table = tables_[t];
  table.entries.emplace_back(key, group);
  if (table.cuckoo.insert(key, group)) return 0;

  // Rehash loop: rebuild this table's cuckoo with a fresh seed (same
  // capacity first; double it if even a fresh seed cannot place everything,
  // which only happens near 100% load).
  std::size_t events = 0;
  std::size_t capacity = table.cuckoo.capacity();
  for (;;) {
    ++events;
    table.seed = mix64(table.seed + 1);
    FlatCuckooConfig cc = base_;
    cc.capacity = capacity;
    cc.seed = table.seed;
    TableT rebuilt(cc);
    bool ok = true;
    for (const auto& [k, g] : table.entries) {
      if (!rebuilt.insert(k, g)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      table.cuckoo = std::move(rebuilt);
      return events;
    }
    capacity *= 2;
  }
}

template <typename TableT>
void WindowedCuckooGroupStore<TableT>::erase_key(std::size_t t,
                                                 std::uint64_t key) {
  // The append-only rebuild log keeps the mapping; a rebuilt table would
  // resurrect the key pointing at an empty group — harmless.
  tables_[t].cuckoo.erase(key);
}

template <typename TableT>
std::size_t WindowedCuckooGroupStore<TableT>::lookup_cost_probes(
    std::size_t t) const noexcept {
  return tables_[t].cuckoo.probes_per_lookup();
}

template <typename TableT>
std::size_t WindowedCuckooGroupStore<TableT>::store_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Table& t : tables_) bytes += t.cuckoo.memory_bytes();
  return bytes;
}

template <typename TableT>
CuckooStats WindowedCuckooGroupStore<TableT>::stats() const noexcept {
  CuckooStats total;
  for (const Table& t : tables_) {
    const CuckooStats& s = t.cuckoo.stats();
    total.inserts += s.inserts;
    total.failures += s.failures;
    total.total_kicks += s.total_kicks;
    total.max_kick_chain = std::max(total.max_kick_chain, s.max_kick_chain);
    total.occupied_slots += t.cuckoo.size();
    total.capacity_slots += t.cuckoo.capacity();
    total.fingerprint_false_hits += s.fingerprint_false_hits;
  }
  total.fingerprint_false_hits +=
      find_false_hits_.load(std::memory_order_relaxed);
  return total;
}

template <typename TableT>
void WindowedCuckooGroupStore<TableT>::serialize(util::ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(tables_.size()));
  for (const Table& table : tables_) {
    out.u64(table.seed);
    // The rebuild log must survive: a post-recovery rehash replays it.
    out.u64(table.entries.size());
    for (const auto& [key, group] : table.entries) {
      out.u64(key);
      out.u64(group);
    }
    table.cuckoo.serialize(out);
  }
}

template <typename TableT>
bool WindowedCuckooGroupStore<TableT>::deserialize(util::ByteReader& in) {
  const std::uint32_t tables = in.u32();
  if (!in.ok() || tables != tables_.size()) return false;
  for (Table& table : tables_) {
    table.seed = in.u64();
    const std::uint64_t entries = in.u64();
    if (!in.ok() || entries > in.remaining() / 16) return false;
    table.entries.clear();
    table.entries.reserve(entries);
    for (std::uint64_t i = 0; i < entries; ++i) {
      const std::uint64_t key = in.u64();
      const std::uint64_t group = in.u64();
      table.entries.emplace_back(key, group);
    }
    auto cuckoo = TableT::deserialize(in);
    if (!cuckoo.has_value()) return false;
    table.cuckoo = std::move(*cuckoo);
  }
  return in.ok();
}

template class WindowedCuckooGroupStore<FlatCuckooTable>;
template class WindowedCuckooGroupStore<CompactFlatCuckooTable>;

ChainedGroupStore::ChainedGroupStore(std::size_t buckets, std::uint64_t seed,
                                     std::size_t tables) {
  tables_.reserve(tables);
  for (std::size_t t = 0; t < tables; ++t) {
    tables_.emplace_back(buckets, seed + t * 0x9e37ULL);
  }
}

std::optional<std::uint64_t> ChainedGroupStore::find(
    std::size_t t, std::uint64_t key, std::size_t* probes,
    ProbeProfile* profile) const {
  // Vertical addressing: the probe cost is the chain walk, data-dependent.
  std::size_t walked = 0;
  const std::vector<std::uint64_t> values = tables_[t].find(key, &walked);
  if (probes != nullptr) *probes = walked;
  if (profile != nullptr) {
    // Head-pointer read plus one (key, value, next) node per walked probe.
    profile->slots_scanned += walked;
    profile->bytes_touched +=
        sizeof(std::int64_t) +
        walked * (2 * sizeof(std::uint64_t) + sizeof(std::int64_t));
  }
  if (values.empty()) return std::nullopt;
  return values.front();
}

std::size_t ChainedGroupStore::place(std::size_t t, std::uint64_t key,
                                     std::uint64_t group) {
  tables_[t].insert(key, group);
  return 0;  // chains grow unboundedly; placement never rehashes
}

void ChainedGroupStore::erase_key(std::size_t t, std::uint64_t key) {
  tables_[t].erase(key);
}

std::size_t ChainedGroupStore::lookup_cost_probes(
    std::size_t t) const noexcept {
  // Modeled expected chain walk: mean bucket occupancy plus the head read.
  const LshTableChained& table = tables_[t];
  return 1 + table.size() / table.bucket_count();
}

std::size_t ChainedGroupStore::store_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const LshTableChained& t : tables_) {
    bytes += t.bucket_count() * sizeof(std::int64_t) +
             t.size() * (2 * sizeof(std::uint64_t) + sizeof(std::int64_t));
  }
  return bytes;
}

void ChainedGroupStore::serialize(util::ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(tables_.size()));
  for (const LshTableChained& table : tables_) table.serialize(out);
}

bool ChainedGroupStore::deserialize(util::ByteReader& in) {
  const std::uint32_t tables = in.u32();
  if (!in.ok() || tables != tables_.size()) return false;
  for (LshTableChained& table : tables_) {
    auto restored = LshTableChained::deserialize(in);
    if (!restored.has_value()) return false;
    table = std::move(*restored);
  }
  return in.ok();
}

CuckooStats ChainedGroupStore::stats() const noexcept {
  CuckooStats total;
  for (const LshTableChained& t : tables_) {
    total.inserts += t.size();
    total.occupied_slots += t.size();
    total.capacity_slots += t.bucket_count();
  }
  return total;
}

}  // namespace fast::hash
