#include "hash/sparse_signature.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/check.hpp"

namespace fast::hash {

SparseSignature::SparseSignature(const BloomFilter& filter)
    : bit_count_(static_cast<std::uint32_t>(filter.bit_count())) {
  const auto words = filter.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t word = words[w];
    while (word) {
      const int bit = std::countr_zero(word);
      bits_.push_back(static_cast<std::uint32_t>(w * 64 +
                                                 static_cast<std::size_t>(bit)));
      word &= word - 1;
    }
  }
}

SparseSignature::SparseSignature(std::vector<std::uint32_t> set_bits,
                                 std::uint32_t bit_count)
    : bit_count_(bit_count), bits_(std::move(set_bits)) {
  FAST_CHECK(std::is_sorted(bits_.begin(), bits_.end()));
  FAST_CHECK(std::adjacent_find(bits_.begin(), bits_.end()) == bits_.end());
  FAST_CHECK(bits_.empty() || bits_.back() < bit_count_);
}

std::size_t SparseSignature::overlap(const SparseSignature& a,
                                     const SparseSignature& b) noexcept {
  std::size_t n = 0;
  auto ia = a.bits_.begin();
  auto ib = b.bits_.begin();
  while (ia != a.bits_.end() && ib != b.bits_.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

std::size_t SparseSignature::hamming(const SparseSignature& a,
                                     const SparseSignature& b) noexcept {
  const std::size_t common = overlap(a, b);
  return a.bits_.size() + b.bits_.size() - 2 * common;
}

double SparseSignature::jaccard(const SparseSignature& a,
                                const SparseSignature& b) noexcept {
  const std::size_t common = overlap(a, b);
  const std::size_t uni = a.bits_.size() + b.bits_.size() - common;
  if (uni == 0) return 1.0;
  return static_cast<double>(common) / static_cast<double>(uni);
}

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_varint(std::span<const std::uint8_t> bytes,
                         std::size_t& pos) {
  std::uint32_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= bytes.size() || shift > 28) {
      throw std::runtime_error("SparseSignature: malformed varint");
    }
    const std::uint8_t b = bytes[pos++];
    v |= static_cast<std::uint32_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace

std::vector<std::uint8_t> SparseSignature::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(2 + bits_.size() + 8);
  put_varint(out, bit_count_);
  put_varint(out, static_cast<std::uint32_t>(bits_.size()));
  std::uint32_t prev = 0;
  for (std::uint32_t b : bits_) {
    put_varint(out, b - prev);  // first delta is the absolute position
    prev = b;
  }
  return out;
}

SparseSignature SparseSignature::decode(std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  const std::uint32_t bit_count = get_varint(bytes, pos);
  const std::uint32_t n = get_varint(bytes, pos);
  // Every bit costs at least one encoded byte, so a count above the
  // remaining input is hostile — reject before reserving.
  if (n > bytes.size() - pos) {
    throw std::runtime_error("SparseSignature: bit count exceeds input");
  }
  std::vector<std::uint32_t> bits;
  bits.reserve(n);
  // Validate while reconstructing: the constructor's sorted/unique/range
  // invariants must hold for untrusted input too, as a catchable error
  // rather than a process abort. Accumulate in 64 bits so hostile deltas
  // cannot wrap back into sorted order.
  std::uint64_t prev = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t delta = get_varint(bytes, pos);
    if (i > 0 && delta == 0) {
      throw std::runtime_error("SparseSignature: duplicate bit");
    }
    prev += delta;
    if (prev >= bit_count) {
      throw std::runtime_error("SparseSignature: bit out of range");
    }
    bits.push_back(static_cast<std::uint32_t>(prev));
  }
  return SparseSignature(std::move(bits), bit_count);
}

std::size_t SparseSignature::storage_bytes() const noexcept {
  // Exact encoded size without materializing the buffer.
  auto varint_len = [](std::uint32_t v) {
    std::size_t n = 1;
    while (v >= 0x80) {
      v >>= 7;
      ++n;
    }
    return n;
  };
  std::size_t total = varint_len(bit_count_) +
                      varint_len(static_cast<std::uint32_t>(bits_.size()));
  std::uint32_t prev = 0;
  for (std::uint32_t b : bits_) {
    total += varint_len(b - prev);
    prev = b;
  }
  return total;
}

std::vector<float> SparseSignature::to_float_vector() const {
  std::vector<float> v(bit_count_, 0.0f);
  for (std::uint32_t b : bits_) v[b] = 1.0f;
  return v;
}

}  // namespace fast::hash
