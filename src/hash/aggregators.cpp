#include "hash/aggregators.hpp"

#include "hash/multi_probe.hpp"

namespace fast::hash {

PStableAggregator::PStableAggregator(const LshConfig& config, int probe_depth,
                                     double input_scale)
    : lsh_(config), probe_depth_(probe_depth), input_scale_(input_scale) {}

std::size_t PStableAggregator::table_count() const noexcept {
  return lsh_.config().tables;
}

std::vector<std::uint64_t> PStableAggregator::keys(
    const SparseSignature& signature,
    std::vector<std::vector<std::uint64_t>>* probes) const {
  const std::size_t n = table_count();
  const std::size_t m = lsh_.config().hashes_per_table;
  std::vector<std::uint64_t> keys(n);
  if (probes != nullptr) probes->assign(n, {});

  // Sparse-gather projection: a signature is 0/1 by construction, so its
  // dense form is fully described by (set_bits, input_scale) and all L*M
  // coordinates come out of one O(nnz * L * M) pass — bit-exact with the
  // dense path (see PStableLsh::bucket_coords_sparse). keys() is const and
  // raced by batch queries, so the scratch is per-thread, not per-instance.
  static thread_local SparseProjectionScratch scratch;
  const std::span<const std::int32_t> coords = lsh_.bucket_coords_sparse(
      signature.set_bits(), static_cast<float>(input_scale_), scratch);
  for (std::size_t t = 0; t < n; ++t) {
    const std::span<const std::int32_t> home = coords.subspan(t * m, m);
    keys[t] = lsh_.bucket_key(t, home);
    if (probes != nullptr && probe_depth_ > 0) {
      auto& probe_keys = (*probes)[t];
      const BucketCoords home_vec(home.begin(), home.end());
      for (const BucketCoords& p : probe_sequence(home_vec, probe_depth_)) {
        probe_keys.push_back(lsh_.bucket_key(t, p));
      }
    }
  }
  return keys;
}

std::size_t PStableAggregator::insert_hash_ops(
    const SparseSignature& /*signature*/) const noexcept {
  // Paper-faithful simulated cost: the paper's SA stage performs dense
  // L*M*dim-flop projections (Definition 1), and the simulated platform is
  // still charged exactly that, even though the native kernel now runs the
  // O(nnz*L*M) sparse path. Real kernel time is tracked separately by the
  // sa.keys_wall_s histogram (DESIGN.md §3b/§3c).
  const LshConfig& c = lsh_.config();
  return c.tables * c.hashes_per_table * c.dim;
}

std::size_t PStableAggregator::query_hash_ops_per_table(
    const SparseSignature& /*signature*/) const noexcept {
  // Dense per-table flops, same paper-faithful accounting as
  // insert_hash_ops.
  const LshConfig& c = lsh_.config();
  return c.hashes_per_table * c.dim;
}

std::size_t PStableAggregator::param_bytes() const noexcept {
  // L*M a-vectors of dim floats plus one offset each, twice: the sparse
  // kernel keeps a transposed copy of the coefficient matrix (a_t_), which
  // is real resident memory and is reported as such (Table IV accounting).
  const LshConfig& c = lsh_.config();
  return c.tables * c.hashes_per_table *
         (2 * c.dim * sizeof(float) + sizeof(float));
}

MinHashAggregator::MinHashAggregator(const MinHashConfig& config,
                                     bool multiprobe)
    : minhasher_(config), multiprobe_(multiprobe) {}

std::size_t MinHashAggregator::table_count() const noexcept {
  return minhasher_.config().bands;
}

std::vector<std::uint64_t> MinHashAggregator::keys(
    const SparseSignature& signature,
    std::vector<std::vector<std::uint64_t>>* probes) const {
  const std::size_t n = table_count();
  std::vector<std::uint64_t> keys(n);
  if (probes != nullptr) probes->assign(n, {});

  const auto mh = minhasher_.minhashes(signature);
  for (std::size_t t = 0; t < n; ++t) {
    keys[t] = minhasher_.band_key(t, mh);
    if (probes != nullptr && multiprobe_) {
      (*probes)[t] = minhasher_.probe_keys(t, mh);
    }
  }
  return keys;
}

std::size_t MinHashAggregator::insert_hash_ops(
    const SparseSignature& signature) const noexcept {
  // Minwise hashing streams every set bit through each hash's mixer.
  return signature.popcount() * minhasher_.hash_count();
}

std::size_t MinHashAggregator::query_hash_ops_per_table(
    const SparseSignature& signature) const noexcept {
  return signature.popcount() * minhasher_.config().band_size;
}

std::size_t MinHashAggregator::param_bytes() const noexcept {
  return minhasher_.hash_count() * sizeof(std::uint64_t);
}

}  // namespace fast::hash
