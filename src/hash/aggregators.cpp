#include "hash/aggregators.hpp"

#include "hash/multi_probe.hpp"

namespace fast::hash {

PStableAggregator::PStableAggregator(const LshConfig& config, int probe_depth,
                                     double input_scale)
    : lsh_(config), probe_depth_(probe_depth), input_scale_(input_scale) {}

std::size_t PStableAggregator::table_count() const noexcept {
  return lsh_.config().tables;
}

std::vector<std::uint64_t> PStableAggregator::keys(
    const SparseSignature& signature,
    std::vector<std::vector<std::uint64_t>>* probes) const {
  const std::size_t n = table_count();
  std::vector<std::uint64_t> keys(n);
  if (probes != nullptr) probes->assign(n, {});

  std::vector<float> dense = signature.to_float_vector();
  const auto scale = static_cast<float>(input_scale_);
  for (float& x : dense) x *= scale;
  for (std::size_t t = 0; t < n; ++t) {
    const BucketCoords home = lsh_.bucket_coords(t, dense);
    keys[t] = lsh_.bucket_key(t, home);
    if (probes != nullptr && probe_depth_ > 0) {
      auto& probe_keys = (*probes)[t];
      for (const BucketCoords& p : probe_sequence(home, probe_depth_)) {
        probe_keys.push_back(lsh_.bucket_key(t, p));
      }
    }
  }
  return keys;
}

std::size_t PStableAggregator::insert_hash_ops(
    const SparseSignature& /*signature*/) const noexcept {
  const LshConfig& c = lsh_.config();
  return c.tables * c.hashes_per_table * c.dim;
}

std::size_t PStableAggregator::query_hash_ops_per_table(
    const SparseSignature& /*signature*/) const noexcept {
  const LshConfig& c = lsh_.config();
  return c.hashes_per_table * c.dim;
}

std::size_t PStableAggregator::param_bytes() const noexcept {
  // L*M a-vectors of dim floats plus one offset each.
  const LshConfig& c = lsh_.config();
  return c.tables * c.hashes_per_table *
         (c.dim * sizeof(float) + sizeof(float));
}

MinHashAggregator::MinHashAggregator(const MinHashConfig& config,
                                     bool multiprobe)
    : minhasher_(config), multiprobe_(multiprobe) {}

std::size_t MinHashAggregator::table_count() const noexcept {
  return minhasher_.config().bands;
}

std::vector<std::uint64_t> MinHashAggregator::keys(
    const SparseSignature& signature,
    std::vector<std::vector<std::uint64_t>>* probes) const {
  const std::size_t n = table_count();
  std::vector<std::uint64_t> keys(n);
  if (probes != nullptr) probes->assign(n, {});

  const auto mh = minhasher_.minhashes(signature);
  for (std::size_t t = 0; t < n; ++t) {
    keys[t] = minhasher_.band_key(t, mh);
    if (probes != nullptr && multiprobe_) {
      (*probes)[t] = minhasher_.probe_keys(t, mh);
    }
  }
  return keys;
}

std::size_t MinHashAggregator::insert_hash_ops(
    const SparseSignature& signature) const noexcept {
  // Minwise hashing streams every set bit through each hash's mixer.
  return signature.popcount() * minhasher_.hash_count();
}

std::size_t MinHashAggregator::query_hash_ops_per_table(
    const SparseSignature& signature) const noexcept {
  return signature.popcount() * minhasher_.config().band_size;
}

std::size_t MinHashAggregator::param_bytes() const noexcept {
  return minhasher_.hash_count() * sizeof(std::uint64_t);
}

}  // namespace fast::hash
