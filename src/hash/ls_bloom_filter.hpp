// Locality-Sensitive Bloom Filter (Hua et al., IEEE ToC 2012 — the paper's
// ref [47] and a natural extension of the FAST methodology).
//
// A Bloom filter whose probe positions come from LSH functions instead of
// uniform hashes: inserting a vector sets the bits addressed by its L LSH
// bucket ids, and an approximate-membership query reports true when at
// least `threshold` of the query vector's LSH bits are set. Because nearby
// vectors collide in most LSH functions, the filter answers "is something
// *similar* to q in the set?" in O(L) time and a few hundred bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hash/hashes.hpp"
#include "hash/pstable_lsh.hpp"

namespace fast::hash {

struct LsbfConfig {
  LshConfig lsh;            ///< the LSH family addressing the bit array
  std::size_t bits = 4096;  ///< bit-array size
  std::size_t threshold = 0;  ///< min matching tables to answer "near";
                              ///< 0 = require all L (strictest)
};

class LocalitySensitiveBloomFilter {
 public:
  explicit LocalitySensitiveBloomFilter(const LsbfConfig& config);

  /// Inserts a vector: sets one bit per LSH table.
  void insert(std::span<const float> v);

  /// Approximate near-membership: true when >= threshold tables hit.
  bool maybe_near(std::span<const float> v) const;

  /// Fraction of the query's LSH bits that are set (soft score in [0, 1]).
  double near_score(std::span<const float> v) const;

  std::size_t inserted_count() const noexcept { return inserted_; }
  std::size_t bit_count() const noexcept { return bits_; }
  std::size_t set_bit_count() const noexcept;

 private:
  std::size_t bit_of_key(std::uint64_t key) const noexcept {
    return mix64(key) % bits_;
  }

  PStableLsh lsh_;
  std::size_t bits_;
  std::size_t threshold_;
  std::size_t inserted_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fast::hash
