#include "hash/minhash.hpp"

#include <cmath>

#include "hash/hashes.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fast::hash {

MinHasher::MinHasher(const MinHashConfig& config) : config_(config) {
  FAST_CHECK(config.bands > 0 && config.band_size > 0);
  util::Rng rng(config.seed);
  salts_.resize(hash_count());
  for (auto& s : salts_) s = rng.next_u64();
}

std::uint64_t MinHasher::hash_bit(std::size_t i,
                                  std::uint32_t bit) const noexcept {
  return mix64(salts_[i] ^ (static_cast<std::uint64_t>(bit) + 1));
}

std::vector<MinHasher::MinPair> MinHasher::minhashes(
    const SparseSignature& signature) const {
  std::vector<MinPair> out(hash_count());
  for (std::uint32_t bit : signature.set_bits()) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::uint64_t h = hash_bit(i, bit);
      MinPair& p = out[i];
      if (h < p.min) {
        p.second = p.min;
        p.min = h;
      } else if (h < p.second) {
        p.second = h;
      }
    }
  }
  return out;
}

std::uint64_t MinHasher::band_key(std::size_t band,
                                  const std::vector<MinPair>& mh) const {
  FAST_CHECK(band < config_.bands);
  std::uint64_t key = mix64(0xbadd0000ULL + band);
  for (std::size_t j = 0; j < config_.band_size; ++j) {
    key = mix64(key ^ mh[band * config_.band_size + j].min);
  }
  return key;
}

std::vector<std::uint64_t> MinHasher::probe_keys(
    std::size_t band, const std::vector<MinPair>& mh) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(config_.band_size);
  for (std::size_t sub = 0; sub < config_.band_size; ++sub) {
    std::uint64_t key = mix64(0xbadd0000ULL + band);
    for (std::size_t j = 0; j < config_.band_size; ++j) {
      const MinPair& p = mh[band * config_.band_size + j];
      key = mix64(key ^ (j == sub ? p.second : p.min));
    }
    keys.push_back(key);
  }
  return keys;
}

double MinHasher::collision_probability(double j, std::size_t bands,
                                        std::size_t band_size) {
  const double per_band = std::pow(j, static_cast<double>(band_size));
  return 1.0 - std::pow(1.0 - per_band, static_cast<double>(bands));
}

}  // namespace fast::hash
