// Bloom filter (Bloom 1970) — the paper's SM (summarization) module.
//
// FAST hashes each image's feature vectors into a per-image Bloom filter.
// Two similar images share many identical (quantized) features, hence many
// identical set bits; the Bloom bit-vectors of similar images are therefore
// close in Hamming space, which makes them usable as compact LSH inputs.
// Probe positions use the Kirsch–Mitzenmacher double-hashing scheme, so one
// 128-bit Murmur hash yields all k positions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hash/hashes.hpp"

namespace fast::hash {

class BloomFilter {
 public:
  /// Creates a filter with `bits` bit positions (rounded up to a multiple of
  /// 64) and `k` probe hashes per item.
  BloomFilter(std::size_t bits, std::size_t k, std::uint64_t seed = 0x5107);

  /// Rebuilds a filter from state captured via bit_count()/hash_count()/
  /// hash_seed()/words()/inserted_count() — the segment-snapshot codec path.
  /// `bits` must already be the rounded (multiple-of-64) width and `words`
  /// sized to bits / 64.
  static BloomFilter from_state(std::size_t bits, std::size_t k,
                                std::uint64_t seed,
                                std::vector<std::uint64_t> words,
                                std::size_t inserted);

  std::size_t bit_count() const noexcept { return bits_; }
  std::size_t hash_count() const noexcept { return k_; }
  std::uint64_t hash_seed() const noexcept { return seed_; }

  /// Inserts an arbitrary byte key.
  void insert(const void* data, std::size_t len);
  void insert(std::span<const float> v) {
    insert(v.data(), v.size() * sizeof(float));
  }
  void insert_u64(std::uint64_t key) { insert(&key, sizeof(key)); }

  /// Approximate membership: false means definitely absent; true means
  /// present with false-positive probability ~ (1 - e^{-kn/m})^k.
  bool maybe_contains(const void* data, std::size_t len) const;
  bool maybe_contains(std::span<const float> v) const {
    return maybe_contains(v.data(), v.size() * sizeof(float));
  }
  bool maybe_contains_u64(std::uint64_t key) const {
    return maybe_contains(&key, sizeof(key));
  }

  std::size_t inserted_count() const noexcept { return inserted_; }
  std::size_t set_bit_count() const noexcept;

  /// Theoretical false-positive probability at the current fill.
  double false_positive_rate() const noexcept;

  /// Raw bit words (for Hamming distance / LSH input construction).
  std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// The bit vector as floats in {0, 1} — the LSH input representation.
  std::vector<float> to_float_vector() const;

  /// Hamming distance between two equally configured filters.
  static std::size_t hamming(const BloomFilter& a, const BloomFilter& b);

  /// Bit-level union (OR) of another filter into this one; both filters
  /// must have identical geometry and seed.
  void merge(const BloomFilter& other);

  void clear();

 private:
  void set_bit(std::uint64_t pos) noexcept {
    words_[pos >> 6] |= (1ULL << (pos & 63));
  }
  bool test_bit(std::uint64_t pos) const noexcept {
    return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
  }

  std::size_t bits_;
  std::size_t k_;
  std::uint64_t seed_;
  std::size_t inserted_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fast::hash
