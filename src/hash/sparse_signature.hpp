// Sparse encoding of a Bloom bit-vector: only the indices of set bits.
//
// This is the paper's headline space saving — "the space required by its
// features can be reduced from the original 200KB to 40B" — achieved by
// keeping just the non-zero bit positions of the per-image summary. The
// signature supports Hamming/overlap computations directly in the sparse
// domain, so dense vectors never need materializing on the query path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hash/bloom_filter.hpp"

namespace fast::hash {

class SparseSignature {
 public:
  SparseSignature() = default;

  /// Extracts the sorted set-bit positions of `filter`.
  explicit SparseSignature(const BloomFilter& filter);

  /// Builds directly from sorted, unique bit positions.
  SparseSignature(std::vector<std::uint32_t> set_bits, std::uint32_t bit_count);

  std::uint32_t bit_count() const noexcept { return bit_count_; }
  const std::vector<std::uint32_t>& set_bits() const noexcept { return bits_; }
  std::size_t popcount() const noexcept { return bits_.size(); }

  /// Serializes as [bit_count varint][entry count varint][delta varints].
  /// Set-bit positions are sorted, so consecutive deltas are small and
  /// typically fit one byte — this is what makes per-image summaries a few
  /// hundred bytes instead of kilobytes (the paper's headline space cut).
  std::vector<std::uint8_t> encode() const;

  /// Inverse of encode(). Throws std::runtime_error on malformed input.
  static SparseSignature decode(std::span<const std::uint8_t> bytes);

  /// Serialized size in bytes (what the index actually stores per image).
  std::size_t storage_bytes() const noexcept;

  /// |A ∩ B|: number of bit positions set in both signatures.
  static std::size_t overlap(const SparseSignature& a,
                             const SparseSignature& b) noexcept;

  /// Hamming distance = |A| + |B| - 2 |A ∩ B|.
  static std::size_t hamming(const SparseSignature& a,
                             const SparseSignature& b) noexcept;

  /// Jaccard similarity |A ∩ B| / |A ∪ B| (1.0 for two empty signatures).
  static double jaccard(const SparseSignature& a,
                        const SparseSignature& b) noexcept;

  /// Reconstructs the dense {0,1} float vector. The p-stable SA path no
  /// longer needs this (PStableLsh::bucket_coords_sparse projects straight
  /// off set_bits()); kept for baselines, tests, and non-0/1 dense inputs.
  std::vector<float> to_float_vector() const;

 private:
  std::uint32_t bit_count_ = 0;
  std::vector<std::uint32_t> bits_;  // sorted ascending, unique
};

}  // namespace fast::hash
