#include "hash/cuckoo_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fast::hash {

CuckooTable::CuckooTable(std::size_t capacity, std::uint64_t seed,
                         std::size_t max_kicks)
    : slots_(std::max<std::size_t>(capacity, 4)),
      salt1_(mix64(seed ^ 0x517cc1b727220a95ULL)),
      salt2_(mix64(seed ^ 0x2545f4914f6cdd1dULL)),
      max_kicks_(max_kicks),
      rng_(seed ^ 0xcc00ffeeULL) {}

bool CuckooTable::insert(std::uint64_t key, std::uint64_t value) {
  // Overwrite an existing mapping in place.
  const std::size_t p1 = pos1(key);
  if (slots_[p1].occupied && slots_[p1].key == key) {
    slots_[p1].value = value;
    return true;
  }
  const std::size_t p2 = pos2(key);
  if (slots_[p2].occupied && slots_[p2].key == key) {
    slots_[p2].value = value;
    return true;
  }
  if (!slots_[p1].occupied) {
    slots_[p1] = Slot{key, value, true};
    ++size_;
    ++stats_.inserts;
    return true;
  }
  if (!slots_[p2].occupied) {
    slots_[p2] = Slot{key, value, true};
    ++size_;
    ++stats_.inserts;
    return true;
  }

  // Both candidates taken: displacement chain from a random one. Record the
  // positions touched so a failed insertion can be rolled back exactly.
  std::uint64_t cur_key = key;
  std::uint64_t cur_value = value;
  std::size_t pos = rng_.bernoulli(0.5) ? p1 : p2;
  std::vector<std::size_t> chain;
  chain.reserve(std::min<std::size_t>(max_kicks_, 64));
  std::size_t kicks = 0;
  while (kicks < max_kicks_) {
    if (!slots_[pos].occupied) {
      slots_[pos] = Slot{cur_key, cur_value, true};
      ++size_;
      ++stats_.inserts;
      stats_.total_kicks += kicks;
      stats_.max_kick_chain = std::max(stats_.max_kick_chain, kicks);
      return true;
    }
    std::swap(cur_key, slots_[pos].key);
    std::swap(cur_value, slots_[pos].value);
    chain.push_back(pos);
    ++kicks;
    // The displaced item goes to its *other* candidate slot.
    const std::size_t alt1 = pos1(cur_key);
    pos = (alt1 == pos) ? pos2(cur_key) : alt1;
  }

  // Budget exhausted: roll the swaps back in reverse so the table returns
  // to its exact pre-insert state; only the new key is rejected. The caller
  // reacts by rehashing (the event Fig. 6 of the paper counts).
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    std::swap(cur_key, slots_[*it].key);
    std::swap(cur_value, slots_[*it].value);
  }
  ++stats_.failures;
  stats_.total_kicks += max_kicks_;
  stats_.max_kick_chain = std::max(stats_.max_kick_chain, max_kicks_);
  return false;
}

std::optional<std::uint64_t> CuckooTable::find(
    std::uint64_t key) const noexcept {
  const Slot& s1 = slots_[pos1(key)];
  if (s1.occupied && s1.key == key) return s1.value;
  const Slot& s2 = slots_[pos2(key)];
  if (s2.occupied && s2.key == key) return s2.value;
  return std::nullopt;
}

bool CuckooTable::erase(std::uint64_t key) noexcept {
  Slot& s1 = slots_[pos1(key)];
  if (s1.occupied && s1.key == key) {
    s1 = Slot{};
    --size_;
    return true;
  }
  Slot& s2 = slots_[pos2(key)];
  if (s2.occupied && s2.key == key) {
    s2 = Slot{};
    --size_;
    return true;
  }
  return false;
}

}  // namespace fast::hash
