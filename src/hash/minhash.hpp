// MinHash banding over sparse Bloom signatures — the second SA backend.
//
// The paper's SA module hashes Bloom bit-vectors with p-stable (L2) LSH.
// On this repository's synthetic feature pipeline, near-duplicate images
// share ~40% of their set bits (the paper's real-image features share
// more), which compresses the L2 contrast between near and far pairs and
// blunts p-stable narrowing. MinHash is the LSH family whose collision
// probability is exactly the Jaccard similarity of the signatures' set-bit
// sets, so it separates at precisely the resolution the summaries provide.
// Both backends feed the same cuckoo-hashing flat-structured storage; see
// DESIGN.md for the substitution note.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/sparse_signature.hpp"

namespace fast::hash {

struct MinHashConfig {
  std::size_t bands = 48;      ///< number of band keys (tables)
  std::size_t band_size = 3;   ///< minhashes concatenated per band
  std::uint64_t seed = 0x31a;
};

class MinHasher {
 public:
  explicit MinHasher(const MinHashConfig& config);

  const MinHashConfig& config() const noexcept { return config_; }
  std::size_t hash_count() const noexcept {
    return config_.bands * config_.band_size;
  }

  /// The i-th minwise hash value of the signature's set-bit set, together
  /// with the runner-up (used for multi-probe banding).
  struct MinPair {
    std::uint64_t min = ~0ULL;
    std::uint64_t second = ~0ULL;
  };

  /// Computes all minwise hashes of a signature. Empty signatures yield
  /// sentinel (all-ones) values, which still band deterministically.
  std::vector<MinPair> minhashes(const SparseSignature& signature) const;

  /// Band key `band` from precomputed minhashes (uses the .min values).
  std::uint64_t band_key(std::size_t band,
                         const std::vector<MinPair>& mh) const;

  /// Probe keys for a band with one position substituted by its runner-up
  /// minhash (multi-probe banding: recovers bands that miss by one).
  std::vector<std::uint64_t> probe_keys(std::size_t band,
                                        const std::vector<MinPair>& mh) const;

  /// Theoretical probability that two signatures with Jaccard similarity j
  /// share at least one of `bands` band keys (no multi-probe).
  static double collision_probability(double j, std::size_t bands,
                                      std::size_t band_size);

 private:
  std::uint64_t hash_bit(std::size_t i, std::uint32_t bit) const noexcept;

  MinHashConfig config_;
  std::vector<std::uint64_t> salts_;
};

}  // namespace fast::hash
