// FAST's flat-structured cuckoo storage (the paper's CHS module, §III-C3).
//
// A naive use of cuckoo hashing under LSH suffers frequent displacement and
// a high rehash probability because correlated items hash to few distinct
// buckets. FAST extends each of the two candidate positions with a small
// window of adjacent slots ("adjacent neighboring storage"): an item may
// rest in any of the 2*W slots {h1..h1+W-1, h2..h2+W-1}. This is the
// associativity boost that lets the table sustain high load factors, cutting
// the insertion-failure (rehash) probability by ~3 orders of magnitude
// (Fig. 6) while keeping lookups at a fixed 2*W probes that are independent
// and can be issued in parallel on a multicore machine (Fig. 7).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "hash/hashes.hpp"
#include "hash/cuckoo_table.hpp"  // CuckooStats, ProbeProfile
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace fast::hash {

struct FlatCuckooConfig {
  std::size_t capacity = 1024;   ///< total slots
  std::size_t window = 4;        ///< W: adjacent slots per candidate position
  std::size_t max_kicks = 500;   ///< displacement budget per insertion
  std::uint64_t seed = 0xfa57;
};

/// Upper bound on W so candidate sets fit a fixed stack buffer: the probe
/// path performs zero heap allocation (find/insert/erase used to fill a
/// std::vector per call).
inline constexpr std::size_t kMaxCuckooWindow = 32;

/// Stack-allocated set of the 2*W candidate slot indices of a key.
struct CandidateSet {
  std::array<std::size_t, 2 * kMaxCuckooWindow> slot;
  std::size_t count = 0;

  std::size_t size() const noexcept { return count; }
  std::size_t operator[](std::size_t i) const noexcept { return slot[i]; }
  const std::size_t* begin() const noexcept { return slot.data(); }
  const std::size_t* end() const noexcept { return slot.data() + count; }
};

class FlatCuckooTable {
 public:
  explicit FlatCuckooTable(const FlatCuckooConfig& config);

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t size() const noexcept { return size_; }
  double load_factor() const noexcept {
    return static_cast<double>(size_) / static_cast<double>(slots_.size());
  }
  std::size_t window() const noexcept { return window_; }
  const CuckooStats& stats() const noexcept { return stats_; }

  /// Inserts key -> value (overwrites if present). Returns false when the
  /// displacement budget is exhausted; the table is rolled back exactly and
  /// the key is not stored.
  bool insert(std::uint64_t key, std::uint64_t value);

  /// Probes the key's 2*W candidate slots. O(1) with a hard constant bound.
  /// When `profile` is non-null it accumulates the slots scanned and bytes
  /// touched (roofline accounting; see ProbeProfile).
  std::optional<std::uint64_t> find(
      std::uint64_t key, ProbeProfile* profile = nullptr) const noexcept;

  bool contains(std::uint64_t key) const noexcept {
    return find(key).has_value();
  }

  bool erase(std::uint64_t key) noexcept;

  /// Fixed probe count per lookup: 2 * W independent slot reads.
  std::size_t probes_per_lookup() const noexcept { return 2 * window_; }

  /// Modeled table bytes (Table IV accounting): key + value + occupancy
  /// marker per slot, matching the historical GroupStore formula.
  std::size_t memory_bytes() const noexcept {
    return slots_.size() * (2 * sizeof(std::uint64_t) + 1);
  }

  /// Verbatim dump of the table — salts, stats, and every slot — so a
  /// deserialized table answers every find() bit-identically. The kick RNG's
  /// position is NOT persisted (it only influences future victim choices,
  /// never lookup results); deserialize reseeds it deterministically.
  void serialize(util::ByteWriter& out) const;

  /// Inverse of serialize(). Returns nullopt on truncated or internally
  /// inconsistent input (occupancy count mismatch, zero capacity).
  static std::optional<FlatCuckooTable> deserialize(util::ByteReader& in);

 private:
  /// Uninitialized shell for deserialize() to fill.
  FlatCuckooTable() : window_(1), max_kicks_(0), salt1_(0), salt2_(0),
                      rng_(0) {}

  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    bool occupied = false;
  };

  std::size_t base1(std::uint64_t key) const noexcept {
    return mix64(key ^ salt1_) % slots_.size();
  }
  std::size_t base2(std::uint64_t key) const noexcept {
    return mix64(key ^ salt2_) % slots_.size();
  }
  std::size_t wrap(std::size_t base, std::size_t offset) const noexcept {
    const std::size_t p = base + offset;
    return p < slots_.size() ? p : p - slots_.size();
  }

  /// Returns the 2*W candidate slot indices of `key` (stack buffer; the
  /// probe path never allocates).
  CandidateSet candidates(std::uint64_t key) const noexcept;

  std::vector<Slot> slots_;
  std::size_t window_;
  std::size_t max_kicks_;
  std::uint64_t salt1_;
  std::uint64_t salt2_;
  std::size_t size_ = 0;
  CuckooStats stats_;
  util::Rng rng_;
};

}  // namespace fast::hash
