// SemanticAggregator adapters: the two SA backends of the pipeline, both
// producing per-table bucket keys for the same group store.
//
//  - PStableAggregator: the paper's p-stable (L2) LSH over the Bloom
//    bit-vector, with adjacent-bucket multi-probe (§III-C2, Definition 1).
//    Key derivation runs the sparse-gather kernel
//    (PStableLsh::bucket_coords_sparse): O(nnz*L*M) over set bits only,
//    bit-exact with the dense projection it replaces. Simulated costs stay
//    paper-faithful (dense L*M*dim flops).
//  - MinHashAggregator: MinHash banding over the sparse set-bit list, whose
//    collision probability is the signatures' Jaccard similarity (the
//    default on this repo's synthetic features; DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "core/pipeline/semantic_aggregator.hpp"
#include "hash/minhash.hpp"
#include "hash/pstable_lsh.hpp"

namespace fast::hash {

class PStableAggregator final : public core::pipeline::SemanticAggregator {
 public:
  /// `probe_depth` adjacent buckets are probed per table on queries (0
  /// disables); `input_scale` premultiplies the dense input vector (the
  /// paper's R-tuning, adjustable later via set_input_scale).
  PStableAggregator(const LshConfig& config, int probe_depth,
                    double input_scale);

  std::size_t table_count() const noexcept override;
  std::vector<std::uint64_t> keys(
      const SparseSignature& signature,
      std::vector<std::vector<std::uint64_t>>* probes) const override;
  CostDomain cost_domain() const noexcept override {
    return CostDomain::kFlops;
  }
  std::size_t insert_hash_ops(
      const SparseSignature& signature) const noexcept override;
  std::size_t query_hash_ops_per_table(
      const SparseSignature& signature) const noexcept override;
  std::size_t param_bytes() const noexcept override;
  void set_input_scale(double scale) override { input_scale_ = scale; }

 private:
  PStableLsh lsh_;
  int probe_depth_;
  double input_scale_;
};

class MinHashAggregator final : public core::pipeline::SemanticAggregator {
 public:
  /// When `multiprobe` is set, queries additionally probe each band with
  /// one position substituted by its runner-up minhash.
  MinHashAggregator(const MinHashConfig& config, bool multiprobe);

  std::size_t table_count() const noexcept override;
  std::vector<std::uint64_t> keys(
      const SparseSignature& signature,
      std::vector<std::vector<std::uint64_t>>* probes) const override;
  CostDomain cost_domain() const noexcept override {
    return CostDomain::kMixOps;
  }
  std::size_t insert_hash_ops(
      const SparseSignature& signature) const noexcept override;
  std::size_t query_hash_ops_per_table(
      const SparseSignature& signature) const noexcept override;
  std::size_t param_bytes() const noexcept override;

 private:
  MinHasher minhasher_;
  bool multiprobe_;
};

}  // namespace fast::hash
