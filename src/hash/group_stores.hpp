// GroupStore adapters: the CHS backends of the pipeline.
//
//  - FlatCuckooGroupStore: the paper's flat-structured addressing — L
//    windowed cuckoo tables with proactive doubling at 80% load and
//    full-table rehash on placement failure (§III-C3, Fig. 6). Lookups are
//    a fixed 2W independent slot reads.
//  - CompactFlatCuckooGroupStore: the same addressing over the
//    fingerprint-compressed struct-of-arrays table (DESIGN.md §3h) — 2-byte
//    fingerprint lane scanned first, full keys out-of-line — shrinking the
//    probe working set ~4x while staying bit-identical to flat.
//  - ChainedGroupStore: conventional vertical addressing (bucket chains of
//    unbounded length), the baseline the paper argues against. Kept as a
//    runtime-selectable backend so ablations measure the probe-cost gap
//    without bench-only forks of the pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/pipeline/group_store.hpp"
#include "hash/compact_flat_cuckoo_table.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "hash/lsh_table_chained.hpp"

namespace fast::hash {

/// Shared windowed-cuckoo GroupStore machinery: per-table salted seeds, the
/// append-only rebuild log, proactive growth, and the rehash loop are
/// identical across the full-key and fingerprint-compressed tables; only
/// the slot layout (TableT) differs. The flat instantiation's serialized
/// bytes are unchanged from the pre-template FlatCuckooGroupStore.
template <typename TableT>
class WindowedCuckooGroupStore : public core::pipeline::GroupStore {
 public:
  /// `tables` cuckoo tables derived from `base` with per-table salted seeds.
  WindowedCuckooGroupStore(const FlatCuckooConfig& base, std::size_t tables);

  std::size_t table_count() const noexcept override {
    return tables_.size();
  }
  std::optional<std::uint64_t> find(
      std::size_t t, std::uint64_t key, std::size_t* probes,
      ProbeProfile* profile) const override;
  std::size_t place(std::size_t t, std::uint64_t key,
                    std::uint64_t group) override;
  void erase_key(std::size_t t, std::uint64_t key) override;
  std::size_t lookup_cost_probes(std::size_t t) const noexcept override;
  std::size_t store_bytes() const noexcept override;
  CuckooStats stats() const noexcept override;
  void serialize(util::ByteWriter& out) const override;
  bool deserialize(util::ByteReader& in) override;

 private:
  struct Table {
    TableT cuckoo;
    /// Append-only (key -> group) log enabling rebuild on rehash.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
    std::uint64_t seed;
  };

  /// Doubles a table's capacity when its load factor crosses the growth
  /// threshold (amortized O(1) insert despite fixed-size tables).
  void maybe_grow(std::size_t t);

  FlatCuckooConfig base_;
  std::vector<Table> tables_;
  /// Find-path fingerprint false hits. find() is const and runs under
  /// shared locks, so the tally lives here as a relaxed atomic instead of
  /// in the (unsynchronized) per-table stats.
  mutable std::atomic<std::uint64_t> find_false_hits_{0};
};

extern template class WindowedCuckooGroupStore<FlatCuckooTable>;
extern template class WindowedCuckooGroupStore<CompactFlatCuckooTable>;

class FlatCuckooGroupStore final
    : public WindowedCuckooGroupStore<FlatCuckooTable> {
 public:
  using WindowedCuckooGroupStore::WindowedCuckooGroupStore;
};

class CompactFlatCuckooGroupStore final
    : public WindowedCuckooGroupStore<CompactFlatCuckooTable> {
 public:
  using WindowedCuckooGroupStore::WindowedCuckooGroupStore;
};

class ChainedGroupStore final : public core::pipeline::GroupStore {
 public:
  /// `tables` chained tables of `buckets` chain heads each.
  ChainedGroupStore(std::size_t buckets, std::uint64_t seed,
                    std::size_t tables);

  std::size_t table_count() const noexcept override {
    return tables_.size();
  }
  std::optional<std::uint64_t> find(
      std::size_t t, std::uint64_t key, std::size_t* probes,
      ProbeProfile* profile) const override;
  std::size_t place(std::size_t t, std::uint64_t key,
                    std::uint64_t group) override;
  void erase_key(std::size_t t, std::uint64_t key) override;
  std::size_t lookup_cost_probes(std::size_t t) const noexcept override;
  std::size_t store_bytes() const noexcept override;
  CuckooStats stats() const noexcept override;
  void serialize(util::ByteWriter& out) const override;
  bool deserialize(util::ByteReader& in) override;

 private:
  std::vector<LshTableChained> tables_;
};

}  // namespace fast::hash
