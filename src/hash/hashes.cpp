#include "hash/hashes.hpp"

#include <cstring>

namespace fast::hash {

namespace {

inline std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

inline std::uint64_t load64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Hash128 murmur3_128(const void* data, std::size_t len,
                    std::uint64_t seed) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  const std::size_t nblocks = len / 16;

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;
  constexpr std::uint64_t c1 = 0x87c37b91114253d5ULL;
  constexpr std::uint64_t c2 = 0x4cf5ad432745937fULL;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = load64(bytes + i * 16);
    std::uint64_t k2 = load64(bytes + i * 16 + 8);

    k1 *= c1;
    k1 = rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;

    k2 *= c2;
    k2 = rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  const std::uint8_t* tail = bytes + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= static_cast<std::uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<std::uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<std::uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<std::uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<std::uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<std::uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<std::uint64_t>(tail[8]);
      k2 *= c2;
      k2 = rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<std::uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<std::uint64_t>(tail[0]);
      k1 *= c1;
      k1 = rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    default:
      break;
  }

  h1 ^= static_cast<std::uint64_t>(len);
  h2 ^= static_cast<std::uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

std::uint64_t fnv1a_64(const void* data, std::size_t len) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace fast::hash
