// Counting Bloom filter: 4-bit saturating counters instead of single bits,
// which adds deletion support. FAST's storage layer uses it to keep image
// signatures removable (e.g., retention-window expiry of uploaded photos)
// without rebuilding per-image summaries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hash/hashes.hpp"

namespace fast::hash {

class CountingBloomFilter {
 public:
  CountingBloomFilter(std::size_t counters, std::size_t k,
                      std::uint64_t seed = 0x5107);

  std::size_t counter_count() const noexcept { return counters_; }
  std::size_t hash_count() const noexcept { return k_; }

  void insert(const void* data, std::size_t len);
  void insert_u64(std::uint64_t key) { insert(&key, sizeof(key)); }

  /// Removes one occurrence. Removing a key that was never inserted is a
  /// precondition violation of the abstraction and may corrupt other keys
  /// (standard counting-Bloom caveat); saturated counters are never
  /// decremented to avoid the worst of it.
  void remove(const void* data, std::size_t len);
  void remove_u64(std::uint64_t key) { remove(&key, sizeof(key)); }

  bool maybe_contains(const void* data, std::size_t len) const;
  bool maybe_contains_u64(std::uint64_t key) const {
    return maybe_contains(&key, sizeof(key));
  }

  std::size_t inserted_count() const noexcept { return inserted_; }

  /// Number of counters that have ever saturated (diagnostic: a high value
  /// means the filter is undersized and deletions are unreliable).
  std::size_t saturation_count() const noexcept { return saturated_; }

 private:
  static constexpr std::uint8_t kMax = 15;  // 4-bit counters

  std::uint8_t get(std::size_t i) const noexcept {
    const std::uint8_t byte = cells_[i >> 1];
    return (i & 1) ? (byte >> 4) : (byte & 0x0F);
  }
  void set(std::size_t i, std::uint8_t v) noexcept {
    std::uint8_t& byte = cells_[i >> 1];
    if (i & 1) {
      byte = static_cast<std::uint8_t>((byte & 0x0F) | (v << 4));
    } else {
      byte = static_cast<std::uint8_t>((byte & 0xF0) | v);
    }
  }

  std::size_t counters_;
  std::size_t k_;
  std::uint64_t seed_;
  std::size_t inserted_ = 0;
  std::size_t saturated_ = 0;
  std::vector<std::uint8_t> cells_;  // two 4-bit counters per byte
};

}  // namespace fast::hash
