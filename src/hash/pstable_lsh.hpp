// p-stable Locality-Sensitive Hashing (Datar et al. 2004; the paper's SA
// module, Definition 1).
//
// Each elementary hash is h_{a,b}(v) = floor((a·v + b) / w) with `a` a
// Gaussian (2-stable, L2) random vector and b ~ U[0, w). A table hash g
// concatenates M elementary hashes; L independent tables are queried and
// their candidate sets unioned. The paper's configuration is L = 7, M = 10,
// w (omega) = 0.85, with Bloom bit-vectors as inputs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace fast::hash {

struct LshConfig {
  std::size_t dim = 256;   ///< input dimensionality (Bloom bits)
  std::size_t tables = 7;  ///< L: independent hash tables
  std::size_t hashes_per_table = 10;  ///< M: concatenated hashes per table
  double omega = 0.85;     ///< w: quantization width of each hash
  std::uint64_t seed = 0x15b;
};

/// The M-dimensional integer bucket coordinates of a vector in one table.
using BucketCoords = std::vector<std::int32_t>;

class PStableLsh {
 public:
  explicit PStableLsh(const LshConfig& config);

  const LshConfig& config() const noexcept { return config_; }

  /// Elementary hash value for table t, hash j.
  std::int32_t hash_one(std::size_t t, std::size_t j,
                        std::span<const float> v) const;

  /// Bucket coordinates of `v` in table `t` (length M).
  BucketCoords bucket_coords(std::size_t t, std::span<const float> v) const;

  /// Collapses coordinates into a 64-bit bucket key for table `t`.
  /// Distinct coordinates map to distinct keys with overwhelming
  /// probability (Murmur over the coordinate bytes, table-salted).
  std::uint64_t bucket_key(std::size_t t, const BucketCoords& coords) const;

  /// Convenience: keys of `v` across all L tables.
  std::vector<std::uint64_t> all_keys(std::span<const float> v) const;

  /// Theoretical collision probability of a single elementary hash for two
  /// points at L2 distance `c` (Datar et al., eq. for the Gaussian family).
  static double collision_probability(double c, double omega);

 private:
  LshConfig config_;
  // a-vectors laid out as [t][j][dim], flattened; b offsets as [t][j].
  std::vector<float> a_;
  std::vector<float> b_;
};

}  // namespace fast::hash
