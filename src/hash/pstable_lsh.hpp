// p-stable Locality-Sensitive Hashing (Datar et al. 2004; the paper's SA
// module, Definition 1).
//
// Each elementary hash is h_{a,b}(v) = floor((a·v + b) / w) with `a` a
// Gaussian (2-stable, L2) random vector and b ~ U[0, w). A table hash g
// concatenates M elementary hashes; L independent tables are queried and
// their candidate sets unioned. The paper's configuration is L = 7, M = 10,
// w (omega) = 0.85, with Bloom bit-vectors as inputs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace fast::hash {

struct LshConfig {
  std::size_t dim = 256;   ///< input dimensionality (Bloom bits)
  std::size_t tables = 7;  ///< L: independent hash tables
  std::size_t hashes_per_table = 10;  ///< M: concatenated hashes per table
  double omega = 0.85;     ///< w: quantization width of each hash
  std::uint64_t seed = 0x15b;
};

/// The M-dimensional integer bucket coordinates of a vector in one table.
using BucketCoords = std::vector<std::int32_t>;

/// Reusable scratch for the sparse projection path: accumulators and the
/// coordinate block for all L*M elementary hashes. Hold one per thread and
/// pass it to bucket_coords_sparse / all_keys_sparse so batch inserts and
/// queries allocate nothing per signature after warm-up.
struct SparseProjectionScratch {
  std::vector<double> acc;          // L*M running dot products
  std::vector<std::int32_t> coords; // L*M coordinates, laid out [t][j]
  std::vector<std::uint64_t> keys;  // L keys (all_keys_sparse only)
};

class PStableLsh {
 public:
  explicit PStableLsh(const LshConfig& config);

  const LshConfig& config() const noexcept { return config_; }

  /// Elementary hash value for table t, hash j.
  std::int32_t hash_one(std::size_t t, std::size_t j,
                        std::span<const float> v) const;

  /// Bucket coordinates of `v` in table `t` (length M).
  BucketCoords bucket_coords(std::size_t t, std::span<const float> v) const;

  /// Bucket coordinates of a sparse 0/1 input across ALL tables in one
  /// pass, exploiting that the dense vector is fully described by its set
  /// bit positions and one uniform value `scale`. Each set bit `d`
  /// contributes one unit-stride AXPY over the transposed coefficient row
  /// a_t_[d], so the cost is O(nnz * L * M) instead of the dense path's
  /// O(dim * L * M) — with SIMD-friendly contiguous access.
  ///
  /// Bit-exact with the dense path: terms are accumulated in double in the
  /// same ascending-d order, and the skipped zero terms of the dense loop
  /// add exactly +/-0.0, which never changes a double accumulation.
  ///
  /// `bits` must be sorted ascending with every position < dim (the
  /// SparseSignature invariant). The returned span (length L*M, laid out
  /// [t][j]) aliases `scratch.coords` and is valid until the next call
  /// using the same scratch.
  std::span<const std::int32_t> bucket_coords_sparse(
      std::span<const std::uint32_t> bits, float scale,
      SparseProjectionScratch& scratch) const;

  /// Collapses coordinates into a 64-bit bucket key for table `t`.
  /// Distinct coordinates map to distinct keys with overwhelming
  /// probability (Murmur over the coordinate bytes, table-salted).
  std::uint64_t bucket_key(std::size_t t, const BucketCoords& coords) const;

  /// Span overload of bucket_key (same bytes, same key): accepts one
  /// table's M-coordinate block of bucket_coords_sparse output.
  std::uint64_t bucket_key(std::size_t t,
                           std::span<const std::int32_t> coords) const;

  /// Convenience: keys of `v` across all L tables.
  std::vector<std::uint64_t> all_keys(std::span<const float> v) const;

  /// Sparse counterpart of all_keys: identical keys for the 0/1 vector with
  /// `bits` set and value `scale`. The returned span aliases `scratch.keys`.
  std::span<const std::uint64_t> all_keys_sparse(
      std::span<const std::uint32_t> bits, float scale,
      SparseProjectionScratch& scratch) const;

  /// Theoretical collision probability of a single elementary hash for two
  /// points at L2 distance `c` (Datar et al., eq. for the Gaussian family).
  static double collision_probability(double c, double omega);

 private:
  LshConfig config_;
  // a-vectors laid out as [t][j][dim], flattened; b offsets as [t][j].
  std::vector<float> a_;
  std::vector<float> b_;
  // Transposed copy of a_, laid out as [d][t*M + j]: one contiguous row of
  // all L*M coefficients per bit position, so the sparse path gathers each
  // set bit's contribution with unit stride. Costs one extra L*M*dim float
  // array (same size as a_; see DESIGN.md §3c).
  std::vector<float> a_t_;
};

}  // namespace fast::hash
