// Non-cryptographic hash primitives used across the Bloom, LSH and cuckoo
// layers: MurmurHash3 x64 128-bit (public domain, Austin Appleby), FNV-1a,
// and the Kirsch–Mitzenmacher double-hashing trick for generating the k
// Bloom probe positions from one 128-bit hash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace fast::hash {

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// MurmurHash3 x64 variant producing 128 bits.
Hash128 murmur3_128(const void* data, std::size_t len,
                    std::uint64_t seed = 0) noexcept;

/// Convenience overloads.
inline Hash128 murmur3_128(std::string_view s, std::uint64_t seed = 0) noexcept {
  return murmur3_128(s.data(), s.size(), seed);
}
inline Hash128 murmur3_128(std::span<const float> v,
                           std::uint64_t seed = 0) noexcept {
  return murmur3_128(v.data(), v.size() * sizeof(float), seed);
}

/// 64-bit FNV-1a (used where a tiny dependency-free mix suffices).
std::uint64_t fnv1a_64(const void* data, std::size_t len) noexcept;

/// Finalization mix of SplitMix64: a strong 64 -> 64 bit scrambler for
/// integer keys (bucket ids, image ids).
std::uint64_t mix64(std::uint64_t x) noexcept;

/// The i-th derived hash g_i = lo + i * hi (Kirsch–Mitzenmacher): k
/// independent-enough probe values from a single 128-bit hash.
inline std::uint64_t derived_hash(const Hash128& h, std::size_t i) noexcept {
  return h.lo + static_cast<std::uint64_t>(i) * h.hi;
}

}  // namespace fast::hash
