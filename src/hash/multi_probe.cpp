#include "hash/multi_probe.hpp"

#include "util/check.hpp"

namespace fast::hash {

std::vector<BucketCoords> probe_sequence(const BucketCoords& home, int depth) {
  FAST_CHECK(depth >= 0 && depth <= 2);
  std::vector<BucketCoords> probes;
  if (depth == 0) return probes;
  const std::size_t m = home.size();
  probes.reserve(probe_count(m, depth));

  for (std::size_t i = 0; i < m; ++i) {
    for (int delta : {-1, +1}) {
      BucketCoords p = home;
      p[i] += delta;
      probes.push_back(std::move(p));
    }
  }
  if (depth == 2) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        for (int di : {-1, +1}) {
          for (int dj : {-1, +1}) {
            BucketCoords p = home;
            p[i] += di;
            p[j] += dj;
            probes.push_back(std::move(p));
          }
        }
      }
    }
  }
  return probes;
}

std::size_t probe_count(std::size_t m, int depth) {
  switch (depth) {
    case 0: return 0;
    case 1: return 2 * m;
    case 2: return 2 * m + 2 * m * (m - 1);
    default: FAST_CHECK_MSG(false, "unsupported probe depth"); return 0;
  }
}

}  // namespace fast::hash
