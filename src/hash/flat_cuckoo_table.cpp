#include "hash/flat_cuckoo_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fast::hash {

FlatCuckooTable::FlatCuckooTable(const FlatCuckooConfig& config)
    : slots_(std::max<std::size_t>(config.capacity, 4 * config.window)),
      window_(std::max<std::size_t>(config.window, 1)),
      max_kicks_(config.max_kicks),
      salt1_(mix64(config.seed ^ 0x517cc1b727220a95ULL)),
      salt2_(mix64(config.seed ^ 0x2545f4914f6cdd1dULL)),
      rng_(config.seed ^ 0xf1a7ULL) {
  FAST_CHECK(config.window >= 1);
  FAST_CHECK(config.window <= kMaxCuckooWindow);
}

CandidateSet FlatCuckooTable::candidates(std::uint64_t key) const noexcept {
  CandidateSet out;
  const std::size_t b1 = base1(key);
  const std::size_t b2 = base2(key);
  for (std::size_t w = 0; w < window_; ++w) out.slot[out.count++] = wrap(b1, w);
  for (std::size_t w = 0; w < window_; ++w) out.slot[out.count++] = wrap(b2, w);
  return out;
}

bool FlatCuckooTable::insert(std::uint64_t key, std::uint64_t value) {
  CandidateSet cand = candidates(key);

  // Overwrite in place if present; otherwise take the first free slot.
  std::size_t free_slot = slots_.size();
  for (std::size_t p : cand) {
    if (slots_[p].occupied && slots_[p].key == key) {
      slots_[p].value = value;
      return true;
    }
    if (!slots_[p].occupied && free_slot == slots_.size()) free_slot = p;
  }
  if (free_slot != slots_.size()) {
    slots_[free_slot] = Slot{key, value, true};
    ++size_;
    ++stats_.inserts;
    return true;
  }

  // All 2W candidates full: displacement chain. Kick a random candidate;
  // the displaced item retries within its own candidate set. Swaps are
  // logged so a failed insert rolls back exactly.
  std::uint64_t cur_key = key;
  std::uint64_t cur_value = value;
  std::vector<std::size_t> chain;
  chain.reserve(std::min<std::size_t>(max_kicks_, 64));
  std::size_t kicks = 0;
  while (kicks < max_kicks_) {
    // Choose a victim slot among the current item's candidates.
    const std::size_t victim =
        cand[rng_.uniform_u64(cand.size())];
    std::swap(cur_key, slots_[victim].key);
    std::swap(cur_value, slots_[victim].value);
    chain.push_back(victim);
    ++kicks;

    // The displaced item looks for a free slot among ITS candidates.
    cand = candidates(cur_key);
    std::size_t free_p = slots_.size();
    for (std::size_t p : cand) {
      if (!slots_[p].occupied) {
        free_p = p;
        break;
      }
    }
    if (free_p != slots_.size()) {
      slots_[free_p] = Slot{cur_key, cur_value, true};
      ++size_;
      ++stats_.inserts;
      stats_.total_kicks += kicks;
      stats_.max_kick_chain = std::max(stats_.max_kick_chain, kicks);
      return true;
    }
    // No free slot: loop and kick again from the displaced item's set.
  }

  // Roll back all swaps in reverse; the table returns to its exact
  // pre-insert state and the new key is rejected (rehash event).
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    std::swap(cur_key, slots_[*it].key);
    std::swap(cur_value, slots_[*it].value);
  }
  ++stats_.failures;
  stats_.total_kicks += max_kicks_;
  stats_.max_kick_chain = std::max(stats_.max_kick_chain, max_kicks_);
  return false;
}

std::optional<std::uint64_t> FlatCuckooTable::find(
    std::uint64_t key, ProbeProfile* profile) const noexcept {
  // AoS layout: every examined candidate drags a whole padded Slot through
  // the cache, whether or not the key matches.
  const std::size_t b1 = base1(key);
  for (std::size_t w = 0; w < window_; ++w) {
    const Slot& s = slots_[wrap(b1, w)];
    if (profile != nullptr) {
      ++profile->slots_scanned;
      profile->bytes_touched += sizeof(Slot);
    }
    if (s.occupied && s.key == key) return s.value;
  }
  const std::size_t b2 = base2(key);
  for (std::size_t w = 0; w < window_; ++w) {
    const Slot& s = slots_[wrap(b2, w)];
    if (profile != nullptr) {
      ++profile->slots_scanned;
      profile->bytes_touched += sizeof(Slot);
    }
    if (s.occupied && s.key == key) return s.value;
  }
  return std::nullopt;
}

void FlatCuckooTable::serialize(util::ByteWriter& out) const {
  out.u64(slots_.size());
  out.u64(window_);
  out.u64(max_kicks_);
  out.u64(salt1_);
  out.u64(salt2_);
  out.u64(size_);
  out.u64(stats_.inserts);
  out.u64(stats_.failures);
  out.u64(stats_.total_kicks);
  out.u64(stats_.max_kick_chain);
  for (const Slot& slot : slots_) {
    out.u64(slot.key);
    out.u64(slot.value);
    out.u8(slot.occupied ? 1 : 0);
  }
}

std::optional<FlatCuckooTable> FlatCuckooTable::deserialize(
    util::ByteReader& in) {
  FlatCuckooTable table;
  const std::uint64_t capacity = in.u64();
  table.window_ = in.u64();
  table.max_kicks_ = in.u64();
  table.salt1_ = in.u64();
  table.salt2_ = in.u64();
  table.size_ = in.u64();
  table.stats_.inserts = in.u64();
  table.stats_.failures = in.u64();
  table.stats_.total_kicks = in.u64();
  table.stats_.max_kick_chain = in.u64();
  if (!in.ok() || capacity == 0 || table.window_ == 0 ||
      capacity > in.remaining() / 17) {  // 17 bytes per serialized slot
    return std::nullopt;
  }
  table.slots_.resize(capacity);
  std::size_t occupied = 0;
  for (Slot& slot : table.slots_) {
    slot.key = in.u64();
    slot.value = in.u64();
    slot.occupied = in.u8() != 0;
    if (slot.occupied) ++occupied;
  }
  if (!in.ok() || occupied != table.size_) return std::nullopt;
  // Fresh deterministic kick RNG; see serialize() for why this is sound.
  table.rng_.reseed(table.salt1_ ^ 0xf1a7ULL);
  return table;
}

bool FlatCuckooTable::erase(std::uint64_t key) noexcept {
  const std::size_t b1 = base1(key);
  for (std::size_t w = 0; w < window_; ++w) {
    Slot& s = slots_[wrap(b1, w)];
    if (s.occupied && s.key == key) {
      s = Slot{};
      --size_;
      return true;
    }
  }
  const std::size_t b2 = base2(key);
  for (std::size_t w = 0; w < window_; ++w) {
    Slot& s = slots_[wrap(b2, w)];
    if (s.occupied && s.key == key) {
      s = Slot{};
      --size_;
      return true;
    }
  }
  return false;
}

}  // namespace fast::hash
