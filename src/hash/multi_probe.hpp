// Adjacent-bucket probing (the paper's §III-C2 false-negative mitigation,
// in the spirit of multi-probe LSH, Lv et al. 2007).
//
// Similar vectors that straddle a quantization boundary of one elementary
// hash land in buckets whose M-coordinate tuples differ by ±1 in a single
// coordinate. Probing those adjacent buckets in addition to the home bucket
// recovers most LSH false negatives at constant extra cost. The probe
// sequence enumerates single-coordinate ±1 perturbations (2M probes per
// table at depth 1) and optionally two-coordinate perturbations at depth 2.
#pragma once

#include <cstddef>
#include <vector>

#include "hash/pstable_lsh.hpp"

namespace fast::hash {

/// Generates the perturbed coordinate tuples for a home bucket.
/// depth 0 -> {} (home bucket only, caller already has it);
/// depth 1 -> 2M single-coordinate perturbations;
/// depth 2 -> additionally all two-coordinate (±1, ±1) perturbations.
std::vector<BucketCoords> probe_sequence(const BucketCoords& home,
                                         int depth);

/// Number of probes (excluding home) for a given M and depth.
std::size_t probe_count(std::size_t m, int depth);

}  // namespace fast::hash
