// Conventional LSH bucket storage with chaining — the "vertical addressing"
// the paper argues against (§III-C3).
//
// Buckets are linked lists of unbounded length, so a probe's cost is
// data-dependent and unpredictable under skew; FAST replaces this with the
// flat cuckoo table. We keep the chained variant as the baseline for the
// ablation benches and to measure probe-length distributions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hash/hashes.hpp"
#include "util/codec.hpp"

namespace fast::hash {

class LshTableChained {
 public:
  /// `buckets` chain heads; values are appended to their bucket's chain.
  explicit LshTableChained(std::size_t buckets, std::uint64_t seed = 0xc4a1);

  std::size_t bucket_count() const noexcept { return heads_.size(); }
  std::size_t size() const noexcept { return size_; }

  /// Appends `value` under `key`. Never fails (chains grow unboundedly).
  void insert(std::uint64_t key, std::uint64_t value);

  /// Unlinks the first node stored under `key`; returns false when absent.
  /// The node's arena slot is abandoned (index-linked storage), so erase
  /// frees no memory — acceptable for the baseline's expiry path.
  bool erase(std::uint64_t key) noexcept;

  /// Returns all values stored under `key`, walking the chain. The probe
  /// cost (number of nodes traversed, including non-matching collisions) is
  /// written to `probes` when non-null — the quantity FAST's flat
  /// addressing bounds and chaining does not.
  std::vector<std::uint64_t> find(std::uint64_t key,
                                  std::size_t* probes = nullptr) const;

  /// Length of the chain the key maps to.
  std::size_t chain_length(std::uint64_t key) const noexcept;

  /// Longest chain in the table (load-imbalance diagnostic).
  std::size_t max_chain_length() const noexcept;

  /// Verbatim dump — chain heads, node arena (including abandoned nodes),
  /// salt — so a deserialized table is bit-identical, probe costs included.
  void serialize(util::ByteWriter& out) const;

  /// Inverse of serialize(). Returns nullopt on truncated input or node
  /// links pointing outside the arena.
  static std::optional<LshTableChained> deserialize(util::ByteReader& in);

 private:
  LshTableChained() : salt_(0) {}  ///< shell for deserialize() to fill

  struct Node {
    std::uint64_t key;
    std::uint64_t value;
    std::int64_t next;  // index into nodes_, -1 = end
  };

  std::size_t bucket_of(std::uint64_t key) const noexcept {
    return mix64(key ^ salt_) % heads_.size();
  }

  std::vector<std::int64_t> heads_;  // -1 = empty
  std::vector<Node> nodes_;
  std::uint64_t salt_;
  std::size_t size_ = 0;
};

}  // namespace fast::hash
