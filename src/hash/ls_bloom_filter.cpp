#include "hash/ls_bloom_filter.hpp"

#include "util/check.hpp"
#include "util/vecmath.hpp"

namespace fast::hash {

LocalitySensitiveBloomFilter::LocalitySensitiveBloomFilter(
    const LsbfConfig& config)
    : lsh_(config.lsh),
      bits_((config.bits + 63) / 64 * 64),
      threshold_(config.threshold == 0 ? config.lsh.tables : config.threshold),
      words_(bits_ / 64, 0) {
  FAST_CHECK(config.bits > 0);
  FAST_CHECK(threshold_ >= 1 && threshold_ <= config.lsh.tables);
}

void LocalitySensitiveBloomFilter::insert(std::span<const float> v) {
  for (std::uint64_t key : lsh_.all_keys(v)) {
    const std::size_t bit = bit_of_key(key);
    words_[bit >> 6] |= (1ULL << (bit & 63));
  }
  ++inserted_;
}

bool LocalitySensitiveBloomFilter::maybe_near(std::span<const float> v) const {
  std::size_t hits = 0;
  const auto keys = lsh_.all_keys(v);
  for (std::uint64_t key : keys) {
    const std::size_t bit = bit_of_key(key);
    if ((words_[bit >> 6] >> (bit & 63)) & 1ULL) ++hits;
  }
  return hits >= threshold_;
}

double LocalitySensitiveBloomFilter::near_score(
    std::span<const float> v) const {
  std::size_t hits = 0;
  const auto keys = lsh_.all_keys(v);
  for (std::uint64_t key : keys) {
    const std::size_t bit = bit_of_key(key);
    if ((words_[bit >> 6] >> (bit & 63)) & 1ULL) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(keys.size());
}

std::size_t LocalitySensitiveBloomFilter::set_bit_count() const noexcept {
  return util::popcount(words_);
}

}  // namespace fast::hash
