// Standard two-choice cuckoo hash table (Pagh & Rodler 2001; the paper's
// ref [12]) mapping 64-bit keys to 64-bit values.
//
// Every key has exactly two candidate slots. Insertion displaces ("kicks")
// occupants to their alternate slot, up to a kick budget; exhausting the
// budget is an insertion failure, which in a real deployment forces a
// rehash — the event whose probability Fig. 6 of the paper measures.
// Displacements only ever move an item between its own two candidate slots,
// so lookups of previously inserted keys remain correct even after a failed
// insert (only the failed key itself is not stored).
#pragma once

#include <cstdint>
#include <optional>

#include <vector>

#include "hash/hashes.hpp"
#include "util/rng.hpp"

namespace fast::hash {

struct CuckooStats {
  std::size_t inserts = 0;        ///< successful insertions
  std::size_t failures = 0;       ///< insertions that exhausted the kick budget
  std::size_t total_kicks = 0;    ///< displacements across all insertions
  std::size_t max_kick_chain = 0; ///< longest single displacement chain
  /// Occupancy of the backing store (filled by the GroupStore aggregates;
  /// a bare table's stats() leaves them 0 — use size()/capacity() there).
  std::size_t occupied_slots = 0; ///< entries currently stored
  std::size_t capacity_slots = 0; ///< total slots (chain heads for chained)
  /// Fingerprint matches whose out-of-line full-key verification failed
  /// (compact backend only; always 0 for full-key tables).
  std::size_t fingerprint_false_hits = 0;
};

/// Roofline accounting for a single probe-path operation, filled by the
/// table when the caller passes one (never allocated on the probe path).
/// `bytes_touched` models the memory the probe loop actually reads: whole
/// slots for AoS layouts, fingerprint lanes plus verified side entries for
/// the compact layout — the quantity the fingerprint compression shrinks.
struct ProbeProfile {
  std::size_t slots_scanned = 0;          ///< candidate slots examined
  std::size_t bytes_touched = 0;          ///< probe working-set bytes read
  std::size_t fingerprint_false_hits = 0; ///< fp matched, full key did not

  void merge(const ProbeProfile& o) noexcept {
    slots_scanned += o.slots_scanned;
    bytes_touched += o.bytes_touched;
    fingerprint_false_hits += o.fingerprint_false_hits;
  }
};

class CuckooTable {
 public:
  /// `capacity` slots (rounded up to at least 4), `max_kicks` displacement
  /// budget per insertion.
  explicit CuckooTable(std::size_t capacity, std::uint64_t seed = 0xc0c0,
                       std::size_t max_kicks = 500);

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t size() const noexcept { return size_; }
  double load_factor() const noexcept {
    return static_cast<double>(size_) / static_cast<double>(slots_.size());
  }
  const CuckooStats& stats() const noexcept { return stats_; }

  /// Inserts key -> value. Returns false if the displacement budget was
  /// exhausted (the key is NOT stored; previously stored keys are intact).
  /// Inserting a key that is already present overwrites its value.
  bool insert(std::uint64_t key, std::uint64_t value);

  /// Probes the key's two candidate slots. O(1): at most 2 probes.
  std::optional<std::uint64_t> find(std::uint64_t key) const noexcept;

  bool contains(std::uint64_t key) const noexcept {
    return find(key).has_value();
  }

  /// Removes the key if present; returns whether it was found.
  bool erase(std::uint64_t key) noexcept;

  /// Number of slot probes a lookup performs (for the flat-addressing
  /// latency accounting): always 2 for the standard table.
  std::size_t probes_per_lookup() const noexcept { return 2; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    bool occupied = false;
  };

  std::size_t pos1(std::uint64_t key) const noexcept {
    return mix64(key ^ salt1_) % slots_.size();
  }
  std::size_t pos2(std::uint64_t key) const noexcept {
    return mix64(key ^ salt2_) % slots_.size();
  }

  std::vector<Slot> slots_;
  std::uint64_t salt1_;
  std::uint64_t salt2_;
  std::size_t max_kicks_;
  std::size_t size_ = 0;
  CuckooStats stats_;
  util::Rng rng_;
};

}  // namespace fast::hash
