#include "hash/lsh_table_chained.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fast::hash {

LshTableChained::LshTableChained(std::size_t buckets, std::uint64_t seed)
    : heads_(std::max<std::size_t>(buckets, 1), -1), salt_(mix64(seed)) {}

void LshTableChained::insert(std::uint64_t key, std::uint64_t value) {
  const std::size_t b = bucket_of(key);
  nodes_.push_back(Node{key, value, heads_[b]});
  heads_[b] = static_cast<std::int64_t>(nodes_.size() - 1);
  ++size_;
}

bool LshTableChained::erase(std::uint64_t key) noexcept {
  const std::size_t b = bucket_of(key);
  std::int64_t prev = -1;
  for (std::int64_t i = heads_[b]; i >= 0;
       prev = i, i = nodes_[static_cast<std::size_t>(i)].next) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.key != key) continue;
    if (prev < 0) {
      heads_[b] = n.next;
    } else {
      nodes_[static_cast<std::size_t>(prev)].next = n.next;
    }
    --size_;
    return true;
  }
  return false;
}

std::vector<std::uint64_t> LshTableChained::find(std::uint64_t key,
                                                 std::size_t* probes) const {
  std::vector<std::uint64_t> out;
  std::size_t walked = 0;
  for (std::int64_t i = heads_[bucket_of(key)]; i >= 0;
       i = nodes_[static_cast<std::size_t>(i)].next) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    ++walked;
    if (n.key == key) out.push_back(n.value);
  }
  if (probes != nullptr) *probes = walked;
  return out;
}

std::size_t LshTableChained::chain_length(std::uint64_t key) const noexcept {
  std::size_t len = 0;
  for (std::int64_t i = heads_[bucket_of(key)]; i >= 0;
       i = nodes_[static_cast<std::size_t>(i)].next) {
    ++len;
  }
  return len;
}

std::size_t LshTableChained::max_chain_length() const noexcept {
  std::size_t best = 0;
  for (std::int64_t head : heads_) {
    std::size_t len = 0;
    for (std::int64_t i = head; i >= 0;
         i = nodes_[static_cast<std::size_t>(i)].next) {
      ++len;
    }
    best = std::max(best, len);
  }
  return best;
}

}  // namespace fast::hash
