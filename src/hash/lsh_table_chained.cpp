#include "hash/lsh_table_chained.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fast::hash {

LshTableChained::LshTableChained(std::size_t buckets, std::uint64_t seed)
    : heads_(std::max<std::size_t>(buckets, 1), -1), salt_(mix64(seed)) {}

void LshTableChained::insert(std::uint64_t key, std::uint64_t value) {
  const std::size_t b = bucket_of(key);
  nodes_.push_back(Node{key, value, heads_[b]});
  heads_[b] = static_cast<std::int64_t>(nodes_.size() - 1);
  ++size_;
}

bool LshTableChained::erase(std::uint64_t key) noexcept {
  const std::size_t b = bucket_of(key);
  std::int64_t prev = -1;
  for (std::int64_t i = heads_[b]; i >= 0;
       prev = i, i = nodes_[static_cast<std::size_t>(i)].next) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.key != key) continue;
    if (prev < 0) {
      heads_[b] = n.next;
    } else {
      nodes_[static_cast<std::size_t>(prev)].next = n.next;
    }
    --size_;
    return true;
  }
  return false;
}

std::vector<std::uint64_t> LshTableChained::find(std::uint64_t key,
                                                 std::size_t* probes) const {
  std::vector<std::uint64_t> out;
  std::size_t walked = 0;
  for (std::int64_t i = heads_[bucket_of(key)]; i >= 0;
       i = nodes_[static_cast<std::size_t>(i)].next) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    ++walked;
    if (n.key == key) out.push_back(n.value);
  }
  if (probes != nullptr) *probes = walked;
  return out;
}

std::size_t LshTableChained::chain_length(std::uint64_t key) const noexcept {
  std::size_t len = 0;
  for (std::int64_t i = heads_[bucket_of(key)]; i >= 0;
       i = nodes_[static_cast<std::size_t>(i)].next) {
    ++len;
  }
  return len;
}

std::size_t LshTableChained::max_chain_length() const noexcept {
  std::size_t best = 0;
  for (std::int64_t head : heads_) {
    std::size_t len = 0;
    for (std::int64_t i = head; i >= 0;
         i = nodes_[static_cast<std::size_t>(i)].next) {
      ++len;
    }
    best = std::max(best, len);
  }
  return best;
}

void LshTableChained::serialize(util::ByteWriter& out) const {
  out.u64(heads_.size());
  out.u64(nodes_.size());
  out.u64(salt_);
  out.u64(size_);
  for (const std::int64_t head : heads_) {
    out.u64(static_cast<std::uint64_t>(head));
  }
  for (const Node& node : nodes_) {
    out.u64(node.key);
    out.u64(node.value);
    out.u64(static_cast<std::uint64_t>(node.next));
  }
}

std::optional<LshTableChained> LshTableChained::deserialize(
    util::ByteReader& in) {
  LshTableChained table;
  const std::uint64_t buckets = in.u64();
  const std::uint64_t nodes = in.u64();
  table.salt_ = in.u64();
  table.size_ = in.u64();
  if (!in.ok() || buckets == 0 ||
      buckets > in.remaining() / 8 ||
      nodes > (in.remaining() - buckets * 8) / 24) {
    return std::nullopt;
  }
  const auto valid_link = [&](std::int64_t link) {
    return link >= -1 && link < static_cast<std::int64_t>(nodes);
  };
  table.heads_.resize(buckets);
  for (std::int64_t& head : table.heads_) {
    head = static_cast<std::int64_t>(in.u64());
    if (!valid_link(head)) return std::nullopt;
  }
  table.nodes_.resize(nodes);
  for (Node& node : table.nodes_) {
    node.key = in.u64();
    node.value = in.u64();
    node.next = static_cast<std::int64_t>(in.u64());
    if (!valid_link(node.next)) return std::nullopt;
  }
  if (!in.ok() || table.size_ > nodes) return std::nullopt;
  return table;
}

}  // namespace fast::hash
