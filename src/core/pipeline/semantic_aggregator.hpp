// Stage 3 of the FAST pipeline (SA): sparse signature -> per-table bucket
// keys (plus optional probe keys for multi-probe recall). An aggregator
// fixes the number of tables the storage stage must maintain and the hash
// cost the simulated platform is charged. Implementations wrap the p-stable
// LSH of the paper (L tables of M concatenated hashes) and the MinHash
// banding alternative; both are pure functions of the signature, so the
// batch path can evaluate them in parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/sparse_signature.hpp"

namespace fast::core::pipeline {

class SemanticAggregator {
 public:
  /// Unit the hash-op counts below are denominated in, mapped to a rate by
  /// the sim::CostModel (keeps the sim layer out of the hash adapters).
  enum class CostDomain { kFlops, kMixOps };

  virtual ~SemanticAggregator() = default;

  /// Number of independent tables (L for p-stable LSH, bands for MinHash).
  virtual std::size_t table_count() const noexcept = 0;

  /// Bucket keys of `signature` across all tables (length table_count()).
  /// When `probes` is non-null it receives, per table, the additional keys
  /// to probe on queries (adjacent buckets / runner-up bands); insert paths
  /// pass nullptr and skip that work.
  virtual std::vector<std::uint64_t> keys(
      const hash::SparseSignature& signature,
      std::vector<std::vector<std::uint64_t>>* probes) const = 0;

  virtual CostDomain cost_domain() const noexcept = 0;

  /// Modeled hash operations to aggregate one signature on insert
  /// (all tables).
  virtual std::size_t insert_hash_ops(
      const hash::SparseSignature& signature) const noexcept = 0;

  /// Modeled hash operations per table on the query path.
  virtual std::size_t query_hash_ops_per_table(
      const hash::SparseSignature& signature) const noexcept = 0;

  /// Bytes of hash parameters held in memory (Table IV accounting).
  virtual std::size_t param_bytes() const noexcept = 0;

  /// Rescales the aggregator's input domain (the paper's R-selection step,
  /// FastIndex::calibrate_scale). Backends without a metric input ignore it.
  virtual void set_input_scale(double /*scale*/) {}
};

}  // namespace fast::core::pipeline
