#include "core/pipeline/factory.hpp"

#include "hash/aggregators.hpp"
#include "hash/group_stores.hpp"
#include "vision/bloom_summarizer.hpp"

namespace fast::core::pipeline {

std::unique_ptr<Summarizer> make_summarizer(const FastConfig& config,
                                            vision::PcaModel pca) {
  vision::BloomSummarizerConfig sc;
  sc.dog = config.dog;
  sc.pca_sift = config.pca_sift;
  sc.max_keypoints = config.max_keypoints;
  sc.bloom_bits = config.bloom_bits;
  sc.bloom_hashes = config.bloom_hashes;
  sc.quantize_group_dims = config.quantize_group_dims;
  sc.quantize_cell = config.quantize_cell;
  sc.spatial_cell_px = config.spatial_cell_px;
  return std::make_unique<vision::BloomSummarizer>(sc, std::move(pca));
}

std::unique_ptr<SemanticAggregator> make_aggregator(const FastConfig& config) {
  if (config.sa_backend == FastConfig::SaBackend::kPStable) {
    return std::make_unique<hash::PStableAggregator>(
        config.lsh, config.probe_depth, config.lsh_input_scale);
  }
  return std::make_unique<hash::MinHashAggregator>(config.minhash,
                                                   config.minhash_multiprobe);
}

std::unique_ptr<GroupStore> make_group_store(const FastConfig& config,
                                             std::size_t tables) {
  if (config.chs_backend == FastConfig::ChsBackend::kChained) {
    return std::make_unique<hash::ChainedGroupStore>(
        config.chained_buckets, config.cuckoo.seed, tables);
  }
  if (config.chs_backend == FastConfig::ChsBackend::kCompactFlatCuckoo) {
    return std::make_unique<hash::CompactFlatCuckooGroupStore>(config.cuckoo,
                                                               tables);
  }
  return std::make_unique<hash::FlatCuckooGroupStore>(config.cuckoo, tables);
}

}  // namespace fast::core::pipeline
