// Stage 4 of the FAST pipeline (CHS): bucket key -> correlation-group
// placement and lookup, one logical table per aggregator table. The paper's
// contribution here is *flat* addressing — a key resolves in a fixed number
// of independent slot reads — implemented by the windowed cuckoo adapter;
// the chained adapter is the conventional vertical-addressing baseline the
// paper argues against (§III-C3), kept runtime-selectable so ablations can
// swap it in without touching the pipeline.
#pragma once

#include <cstdint>
#include <optional>

#include "hash/cuckoo_table.hpp"  // CuckooStats, ProbeProfile
#include "util/codec.hpp"

namespace fast::core::pipeline {

class GroupStore {
 public:
  virtual ~GroupStore() = default;

  /// Number of tables this store maintains (fixed at construction to the
  /// aggregator's table_count()).
  virtual std::size_t table_count() const noexcept = 0;

  /// Looks `key` up in table `t`. When `probes` is non-null it receives the
  /// modeled slot reads the lookup performed (fixed 2W for flat addressing,
  /// chain-walk length for the chained baseline). When `profile` is
  /// non-null it accumulates roofline accounting for the probe (slots
  /// scanned, bytes touched, fingerprint false hits).
  virtual std::optional<std::uint64_t> find(
      std::size_t t, std::uint64_t key, std::size_t* probes = nullptr,
      hash::ProbeProfile* profile = nullptr) const = 0;

  /// Places key -> group into table `t`, growing/rehashing as the backend
  /// requires until the placement succeeds. Returns the number of rehash
  /// events the placement triggered (0 for a clean insert).
  virtual std::size_t place(std::size_t t, std::uint64_t key,
                            std::uint64_t group) = 0;

  /// Drops `key` from table `t` (group expired). No-op when absent.
  virtual void erase_key(std::size_t t, std::uint64_t key) = 0;

  /// Modeled slot reads charged per lookup in table `t` (the quantity flat
  /// addressing bounds to 2W and chaining cannot bound).
  virtual std::size_t lookup_cost_probes(std::size_t t) const noexcept = 0;

  /// In-memory bytes of all tables (Table IV accounting).
  virtual std::size_t store_bytes() const noexcept = 0;

  /// Aggregate insertion/displacement statistics across tables.
  virtual hash::CuckooStats stats() const noexcept = 0;

  /// Verbatim dump of every table into `out` (snapshot section payload).
  /// A store restored from these bytes answers every find() bit-identically
  /// and charges the same probe costs.
  virtual void serialize(util::ByteWriter& out) const = 0;

  /// Restores state serialized by a store of the same backend and table
  /// count into this instance. Returns false (leaving this store in an
  /// unspecified state the caller must discard) on malformed bytes or a
  /// table-count mismatch.
  virtual bool deserialize(util::ByteReader& in) = 0;
};

}  // namespace fast::core::pipeline
