// Stage 1+2 of the FAST pipeline (FE + SM): image -> compact sparse
// signature. The paper treats feature extraction and summarization as one
// boundary — raw pixels go in, a ~40 B membership summary comes out — so the
// pipeline exposes them as a single stage. Implementations are stateless
// with respect to the corpus (const summarize), which is what lets the
// batch execution path fan FE/SM across a thread pool before any index
// lock is taken.
#pragma once

#include "hash/sparse_signature.hpp"
#include "img/image.hpp"

namespace fast::core::pipeline {

class Summarizer {
 public:
  virtual ~Summarizer() = default;

  /// Extracts features from `image` and folds them into a sparse summary.
  /// Must be deterministic and safe to call concurrently.
  virtual hash::SparseSignature summarize(const img::Image& image) const = 0;

  /// Width (bits) of the summaries this stage emits; downstream stages
  /// validate their input geometry against it.
  virtual std::size_t signature_bits() const noexcept = 0;
};

}  // namespace fast::core::pipeline
