// Builds the concrete stage adapters a FastConfig selects. The factory is
// the only place the pipeline names concrete backends; FastIndex itself
// composes whatever stages it is handed, so new FE/SA/CHS implementations
// plug in here (or are injected directly through FastIndex's stage
// constructor) without touching the index.
#pragma once

#include <memory>

#include "core/config.hpp"
#include "core/pipeline/group_store.hpp"
#include "core/pipeline/semantic_aggregator.hpp"
#include "core/pipeline/summarizer.hpp"
#include "vision/pca.hpp"

namespace fast::core::pipeline {

/// FE+SM stage: DoG + PCA-SIFT features folded into a Bloom summary.
std::unique_ptr<Summarizer> make_summarizer(const FastConfig& config,
                                            vision::PcaModel pca);

/// SA stage per config.sa_backend (p-stable LSH or MinHash banding).
std::unique_ptr<SemanticAggregator> make_aggregator(const FastConfig& config);

/// CHS stage per config.chs_backend, sized to the aggregator's `tables`.
std::unique_ptr<GroupStore> make_group_store(const FastConfig& config,
                                             std::size_t tables);

}  // namespace fast::core::pipeline
