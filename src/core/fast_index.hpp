// FastIndex — the paper's primary contribution, assembled end to end:
//
//   FE  (feature extraction)   DoG interest points + PCA-SIFT descriptors
//   SM  (summarization)        per-image Bloom filter over quantized
//                              descriptors, stored sparsely (~40 B/image)
//   SA  (semantic aggregation) p-stable LSH over the Bloom bit-vectors,
//                              multi-probe of adjacent buckets
//   CHS (cuckoo-hash storage)  flat-structured addressing: bucket-key ->
//                              correlation group in a windowed cuckoo table
//
// Queries are O(1): L tables x (1 + 2M adjacent probes) x 2W slot reads,
// all constants, followed by ranking the (small) candidate set by sparse-
// signature Jaccard similarity. Every operation reports simulated platform
// costs (see sim::CostModel) alongside its native execution.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"
#include "hash/bloom_filter.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "hash/pstable_lsh.hpp"
#include "hash/sparse_signature.hpp"
#include "img/image.hpp"
#include "vision/pca.hpp"

namespace fast::core {

class FastIndex {
 public:
  /// `pca` is the PCA-SIFT eigenspace, trained offline on a sample of the
  /// corpus (see vision::train_pca_sift).
  FastIndex(FastConfig config, vision::PcaModel pca);

  const FastConfig& config() const noexcept { return config_; }
  std::size_t size() const noexcept { return signatures_.size(); }
  std::size_t group_count() const noexcept { return groups_.size(); }
  std::size_t rehash_count() const noexcept { return rehashes_; }

  // --- FE + SM ---

  /// Runs feature extraction + Bloom summarization for one image.
  hash::SparseSignature summarize(const img::Image& image) const;

  /// Tunes the LSH input scale from sample queries against a corpus sample
  /// (the paper's R-selection procedure, §IV-A2): the median query-to-
  /// nearest-neighbor distance is mapped to calibrate_target * omega. Must
  /// be called before the first insert; a no-op when either sample is empty.
  void calibrate_scale(std::span<const hash::SparseSignature> sample_queries,
                       std::span<const hash::SparseSignature> corpus_sample);

  // --- Insert path ---

  /// Full pipeline insert: extract, summarize, aggregate, store.
  InsertResult insert(std::uint64_t id, const img::Image& image);

  /// Inserts a precomputed signature (e.g., shipped by a mobile client).
  InsertResult insert_signature(std::uint64_t id,
                                const hash::SparseSignature& signature);

  /// Removes an image from the index: its id leaves every correlation
  /// group it joined and its signature is dropped (photo-retention expiry
  /// in the cloud deployment). Returns false when the id is unknown.
  bool erase(std::uint64_t id);

  // --- Persistence ---

  /// Writes the index state (all signatures, varint-encoded) to `path`.
  /// Hash-table state is not persisted — it is rebuilt deterministically
  /// on load, which keeps the on-disk format at the paper's ~bytes/image.
  /// Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Restores an index saved by save() into a fresh instance. The config
  /// must describe the same summary geometry (bloom_bits is verified).
  static FastIndex load(const std::string& path, FastConfig config,
                        vision::PcaModel pca);

  // --- Query path ---

  /// Full pipeline query: returns the top-k most similar images.
  QueryResult query(const img::Image& image, std::size_t k) const;

  /// Query with a precomputed signature.
  QueryResult query_signature(const hash::SparseSignature& signature,
                              std::size_t k) const;

  /// The stored signature of an image (for tests / re-ranking).
  const hash::SparseSignature* signature_of(std::uint64_t id) const;

  /// Total bytes of the in-memory index: sparse signatures + cuckoo slots +
  /// group membership lists + LSH parameters. This is the FAST column of
  /// Table IV.
  std::size_t index_bytes() const;

  /// Aggregate cuckoo statistics across the L tables.
  hash::CuckooStats cuckoo_stats() const;

 private:
  struct Table {
    hash::FlatCuckooTable cuckoo;
    /// Append-only (key -> group) log enabling rebuild on rehash.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
    std::uint64_t seed;
  };

  /// Places key->group into table `t`, rehashing with fresh seeds until the
  /// insertion succeeds. Returns the number of rehash events.
  std::size_t place_with_rehash(std::size_t t, std::uint64_t key,
                                std::uint64_t group);

  /// Computes the per-table bucket keys of a signature under the active SA
  /// backend. `probes` additionally receives per-table probe keys (adjacent
  /// buckets / runner-up bands) when non-null.
  std::vector<std::uint64_t> table_keys(
      const hash::SparseSignature& signature,
      std::vector<std::vector<std::uint64_t>>* probes) const;

  /// Doubles a table's cuckoo capacity when its load factor crosses the
  /// growth threshold (amortized O(1) insert despite fixed-size tables).
  void maybe_grow(std::size_t t);

  FastConfig config_;
  vision::PcaModel pca_;
  hash::PStableLsh lsh_;
  hash::MinHasher minhasher_;
  std::vector<Table> tables_;                       // L of them
  std::vector<std::vector<std::uint64_t>> groups_;  // group id -> member ids
  std::unordered_map<std::uint64_t, hash::SparseSignature> signatures_;
  std::size_t rehashes_ = 0;
};

}  // namespace fast::core
