// FastIndex — the paper's primary contribution, assembled end to end from
// four composable stages:
//
//   FE  (feature extraction)   DoG interest points + PCA-SIFT descriptors
//   SM  (summarization)        per-image Bloom filter over quantized
//                              descriptors, stored sparsely (~40 B/image)
//   SA  (semantic aggregation) per-table bucket keys over the summaries:
//                              p-stable LSH with multi-probe, or MinHash
//                              banding (pipeline::SemanticAggregator)
//   CHS (storage)              bucket-key -> correlation group: flat
//                              windowed cuckoo addressing, or the chained
//                              vertical-addressing baseline
//                              (pipeline::GroupStore)
//
// The index is a thin composition over pipeline::{Summarizer,
// SemanticAggregator, GroupStore}; backends are selected by FastConfig (or
// injected directly) instead of being hard-wired here. Queries are O(1):
// L tables x (1 + probes) x bounded slot reads, all constants under flat
// addressing, followed by ranking the (small) candidate set by sparse-
// signature Jaccard similarity. Every operation reports simulated platform
// costs (see sim::CostModel) alongside its native execution.
//
// Batch-first execution: insert_batch/query_batch fan the expensive FE+SM
// stage across a util::ThreadPool before touching index state, so the
// placement phase (and, in the concurrent facade, the writer lock) runs
// once over precomputed signatures.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/durability.hpp"
#include "core/pipeline/group_store.hpp"
#include "core/pipeline/semantic_aggregator.hpp"
#include "core/pipeline/summarizer.hpp"
#include "core/result.hpp"
#include "hash/sparse_signature.hpp"
#include "img/image.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"
#include "vision/pca.hpp"

namespace fast::util {
class ThreadPool;
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}

namespace fast::core {

/// One item of a batched ingest: the image stays owned by the caller.
struct BatchImage {
  std::uint64_t id = 0;
  const img::Image* image = nullptr;
};

class FastIndex {
 public:
  /// `pca` is the PCA-SIFT eigenspace, trained offline on a sample of the
  /// corpus (see vision::train_pca_sift). Stages are built from `config`
  /// via pipeline::make_* factories.
  FastIndex(FastConfig config, vision::PcaModel pca);

  /// Stage-injection constructor: composes caller-provided FE/SM, SA and
  /// CHS implementations (tests, experimental backends). The aggregator
  /// and store must agree on the table count; the summarizer's signature
  /// width must match config.bloom_bits.
  FastIndex(FastConfig config,
            std::unique_ptr<pipeline::Summarizer> summarizer,
            std::unique_ptr<pipeline::SemanticAggregator> aggregator,
            std::unique_ptr<pipeline::GroupStore> store);

  const FastConfig& config() const noexcept { return config_; }
  std::size_t size() const noexcept { return signatures_.size(); }
  std::size_t group_count() const noexcept { return groups_.size(); }
  std::size_t rehash_count() const noexcept { return rehashes_; }

  // --- FE + SM ---

  /// Runs feature extraction + Bloom summarization for one image.
  hash::SparseSignature summarize(const img::Image& image) const;

  /// Simulated frontend cost every image-ingest path must charge on top of
  /// insert_signature: feature extraction plus the k Bloom hash ops per
  /// descriptor group. Factored out so the concurrent and sharded
  /// frontends account identically to insert() (they used to drop it).
  sim::SimClock frontend_insert_cost() const noexcept;

  /// Tunes the LSH input scale from sample queries against a corpus sample
  /// (the paper's R-selection procedure, §IV-A2): the median query-to-
  /// nearest-neighbor distance is mapped to calibrate_target * omega. Must
  /// be called before the first insert; a no-op when either sample is empty.
  /// The O(queries * corpus) brute-force NN sweep fans across `pool` when
  /// provided (per-query scans are independent); results are identical to
  /// the sequential path.
  void calibrate_scale(std::span<const hash::SparseSignature> sample_queries,
                       std::span<const hash::SparseSignature> corpus_sample,
                       util::ThreadPool* pool = nullptr);

  // --- Insert path ---

  /// Full pipeline insert: extract, summarize, aggregate, store.
  InsertResult insert(std::uint64_t id, const img::Image& image);

  /// Inserts a precomputed signature (e.g., shipped by a mobile client).
  InsertResult insert_signature(std::uint64_t id,
                                const hash::SparseSignature& signature);

  /// Batch ingest: FE+SM runs for all items first — fanned across `pool`
  /// when provided — then placement proceeds in item order, so the final
  /// index state is identical to sequential insert() calls. Per-item
  /// results match insert()'s cost accounting.
  std::vector<InsertResult> insert_batch(std::span<const BatchImage> items,
                                         util::ThreadPool* pool = nullptr);

  /// Removes an image from the index: its id leaves every correlation
  /// group it joined and its signature is dropped (photo-retention expiry
  /// in the cloud deployment). Returns false when the id is unknown.
  bool erase(std::uint64_t id);

  // --- Persistence ---

  /// Writes the index state (all signatures, varint-encoded) to `path`.
  /// Hash-table state is not persisted — it is rebuilt deterministically
  /// on load, which keeps the on-disk format at the paper's ~bytes/image.
  /// Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Restores an index saved by save() into a fresh instance. The config
  /// must describe the same summary geometry (bloom_bits is verified).
  static FastIndex load(const std::string& path, FastConfig config,
                        vision::PcaModel pca);

  // --- Durability (snapshot + WAL; see core/durability.hpp) ---

  /// Opens a durable index in opts.dir: loads the newest intact snapshot,
  /// replays the WAL tail (truncating a torn in-flight record), and starts
  /// a fresh WAL segment. An empty or absent directory yields an empty
  /// durable index. Hard errors: a snapshot written by a future format
  /// version (kBadVersion), a snapshot whose geometry fingerprint does not
  /// match `config` (kConfigMismatch), or filesystem failure; a corrupt
  /// newest snapshot is NOT a hard error — recovery falls back to the
  /// previous one (stats->snapshots_skipped).
  static storage::StatusOr<FastIndex> open_or_recover(
      FastConfig config, vision::PcaModel pca, const DurabilityOptions& opts,
      RecoveryStats* stats = nullptr);

  /// Writes a full snapshot of the index at the current sequence number and
  /// rotates the WAL. One previous snapshot generation (and the WAL
  /// segments it does not cover) is retained so recovery can fall back past
  /// a latent-corrupt newest image without losing records; anything older
  /// is deleted. Requires a durable index.
  storage::Status save_snapshot();

  /// True when mutations are WAL-logged (index came from open_or_recover).
  bool durable() const noexcept { return wal_ != nullptr; }

  /// Forces an fsync of any WAL records buffered by a wal_sync_every > 1
  /// group-commit cadence, so every acknowledged mutation is durable (the
  /// server drains through this on graceful shutdown). No-op when already
  /// synced or non-durable.
  storage::Status sync_wal();

  /// Sequence number of the last applied mutation (0 before any).
  std::uint64_t last_seq() const noexcept { return last_seq_; }

  // --- Query path ---

  /// Full pipeline query: returns the top-k most similar images.
  QueryResult query(const img::Image& image, std::size_t k) const;

  /// Query with a precomputed signature.
  QueryResult query_signature(const hash::SparseSignature& signature,
                              std::size_t k) const;

  /// query() minus summarization: costs for a query whose signature was
  /// just extracted from an image (FE charge + Bloom hash ops + parallel FE
  /// task chunks). Public so the concurrent frontend charges queries
  /// identically to query() after summarizing outside its lock.
  QueryResult query_summarized(const hash::SparseSignature& signature,
                               std::size_t k) const;

  /// Batch query: FE+SM and the per-query probe/rank work both fan across
  /// `pool` when provided. Results are identical to per-item query() calls.
  std::vector<QueryResult> query_batch(
      std::span<const img::Image* const> images, std::size_t k,
      util::ThreadPool* pool = nullptr) const;

  /// The stored signature of an image (for tests / re-ranking).
  const hash::SparseSignature* signature_of(std::uint64_t id) const;

  /// Visits every resident (id, signature) pair in unspecified order.
  /// Used by the sharded facade to rebuild its routing summaries after
  /// recovery; not a hot path.
  template <typename Fn>
  void for_each_signature(Fn&& fn) const {
    for (const auto& [id, sig] : signatures_) fn(id, sig);
  }

  /// Members of correlation group `g` (diagnostics/tests; erased groups
  /// stay as empty husks).
  std::span<const std::uint64_t> group_members(std::size_t g) const {
    return groups_.at(g);
  }

  /// Per-stage observability: FE/SM timing, SA key derivation, CHS probe
  /// distributions and occupancy accumulate here (metric names in
  /// DESIGN.md §3b). Thread-safe to read and update concurrently; shared
  /// with the concurrent/sharded frontends wrapping this index.
  util::MetricsRegistry& metrics() const noexcept { return *metrics_; }

  /// Total bytes of the in-memory index: sparse signatures + storage slots +
  /// group membership lists + aggregator parameters. This is the FAST
  /// column of Table IV.
  std::size_t index_bytes() const;

  /// Aggregate storage statistics across the L tables.
  hash::CuckooStats cuckoo_stats() const;

 private:
  /// Cached instrument pointers so hot paths (queries racing through the
  /// concurrent facade's shared lock) update metrics with relaxed atomic
  /// increments only — never the registry mutex.
  struct StageMetrics {
    util::Counter* fe_sm_images = nullptr;
    util::Histogram* fe_sm_summarize_s = nullptr;
    util::Counter* inserts = nullptr;
    util::Counter* erases = nullptr;
    util::Counter* queries = nullptr;
    util::Histogram* insert_sim_s = nullptr;
    util::Histogram* query_sim_s = nullptr;
    util::Counter* sa_keys_derived = nullptr;
    util::Counter* sa_insert_hash_ops = nullptr;
    // Native wall time of one aggregator_->keys() call. Deliberately
    // separate from sa.insert_hash_ops: the ops counter charges the paper's
    // dense L*M*dim flop model to the simulated platform, while this
    // histogram tracks what the real (sparse) kernel actually costs.
    util::Histogram* sa_keys_wall_s = nullptr;
    util::Histogram* sa_probe_keys = nullptr;
    util::Counter* chs_group_hits = nullptr;
    util::Counter* chs_group_creates = nullptr;
    util::Counter* chs_rehash_events = nullptr;
    util::Counter* chs_slot_reads = nullptr;
    util::Counter* chs_fingerprint_false_hits = nullptr;
    util::Histogram* chs_bucket_probes = nullptr;
    util::Histogram* chs_candidates = nullptr;
    util::Gauge* chs_load_factor = nullptr;
    util::Gauge* chs_occupied_slots = nullptr;
    util::Gauge* chs_capacity_slots = nullptr;
    util::Gauge* chs_insert_failures = nullptr;
    util::Gauge* chs_total_kicks = nullptr;
    util::Gauge* chs_max_kick_chain = nullptr;
    util::Gauge* chs_store_bytes = nullptr;
    util::Gauge* index_size = nullptr;
    util::Gauge* index_groups = nullptr;
    util::Counter* wal_appends = nullptr;
    util::Counter* wal_bytes = nullptr;
    util::Counter* wal_syncs = nullptr;
    util::Histogram* snapshot_write_s = nullptr;
    util::Gauge* snapshot_bytes = nullptr;
    util::Counter* recovery_replayed_records = nullptr;
    util::Counter* recovery_snapshots_skipped = nullptr;
  };

  /// Registers this index's instruments and caches their pointers.
  void init_metrics();

  /// Refreshes the CHS occupancy/kick gauges from the store (write paths).
  void publish_storage_gauges();

  /// Runs FE+SM for `images`, fanned across `pool` when provided.
  std::vector<hash::SparseSignature> summarize_batch(
      std::span<const img::Image* const> images, util::ThreadPool* pool) const;

  /// Mutation bodies, shared by the public (WAL-logging) wrappers and WAL
  /// replay. They touch only in-memory state — never the log — so replay
  /// reproduces exactly the state the original calls built.
  InsertResult apply_insert(std::uint64_t id,
                            const hash::SparseSignature& signature);
  bool apply_erase(std::uint64_t id);

  /// Logs one record ahead of its application; fsyncs on the configured
  /// cadence. Throws storage::IoError when the append or sync fails — the
  /// mutation was NOT applied and the index must be reopened via
  /// open_or_recover. No-op for non-durable indexes.
  void wal_log(std::uint8_t type, std::uint64_t id,
               std::span<const std::uint8_t> payload);

  /// Serializes the full index state at last_seq_.
  storage::SnapshotFile build_snapshot() const;
  /// Restores state from a validated snapshot; false = undecodable content
  /// (caller falls back to an older snapshot).
  bool restore_snapshot(const storage::SnapshotFile& snapshot);

  FastConfig config_;
  std::unique_ptr<pipeline::Summarizer> summarizer_;
  std::unique_ptr<pipeline::SemanticAggregator> aggregator_;
  std::unique_ptr<pipeline::GroupStore> store_;
  std::vector<std::vector<std::uint64_t>> groups_;  // group id -> member ids
  std::unordered_map<std::uint64_t, hash::SparseSignature> signatures_;
  std::size_t rehashes_ = 0;
  // shared_ptr keeps the registry (which holds mutexes/atomics and cannot
  // move) stable across FastIndex moves, so the cached pointers stay valid.
  std::shared_ptr<util::MetricsRegistry> metrics_;
  StageMetrics m_;

  // Durability state; all null/zero for a purely in-memory index.
  storage::Env* env_ = nullptr;
  std::string dir_;
  std::size_t wal_sync_every_ = 1;
  std::unique_ptr<storage::WalWriter> wal_;
  std::uint64_t last_seq_ = 0;
  std::size_t appends_since_sync_ = 0;
};

}  // namespace fast::core
