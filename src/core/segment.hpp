// Immutable sealed segment of the tiered index (DESIGN.md §3f).
//
// A segment is a frozen MemtableIndex — its LSH tables, correlation groups,
// signatures and tombstones exactly as they stood at seal time — held
// behind shared_ptr<const> so queries and compaction can read it with no
// lock at all. Sealing is O(1) on the writer path (move the memtable, no
// bloom yet); a background pass then re-derives every stored signature's
// bucket keys and builds a per-segment bloom summary over (table, key)
// fingerprints, publishing an upgraded segment object that SHARES the same
// frozen state. Queries skip a segment entirely when none of their probe
// keys can be contained (in the spirit of Bloom-filter-guided distributed
// image retrieval), which keeps probe fan-out flat as segments accumulate.
//
// On disk a segment is one CRC-framed snapshot section (kSectionTierSegment)
// via the PR 4 codec: segment id, bloom geometry + words, then the frozen
// memtable's own serialization.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_set>

#include "core/memtable_index.hpp"
#include "core/pipeline/semantic_aggregator.hpp"
#include "hash/bloom_filter.hpp"

namespace fast::core {

class ImmutableSegment {
 public:
  /// Seals `state` as segment `id` with no bloom summary yet (every probe
  /// must check it until finalized).
  ImmutableSegment(std::uint64_t id,
                   std::shared_ptr<const MemtableIndex> state)
      : id_(id), state_(std::move(state)) {}

  /// Finalized segment: same frozen state, plus the probe-skipping bloom.
  ImmutableSegment(std::uint64_t id,
                   std::shared_ptr<const MemtableIndex> state,
                   hash::BloomFilter bloom)
      : id_(id), state_(std::move(state)), bloom_(std::move(bloom)) {}

  std::uint64_t id() const noexcept { return id_; }
  const MemtableIndex& state() const noexcept { return *state_; }
  std::shared_ptr<const MemtableIndex> shared_state() const noexcept {
    return state_;
  }
  bool finalized() const noexcept { return bloom_.has_value(); }
  const std::optional<hash::BloomFilter>& bloom() const noexcept {
    return bloom_;
  }

  std::size_t entries() const noexcept { return state_->entries(); }
  std::size_t tombstone_count() const noexcept {
    return state_->tombstone_count();
  }
  bool contains(std::uint64_t id) const { return state_->contains(id); }
  bool tombstoned(std::uint64_t id) const { return state_->tombstoned(id); }
  bool shadows(std::uint64_t id) const { return state_->shadows(id); }
  const hash::SparseSignature* signature_of(std::uint64_t id) const {
    return state_->signature_of(id);
  }

  /// Mixes (table, bucket key) into the single u64 domain the bloom filter
  /// indexes; distinct tables with equal keys must not collide.
  static std::uint64_t key_fingerprint(std::size_t t,
                                       std::uint64_t key) noexcept {
    return key ^ (static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ULL);
  }

  /// False only when the bloom PROVES no entry was placed under (t, key);
  /// a segment without a finalized bloom can never be skipped.
  bool may_contain(std::size_t t, std::uint64_t key) const {
    return !bloom_.has_value() ||
           bloom_->maybe_contains_u64(key_fingerprint(t, key));
  }

  /// Builds the probe-skipping bloom for `state` from its cached per-id
  /// home keys (no aggregator hashing; safe to run while queries read the
  /// same state). Sized to bits_per_key bits per (table, key) pair,
  /// floor 64.
  static hash::BloomFilter build_bloom(const MemtableIndex& state,
                                       double bits_per_key);

  /// Snapshot-section codec (payload of one kSectionTierSegment).
  void serialize(util::ByteWriter& out) const;
  /// Rebuilds a segment from serialize() bytes; nullptr on malformed input.
  static std::shared_ptr<const ImmutableSegment> deserialize(
      util::ByteReader& in, const FastConfig& config, std::size_t tables);

 private:
  std::uint64_t id_;
  std::shared_ptr<const MemtableIndex> state_;
  std::optional<hash::BloomFilter> bloom_;
};

}  // namespace fast::core
