#include "core/tiered_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/fast_index.hpp"
#include "core/pipeline/factory.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fast::core {

TieredIndex::TieredIndex(FastConfig config, vision::PcaModel pca)
    : TieredIndex(std::move(config), std::move(pca), /*start_worker=*/true) {}

TieredIndex::TieredIndex(FastConfig config, vision::PcaModel pca,
                         bool start_worker)
    : config_(std::move(config)),
      summarizer_(pipeline::make_summarizer(config_, std::move(pca))),
      aggregator_(pipeline::make_aggregator(config_)) {
  FAST_CHECK_MSG(config_.lsh.dim == config_.bloom_bits,
                 "LSH input dim must equal the Bloom summary width");
  FAST_CHECK_MSG(summarizer_->signature_bits() == config_.bloom_bits,
                 "summarizer width must match the configured Bloom width");
  tables_ = aggregator_->table_count();
  mem_config_ = config_;
  // Headroom over the seal threshold keeps a filling memtable below the
  // store's 80% proactive-doubling load for a whole seal interval. Capped
  // so a huge (effectively never-seal) threshold does not pre-allocate an
  // arena the tier will never fill; past the cap the store grows on demand.
  const std::size_t target_cap = std::min<std::size_t>(
      config_.tier.seal_threshold + config_.tier.seal_threshold / 2,
      std::size_t{1} << 16);
  while (mem_config_.cuckoo.capacity < target_cap) {
    mem_config_.cuckoo.capacity *= 2;
  }
  const std::size_t lane_count = std::max<std::size_t>(config_.tier.lanes, 1);
  lanes_.reserve(lane_count);
  for (std::size_t l = 0; l < lane_count; ++l) {
    auto lane = std::make_unique<Lane>();
    lane->mem = std::make_unique<MemtableIndex>(mem_config_, tables_);
    lane->segments.store(std::make_shared<const SegmentList>());
    lanes_.push_back(std::move(lane));
  }
  init_metrics();
  m_.tier_lanes->set(static_cast<double>(lanes_.size()));
  if (start_worker && config_.tier.background) {
    worker_ = std::thread(&TieredIndex::worker_loop, this);
  }
}

TieredIndex::~TieredIndex() { stop_worker(); }

void TieredIndex::init_metrics() {
  metrics_ = std::make_shared<util::MetricsRegistry>();
  util::MetricsRegistry& r = *metrics_;
  m_.fe_sm_images = &r.counter("fe_sm.images");
  m_.fe_sm_summarize_s = &r.latency_histogram("fe_sm.summarize_s");
  m_.inserts = &r.counter("index.inserts");
  m_.erases = &r.counter("index.erases");
  m_.queries = &r.counter("index.queries");
  m_.insert_sim_s = &r.latency_histogram("index.insert_sim_s");
  m_.query_sim_s = &r.latency_histogram("index.query_sim_s");
  m_.query_wall_s = &r.latency_histogram("query.wall_s");
  m_.sa_keys_derived = &r.counter("sa.keys_derived");
  m_.sa_insert_hash_ops = &r.counter("sa.insert_hash_ops");
  m_.sa_keys_wall_s = &r.latency_histogram("sa.keys_wall_s");
  m_.sa_probe_keys = &r.count_histogram("sa.probe_keys_per_query");
  m_.chs_slot_reads = &r.counter("chs.slot_reads");
  m_.chs_bucket_probes = &r.count_histogram("chs.bucket_probes_per_query");
  m_.chs_candidates = &r.count_histogram("chs.candidates_per_query");
  m_.index_size = &r.gauge("index.size");
  m_.tier_lanes = &r.gauge("tier.lanes");
  m_.tier_memtable_entries = &r.gauge("tier.memtable_entries");
  m_.tier_tombstones = &r.gauge("tier.tombstones");
  m_.tier_seals = &r.counter("tier.seals");
  m_.tier_segment_skips = &r.counter("tier.segment_skips");
  m_.segment_count = &r.gauge("segment.count");
  m_.compaction_runs = &r.counter("compaction.runs");
  m_.compaction_dropped_tombstones =
      &r.counter("compaction.dropped_tombstones");
  m_.compaction_merge_s = &r.latency_histogram("compaction.merge_s");
  m_.compaction_merge_entries = &r.count_histogram("compaction.merge_entries");
  m_.compaction_merged_segments =
      &r.count_histogram("compaction.merged_segments");
  m_.wal_appends = &r.counter("wal.appends");
  m_.wal_bytes = &r.counter("wal.bytes");
  m_.wal_syncs = &r.counter("wal.syncs");
  m_.snapshot_write_s = &r.latency_histogram("snapshot.write_s");
  m_.snapshot_bytes = &r.gauge("snapshot.bytes");
  m_.recovery_replayed_records = &r.counter("recovery.replayed_records");
  m_.recovery_snapshots_skipped = &r.counter("recovery.snapshots_skipped");
}

std::size_t TieredIndex::segment_count() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->segments.load()->size();
  return total;
}

std::size_t TieredIndex::tombstone_count() const {
  std::size_t total = static_cast<std::size_t>(
      std::max<std::int64_t>(mem_tombstones_.load(std::memory_order_relaxed),
                             0));
  for (const auto& lane : lanes_) {
    const auto list = lane->segments.load();
    for (const auto& seg : *list) total += seg->tombstone_count();
  }
  return total;
}

std::size_t TieredIndex::index_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lane : lanes_) {
    {
      std::shared_lock<std::shared_mutex> lk(lane->mem_mutex);
      bytes += lane->mem->bytes();
    }
    const auto list = lane->segments.load();
    for (const auto& seg : *list) {
      bytes += seg->state().bytes();
      if (seg->bloom().has_value()) {
        bytes += seg->bloom()->words().size() * sizeof(std::uint64_t);
      }
    }
  }
  bytes += aggregator_->param_bytes();
  return bytes;
}

std::uint64_t TieredIndex::last_seq() const {
  std::lock_guard<std::mutex> lk(wal_mutex_);
  return last_seq_;
}

void TieredIndex::publish_tier_gauges() {
  std::size_t segs = 0;
  std::size_t seg_tombstones = 0;
  for (const auto& lane : lanes_) {
    const auto list = lane->segments.load();
    segs += list->size();
    for (const auto& seg : *list) seg_tombstones += seg->tombstone_count();
  }
  m_.segment_count->set(static_cast<double>(segs));
  m_.tier_memtable_entries->set(static_cast<double>(
      std::max<std::int64_t>(mem_entries_.load(std::memory_order_relaxed),
                             0)));
  m_.tier_tombstones->set(static_cast<double>(
      static_cast<std::size_t>(std::max<std::int64_t>(
          mem_tombstones_.load(std::memory_order_relaxed), 0)) +
      seg_tombstones));
  m_.index_size->set(static_cast<double>(size()));
}

// --- FE + SM --------------------------------------------------------------

hash::SparseSignature TieredIndex::summarize(const img::Image& image) const {
  util::TraceSpan span("fe_sm.summarize");
  util::WallTimer timer;
  hash::SparseSignature sig = summarizer_->summarize(image);
  m_.fe_sm_images->add();
  m_.fe_sm_summarize_s->observe(timer.elapsed_seconds());
  return sig;
}

sim::SimClock TieredIndex::frontend_insert_cost() const noexcept {
  sim::SimClock clock;
  clock.charge(config_.feature_extract_s);
  clock.charge_hash(config_.cost.hash_op_s,
                    config_.max_keypoints * config_.bloom_hashes);
  return clock;
}

void TieredIndex::calibrate_scale(
    std::span<const hash::SparseSignature> sample_queries,
    std::span<const hash::SparseSignature> corpus_sample,
    util::ThreadPool* pool) {
  FAST_CHECK_MSG(size() == 0, "calibrate before inserting");
  if (sample_queries.empty() || corpus_sample.empty()) return;
  // Same R-tuning as FastIndex::calibrate_scale (paper §IV-A2): median
  // sample-query NN distance mapped onto calibrate_target * omega.
  std::vector<double> best(sample_queries.size());
  const auto nn_of = [&](std::size_t i) {
    double b = std::numeric_limits<double>::infinity();
    for (const auto& c : corpus_sample) {
      const double d = static_cast<double>(
          hash::SparseSignature::hamming(sample_queries[i], c));
      b = std::min(b, d);
    }
    best[i] = b;
  };
  if (pool != nullptr && sample_queries.size() > 1) {
    pool->parallel_for(sample_queries.size(), nn_of);
  } else {
    for (std::size_t i = 0; i < sample_queries.size(); ++i) nn_of(i);
  }
  std::vector<double> nn;
  nn.reserve(best.size());
  for (const double b : best) {
    if (std::isfinite(b)) nn.push_back(std::sqrt(b));
  }
  FAST_CHECK(!nn.empty());
  std::nth_element(nn.begin(), nn.begin() + nn.size() / 2, nn.end());
  const double median_nn = std::max(nn[nn.size() / 2], 1.0);
  config_.lsh_input_scale =
      config_.calibrate_target * config_.lsh.omega / median_nn;
  aggregator_->set_input_scale(config_.lsh_input_scale);
}

// --- Mutations ------------------------------------------------------------

bool TieredIndex::segments_contain_live(const Lane& lane, std::uint64_t id) {
  const auto list = lane.segments.load();
  for (const auto& seg : *list) {
    if (seg->contains(id)) return true;
    if (seg->tombstoned(id)) return false;
  }
  return false;
}

InsertResult TieredIndex::insert(std::uint64_t id, const img::Image& image) {
  util::TraceSpan span("insert.image");
  const hash::SparseSignature sig = summarize(image);
  InsertResult stored = insert_signature(id, sig);
  stored.cost.merge(frontend_insert_cost());
  return stored;
}

InsertResult TieredIndex::insert_signature(
    std::uint64_t id, const hash::SparseSignature& signature) {
  return insert_internal(id, signature, /*log=*/true);
}

InsertResult TieredIndex::insert_internal(
    std::uint64_t id, const hash::SparseSignature& signature, bool log) {
  util::TraceSpan span("insert");
  InsertResult result;
  FAST_CHECK(signature.bit_count() == config_.bloom_bits);

  const std::size_t sa_ops = aggregator_->insert_hash_ops(signature);
  if (aggregator_->cost_domain() ==
      pipeline::SemanticAggregator::CostDomain::kFlops) {
    result.cost.charge_flops(config_.cost.flop_s, sa_ops);
  } else {
    result.cost.charge_hash(config_.cost.mix_op_s, sa_ops);
  }

  // Keys are derived OUTSIDE the lane lock: the critical section below is
  // pure placement (this is the point of the memtable split).
  util::WallTimer keys_timer;
  std::vector<std::uint64_t> keys;
  {
    util::TraceSpan keys_span("sa.keys");
    keys = aggregator_->keys(signature, nullptr);
    keys_span.attr("keys", static_cast<double>(keys.size()));
  }
  m_.sa_keys_wall_s->observe(keys_timer.elapsed_seconds());
  m_.sa_keys_derived->add(keys.size());
  m_.sa_insert_hash_ops->add(sa_ops);

  const std::size_t lane_idx = lane_of(id);
  Lane& lane = *lanes_[lane_idx];
  bool sealed = false;
  std::size_t slot_reads = 0;
  {
    std::unique_lock<std::shared_mutex> lk(lane.mem_mutex);
    // Log before apply (held lane lock keeps per-lane apply order equal to
    // sequence order); a throw leaves the memtable untouched.
    if (log && durable()) {
      wal_log(storage::kWalRecordInsert, id, signature.encode());
    }
    const std::int64_t e0 = static_cast<std::int64_t>(lane.mem->entries());
    const std::int64_t t0 =
        static_cast<std::int64_t>(lane.mem->tombstone_count());
    bool was_live;
    if (lane.mem->contains(id)) {
      // Re-insert replaces: evict the stale version from its groups first.
      was_live = true;
      lane.mem->remove(id);
    } else if (lane.mem->tombstoned(id)) {
      was_live = false;
    } else {
      was_live = segments_contain_live(lane, id);
    }
    const std::size_t events = lane.mem->place(id, signature, keys,
                                               &slot_reads);
    result.rehashes = events;
    if (events > 0) result.ok = false;
    result.cost.charge_ram(config_.cost.ram_access_s, slot_reads);
    if (!was_live) live_.fetch_add(1, std::memory_order_relaxed);
    mem_entries_.fetch_add(
        static_cast<std::int64_t>(lane.mem->entries()) - e0,
        std::memory_order_relaxed);
    mem_tombstones_.fetch_add(
        static_cast<std::int64_t>(lane.mem->tombstone_count()) - t0,
        std::memory_order_relaxed);
    sealed = maybe_seal_locked(lane, lane_idx);
  }
  m_.chs_slot_reads->add(slot_reads);
  m_.inserts->add();
  m_.insert_sim_s->observe(result.cost.elapsed_s());
  m_.index_size->set(static_cast<double>(size()));
  span.attr("rehash_events", static_cast<double>(result.rehashes));
  span.attr("lane", static_cast<double>(lane_idx));
  if (sealed) schedule_maintenance();
  return result;
}

std::vector<InsertResult> TieredIndex::insert_batch(
    std::span<const BatchImage> items, util::ThreadPool* pool) {
  std::vector<hash::SparseSignature> sigs(items.size());
  const auto summarize_one = [&](std::size_t i) {
    sigs[i] = summarize(*items[i].image);
  };
  if (pool != nullptr && items.size() > 1) {
    pool->parallel_for(items.size(), summarize_one);
  } else {
    for (std::size_t i = 0; i < items.size(); ++i) summarize_one(i);
  }

  util::TraceSpan span("insert_batch.place");
  span.attr("items", static_cast<double>(items.size()));
  std::vector<InsertResult> results;
  results.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    InsertResult stored = insert_signature(items[i].id, sigs[i]);
    stored.cost.merge(frontend_insert_cost());
    results.push_back(std::move(stored));
  }
  return results;
}

bool TieredIndex::erase(std::uint64_t id) {
  return erase_internal(id, /*log=*/true);
}

bool TieredIndex::erase_internal(std::uint64_t id, bool log) {
  util::TraceSpan span("erase");
  const std::size_t lane_idx = lane_of(id);
  Lane& lane = *lanes_[lane_idx];
  bool erased = false;
  bool sealed = false;
  {
    std::unique_lock<std::shared_mutex> lk(lane.mem_mutex);
    const std::int64_t e0 = static_cast<std::int64_t>(lane.mem->entries());
    const std::int64_t t0 =
        static_cast<std::int64_t>(lane.mem->tombstone_count());
    if (lane.mem->contains(id)) {
      if (log && durable()) wal_log(storage::kWalRecordErase, id, {});
      lane.mem->remove(id);
      // A stale live copy below must not resurrect after the memtable
      // seals away.
      if (segments_contain_live(lane, id)) lane.mem->add_tombstone(id);
      erased = true;
    } else if (!lane.mem->tombstoned(id) &&
               segments_contain_live(lane, id)) {
      if (log && durable()) wal_log(storage::kWalRecordErase, id, {});
      lane.mem->add_tombstone(id);
      erased = true;
    }
    // An id no layer owns (or already erased) is a no-op, not logged.
    if (erased) {
      live_.fetch_sub(1, std::memory_order_relaxed);
      mem_entries_.fetch_add(
          static_cast<std::int64_t>(lane.mem->entries()) - e0,
          std::memory_order_relaxed);
      mem_tombstones_.fetch_add(
          static_cast<std::int64_t>(lane.mem->tombstone_count()) - t0,
          std::memory_order_relaxed);
      sealed = maybe_seal_locked(lane, lane_idx);
    }
  }
  if (erased) {
    m_.erases->add();
    m_.index_size->set(static_cast<double>(size()));
  }
  if (sealed) schedule_maintenance();
  return erased;
}

std::size_t TieredIndex::erase_batch(std::span<const std::uint64_t> ids) {
  util::TraceSpan span("erase_batch");
  span.attr("items", static_cast<double>(ids.size()));
  std::size_t erased = 0;
  for (const std::uint64_t id : ids) {
    if (erase(id)) ++erased;
  }
  span.attr("erased", static_cast<double>(erased));
  return erased;
}

// --- Seal + compaction ----------------------------------------------------

bool TieredIndex::maybe_seal_locked(Lane& lane, std::size_t lane_idx) {
  const std::size_t threshold =
      std::max<std::size_t>(config_.tier.seal_threshold, 1);
  if (lane.mem->mention_count() < threshold) return false;
  seal_locked(lane, lane_idx);
  return true;
}

void TieredIndex::seal_locked(Lane& lane, std::size_t lane_idx) {
  util::TraceSpan span("seal");
  span.attr("lane", static_cast<double>(lane_idx));
  span.attr("entries", static_cast<double>(lane.mem->entries()));
  span.attr("tombstones", static_cast<double>(lane.mem->tombstone_count()));
  mem_entries_.fetch_sub(static_cast<std::int64_t>(lane.mem->entries()),
                         std::memory_order_relaxed);
  mem_tombstones_.fetch_sub(
      static_cast<std::int64_t>(lane.mem->tombstone_count()),
      std::memory_order_relaxed);
  // O(1) seal: the memtable becomes the segment's frozen state by move; the
  // bloom summary is built later, off the writer path.
  auto frozen = std::make_shared<MemtableIndex>(std::move(*lane.mem));
  lane.mem = std::make_unique<MemtableIndex>(mem_config_, tables_);
  auto segment = std::make_shared<const ImmutableSegment>(
      next_segment_id_.fetch_add(1, std::memory_order_relaxed),
      std::shared_ptr<const MemtableIndex>(std::move(frozen)));
  {
    std::lock_guard<std::mutex> pub(lane.publish_mutex);
    const auto current = lane.segments.load();
    auto next = std::make_shared<SegmentList>();
    next->reserve(current->size() + 1);
    next->push_back(std::move(segment));
    next->insert(next->end(), current->begin(), current->end());
    lane.segments.store(std::shared_ptr<const SegmentList>(std::move(next)));
  }
  m_.tier_seals->add();
  publish_tier_gauges();
}

void TieredIndex::seal_active() {
  bool sealed_any = false;
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    Lane& lane = *lanes_[l];
    std::unique_lock<std::shared_mutex> lk(lane.mem_mutex);
    if (lane.mem->empty()) continue;
    seal_locked(lane, l);
    sealed_any = true;
  }
  if (sealed_any) schedule_maintenance();
}

void TieredIndex::schedule_maintenance() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(work_mutex_);
      work_pending_ = true;
    }
    work_cv_.notify_one();
  } else {
    // No worker (tier.background == false, or recovery replay before the
    // worker starts): maintain inline, deterministically.
    compact_once();
  }
}

void TieredIndex::worker_loop() {
  std::unique_lock<std::mutex> lk(work_mutex_);
  while (true) {
    work_cv_.wait(lk, [this] { return work_pending_ || stop_; });
    if (stop_) return;
    work_pending_ = false;
    worker_busy_ = true;
    lk.unlock();
    compact_once();
    lk.lock();
    worker_busy_ = false;
    idle_cv_.notify_all();
  }
}

void TieredIndex::stop_worker() {
  if (!worker_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(work_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
  // A request that arrived after the worker decided to exit stays pending
  // forever; release any wait_idle() caller instead of hanging it.
  {
    std::lock_guard<std::mutex> lk(work_mutex_);
    work_pending_ = false;
  }
  idle_cv_.notify_all();
}

void TieredIndex::wait_idle() const {
  std::unique_lock<std::mutex> lk(work_mutex_);
  idle_cv_.wait(lk, [this] {
    return (!work_pending_ && !worker_busy_) || stop_;
  });
}

bool TieredIndex::compact_once() {
  std::lock_guard<std::mutex> guard(compaction_mutex_);
  bool merged = false;
  for (auto& lane : lanes_) {
    finalize_blooms(*lane);
    while (try_compact_lane(*lane)) merged = true;
  }
  publish_tier_gauges();
  return merged;
}

void TieredIndex::finalize_blooms(Lane& lane) {
  const auto list = lane.segments.load();
  for (const auto& seg : *list) {
    if (seg->finalized()) continue;
    util::TraceSpan span("seal.finalize");
    span.attr("segment", static_cast<double>(seg->id()));
    span.attr("entries", static_cast<double>(seg->entries()));
    hash::BloomFilter bloom = ImmutableSegment::build_bloom(
        seg->state(), config_.tier.bloom_bits_per_key);
    span.attr("bloom_bits", static_cast<double>(bloom.bit_count()));
    // The upgraded segment SHARES the frozen state; only the summary is new.
    auto upgraded = std::make_shared<const ImmutableSegment>(
        seg->id(), seg->shared_state(), std::move(bloom));
    splice_segments(lane, seg->id(), 1, std::move(upgraded));
  }
}

bool TieredIndex::try_compact_lane(Lane& lane) {
  const auto list = lane.segments.load();
  const std::size_t fanin =
      std::max<std::size_t>(config_.tier.compact_fanin, 2);
  const std::size_t trigger =
      std::max<std::size_t>(config_.tier.compact_trigger, fanin);
  if (list->size() < trigger) return false;

  // Size-tiered pick: the contiguous window of `fanin` neighbors with the
  // fewest total mentions; ties go to the oldest run, which is where
  // tombstones can actually be retired.
  std::size_t best_start = 0;
  std::size_t best_weight = std::numeric_limits<std::size_t>::max();
  for (std::size_t start = 0; start + fanin <= list->size(); ++start) {
    std::size_t weight = 0;
    for (std::size_t i = 0; i < fanin; ++i) {
      const auto& seg = (*list)[start + i];
      weight += seg->entries() + seg->tombstone_count();
    }
    if (weight <= best_weight) {
      best_weight = weight;
      best_start = start;
    }
  }
  const bool includes_oldest = best_start + fanin == list->size();

  util::TraceSpan span("compact.merge");
  util::WallTimer timer;
  MemtableIndex merged(mem_config_, tables_);
  std::unordered_set<std::uint64_t> seen;
  std::size_t entries_in = 0;
  std::size_t dropped_tombstones = 0;
  // Newest -> oldest within the window; the first mention of an id wins.
  // Deterministic: tombstone carry-over is decided per id, and signatures
  // are placed in sorted-id order per segment.
  for (std::size_t i = 0; i < fanin; ++i) {
    const ImmutableSegment& seg = *(*list)[best_start + i];
    entries_in += seg.entries();
    for (const std::uint64_t id : seg.state().tombstones()) {
      if (!seen.insert(id).second) continue;
      if (includes_oldest) {
        ++dropped_tombstones;  // nothing older left to shadow
      } else {
        merged.add_tombstone(id);
      }
    }
    for (const std::uint64_t id : seg.state().sorted_ids()) {
      if (!seen.insert(id).second) continue;
      merged.place(id, *seg.signature_of(id), *seg.state().keys_of(id),
                   nullptr);
    }
  }

  std::shared_ptr<const ImmutableSegment> replacement;
  if (!merged.empty()) {
    hash::BloomFilter bloom = ImmutableSegment::build_bloom(
        merged, config_.tier.bloom_bits_per_key);
    replacement = std::make_shared<const ImmutableSegment>(
        next_segment_id_.fetch_add(1, std::memory_order_relaxed),
        std::make_shared<const MemtableIndex>(std::move(merged)),
        std::move(bloom));
  }
  const std::size_t entries_out =
      replacement == nullptr ? 0 : replacement->entries();
  splice_segments(lane, (*list)[best_start]->id(), fanin,
                  std::move(replacement));

  m_.compaction_runs->add();
  m_.compaction_dropped_tombstones->add(dropped_tombstones);
  m_.compaction_merge_s->observe(timer.elapsed_seconds());
  m_.compaction_merged_segments->observe(static_cast<double>(fanin));
  m_.compaction_merge_entries->observe(static_cast<double>(entries_out));
  span.attr("inputs", static_cast<double>(fanin));
  span.attr("entries_in", static_cast<double>(entries_in));
  span.attr("entries_out", static_cast<double>(entries_out));
  span.attr("tombstones_dropped", static_cast<double>(dropped_tombstones));
  return true;
}

void TieredIndex::splice_segments(
    Lane& lane, std::uint64_t first_id, std::size_t count,
    std::shared_ptr<const ImmutableSegment> replacement) {
  std::lock_guard<std::mutex> pub(lane.publish_mutex);
  const auto current = lane.segments.load();
  auto next = std::make_shared<SegmentList>();
  next->reserve(current->size());
  std::size_t i = 0;
  for (; i < current->size() && (*current)[i]->id() != first_id; ++i) {
    next->push_back((*current)[i]);
  }
  // Compaction passes are serialized and seals only prepend, so the window
  // located at pick time is still a contiguous run here.
  FAST_CHECK_MSG(i + count <= current->size(),
                 "segment splice window vanished");
  if (replacement != nullptr) next->push_back(std::move(replacement));
  for (i += count; i < current->size(); ++i) next->push_back((*current)[i]);
  lane.segments.store(std::shared_ptr<const SegmentList>(std::move(next)));
}

// --- Queries --------------------------------------------------------------

QueryResult TieredIndex::query(const img::Image& image, std::size_t k) const {
  util::TraceSpan span("query.image");
  return query_summarized(summarize(image), k);
}

QueryResult TieredIndex::query_summarized(
    const hash::SparseSignature& signature, std::size_t k) const {
  QueryResult result = query_signature(signature, k);
  result.cost.merge(frontend_insert_cost());
  const double fe_chunk =
      config_.feature_extract_s / static_cast<double>(config_.max_keypoints);
  for (std::size_t i = 0; i < config_.max_keypoints; ++i) {
    result.parallel_tasks.push_back(fe_chunk);
  }
  return result;
}

std::vector<QueryResult> TieredIndex::query_batch(
    std::span<const img::Image* const> images, std::size_t k,
    util::ThreadPool* pool) const {
  std::vector<QueryResult> results(images.size());
  if (pool != nullptr && images.size() > 1) {
    pool->parallel_for(images.size(), [&](std::size_t i) {
      results[i] = query(*images[i], k);
    });
  } else {
    for (std::size_t i = 0; i < images.size(); ++i) {
      results[i] = query(*images[i], k);
    }
  }
  return results;
}

QueryResult TieredIndex::query_signature(const hash::SparseSignature& signature,
                                         std::size_t k) const {
  util::TraceSpan qspan("query");
  util::Tracer& tracer = util::Tracer::global();
  const bool profiling = tracer.enabled();
  const double profile_start_s = profiling ? tracer.now_s() : 0.0;
  util::WallTimer wall_timer;

  QueryResult result;
  FAST_CHECK(signature.bit_count() == config_.bloom_bits);

  std::vector<std::vector<std::uint64_t>> probes;
  std::vector<std::uint64_t> keys;
  std::size_t probe_keys = 0;
  util::WallTimer keys_timer;
  {
    util::TraceSpan keys_span("sa.keys");
    keys = aggregator_->keys(signature, &probes);
    for (const auto& per_table : probes) probe_keys += per_table.size();
    keys_span.attr("keys", static_cast<double>(keys.size()));
    keys_span.attr("probe_keys", static_cast<double>(probe_keys));
  }
  const double keys_s = keys_timer.elapsed_seconds();
  m_.sa_keys_wall_s->observe(keys_s);
  m_.sa_keys_derived->add(keys.size());
  m_.sa_probe_keys->observe(static_cast<double>(probe_keys));

  // SA hashing is per table, independent of how many layers get probed.
  const std::size_t per_table_ops =
      aggregator_->query_hash_ops_per_table(signature);
  const double hash_cost =
      aggregator_->cost_domain() ==
              pipeline::SemanticAggregator::CostDomain::kFlops
          ? config_.cost.flop_s * static_cast<double>(per_table_ops)
          : config_.cost.mix_op_s * static_cast<double>(per_table_ops);

  std::vector<std::size_t> table_slot_reads(keys.size(), 0);
  std::vector<ScoredId> scored;
  std::size_t slot_reads_total = 0;
  std::size_t segments_probed = 0;
  std::size_t segments_skipped = 0;
  {
    util::TraceSpan probe_span("chs.probe");
    for (const auto& lane_ptr : lanes_) {
      const Lane& lane = *lane_ptr;
      std::shared_ptr<const SegmentList> list;
      std::vector<std::unordered_set<std::uint64_t>> per_seg;
      std::unordered_map<std::uint64_t, bool> mem_shadowed;
      {
        std::shared_lock<std::shared_mutex> lk(lane.mem_mutex);
        // Pin the segment list under the memtable lock: seal publishes its
        // segment before dropping the exclusive lock, so this list and the
        // memtable form a consistent cut. Loading the list outside would
        // let a concurrent seal move memtable entries into a segment this
        // query never sees (missed hits, resurrected erases).
        list = lane.segments.load();

        // 1) Segments: candidate collection stays in the critical section
        //    because the shadow decisions below must come from the
        //    memtable of the same cut. A finalized bloom that rejects
        //    every probe key skips the segment.
        per_seg.resize(list->size());
        for (std::size_t si = 0; si < list->size(); ++si) {
          const ImmutableSegment& seg = *(*list)[si];
          bool touch = false;
          for (std::size_t t = 0; t < keys.size() && !touch; ++t) {
            if (seg.may_contain(t, keys[t])) {
              touch = true;
              break;
            }
            for (const std::uint64_t pk : probes[t]) {
              if (seg.may_contain(t, pk)) {
                touch = true;
                break;
              }
            }
          }
          if (!touch) {
            ++segments_skipped;
            continue;
          }
          ++segments_probed;
          for (std::size_t t = 0; t < keys.size(); ++t) {
            ++result.bucket_probes;
            seg.state().collect(t, keys[t], per_seg[si], &table_slot_reads[t]);
            for (const std::uint64_t pk : probes[t]) {
              ++result.bucket_probes;
              seg.state().collect(t, pk, per_seg[si], &table_slot_reads[t]);
            }
          }
        }

        // 2) Memtable: probe, score (the signature map can rehash under
        //    writers, so scoring stays inside the lock), and take the
        //    shadow decisions segment candidates need.
        std::unordered_set<std::uint64_t> mem_ids;
        for (std::size_t t = 0; t < keys.size(); ++t) {
          ++result.bucket_probes;
          lane.mem->collect(t, keys[t], mem_ids, &table_slot_reads[t]);
          for (const std::uint64_t pk : probes[t]) {
            ++result.bucket_probes;
            lane.mem->collect(t, pk, mem_ids, &table_slot_reads[t]);
          }
        }
        for (const std::uint64_t id : mem_ids) {
          scored.push_back(ScoredId{
              id, hash::SparseSignature::jaccard(
                      signature, *lane.mem->signature_of(id))});
        }
        for (const auto& ids : per_seg) {
          for (const std::uint64_t id : ids) {
            if (mem_shadowed.find(id) == mem_shadowed.end()) {
              mem_shadowed.emplace(id, lane.mem->shadows(id));
            }
          }
        }
      }

      // 3) Segment candidates, scored lock-free off the pinned immutable
      //    list: the newest unshadowed mention owns the id (drops
      //    tombstoned ids and stale duplicates in one rule).
      for (std::size_t si = 0; si < per_seg.size(); ++si) {
        for (const std::uint64_t id : per_seg[si]) {
          if (mem_shadowed[id]) continue;
          bool shadowed = false;
          for (std::size_t sj = 0; sj < si && !shadowed; ++sj) {
            shadowed = (*list)[sj]->shadows(id);
          }
          if (shadowed) continue;
          scored.push_back(ScoredId{
              id, hash::SparseSignature::jaccard(
                      signature, *(*list)[si]->signature_of(id))});
        }
      }
    }

    // Per-table cost + Fig. 7 task shape, identical to the flat index
    // (slot reads just accumulate across layers).
    for (std::size_t t = 0; t < keys.size(); ++t) {
      const double probe_cost =
          config_.cost.ram_access_s *
          static_cast<double>(table_slot_reads[t]);
      result.cost.charge(hash_cost);
      result.cost.charge_ram(config_.cost.ram_access_s, table_slot_reads[t]);
      result.parallel_tasks.push_back(hash_cost + probe_cost);
      slot_reads_total += table_slot_reads[t];
    }
    probe_span.attr("bucket_probes",
                    static_cast<double>(result.bucket_probes));
    probe_span.attr("slot_reads", static_cast<double>(slot_reads_total));
    probe_span.attr("segments_probed", static_cast<double>(segments_probed));
    probe_span.attr("segments_skipped",
                    static_cast<double>(segments_skipped));
    probe_span.attr("candidates", static_cast<double>(scored.size()));
  }
  m_.chs_slot_reads->add(slot_reads_total);
  m_.tier_segment_skips->add(segments_skipped);

  result.candidates = scored.size();
  {
    util::TraceSpan rank_span("rank");
    result.hits = std::move(scored);
    result.cost.charge_ram(config_.cost.ram_access_s, result.candidates);
    for (std::size_t c = 0; c < result.candidates; ++c) {
      result.parallel_tasks.push_back(config_.cost.ram_access_s);
    }
    const std::size_t keep = std::min(k, result.hits.size());
    std::partial_sort(result.hits.begin(),
                      result.hits.begin() + static_cast<std::ptrdiff_t>(keep),
                      result.hits.end(),
                      [](const ScoredId& a, const ScoredId& b) {
                        if (a.score != b.score) return a.score > b.score;
                        return a.id < b.id;  // deterministic tie-break
                      });
    result.hits.resize(keep);
    rank_span.attr("candidates", static_cast<double>(result.candidates));
    rank_span.attr("hits", static_cast<double>(result.hits.size()));
  }
  m_.queries->add();
  m_.chs_bucket_probes->observe(static_cast<double>(result.bucket_probes));
  m_.chs_candidates->observe(static_cast<double>(result.candidates));
  m_.query_sim_s->observe(result.cost.elapsed_s());
  m_.query_wall_s->observe(wall_timer.elapsed_seconds());

  qspan.attr("k", static_cast<double>(k));
  qspan.attr("hits", static_cast<double>(result.hits.size()));
  qspan.attr("candidates", static_cast<double>(result.candidates));
  qspan.attr("bucket_probes", static_cast<double>(result.bucket_probes));
  if (profiling) {
    util::QueryProfile profile;
    profile.request_id = qspan.request_id();
    profile.sampled = qspan.active();
    profile.start_s = profile_start_s;
    profile.wall_s = wall_timer.elapsed_seconds();
    profile.sa_keys_s = keys_s;
    profile.probe_rank_s = profile.wall_s - keys_s;
    profile.k = k;
    profile.hits = result.hits.size();
    profile.candidates = result.candidates;
    profile.bucket_probes = result.bucket_probes;
    profile.probe_keys = probe_keys;
    profile.slot_reads = slot_reads_total;
    tracer.record_query(profile);
  }
  return result;
}

std::optional<hash::SparseSignature> TieredIndex::find_signature(
    std::uint64_t id) const {
  const Lane& lane = *lanes_[lane_of(id)];
  {
    std::shared_lock<std::shared_mutex> lk(lane.mem_mutex);
    if (const auto* sig = lane.mem->signature_of(id)) return *sig;
    if (lane.mem->tombstoned(id)) return std::nullopt;
  }
  const auto list = lane.segments.load();
  for (const auto& seg : *list) {
    if (const auto* sig = seg->signature_of(id)) return *sig;
    if (seg->tombstoned(id)) return std::nullopt;
  }
  return std::nullopt;
}

void TieredIndex::for_each_live_signature(
    const std::function<void(std::uint64_t, const hash::SparseSignature&)>&
        fn) const {
  for (const auto& lane_ptr : lanes_) {
    const Lane& lane = *lane_ptr;
    // Shadow set: ids already claimed by a newer layer (live or tombstone).
    std::unordered_set<std::uint64_t> seen;
    std::shared_ptr<const SegmentList> list;
    {
      // Pin the segment list under the memtable lock (same ordering as the
      // query path) so a concurrent seal cannot drop entries between the
      // memtable walk and the list load.
      std::shared_lock<std::shared_mutex> lk(lane.mem_mutex);
      for (const auto& [id, sig] : lane.mem->signatures()) {
        seen.insert(id);
        fn(id, sig);
      }
      for (const std::uint64_t id : lane.mem->tombstones()) seen.insert(id);
      list = lane.segments.load();
    }
    for (const auto& seg : *list) {  // newest -> oldest
      for (const auto& [id, sig] : seg->state().signatures()) {
        if (seen.insert(id).second) fn(id, sig);
      }
      for (const std::uint64_t id : seg->state().tombstones()) seen.insert(id);
    }
  }
}

// --- Durability -----------------------------------------------------------

storage::Status TieredIndex::sync_wal() {
  std::lock_guard<std::mutex> lk(wal_mutex_);
  if (!durable() || appends_since_sync_ == 0) return storage::Status{};
  storage::Status s = wal_->sync();
  if (s.ok()) {
    appends_since_sync_ = 0;
    m_.wal_syncs->add();
  }
  return s;
}

void TieredIndex::wal_log(std::uint8_t type, std::uint64_t id,
                          std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lk(wal_mutex_);
  const std::uint64_t seq = wal_->next_seq();
  storage::Status s = wal_->append(type, id, payload);
  if (s.ok() && ++appends_since_sync_ >= wal_sync_every_) {
    s = wal_->sync();
    if (s.ok()) {
      appends_since_sync_ = 0;
      m_.wal_syncs->add();
    }
  }
  if (!s.ok()) throw storage::IoError(std::move(s));
  m_.wal_appends->add();
  m_.wal_bytes->add(4 + 4 + 8 + 1 + 8 + payload.size());
  last_seq_ = seq;
}

storage::SnapshotFile TieredIndex::build_snapshot_locked() const {
  storage::SnapshotFile snapshot;
  snapshot.config_fingerprint = config_fingerprint(config_);
  snapshot.last_seq = last_seq_;

  util::ByteWriter params;
  params.f64(config_.lsh_input_scale);
  params.u64(next_segment_id_.load(std::memory_order_relaxed));
  params.u64(lanes_.size());
  snapshot.sections.push_back({storage::kSectionParams, params.take()});

  // Load each lane's list exactly once so the manifest and the per-segment
  // sections describe the same instant even if compaction republishes
  // mid-snapshot.
  std::vector<std::shared_ptr<const SegmentList>> lists;
  lists.reserve(lanes_.size());
  for (const auto& lane : lanes_) lists.push_back(lane->segments.load());

  util::ByteWriter manifest;
  manifest.u64(lanes_.size());
  for (const auto& list : lists) {
    manifest.u64(list->size());
    for (const auto& seg : *list) manifest.u64(seg->id());
  }
  snapshot.sections.push_back(
      {storage::kSectionTierManifest, manifest.take()});

  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    util::ByteWriter mem;
    mem.u64(l);
    lanes_[l]->mem->serialize(mem);
    snapshot.sections.push_back({storage::kSectionTierMemtable, mem.take()});
  }
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    for (const auto& seg : *lists[l]) {
      util::ByteWriter sw;
      sw.u64(l);
      seg->serialize(sw);
      snapshot.sections.push_back({storage::kSectionTierSegment, sw.take()});
    }
  }
  return snapshot;
}

storage::Status TieredIndex::save_snapshot() {
  if (!durable()) {
    return storage::Status::error(storage::StatusCode::kIoError,
                                  "save_snapshot on a non-durable index");
  }
  util::TraceSpan span("snapshot.save");
  util::WallTimer timer;
  // Quiesce maintenance first: the background worker splices segment lists
  // and allocates segment ids without ever taking a lane lock, so without
  // this a snapshot could pin a lane list containing a freshly merged
  // segment whose id is >= the params section's next_segment_id (written
  // above the lists in build_snapshot_locked) — after recovery that
  // duplicate id would make splice_segments target the wrong window. Lock
  // order is compaction_mutex_ -> lane.mem_mutex; maintenance passes hold
  // compaction_mutex_ -> publish_mutex and are never entered with a lane
  // lock held (schedule_maintenance runs outside the seal's critical
  // section), so the orders cannot cycle.
  std::lock_guard<std::mutex> maintenance(compaction_mutex_);
  // Quiesce writers: every lane lock, in index order. The WAL cannot
  // advance without a lane lock held, so last_seq_ is stable below.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(lanes_.size());
  for (auto& lane : lanes_) locks.emplace_back(lane->mem_mutex);

  const storage::SnapshotFile snapshot = build_snapshot_locked();
  auto published = storage::write_snapshot(*env_, dir_, snapshot);
  if (!published.ok()) return published.status();

  std::size_t image_bytes = 32;  // header
  for (const auto& section : snapshot.sections) {
    image_bytes += 12 + section.payload.size();
  }
  span.attr("bytes", static_cast<double>(image_bytes + 12));
  span.attr("sections", static_cast<double>(snapshot.sections.size()));
  m_.snapshot_bytes->set(static_cast<double>(image_bytes + 12));
  m_.snapshot_write_s->observe(timer.elapsed_seconds());

  storage::Status rotated =
      storage::rotate_wal_and_retire(*env_, dir_, snapshot.last_seq, &wal_);
  if (!rotated.ok()) return rotated;
  appends_since_sync_ = 0;
  return storage::Status{};
}

bool TieredIndex::restore_snapshot(const storage::SnapshotFile& snapshot) {
  const auto* params = snapshot.find(storage::kSectionParams);
  const auto* manifest = snapshot.find(storage::kSectionTierManifest);
  if (params == nullptr || manifest == nullptr) return false;

  util::ByteReader pr{std::span(params->payload)};
  const double input_scale = pr.f64();
  const std::uint64_t next_segment = pr.u64();
  const std::uint64_t lane_count = pr.u64();
  if (!pr.ok() || lane_count == 0 || lane_count > 65536) return false;

  util::ByteReader mr{std::span(manifest->payload)};
  const std::uint64_t manifest_lanes = mr.u64();
  if (!mr.ok() || manifest_lanes != lane_count) return false;
  std::vector<std::vector<std::uint64_t>> lane_segment_ids(lane_count);
  for (auto& ids : lane_segment_ids) {
    const std::uint64_t n = mr.u64();
    if (!mr.ok() || n > mr.remaining() / 8) return false;
    ids.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) ids.push_back(mr.u64());
  }
  if (!mr.ok()) return false;

  std::vector<std::unique_ptr<MemtableIndex>> mems(lane_count);
  std::unordered_map<std::uint64_t, std::shared_ptr<const ImmutableSegment>>
      segs;
  for (const auto& section : snapshot.sections) {
    if (section.id == storage::kSectionTierMemtable) {
      util::ByteReader in{std::span(section.payload)};
      const std::uint64_t l = in.u64();
      if (!in.ok() || l >= lane_count || mems[l] != nullptr) return false;
      // mem_config_, not config_: restored memtables should start at the
      // same pre-expanded capacity the seal path hands out.
      auto mem = std::make_unique<MemtableIndex>(mem_config_, tables_);
      if (!mem->deserialize(in, config_.bloom_bits)) return false;
      mems[l] = std::move(mem);
    } else if (section.id == storage::kSectionTierSegment) {
      util::ByteReader in{std::span(section.payload)};
      const std::uint64_t l = in.u64();
      if (!in.ok() || l >= lane_count) return false;
      auto seg = ImmutableSegment::deserialize(in, config_, tables_);
      if (seg == nullptr) return false;
      segs.emplace(seg->id(), std::move(seg));
    }
  }
  for (const auto& mem : mems) {
    if (mem == nullptr) return false;
  }

  // Adopt the snapshot's lane geometry: the id -> lane mapping is baked into
  // the layout, so the manifest wins over config_.tier.lanes.
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.reserve(lane_count);
  for (std::size_t l = 0; l < lane_count; ++l) {
    auto lane = std::make_unique<Lane>();
    lane->mem = std::move(mems[l]);
    auto list = std::make_shared<SegmentList>();
    list->reserve(lane_segment_ids[l].size());
    for (const std::uint64_t id : lane_segment_ids[l]) {
      const auto it = segs.find(id);
      if (it == segs.end()) return false;
      list->push_back(it->second);
    }
    lane->segments.store(std::shared_ptr<const SegmentList>(std::move(list)));
    lanes.push_back(std::move(lane));
  }
  lanes_ = std::move(lanes);
  config_.tier.lanes = lanes_.size();
  m_.tier_lanes->set(static_cast<double>(lanes_.size()));
  // Never hand out an id a restored segment already carries: a snapshot
  // written while compaction was splicing could contain a segment numbered
  // at (or past) the params section's next_segment_id, and a duplicate id
  // would make a later splice replace the wrong window.
  std::uint64_t next_id = next_segment;
  for (const auto& [seg_id, seg] : segs) {
    next_id = std::max(next_id, seg_id + 1);
  }
  next_segment_id_.store(next_id, std::memory_order_relaxed);
  config_.lsh_input_scale = input_scale;
  aggregator_->set_input_scale(input_scale);

  std::int64_t mem_entries = 0;
  std::int64_t mem_tombstones = 0;
  for (const auto& lane : lanes_) {
    mem_entries += static_cast<std::int64_t>(lane->mem->entries());
    mem_tombstones += static_cast<std::int64_t>(lane->mem->tombstone_count());
  }
  mem_entries_.store(mem_entries, std::memory_order_relaxed);
  mem_tombstones_.store(mem_tombstones, std::memory_order_relaxed);
  live_.store(count_live(), std::memory_order_relaxed);
  publish_tier_gauges();
  return true;
}

std::size_t TieredIndex::count_live() const {
  std::size_t live = 0;
  for (const auto& lane : lanes_) {
    live += lane->mem->entries();
    const auto list = lane->segments.load();
    for (std::size_t si = 0; si < list->size(); ++si) {
      for (const std::uint64_t id : (*list)[si]->state().sorted_ids()) {
        if (lane->mem->shadows(id)) continue;
        bool shadowed = false;
        for (std::size_t sj = 0; sj < si && !shadowed; ++sj) {
          shadowed = (*list)[sj]->shadows(id);
        }
        if (!shadowed) ++live;
      }
    }
  }
  return live;
}

storage::StatusOr<std::unique_ptr<TieredIndex>> TieredIndex::open_or_recover(
    FastConfig config, vision::PcaModel pca, const DurabilityOptions& opts,
    RecoveryStats* stats_out) {
  FAST_CHECK_MSG(config.tier.enabled,
                 "TieredIndex::open_or_recover needs tier.enabled");
  util::TraceSpan span("recovery.open");
  RecoveryStats stats;
  storage::Env& env = opts.env != nullptr ? *opts.env : storage::Env::posix();
  storage::Status s = env.make_dirs(opts.dir);
  if (!s.ok()) return s;
  auto names = env.list_dir(opts.dir);
  if (!names.ok()) return names.status();

  std::vector<std::uint64_t> snapshot_seqs;
  std::vector<std::uint64_t> wal_seqs;
  for (const std::string& name : names.value()) {
    std::uint64_t seq = 0;
    if (storage::parse_snapshot_file_name(name, &seq)) {
      snapshot_seqs.push_back(seq);
    } else if (storage::parse_wal_segment_name(name, &seq)) {
      wal_seqs.push_back(seq);
    }
  }
  std::sort(snapshot_seqs.rbegin(), snapshot_seqs.rend());  // newest first
  std::sort(wal_seqs.begin(), wal_seqs.end());

  const std::uint64_t want_fingerprint = config_fingerprint(config);
  std::unique_ptr<TieredIndex> index;
  for (const std::uint64_t seq : snapshot_seqs) {
    const std::string path =
        opts.dir + "/" + storage::snapshot_file_name(seq);
    auto snapshot = storage::read_snapshot(env, path);
    if (!snapshot.ok()) {
      switch (snapshot.status().code()) {
        case storage::StatusCode::kCorrupt:
        case storage::StatusCode::kBadMagic:
          ++stats.snapshots_skipped;
          continue;
        default:
          return snapshot.status();
      }
    }
    if (snapshot.value().config_fingerprint != want_fingerprint) {
      return storage::Status::error(
          storage::StatusCode::kConfigMismatch,
          "snapshot " + path +
              " was written under a different pipeline geometry");
    }
    std::unique_ptr<TieredIndex> candidate(
        new TieredIndex(config, pca, /*start_worker=*/false));
    if (!candidate->restore_snapshot(snapshot.value())) {
      ++stats.snapshots_skipped;
      continue;
    }
    candidate->last_seq_ = snapshot.value().last_seq;
    stats.loaded_snapshot = true;
    stats.snapshot_seq = snapshot.value().last_seq;
    index = std::move(candidate);
    break;
  }
  if (index == nullptr) {
    index.reset(new TieredIndex(config, pca, /*start_worker=*/false));
  }

  for (const std::uint64_t seq : wal_seqs) {
    const std::string path = opts.dir + "/" + storage::wal_segment_name(seq);
    auto segment = storage::read_wal_segment(env, path);
    if (!segment.ok()) return segment.status();
    ++stats.segments_scanned;
    if (segment.value().torn) stats.wal_torn = true;
    for (const storage::WalRecord& record : segment.value().records) {
      if (record.seq <= index->last_seq_) continue;  // inside the snapshot
      if (record.seq != index->last_seq_ + 1) {
        return storage::Status::error(
            storage::StatusCode::kCorrupt,
            "WAL gap: expected seq " + std::to_string(index->last_seq_ + 1) +
                ", segment " + path + " continues at " +
                std::to_string(record.seq));
      }
      switch (record.type) {
        case storage::kWalRecordInsert: {
          try {
            hash::SparseSignature sig =
                hash::SparseSignature::decode(record.payload);
            if (sig.bit_count() != index->config_.bloom_bits) {
              return storage::Status::error(
                  storage::StatusCode::kCorrupt,
                  "WAL insert payload has the wrong signature width");
            }
            index->insert_internal(record.id, sig, /*log=*/false);
          } catch (const std::runtime_error& e) {
            return storage::Status::error(
                storage::StatusCode::kCorrupt,
                std::string("undecodable WAL insert payload: ") + e.what());
          }
          break;
        }
        case storage::kWalRecordErase:
          index->erase_internal(record.id, /*log=*/false);
          break;
        default:
          return storage::Status::error(
              storage::StatusCode::kCorrupt,
              "unknown WAL record type " + std::to_string(record.type));
      }
      index->last_seq_ = record.seq;
      ++stats.replayed_records;
    }
  }
  index->m_.recovery_replayed_records->add(stats.replayed_records);
  index->m_.recovery_snapshots_skipped->add(stats.snapshots_skipped);
  span.attr("replayed_records", static_cast<double>(stats.replayed_records));
  span.attr("snapshots_skipped",
            static_cast<double>(stats.snapshots_skipped));
  span.attr("segments_scanned", static_cast<double>(stats.segments_scanned));

  auto writer =
      storage::WalWriter::create(env, opts.dir, index->last_seq_ + 1);
  if (!writer.ok()) return writer.status();
  index->env_ = &env;
  index->dir_ = opts.dir;
  index->wal_sync_every_ = std::max<std::size_t>(opts.wal_sync_every, 1);
  index->wal_ = std::move(writer).value();
  if (index->config_.tier.background) {
    index->worker_ = std::thread(&TieredIndex::worker_loop, index.get());
  }
  // Segments restored without a finalized bloom (sealed pre-crash, never
  // finalized) get their summary rebuilt by the first maintenance pass.
  if (index->segment_count() > 0) index->schedule_maintenance();
  if (stats_out != nullptr) *stats_out = stats;
  return index;
}

}  // namespace fast::core
