// Parallel query execution over a FastIndex.
//
// Native side: a thread pool fans independent queries (and their probe
// work) across host cores. Simulated side: per-query probe tasks are
// scheduled onto the modeled cluster/multicore (sim::ClusterModel) to
// produce the latency series of Fig. 4 (concurrent request batches) and
// Fig. 7 (per-query latency vs. core count).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/fast_index.hpp"
#include "sim/cluster_model.hpp"
#include "util/thread_pool.hpp"

namespace fast::core {

struct BatchOptions {
  std::size_t top_k = 10;
  /// Parallel slots of the simulated platform serving the batch
  /// (nodes * cores_per_node of the paper's cluster by default — set from
  /// the index's CostModel when 0).
  std::size_t sim_slots = 0;
};

struct BatchReport {
  std::vector<QueryResult> results;
  double sim_mean_latency_s = 0;  ///< mean request completion time
  double sim_makespan_s = 0;      ///< batch completion time
  double native_wall_s = 0;       ///< host wall-clock for the whole batch
};

class QueryEngine {
 public:
  /// `threads` native worker threads (0 = hardware concurrency).
  explicit QueryEngine(const FastIndex& index, std::size_t threads = 0);

  /// Serves queries over an index recovered from opts.dir: a read-only
  /// deployment (figure regeneration, a query-tier replica) pointed at a
  /// persisted corpus. The engine owns the recovered index.
  static storage::StatusOr<std::unique_ptr<QueryEngine>> open(
      FastConfig config, vision::PcaModel pca, const DurabilityOptions& opts,
      RecoveryStats* stats = nullptr, std::size_t threads = 0);

  /// The index this engine queries (the recovered one for open()).
  const FastIndex& index() const noexcept { return index_; }

  /// Runs a batch of signature queries in parallel and computes the
  /// simulated batch latency under `options.sim_slots` parallel servers.
  BatchReport run_batch(std::span<const hash::SparseSignature> queries,
                        const BatchOptions& options = {});

  /// Full-pipeline variant: raw images enter the batch path, so FE+SM fans
  /// across the pool alongside the probe/rank work (FastIndex::query_batch).
  BatchReport run_image_batch(std::span<const img::Image* const> images,
                              const BatchOptions& options = {});

  /// Simulated latency of one already-executed query on a `cores`-way
  /// multicore: the makespan of its independent probe/rank tasks (Fig. 7).
  static double simulated_query_latency(const QueryResult& result,
                                        std::size_t cores);

 private:
  QueryEngine(std::unique_ptr<FastIndex> owned, std::size_t threads);

  /// Fills the simulated-latency fields from the executed results.
  void finish_report(BatchReport& report, std::size_t sim_slots) const;

  /// Set only by open(); declared before index_ so the reference always
  /// outlives its binding.
  std::unique_ptr<FastIndex> owned_;
  const FastIndex& index_;
  util::ThreadPool pool_;
  util::Counter* batches_ = nullptr;
  util::Histogram* batch_size_ = nullptr;
  util::Histogram* batch_wall_s_ = nullptr;
  util::Gauge* last_sim_mean_s_ = nullptr;
  util::Gauge* last_sim_makespan_s_ = nullptr;
};

}  // namespace fast::core
