// Parallel query execution — and, when writable, the mutating facade the
// network server routes through — over a FastIndex or TieredIndex.
//
// Native side: a thread pool fans independent queries (and their probe
// work) across host cores. Simulated side: per-query probe tasks are
// scheduled onto the modeled cluster/multicore (sim::ClusterModel) to
// produce the latency series of Fig. 4 (concurrent request batches) and
// Fig. 7 (per-query latency vs. core count). The engine serves either
// backend through the same interface — against a tiered index the batch
// runs concurrently with ingest and compaction.
//
// Write facade: an engine constructed over a mutable index (or recovered
// via open(), which owns its index) additionally exposes insert/erase
// passthroughs that route through the config-selected backend, preserving
// WAL durability. Engine-routed writes are bit-identical to calling the
// index directly — tests/server_test.cpp proves it by comparing persisted
// images. Thread-safety matches the backend: TieredIndex synchronizes
// internally, so writes and queries flow straight through; a flat
// FastIndex is single-writer, so a writable flat engine guards the backend
// with a shared_mutex (queries shared, mutations exclusive) exactly like
// ConcurrentFastIndex. Engines over a const index take no locks and stay
// read-only.
#pragma once

#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/fast_index.hpp"
#include "core/tiered_index.hpp"
#include "sim/cluster_model.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fast::core {

struct BatchOptions {
  std::size_t top_k = 10;
  /// Parallel slots of the simulated platform serving the batch
  /// (nodes * cores_per_node of the paper's cluster by default — set from
  /// the index's CostModel when 0).
  std::size_t sim_slots = 0;
};

struct BatchReport {
  std::vector<QueryResult> results;
  double sim_mean_latency_s = 0;  ///< mean request completion time
  double sim_makespan_s = 0;      ///< batch completion time
  double native_wall_s = 0;       ///< host wall-clock for the whole batch
};

/// One engine-routed write: a precomputed signature and its id (the shape
/// mobile clients ship — the server protocol carries exactly this).
struct EngineWrite {
  std::uint64_t id = 0;
  hash::SparseSignature signature;
};

class QueryEngine {
 public:
  /// `threads` native worker threads (0 = hardware concurrency).
  explicit QueryEngine(const FastIndex& index, std::size_t threads = 0);
  explicit QueryEngine(const TieredIndex& index, std::size_t threads = 0);

  /// Writable engines: same query paths, plus the mutating facade below.
  explicit QueryEngine(FastIndex& index, std::size_t threads = 0);
  explicit QueryEngine(TieredIndex& index, std::size_t threads = 0);

  /// Serves queries over an index recovered from opts.dir: a read-only
  /// deployment (figure regeneration, a query-tier replica) pointed at a
  /// persisted corpus. The engine owns the recovered index — flat or
  /// tiered per config.tier.enabled.
  static storage::StatusOr<std::unique_ptr<QueryEngine>> open(
      FastConfig config, vision::PcaModel pca, const DurabilityOptions& opts,
      RecoveryStats* stats = nullptr, std::size_t threads = 0);

  bool is_tiered() const noexcept { return tiered_ != nullptr; }

  /// The flat index this engine queries (the recovered one for open()).
  /// Only valid when !is_tiered().
  const FastIndex& index() const {
    FAST_CHECK_MSG(flat_ != nullptr, "index() on a tiered engine");
    return *flat_;
  }
  /// The tiered index this engine queries. Only valid when is_tiered().
  const TieredIndex& tiered() const {
    FAST_CHECK_MSG(tiered_ != nullptr, "tiered() on a flat engine");
    return *tiered_;
  }

  /// Runs a batch of signature queries in parallel and computes the
  /// simulated batch latency under `options.sim_slots` parallel servers.
  BatchReport run_batch(std::span<const hash::SparseSignature> queries,
                        const BatchOptions& options = {});

  /// Full-pipeline variant: raw images enter the batch path, so FE+SM fans
  /// across the pool alongside the probe/rank work (query_batch).
  BatchReport run_image_batch(std::span<const img::Image* const> images,
                              const BatchOptions& options = {});

  /// Simulated latency of one already-executed query on a `cores`-way
  /// multicore: the makespan of its independent probe/rank tasks (Fig. 7).
  static double simulated_query_latency(const QueryResult& result,
                                        std::size_t cores);

  // --- Mutating facade (writable engines only) ---

  /// True when this engine was built over a mutable index (or via open())
  /// and the passthroughs below are legal.
  bool writable() const noexcept {
    return mut_flat_ != nullptr || mut_tiered_ != nullptr;
  }

  /// Routes one signature insert through the backend; WAL-durable when the
  /// backend is. FAST_CHECKs writable().
  InsertResult insert_signature(std::uint64_t id,
                                const hash::SparseSignature& signature);
  /// Batch variant: items apply in order; per-item results match
  /// insert_signature(). One writer-lock round-trip on a flat backend.
  std::vector<InsertResult> insert_batch(std::span<const EngineWrite> items);
  /// Erases one id; false when unknown. FAST_CHECKs writable().
  bool erase(std::uint64_t id);
  /// Erases each id (skipping unknowns); returns the number erased.
  std::size_t erase_batch(std::span<const std::uint64_t> ids);

  /// One signature query through the backend — the server's unit of work
  /// (run_batch is the bench-facing batch path). Safe to call concurrently
  /// with the mutating facade.
  QueryResult query_signature(const hash::SparseSignature& signature,
                              std::size_t k) const;

  /// Backend config (the server validates wire-signature geometry here).
  const FastConfig& config() const noexcept { return backend_config(); }
  /// The backend's metrics registry; the server registers its instruments
  /// here so one scrape covers pipeline and serving metrics together.
  util::MetricsRegistry& metrics() const noexcept {
    return tiered_ != nullptr ? tiered_->metrics() : flat_->metrics();
  }

  /// Live images in the backend.
  std::size_t size() const;
  /// True when backend mutations are WAL-logged.
  bool durable() const noexcept;
  /// Fsyncs buffered WAL records (group-commit tail); the server calls
  /// this after draining so every acked write is on disk before exit.
  storage::Status sync_wal();
  /// Snapshots the backend (requires a durable, writable engine).
  storage::Status save_snapshot();

 private:
  QueryEngine(std::unique_ptr<FastIndex> owned, std::size_t threads);
  QueryEngine(std::unique_ptr<TieredIndex> owned, std::size_t threads);

  const FastConfig& backend_config() const noexcept {
    return tiered_ != nullptr ? tiered_->config() : flat_->config();
  }

  /// Shared lock over the flat backend when facade writers can race it; an
  /// empty guard otherwise (read-only or tiered engines pay nothing).
  std::shared_lock<std::shared_mutex> reader_guard() const {
    return mut_flat_ != nullptr
               ? std::shared_lock<std::shared_mutex>(rw_mutex_)
               : std::shared_lock<std::shared_mutex>();
  }

  /// Fills the simulated-latency fields from the executed results.
  void finish_report(BatchReport& report, std::size_t sim_slots) const;

  /// Set only by open(); declared before the backend pointers so the
  /// references always outlive their bindings.
  std::unique_ptr<FastIndex> owned_;
  std::unique_ptr<TieredIndex> owned_tiered_;
  const FastIndex* flat_ = nullptr;
  const TieredIndex* tiered_ = nullptr;
  /// Null on read-only engines. The tiered backend synchronizes internally;
  /// the flat one is single-writer and guarded by rw_mutex_.
  FastIndex* mut_flat_ = nullptr;
  TieredIndex* mut_tiered_ = nullptr;
  /// Engaged only when mut_flat_ != nullptr: queries shared, writes
  /// exclusive. Read-only engines never touch it, so the existing
  /// bench/figure paths are lock-free as before.
  mutable std::shared_mutex rw_mutex_;
  util::ThreadPool pool_;
  util::Counter* batches_ = nullptr;
  util::Histogram* batch_size_ = nullptr;
  util::Histogram* batch_wall_s_ = nullptr;
  util::Gauge* last_sim_mean_s_ = nullptr;
  util::Gauge* last_sim_makespan_s_ = nullptr;
};

}  // namespace fast::core
