// Parallel query execution over a FastIndex or TieredIndex.
//
// Native side: a thread pool fans independent queries (and their probe
// work) across host cores. Simulated side: per-query probe tasks are
// scheduled onto the modeled cluster/multicore (sim::ClusterModel) to
// produce the latency series of Fig. 4 (concurrent request batches) and
// Fig. 7 (per-query latency vs. core count). The engine is read-only, so
// it serves either backend through the same interface — against a tiered
// index the batch runs concurrently with ingest and compaction.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/fast_index.hpp"
#include "core/tiered_index.hpp"
#include "sim/cluster_model.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fast::core {

struct BatchOptions {
  std::size_t top_k = 10;
  /// Parallel slots of the simulated platform serving the batch
  /// (nodes * cores_per_node of the paper's cluster by default — set from
  /// the index's CostModel when 0).
  std::size_t sim_slots = 0;
};

struct BatchReport {
  std::vector<QueryResult> results;
  double sim_mean_latency_s = 0;  ///< mean request completion time
  double sim_makespan_s = 0;      ///< batch completion time
  double native_wall_s = 0;       ///< host wall-clock for the whole batch
};

class QueryEngine {
 public:
  /// `threads` native worker threads (0 = hardware concurrency).
  explicit QueryEngine(const FastIndex& index, std::size_t threads = 0);
  explicit QueryEngine(const TieredIndex& index, std::size_t threads = 0);

  /// Serves queries over an index recovered from opts.dir: a read-only
  /// deployment (figure regeneration, a query-tier replica) pointed at a
  /// persisted corpus. The engine owns the recovered index — flat or
  /// tiered per config.tier.enabled.
  static storage::StatusOr<std::unique_ptr<QueryEngine>> open(
      FastConfig config, vision::PcaModel pca, const DurabilityOptions& opts,
      RecoveryStats* stats = nullptr, std::size_t threads = 0);

  bool is_tiered() const noexcept { return tiered_ != nullptr; }

  /// The flat index this engine queries (the recovered one for open()).
  /// Only valid when !is_tiered().
  const FastIndex& index() const {
    FAST_CHECK_MSG(flat_ != nullptr, "index() on a tiered engine");
    return *flat_;
  }
  /// The tiered index this engine queries. Only valid when is_tiered().
  const TieredIndex& tiered() const {
    FAST_CHECK_MSG(tiered_ != nullptr, "tiered() on a flat engine");
    return *tiered_;
  }

  /// Runs a batch of signature queries in parallel and computes the
  /// simulated batch latency under `options.sim_slots` parallel servers.
  BatchReport run_batch(std::span<const hash::SparseSignature> queries,
                        const BatchOptions& options = {});

  /// Full-pipeline variant: raw images enter the batch path, so FE+SM fans
  /// across the pool alongside the probe/rank work (query_batch).
  BatchReport run_image_batch(std::span<const img::Image* const> images,
                              const BatchOptions& options = {});

  /// Simulated latency of one already-executed query on a `cores`-way
  /// multicore: the makespan of its independent probe/rank tasks (Fig. 7).
  static double simulated_query_latency(const QueryResult& result,
                                        std::size_t cores);

 private:
  QueryEngine(std::unique_ptr<FastIndex> owned, std::size_t threads);
  QueryEngine(std::unique_ptr<TieredIndex> owned, std::size_t threads);

  const FastConfig& backend_config() const noexcept {
    return tiered_ != nullptr ? tiered_->config() : flat_->config();
  }

  /// Fills the simulated-latency fields from the executed results.
  void finish_report(BatchReport& report, std::size_t sim_slots) const;

  /// Set only by open(); declared before the backend pointers so the
  /// references always outlive their bindings.
  std::unique_ptr<FastIndex> owned_;
  std::unique_ptr<TieredIndex> owned_tiered_;
  const FastIndex* flat_ = nullptr;
  const TieredIndex* tiered_ = nullptr;
  util::ThreadPool pool_;
  util::Counter* batches_ = nullptr;
  util::Histogram* batch_size_ = nullptr;
  util::Histogram* batch_wall_s_ = nullptr;
  util::Gauge* last_sim_mean_s_ = nullptr;
  util::Gauge* last_sim_makespan_s_ = nullptr;
};

}  // namespace fast::core
