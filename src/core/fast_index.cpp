#include "core/fast_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <limits>
#include <unordered_set>

#include "hash/multi_probe.hpp"
#include "util/check.hpp"
#include "vision/dog_detector.hpp"

namespace fast::core {

namespace {
/// Proactive growth threshold for the per-table cuckoo load factor.
constexpr double kGrowAt = 0.80;
}  // namespace

FastIndex::FastIndex(FastConfig config, vision::PcaModel pca)
    : config_(std::move(config)), pca_(std::move(pca)), lsh_(config_.lsh),
      minhasher_(config_.minhash) {
  FAST_CHECK_MSG(config_.lsh.dim == config_.bloom_bits,
                 "LSH input dim must equal the Bloom summary width");
  const std::size_t n_tables = config_.sa_backend == FastConfig::SaBackend::kPStable
                                   ? config_.lsh.tables
                                   : config_.minhash.bands;
  tables_.reserve(n_tables);
  for (std::size_t t = 0; t < n_tables; ++t) {
    hash::FlatCuckooConfig cc = config_.cuckoo;
    cc.seed = config_.cuckoo.seed + t * 0x9e37ULL;
    tables_.push_back(Table{hash::FlatCuckooTable(cc), {}, cc.seed});
  }
}

hash::SparseSignature FastIndex::summarize(const img::Image& image) const {
  vision::DogConfig dog = config_.dog;
  dog.max_keypoints = config_.max_keypoints;
  const auto keypoints = vision::detect_keypoints(image, dog);

  hash::BloomFilter bloom(config_.bloom_bits, config_.bloom_hashes);
  // Group buffer: [group index, coarse x, coarse y, cell_0, ..., cell_{G-1}].
  std::vector<std::int16_t> cells(3 + config_.quantize_group_dims);
  for (const auto& kp : keypoints) {
    const std::vector<float> desc =
        vision::compute_pca_sift(image, kp, pca_, config_.pca_sift);
    // Whiten each component by its PCA standard deviation so quantization
    // jitter is uniform across dimensions, then hash each group of
    // components as one Bloom item. Descriptors of the same physical
    // feature under near-duplicate perturbations agree on most groups and
    // therefore set mostly identical bits (the paper's "identical features
    // project the same bits"), while unrelated descriptors agree on none.
    const std::size_t g_dims = config_.quantize_group_dims;
    // Coarse spatial cell of the keypoint: near-duplicate shots move
    // keypoints by a few pixels only, while coincidentally similar local
    // structure on a different landmark sits elsewhere in the frame.
    const double spatial = config_.spatial_cell_px;
    cells[1] = static_cast<std::int16_t>(std::lround(kp.x / spatial));
    cells[2] = static_cast<std::int16_t>(std::lround(kp.y / spatial));
    for (std::size_t start = 0; start + g_dims <= desc.size();
         start += g_dims) {
      cells[0] = static_cast<std::int16_t>(start / g_dims);
      for (std::size_t i = 0; i < g_dims; ++i) {
        const float lambda = start + i < pca_.eigenvalues.size()
                                 ? pca_.eigenvalues[start + i]
                                 : 0.0f;
        const float sd = std::sqrt(lambda + 1e-8f);
        cells[3 + i] = static_cast<std::int16_t>(
            std::lround(desc[start + i] / (sd * config_.quantize_cell)));
      }
      bloom.insert(cells.data(), cells.size() * sizeof(cells[0]));
    }
  }
  return hash::SparseSignature(bloom);
}

void FastIndex::calibrate_scale(
    std::span<const hash::SparseSignature> sample_queries,
    std::span<const hash::SparseSignature> corpus_sample) {
  FAST_CHECK_MSG(size() == 0, "calibrate before inserting");
  if (sample_queries.empty() || corpus_sample.empty()) return;
  // The paper tunes R to the typical distance between a queried point and
  // its nearest neighbor (§IV-A2, the sampling method of the original LSH
  // study). We measure exactly that — each sample query's NN distance in
  // the corpus sample — and choose the LSH input scale that places the
  // median of those distances at calibrate_target * omega.
  std::vector<double> nn;
  nn.reserve(sample_queries.size());
  for (const auto& q : sample_queries) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& c : corpus_sample) {
      const double d =
          static_cast<double>(hash::SparseSignature::hamming(q, c));
      best = std::min(best, d);
    }
    if (std::isfinite(best)) nn.push_back(std::sqrt(best));
  }
  FAST_CHECK(!nn.empty());
  std::nth_element(nn.begin(), nn.begin() + nn.size() / 2, nn.end());
  const double median_nn = std::max(nn[nn.size() / 2], 1.0);
  config_.lsh_input_scale =
      config_.calibrate_target * config_.lsh.omega / median_nn;
}

std::vector<std::uint64_t> FastIndex::table_keys(
    const hash::SparseSignature& signature,
    std::vector<std::vector<std::uint64_t>>* probes) const {
  std::vector<std::uint64_t> keys(tables_.size());
  if (probes != nullptr) probes->assign(tables_.size(), {});

  if (config_.sa_backend == FastConfig::SaBackend::kPStable) {
    std::vector<float> dense = signature.to_float_vector();
    const auto scale = static_cast<float>(config_.lsh_input_scale);
    for (float& x : dense) x *= scale;
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const hash::BucketCoords home = lsh_.bucket_coords(t, dense);
      keys[t] = lsh_.bucket_key(t, home);
      if (probes != nullptr && config_.probe_depth > 0) {
        auto& probe_keys = (*probes)[t];
        for (const hash::BucketCoords& p :
             hash::probe_sequence(home, config_.probe_depth)) {
          probe_keys.push_back(lsh_.bucket_key(t, p));
        }
      }
    }
  } else {
    const auto mh = minhasher_.minhashes(signature);
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      keys[t] = minhasher_.band_key(t, mh);
      if (probes != nullptr && config_.minhash_multiprobe) {
        (*probes)[t] = minhasher_.probe_keys(t, mh);
      }
    }
  }
  return keys;
}

void FastIndex::maybe_grow(std::size_t t) {
  Table& table = tables_[t];
  if (table.cuckoo.load_factor() < kGrowAt) return;
  std::size_t capacity = table.cuckoo.capacity() * 2;
  for (;;) {
    table.seed = hash::mix64(table.seed + 1);
    hash::FlatCuckooConfig cc = config_.cuckoo;
    cc.capacity = capacity;
    cc.seed = table.seed;
    hash::FlatCuckooTable rebuilt(cc);
    bool ok = true;
    for (const auto& [k, g] : table.entries) {
      if (!rebuilt.insert(k, g)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      table.cuckoo = std::move(rebuilt);
      return;
    }
    capacity *= 2;
  }
}

std::size_t FastIndex::place_with_rehash(std::size_t t, std::uint64_t key,
                                         std::uint64_t group) {
  maybe_grow(t);
  Table& table = tables_[t];
  table.entries.emplace_back(key, group);
  if (table.cuckoo.insert(key, group)) return 0;

  // Rehash loop: rebuild this table's cuckoo with a fresh seed (same
  // capacity first; double it if even a fresh seed cannot place everything,
  // which only happens near 100% load).
  std::size_t events = 0;
  std::size_t capacity = table.cuckoo.capacity();
  for (;;) {
    ++events;
    table.seed = hash::mix64(table.seed + 1);
    hash::FlatCuckooConfig cc = config_.cuckoo;
    cc.capacity = capacity;
    cc.seed = table.seed;
    hash::FlatCuckooTable rebuilt(cc);
    bool ok = true;
    for (const auto& [k, g] : table.entries) {
      if (!rebuilt.insert(k, g)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      table.cuckoo = std::move(rebuilt);
      return events;
    }
    capacity *= 2;
  }
}

InsertResult FastIndex::insert(std::uint64_t id, const img::Image& image) {
  InsertResult result;
  result.cost.charge(config_.feature_extract_s);
  const hash::SparseSignature sig = summarize(image);
  // Bloom hashing cost: k hash ops per descriptor group.
  result.cost.charge_hash(config_.cost.hash_op_s,
                          config_.max_keypoints * config_.bloom_hashes);
  InsertResult stored = insert_signature(id, sig);
  stored.cost.merge(result.cost);
  return stored;
}

InsertResult FastIndex::insert_signature(
    std::uint64_t id, const hash::SparseSignature& signature) {
  InsertResult result;
  FAST_CHECK(signature.bit_count() == config_.bloom_bits);

  // SA hashing cost: p-stable projections or minwise passes.
  if (config_.sa_backend == FastConfig::SaBackend::kPStable) {
    result.cost.charge_flops(
        config_.cost.flop_s,
        config_.lsh.tables * config_.lsh.hashes_per_table * config_.lsh.dim);
  } else {
    // Minwise hashing streams every set bit through each hash's mixer.
    result.cost.charge_hash(config_.cost.mix_op_s,
                            signature.popcount() * minhasher_.hash_count());
  }

  const std::vector<std::uint64_t> keys = table_keys(signature, nullptr);
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    result.cost.charge_ram(config_.cost.ram_access_s,
                           tables_[t].cuckoo.probes_per_lookup());
    if (const auto group = tables_[t].cuckoo.find(keys[t])) {
      groups_[*group].push_back(id);
    } else {
      const std::uint64_t group_id = groups_.size();
      groups_.emplace_back(std::vector<std::uint64_t>{id});
      const std::size_t events = place_with_rehash(t, keys[t], group_id);
      result.rehashes += events;
      rehashes_ += events;
      if (events > 0) result.ok = false;
      result.cost.charge_ram(config_.cost.ram_access_s,
                             tables_[t].cuckoo.probes_per_lookup());
    }
  }
  signatures_.emplace(id, signature);
  return result;
}

bool FastIndex::erase(std::uint64_t id) {
  const auto it = signatures_.find(id);
  if (it == signatures_.end()) return false;
  const std::vector<std::uint64_t> keys = table_keys(it->second, nullptr);
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    if (const auto group = tables_[t].cuckoo.find(keys[t])) {
      auto& members = groups_[*group];
      members.erase(std::remove(members.begin(), members.end(), id),
                    members.end());
      // An emptied group's bucket key is dropped so queries stop probing
      // it. (The append-only rebuild log keeps the mapping; a rebuilt table
      // would resurrect the key pointing at an empty group — harmless.)
      if (members.empty()) tables_[t].cuckoo.erase(keys[t]);
    }
  }
  signatures_.erase(it);
  return true;
}

namespace {
constexpr char kMagic[8] = {'F', 'A', 'S', 'T', 'i', 'd', 'x', '1'};
}

void FastIndex::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("FastIndex::save: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  const auto bloom_bits = static_cast<std::uint64_t>(config_.bloom_bits);
  const auto count = static_cast<std::uint64_t>(signatures_.size());
  out.write(reinterpret_cast<const char*>(&bloom_bits), sizeof(bloom_bits));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [id, sig] : signatures_) {
    const std::vector<std::uint8_t> encoded = sig.encode();
    const auto len = static_cast<std::uint32_t>(encoded.size());
    out.write(reinterpret_cast<const char*>(&id), sizeof(id));
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(reinterpret_cast<const char*>(encoded.data()), len);
  }
  if (!out) throw std::runtime_error("FastIndex::save: write failed");
}

FastIndex FastIndex::load(const std::string& path, FastConfig config,
                          vision::PcaModel pca) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("FastIndex::load: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("FastIndex::load: bad magic");
  }
  std::uint64_t bloom_bits = 0, count = 0;
  in.read(reinterpret_cast<char*>(&bloom_bits), sizeof(bloom_bits));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || bloom_bits != config.bloom_bits) {
    throw std::runtime_error(
        "FastIndex::load: bloom geometry mismatch or truncated header");
  }
  FastIndex index(std::move(config), std::move(pca));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    std::uint32_t len = 0;
    in.read(reinterpret_cast<char*>(&id), sizeof(id));
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    std::vector<std::uint8_t> buffer(len);
    in.read(reinterpret_cast<char*>(buffer.data()), len);
    if (!in) throw std::runtime_error("FastIndex::load: truncated record");
    index.insert_signature(id, hash::SparseSignature::decode(buffer));
  }
  return index;
}

QueryResult FastIndex::query(const img::Image& image, std::size_t k) const {
  QueryResult pre;
  pre.cost.charge(config_.feature_extract_s);
  const hash::SparseSignature sig = summarize(image);
  pre.cost.charge_hash(config_.cost.hash_op_s,
                       config_.max_keypoints * config_.bloom_hashes);
  QueryResult result = query_signature(sig, k);
  result.cost.merge(pre.cost);
  // Feature extraction parallelizes across interest points: expose it as
  // max_keypoints independent task chunks for the multicore model.
  const double fe_chunk =
      config_.feature_extract_s / static_cast<double>(config_.max_keypoints);
  for (std::size_t i = 0; i < config_.max_keypoints; ++i) {
    result.parallel_tasks.push_back(fe_chunk);
  }
  return result;
}

QueryResult FastIndex::query_signature(const hash::SparseSignature& signature,
                                       std::size_t k) const {
  QueryResult result;
  FAST_CHECK(signature.bit_count() == config_.bloom_bits);

  std::vector<std::vector<std::uint64_t>> probes;
  const std::vector<std::uint64_t> keys = table_keys(signature, &probes);

  // Collect candidates from the home bucket plus the probe buckets of
  // every table. Each cuckoo lookup is a fixed 2W-slot read; the per-table
  // work items are independent (flat addressing -> Fig. 7 parallelism).
  std::unordered_set<std::uint64_t> candidate_ids;
  const double hash_cost =
      config_.sa_backend == FastConfig::SaBackend::kPStable
          ? config_.cost.flop_s * static_cast<double>(
                config_.lsh.hashes_per_table * config_.lsh.dim)
          : config_.cost.mix_op_s *
                static_cast<double>(signature.popcount() *
                                    config_.minhash.band_size);
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    std::size_t table_probes = 0;
    auto probe_bucket = [&](std::uint64_t key) {
      ++result.bucket_probes;
      ++table_probes;
      if (const auto group = tables_[t].cuckoo.find(key)) {
        for (const std::uint64_t id : groups_[*group]) {
          candidate_ids.insert(id);
        }
      }
    };
    probe_bucket(keys[t]);
    for (const std::uint64_t pk : probes[t]) probe_bucket(pk);

    const double probe_cost =
        config_.cost.ram_access_s *
        static_cast<double>(table_probes *
                            tables_[t].cuckoo.probes_per_lookup());
    result.cost.charge(hash_cost);
    result.cost.charge_ram(
        config_.cost.ram_access_s,
        table_probes * tables_[t].cuckoo.probes_per_lookup());
    result.parallel_tasks.push_back(hash_cost + probe_cost);
  }

  // Rank candidates by signature similarity (sparse-domain Jaccard).
  result.candidates = candidate_ids.size();
  result.hits.reserve(candidate_ids.size());
  for (const std::uint64_t id : candidate_ids) {
    const auto it = signatures_.find(id);
    FAST_CHECK(it != signatures_.end());
    result.hits.push_back(
        ScoredId{id, hash::SparseSignature::jaccard(signature, it->second)});
  }
  // Ranking cost: one sparse-overlap merge per candidate. Each merge is an
  // independent unit of parallel work (Fig. 7).
  result.cost.charge_ram(config_.cost.ram_access_s, candidate_ids.size());
  for (std::size_t c = 0; c < candidate_ids.size(); ++c) {
    result.parallel_tasks.push_back(config_.cost.ram_access_s);
  }

  const std::size_t keep = std::min(k, result.hits.size());
  std::partial_sort(result.hits.begin(),
                    result.hits.begin() + static_cast<std::ptrdiff_t>(keep),
                    result.hits.end(),
                    [](const ScoredId& a, const ScoredId& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;  // deterministic tie-break
                    });
  result.hits.resize(keep);
  return result;
}

const hash::SparseSignature* FastIndex::signature_of(std::uint64_t id) const {
  const auto it = signatures_.find(id);
  return it == signatures_.end() ? nullptr : &it->second;
}

std::size_t FastIndex::index_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [id, sig] : signatures_) {
    bytes += sizeof(id) + sig.storage_bytes();
  }
  for (const Table& t : tables_) {
    bytes += t.cuckoo.capacity() * (sizeof(std::uint64_t) * 2 + 1);
  }
  for (const auto& group : groups_) {
    bytes += sizeof(std::uint64_t) * group.size() + sizeof(std::uint64_t);
  }
  if (config_.sa_backend == FastConfig::SaBackend::kPStable) {
    // LSH parameters: L*M a-vectors of dim floats + offsets.
    bytes += config_.lsh.tables * config_.lsh.hashes_per_table *
             (config_.lsh.dim * sizeof(float) + sizeof(float));
  } else {
    bytes += minhasher_.hash_count() * sizeof(std::uint64_t);
  }
  return bytes;
}

hash::CuckooStats FastIndex::cuckoo_stats() const {
  hash::CuckooStats total;
  for (const Table& t : tables_) {
    const hash::CuckooStats& s = t.cuckoo.stats();
    total.inserts += s.inserts;
    total.failures += s.failures;
    total.total_kicks += s.total_kicks;
    total.max_kick_chain = std::max(total.max_kick_chain, s.max_kick_chain);
  }
  return total;
}

}  // namespace fast::core
