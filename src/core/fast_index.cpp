#include "core/fast_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "core/pipeline/factory.hpp"
#include "util/check.hpp"
#include "util/codec.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fast::core {

FastIndex::FastIndex(FastConfig config, vision::PcaModel pca)
    : FastIndex(config, pipeline::make_summarizer(config, std::move(pca)),
                pipeline::make_aggregator(config), nullptr) {}

FastIndex::FastIndex(FastConfig config,
                     std::unique_ptr<pipeline::Summarizer> summarizer,
                     std::unique_ptr<pipeline::SemanticAggregator> aggregator,
                     std::unique_ptr<pipeline::GroupStore> store)
    : config_(std::move(config)), summarizer_(std::move(summarizer)),
      aggregator_(std::move(aggregator)), store_(std::move(store)) {
  FAST_CHECK_MSG(config_.lsh.dim == config_.bloom_bits,
                 "LSH input dim must equal the Bloom summary width");
  FAST_CHECK_MSG(summarizer_ != nullptr && aggregator_ != nullptr,
                 "pipeline stages must be non-null");
  FAST_CHECK_MSG(summarizer_->signature_bits() == config_.bloom_bits,
                 "summarizer width must match the configured Bloom width");
  if (store_ == nullptr) {
    store_ = pipeline::make_group_store(config_, aggregator_->table_count());
  }
  FAST_CHECK_MSG(store_->table_count() == aggregator_->table_count(),
                 "SA and CHS stages must agree on the table count");
  init_metrics();
}

void FastIndex::init_metrics() {
  metrics_ = std::make_shared<util::MetricsRegistry>();
  util::MetricsRegistry& r = *metrics_;
  m_.fe_sm_images = &r.counter("fe_sm.images");
  m_.fe_sm_summarize_s = &r.latency_histogram("fe_sm.summarize_s");
  m_.inserts = &r.counter("index.inserts");
  m_.erases = &r.counter("index.erases");
  m_.queries = &r.counter("index.queries");
  m_.insert_sim_s = &r.latency_histogram("index.insert_sim_s");
  m_.query_sim_s = &r.latency_histogram("index.query_sim_s");
  m_.sa_keys_derived = &r.counter("sa.keys_derived");
  m_.sa_insert_hash_ops = &r.counter("sa.insert_hash_ops");
  m_.sa_keys_wall_s = &r.latency_histogram("sa.keys_wall_s");
  m_.sa_probe_keys = &r.count_histogram("sa.probe_keys_per_query");
  m_.chs_group_hits = &r.counter("chs.group_hits");
  m_.chs_group_creates = &r.counter("chs.group_creates");
  m_.chs_rehash_events = &r.counter("chs.rehash_events");
  m_.chs_slot_reads = &r.counter("chs.slot_reads");
  m_.chs_fingerprint_false_hits = &r.counter("chs.fingerprint_false_hits");
  m_.chs_bucket_probes = &r.count_histogram("chs.bucket_probes_per_query");
  m_.chs_candidates = &r.count_histogram("chs.candidates_per_query");
  m_.chs_load_factor = &r.gauge("chs.load_factor");
  m_.chs_occupied_slots = &r.gauge("chs.occupied_slots");
  m_.chs_capacity_slots = &r.gauge("chs.capacity_slots");
  m_.chs_insert_failures = &r.gauge("chs.insert_failures");
  m_.chs_total_kicks = &r.gauge("chs.total_kicks");
  m_.chs_max_kick_chain = &r.gauge("chs.max_kick_chain");
  m_.chs_store_bytes = &r.gauge("chs.store_bytes");
  m_.index_size = &r.gauge("index.size");
  m_.index_groups = &r.gauge("index.groups");
  m_.wal_appends = &r.counter("wal.appends");
  m_.wal_bytes = &r.counter("wal.bytes");
  m_.wal_syncs = &r.counter("wal.syncs");
  m_.snapshot_write_s = &r.latency_histogram("snapshot.write_s");
  m_.snapshot_bytes = &r.gauge("snapshot.bytes");
  m_.recovery_replayed_records = &r.counter("recovery.replayed_records");
  m_.recovery_snapshots_skipped = &r.counter("recovery.snapshots_skipped");
}

void FastIndex::publish_storage_gauges() {
  const hash::CuckooStats s = store_->stats();
  m_.chs_occupied_slots->set(static_cast<double>(s.occupied_slots));
  m_.chs_capacity_slots->set(static_cast<double>(s.capacity_slots));
  m_.chs_load_factor->set(s.capacity_slots == 0
                              ? 0.0
                              : static_cast<double>(s.occupied_slots) /
                                    static_cast<double>(s.capacity_slots));
  m_.chs_insert_failures->set(static_cast<double>(s.failures));
  m_.chs_total_kicks->set(static_cast<double>(s.total_kicks));
  m_.chs_max_kick_chain->set(static_cast<double>(s.max_kick_chain));
  m_.chs_store_bytes->set(static_cast<double>(store_->store_bytes()));
  m_.index_size->set(static_cast<double>(signatures_.size()));
  m_.index_groups->set(static_cast<double>(groups_.size()));
}

hash::SparseSignature FastIndex::summarize(const img::Image& image) const {
  util::TraceSpan span("fe_sm.summarize");
  util::WallTimer timer;
  hash::SparseSignature sig = summarizer_->summarize(image);
  m_.fe_sm_images->add();
  m_.fe_sm_summarize_s->observe(timer.elapsed_seconds());
  return sig;
}

sim::SimClock FastIndex::frontend_insert_cost() const noexcept {
  sim::SimClock clock;
  clock.charge(config_.feature_extract_s);
  // Bloom hashing cost: k hash ops per descriptor group.
  clock.charge_hash(config_.cost.hash_op_s,
                    config_.max_keypoints * config_.bloom_hashes);
  return clock;
}

void FastIndex::calibrate_scale(
    std::span<const hash::SparseSignature> sample_queries,
    std::span<const hash::SparseSignature> corpus_sample,
    util::ThreadPool* pool) {
  FAST_CHECK_MSG(size() == 0, "calibrate before inserting");
  if (sample_queries.empty() || corpus_sample.empty()) return;
  // The paper tunes R to the typical distance between a queried point and
  // its nearest neighbor (§IV-A2, the sampling method of the original LSH
  // study). We measure exactly that — each sample query's NN distance in
  // the corpus sample — and choose the LSH input scale that places the
  // median of those distances at calibrate_target * omega. The per-query
  // scans share no state, so the O(Q*C) sweep fans across the pool.
  std::vector<double> best(sample_queries.size());
  const auto nn_of = [&](std::size_t i) {
    double b = std::numeric_limits<double>::infinity();
    for (const auto& c : corpus_sample) {
      const double d = static_cast<double>(
          hash::SparseSignature::hamming(sample_queries[i], c));
      b = std::min(b, d);
    }
    best[i] = b;
  };
  if (pool != nullptr && sample_queries.size() > 1) {
    pool->parallel_for(sample_queries.size(), nn_of);
  } else {
    for (std::size_t i = 0; i < sample_queries.size(); ++i) nn_of(i);
  }
  // Collect in query order so the median is identical either way.
  std::vector<double> nn;
  nn.reserve(best.size());
  for (const double b : best) {
    if (std::isfinite(b)) nn.push_back(std::sqrt(b));
  }
  FAST_CHECK(!nn.empty());
  std::nth_element(nn.begin(), nn.begin() + nn.size() / 2, nn.end());
  const double median_nn = std::max(nn[nn.size() / 2], 1.0);
  config_.lsh_input_scale =
      config_.calibrate_target * config_.lsh.omega / median_nn;
  aggregator_->set_input_scale(config_.lsh_input_scale);
}

InsertResult FastIndex::insert(std::uint64_t id, const img::Image& image) {
  util::TraceSpan span("insert.image");
  const hash::SparseSignature sig = summarize(image);
  InsertResult stored = insert_signature(id, sig);
  stored.cost.merge(frontend_insert_cost());
  return stored;
}

InsertResult FastIndex::insert_signature(
    std::uint64_t id, const hash::SparseSignature& signature) {
  util::TraceSpan span("insert");
  // Log before apply: if the record cannot be made durable (wal_log
  // throws), the in-memory state is untouched and recovery sees a
  // consistent prefix of acknowledged mutations.
  if (durable()) wal_log(storage::kWalRecordInsert, id, signature.encode());
  InsertResult result = apply_insert(id, signature);
  span.attr("rehash_events", static_cast<double>(result.rehashes));
  return result;
}

InsertResult FastIndex::apply_insert(
    std::uint64_t id, const hash::SparseSignature& signature) {
  InsertResult result;
  FAST_CHECK(signature.bit_count() == config_.bloom_bits);

  // Re-insert replaces (erase-then-insert): the stale signature leaves the
  // index and the id exits its old groups first, so it never appears twice
  // in a membership list and queries rank against the fresh signature.
  // (apply_erase, not erase: replay of this insert record redoes the
  // eviction, so it must not be logged separately.)
  if (signatures_.find(id) != signatures_.end()) apply_erase(id);

  // SA hashing cost: p-stable projections or minwise passes, in the
  // aggregator's cost domain.
  const std::size_t sa_ops = aggregator_->insert_hash_ops(signature);
  if (aggregator_->cost_domain() ==
      pipeline::SemanticAggregator::CostDomain::kFlops) {
    result.cost.charge_flops(config_.cost.flop_s, sa_ops);
  } else {
    result.cost.charge_hash(config_.cost.mix_op_s, sa_ops);
  }

  util::WallTimer keys_timer;
  std::vector<std::uint64_t> keys;
  {
    util::TraceSpan keys_span("sa.keys");
    keys = aggregator_->keys(signature, nullptr);
    keys_span.attr("keys", static_cast<double>(keys.size()));
  }
  m_.sa_keys_wall_s->observe(keys_timer.elapsed_seconds());
  m_.sa_keys_derived->add(keys.size());
  m_.sa_insert_hash_ops->add(sa_ops);
  {
    util::TraceSpan place_span("chs.place");
    std::size_t slot_reads = 0;
    hash::ProbeProfile probe_profile;
    for (std::size_t t = 0; t < keys.size(); ++t) {
      std::size_t lookup_probes = 0;
      const auto group =
          store_->find(t, keys[t], &lookup_probes, &probe_profile);
      result.cost.charge_ram(config_.cost.ram_access_s, lookup_probes);
      slot_reads += lookup_probes;
      m_.chs_slot_reads->add(lookup_probes);
      if (group) {
        groups_[*group].push_back(id);
        m_.chs_group_hits->add();
      } else {
        const std::uint64_t group_id = groups_.size();
        groups_.emplace_back(std::vector<std::uint64_t>{id});
        const std::size_t events = store_->place(t, keys[t], group_id);
        result.rehashes += events;
        rehashes_ += events;
        if (events > 0) result.ok = false;
        result.cost.charge_ram(config_.cost.ram_access_s,
                               store_->lookup_cost_probes(t));
        m_.chs_group_creates->add();
        m_.chs_rehash_events->add(events);
      }
    }
    place_span.attr("tables", static_cast<double>(keys.size()));
    place_span.attr("slot_reads", static_cast<double>(slot_reads));
    place_span.attr("rehash_events", static_cast<double>(result.rehashes));
    if (probe_profile.fingerprint_false_hits != 0) {
      m_.chs_fingerprint_false_hits->add(probe_profile.fingerprint_false_hits);
    }
  }
  signatures_.emplace(id, signature);
  m_.inserts->add();
  m_.insert_sim_s->observe(result.cost.elapsed_s());
  publish_storage_gauges();
  return result;
}

std::vector<hash::SparseSignature> FastIndex::summarize_batch(
    std::span<const img::Image* const> images, util::ThreadPool* pool) const {
  std::vector<hash::SparseSignature> sigs(images.size());
  if (pool != nullptr && images.size() > 1) {
    pool->parallel_for(images.size(), [&](std::size_t i) {
      sigs[i] = summarize(*images[i]);
    });
  } else {
    for (std::size_t i = 0; i < images.size(); ++i) {
      sigs[i] = summarize(*images[i]);
    }
  }
  return sigs;
}

std::vector<InsertResult> FastIndex::insert_batch(
    std::span<const BatchImage> items, util::ThreadPool* pool) {
  // Stage split: FE+SM for the whole batch first (embarrassingly parallel,
  // no index state touched), then placement in item order — the same final
  // state and per-item costs as sequential insert() calls.
  std::vector<const img::Image*> images(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) images[i] = items[i].image;
  const std::vector<hash::SparseSignature> sigs =
      summarize_batch(images, pool);

  util::TraceSpan span("insert_batch.place");
  span.attr("items", static_cast<double>(items.size()));
  std::vector<InsertResult> results;
  results.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    InsertResult stored = insert_signature(items[i].id, sigs[i]);
    stored.cost.merge(frontend_insert_cost());
    results.push_back(std::move(stored));
  }
  return results;
}

bool FastIndex::erase(std::uint64_t id) {
  util::TraceSpan span("erase");
  // An unknown id is a no-op; logging it would bloat the WAL for nothing.
  if (signatures_.find(id) == signatures_.end()) return false;
  if (durable()) wal_log(storage::kWalRecordErase, id, {});
  return apply_erase(id);
}

bool FastIndex::apply_erase(std::uint64_t id) {
  const auto it = signatures_.find(id);
  if (it == signatures_.end()) return false;
  m_.erases->add();
  util::WallTimer keys_timer;
  std::vector<std::uint64_t> keys;
  {
    util::TraceSpan keys_span("sa.keys");
    keys = aggregator_->keys(it->second, nullptr);
    keys_span.attr("keys", static_cast<double>(keys.size()));
  }
  m_.sa_keys_wall_s->observe(keys_timer.elapsed_seconds());
  for (std::size_t t = 0; t < keys.size(); ++t) {
    if (const auto group = store_->find(t, keys[t])) {
      auto& members = groups_[*group];
      members.erase(std::remove(members.begin(), members.end(), id),
                    members.end());
      // An emptied group's bucket key is dropped so queries stop probing
      // it. (Flat-cuckoo rebuild logs keep the mapping; a rebuilt table
      // would resurrect the key pointing at an empty group — harmless.)
      if (members.empty()) store_->erase_key(t, keys[t]);
    }
  }
  signatures_.erase(it);
  publish_storage_gauges();
  return true;
}

namespace {
constexpr char kMagic[8] = {'F', 'A', 'S', 'T', 'i', 'd', 'x', '1'};
}

void FastIndex::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("FastIndex::save: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  const auto bloom_bits = static_cast<std::uint64_t>(config_.bloom_bits);
  const auto count = static_cast<std::uint64_t>(signatures_.size());
  out.write(reinterpret_cast<const char*>(&bloom_bits), sizeof(bloom_bits));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [id, sig] : signatures_) {
    const std::vector<std::uint8_t> encoded = sig.encode();
    const auto len = static_cast<std::uint32_t>(encoded.size());
    out.write(reinterpret_cast<const char*>(&id), sizeof(id));
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(reinterpret_cast<const char*>(encoded.data()), len);
  }
  if (!out) throw std::runtime_error("FastIndex::save: write failed");
}

FastIndex FastIndex::load(const std::string& path, FastConfig config,
                          vision::PcaModel pca) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("FastIndex::load: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("FastIndex::load: bad magic");
  }
  std::uint64_t bloom_bits = 0, count = 0;
  in.read(reinterpret_cast<char*>(&bloom_bits), sizeof(bloom_bits));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || bloom_bits != config.bloom_bits) {
    throw std::runtime_error(
        "FastIndex::load: bloom geometry mismatch or truncated header");
  }
  FastIndex index(std::move(config), std::move(pca));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    std::uint32_t len = 0;
    in.read(reinterpret_cast<char*>(&id), sizeof(id));
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    std::vector<std::uint8_t> buffer(len);
    in.read(reinterpret_cast<char*>(buffer.data()), len);
    if (!in) throw std::runtime_error("FastIndex::load: truncated record");
    index.insert_signature(id, hash::SparseSignature::decode(buffer));
  }
  return index;
}

// --- Durability: snapshot + WAL ------------------------------------------

namespace {

void fp_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;  // FNV-1a 64-bit prime
  }
}

void fp_mix_f64(std::uint64_t& h, double v) {
  fp_mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t config_fingerprint(const FastConfig& c) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  fp_mix(h, c.bloom_bits);
  fp_mix(h, c.bloom_hashes);
  fp_mix(h, c.quantize_group_dims);
  fp_mix_f64(h, static_cast<double>(c.quantize_cell));
  fp_mix_f64(h, c.spatial_cell_px);
  fp_mix(h, static_cast<std::uint64_t>(c.sa_backend));
  fp_mix(h, c.lsh.dim);
  fp_mix(h, c.lsh.tables);
  fp_mix(h, c.lsh.hashes_per_table);
  fp_mix_f64(h, c.lsh.omega);
  fp_mix(h, c.lsh.seed);
  fp_mix(h, c.minhash.bands);
  fp_mix(h, c.minhash.band_size);
  fp_mix(h, c.minhash.seed);
  fp_mix(h, c.minhash_multiprobe ? 1 : 0);
  fp_mix(h, static_cast<std::uint64_t>(c.probe_depth));
  fp_mix(h, static_cast<std::uint64_t>(c.chs_backend));
  fp_mix(h, c.cuckoo.capacity);
  fp_mix(h, c.cuckoo.window);
  fp_mix(h, c.cuckoo.max_kicks);
  fp_mix(h, c.cuckoo.seed);
  fp_mix(h, c.chained_buckets);
  // Tiered directories carry a manifest + per-segment sections that a flat
  // open cannot interpret (and vice versa), so the layout flavor is part of
  // the fingerprint. Mixed only when enabled to keep every pre-tier
  // fingerprint (golden fixtures, existing directories) unchanged.
  if (c.tier.enabled) fp_mix(h, 0x7157);
  return h;
}

storage::Status FastIndex::sync_wal() {
  if (!durable() || appends_since_sync_ == 0) return storage::Status{};
  storage::Status s = wal_->sync();
  if (s.ok()) {
    appends_since_sync_ = 0;
    m_.wal_syncs->add();
  }
  return s;
}

void FastIndex::wal_log(std::uint8_t type, std::uint64_t id,
                        std::span<const std::uint8_t> payload) {
  const std::uint64_t seq = wal_->next_seq();
  storage::Status s = wal_->append(type, id, payload);
  if (s.ok() && ++appends_since_sync_ >= wal_sync_every_) {
    s = wal_->sync();
    if (s.ok()) {
      appends_since_sync_ = 0;
      m_.wal_syncs->add();
    }
  }
  if (!s.ok()) throw storage::IoError(std::move(s));
  m_.wal_appends->add();
  // Frame overhead (crc + len) plus the fixed body prefix (seq, type, id).
  m_.wal_bytes->add(4 + 4 + 8 + 1 + 8 + payload.size());
  last_seq_ = seq;
}

storage::SnapshotFile FastIndex::build_snapshot() const {
  storage::SnapshotFile snapshot;
  snapshot.config_fingerprint = config_fingerprint(config_);
  snapshot.last_seq = last_seq_;

  util::ByteWriter params;
  params.f64(config_.lsh_input_scale);
  params.u64(rehashes_);
  snapshot.sections.push_back({storage::kSectionParams, params.take()});

  // Signatures in id order: the image is a pure function of index content,
  // never of unordered_map iteration order.
  std::vector<std::uint64_t> ids;
  ids.reserve(signatures_.size());
  for (const auto& entry : signatures_) ids.push_back(entry.first);
  std::sort(ids.begin(), ids.end());
  util::ByteWriter sigs;
  sigs.u64(ids.size());
  for (const std::uint64_t id : ids) {
    sigs.u64(id);
    sigs.blob(signatures_.at(id).encode());
  }
  snapshot.sections.push_back({storage::kSectionSignatures, sigs.take()});

  util::ByteWriter groups;
  groups.u64(groups_.size());
  for (const auto& members : groups_) {
    groups.u64(members.size());
    for (const std::uint64_t id : members) groups.u64(id);
  }
  snapshot.sections.push_back({storage::kSectionGroups, groups.take()});

  util::ByteWriter store;
  store_->serialize(store);
  // The compact backend publishes its store under a distinct section id so
  // readers built before it existed fail the section lookup outright (on
  // top of the chs_backend term in the config fingerprint).
  const std::uint32_t store_section =
      config_.chs_backend == FastConfig::ChsBackend::kCompactFlatCuckoo
          ? storage::kSectionStoreCompact
          : storage::kSectionStore;
  snapshot.sections.push_back({store_section, store.take()});
  return snapshot;
}

bool FastIndex::restore_snapshot(const storage::SnapshotFile& snapshot) {
  const auto* params = snapshot.find(storage::kSectionParams);
  const auto* sigs = snapshot.find(storage::kSectionSignatures);
  const auto* groups = snapshot.find(storage::kSectionGroups);
  const auto* store = snapshot.find(
      config_.chs_backend == FastConfig::ChsBackend::kCompactFlatCuckoo
          ? storage::kSectionStoreCompact
          : storage::kSectionStore);
  if (params == nullptr || sigs == nullptr || groups == nullptr ||
      store == nullptr) {
    return false;
  }

  util::ByteReader pr{std::span(params->payload)};
  const double input_scale = pr.f64();
  const std::uint64_t rehashes = pr.u64();
  if (!pr.ok()) return false;

  util::ByteReader sr{std::span(sigs->payload)};
  const std::uint64_t count = sr.u64();
  std::unordered_map<std::uint64_t, hash::SparseSignature> restored_sigs;
  restored_sigs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = sr.u64();
    const auto encoded = sr.blob();
    if (!sr.ok()) return false;
    try {
      hash::SparseSignature sig = hash::SparseSignature::decode(encoded);
      if (sig.bit_count() != config_.bloom_bits) return false;
      restored_sigs.emplace(id, std::move(sig));
    } catch (const std::runtime_error&) {
      return false;
    }
  }

  util::ByteReader gr{std::span(groups->payload)};
  const std::uint64_t group_count = gr.u64();
  if (!gr.ok() || group_count > gr.remaining() / 8) return false;
  std::vector<std::vector<std::uint64_t>> restored_groups;
  restored_groups.reserve(group_count);
  for (std::uint64_t g = 0; g < group_count; ++g) {
    const std::uint64_t members = gr.u64();
    if (!gr.ok() || members > gr.remaining() / 8) return false;
    std::vector<std::uint64_t> list;
    list.reserve(members);
    for (std::uint64_t i = 0; i < members; ++i) list.push_back(gr.u64());
    restored_groups.push_back(std::move(list));
  }
  if (!gr.ok()) return false;

  util::ByteReader str{std::span(store->payload)};
  if (!store_->deserialize(str)) return false;

  signatures_ = std::move(restored_sigs);
  groups_ = std::move(restored_groups);
  rehashes_ = rehashes;
  config_.lsh_input_scale = input_scale;
  aggregator_->set_input_scale(input_scale);
  publish_storage_gauges();
  return true;
}

storage::Status FastIndex::save_snapshot() {
  if (!durable()) {
    return storage::Status::error(storage::StatusCode::kIoError,
                                  "save_snapshot on a non-durable index");
  }
  util::TraceSpan span("snapshot.save");
  util::WallTimer timer;
  const storage::SnapshotFile snapshot = build_snapshot();
  auto published = storage::write_snapshot(*env_, dir_, snapshot);
  if (!published.ok()) return published.status();

  std::size_t image_bytes = 32;  // header
  for (const auto& section : snapshot.sections) {
    image_bytes += 12 + section.payload.size();
  }
  span.attr("bytes", static_cast<double>(image_bytes + 12));
  m_.snapshot_bytes->set(static_cast<double>(image_bytes + 12));
  m_.snapshot_write_s->observe(timer.elapsed_seconds());

  // Rotate the log and retire files covered by the retained previous
  // generation (shared with the tiered index; see rotate_wal_and_retire).
  storage::Status rotated =
      storage::rotate_wal_and_retire(*env_, dir_, last_seq_, &wal_);
  if (!rotated.ok()) return rotated;
  appends_since_sync_ = 0;
  return storage::Status{};
}

storage::StatusOr<FastIndex> FastIndex::open_or_recover(
    FastConfig config, vision::PcaModel pca, const DurabilityOptions& opts,
    RecoveryStats* stats_out) {
  util::TraceSpan span("recovery.open");
  RecoveryStats stats;
  storage::Env& env =
      opts.env != nullptr ? *opts.env : storage::Env::posix();
  storage::Status s = env.make_dirs(opts.dir);
  if (!s.ok()) return s;
  auto names = env.list_dir(opts.dir);
  if (!names.ok()) return names.status();

  std::vector<std::uint64_t> snapshot_seqs;
  std::vector<std::uint64_t> wal_seqs;
  for (const std::string& name : names.value()) {
    std::uint64_t seq = 0;
    if (storage::parse_snapshot_file_name(name, &seq)) {
      snapshot_seqs.push_back(seq);
    } else if (storage::parse_wal_segment_name(name, &seq)) {
      wal_seqs.push_back(seq);
    }
    // Anything else (.tmp images from interrupted writes, stray files) is
    // ignored; a crashed snapshot write must not affect recovery.
  }
  std::sort(snapshot_seqs.rbegin(), snapshot_seqs.rend());  // newest first
  std::sort(wal_seqs.begin(), wal_seqs.end());

  const std::uint64_t want_fingerprint = config_fingerprint(config);
  std::optional<FastIndex> index;
  for (const std::uint64_t seq : snapshot_seqs) {
    const std::string path = opts.dir + "/" + storage::snapshot_file_name(seq);
    auto snapshot = storage::read_snapshot(env, path);
    if (!snapshot.ok()) {
      switch (snapshot.status().code()) {
        case storage::StatusCode::kCorrupt:
        case storage::StatusCode::kBadMagic:
          // Damaged image: fall back to the previous snapshot (its WAL
          // segments were only deleted after THIS one was fully published,
          // so an older snapshot plus surviving segments is still exact).
          ++stats.snapshots_skipped;
          continue;
        default:
          return snapshot.status();  // kBadVersion / filesystem trouble
      }
    }
    if (snapshot.value().config_fingerprint != want_fingerprint) {
      return storage::Status::error(
          storage::StatusCode::kConfigMismatch,
          "snapshot " + path +
              " was written under a different pipeline geometry");
    }
    FastIndex candidate(config, pca);
    if (!candidate.restore_snapshot(snapshot.value())) {
      ++stats.snapshots_skipped;
      continue;
    }
    candidate.last_seq_ = snapshot.value().last_seq;
    stats.loaded_snapshot = true;
    stats.snapshot_seq = snapshot.value().last_seq;
    index.emplace(std::move(candidate));
    break;
  }
  if (!index.has_value()) index.emplace(FastIndex(config, pca));

  for (const std::uint64_t seq : wal_seqs) {
    const std::string path = opts.dir + "/" + storage::wal_segment_name(seq);
    auto segment = storage::read_wal_segment(env, path);
    if (!segment.ok()) return segment.status();
    ++stats.segments_scanned;
    if (segment.value().torn) stats.wal_torn = true;
    for (const storage::WalRecord& record : segment.value().records) {
      if (record.seq <= index->last_seq_) continue;  // inside the snapshot
      if (record.seq != index->last_seq_ + 1) {
        return storage::Status::error(
            storage::StatusCode::kCorrupt,
            "WAL gap: expected seq " + std::to_string(index->last_seq_ + 1) +
                ", segment " + path + " continues at " +
                std::to_string(record.seq));
      }
      switch (record.type) {
        case storage::kWalRecordInsert: {
          try {
            hash::SparseSignature sig =
                hash::SparseSignature::decode(record.payload);
            if (sig.bit_count() != index->config_.bloom_bits) {
              return storage::Status::error(
                  storage::StatusCode::kCorrupt,
                  "WAL insert payload has the wrong signature width");
            }
            index->apply_insert(record.id, sig);
          } catch (const std::runtime_error& e) {
            return storage::Status::error(
                storage::StatusCode::kCorrupt,
                std::string("undecodable WAL insert payload: ") + e.what());
          }
          break;
        }
        case storage::kWalRecordErase:
          index->apply_erase(record.id);
          break;
        default:
          return storage::Status::error(
              storage::StatusCode::kCorrupt,
              "unknown WAL record type " + std::to_string(record.type));
      }
      index->last_seq_ = record.seq;
      ++stats.replayed_records;
    }
  }
  index->m_.recovery_replayed_records->add(stats.replayed_records);
  index->m_.recovery_snapshots_skipped->add(stats.snapshots_skipped);
  span.attr("replayed_records", static_cast<double>(stats.replayed_records));
  span.attr("snapshots_skipped", static_cast<double>(stats.snapshots_skipped));
  span.attr("segments_scanned", static_cast<double>(stats.segments_scanned));

  auto writer = storage::WalWriter::create(env, opts.dir,
                                           index->last_seq_ + 1);
  if (!writer.ok()) return writer.status();
  index->env_ = &env;
  index->dir_ = opts.dir;
  index->wal_sync_every_ = std::max<std::size_t>(opts.wal_sync_every, 1);
  index->wal_ = std::move(writer).value();
  if (stats_out != nullptr) *stats_out = stats;
  return std::move(*index);
}

QueryResult FastIndex::query(const img::Image& image, std::size_t k) const {
  util::TraceSpan span("query.image");
  return query_summarized(summarize(image), k);
}

QueryResult FastIndex::query_summarized(const hash::SparseSignature& signature,
                                        std::size_t k) const {
  QueryResult result = query_signature(signature, k);
  result.cost.merge(frontend_insert_cost());
  // Feature extraction parallelizes across interest points: expose it as
  // max_keypoints independent task chunks for the multicore model.
  const double fe_chunk =
      config_.feature_extract_s / static_cast<double>(config_.max_keypoints);
  for (std::size_t i = 0; i < config_.max_keypoints; ++i) {
    result.parallel_tasks.push_back(fe_chunk);
  }
  return result;
}

std::vector<QueryResult> FastIndex::query_batch(
    std::span<const img::Image* const> images, std::size_t k,
    util::ThreadPool* pool) const {
  // The whole per-query pipeline (FE+SM+probe+rank) is read-only, so the
  // batch fans complete queries across the pool, not just summarization.
  std::vector<QueryResult> results(images.size());
  if (pool != nullptr && images.size() > 1) {
    pool->parallel_for(images.size(), [&](std::size_t i) {
      results[i] = query(*images[i], k);
    });
  } else {
    for (std::size_t i = 0; i < images.size(); ++i) {
      results[i] = query(*images[i], k);
    }
  }
  return results;
}

QueryResult FastIndex::query_signature(const hash::SparseSignature& signature,
                                       std::size_t k) const {
  util::TraceSpan qspan("query");
  util::Tracer& tracer = util::Tracer::global();
  // Profiles are built whenever the tracer is enabled (not just when this
  // request was sampled) so slow queries reach the ring at any sample rate.
  const bool profiling = tracer.enabled();
  const double profile_start_s = profiling ? tracer.now_s() : 0.0;
  util::WallTimer wall_timer;

  QueryResult result;
  FAST_CHECK(signature.bit_count() == config_.bloom_bits);

  std::vector<std::vector<std::uint64_t>> probes;
  std::vector<std::uint64_t> keys;
  std::size_t probe_keys = 0;
  util::WallTimer keys_timer;
  {
    util::TraceSpan keys_span("sa.keys");
    keys = aggregator_->keys(signature, &probes);
    for (const auto& per_table : probes) probe_keys += per_table.size();
    keys_span.attr("keys", static_cast<double>(keys.size()));
    keys_span.attr("probe_keys", static_cast<double>(probe_keys));
  }
  const double keys_s = keys_timer.elapsed_seconds();
  m_.sa_keys_wall_s->observe(keys_s);
  m_.sa_keys_derived->add(keys.size());
  m_.sa_probe_keys->observe(static_cast<double>(probe_keys));

  // Collect candidates from the home bucket plus the probe buckets of
  // every table. Each flat-addressed lookup is a fixed bounded slot read;
  // the per-table work items are independent (Fig. 7 parallelism).
  std::unordered_set<std::uint64_t> candidate_ids;
  std::size_t slot_reads_total = 0;
  hash::ProbeProfile probe_profile;
  {
    util::TraceSpan probe_span("chs.probe");
    const std::size_t per_table_ops =
        aggregator_->query_hash_ops_per_table(signature);
    const double hash_cost =
        aggregator_->cost_domain() ==
                pipeline::SemanticAggregator::CostDomain::kFlops
            ? config_.cost.flop_s * static_cast<double>(per_table_ops)
            : config_.cost.mix_op_s * static_cast<double>(per_table_ops);
    for (std::size_t t = 0; t < keys.size(); ++t) {
      std::size_t table_slot_reads = 0;
      auto probe_bucket = [&](std::uint64_t key) {
        ++result.bucket_probes;
        std::size_t lookup_probes = 0;
        if (const auto group =
                store_->find(t, key, &lookup_probes, &probe_profile)) {
          for (const std::uint64_t id : groups_[*group]) {
            candidate_ids.insert(id);
          }
        }
        table_slot_reads += lookup_probes;
      };
      probe_bucket(keys[t]);
      for (const std::uint64_t pk : probes[t]) probe_bucket(pk);

      const double probe_cost =
          config_.cost.ram_access_s * static_cast<double>(table_slot_reads);
      result.cost.charge(hash_cost);
      result.cost.charge_ram(config_.cost.ram_access_s, table_slot_reads);
      result.parallel_tasks.push_back(hash_cost + probe_cost);
      slot_reads_total += table_slot_reads;
    }
    probe_span.attr("bucket_probes", static_cast<double>(result.bucket_probes));
    probe_span.attr("slot_reads", static_cast<double>(slot_reads_total));
    probe_span.attr("candidates", static_cast<double>(candidate_ids.size()));
  }
  m_.chs_slot_reads->add(slot_reads_total);
  if (probe_profile.fingerprint_false_hits != 0) {
    m_.chs_fingerprint_false_hits->add(probe_profile.fingerprint_false_hits);
  }

  // Rank candidates by signature similarity (sparse-domain Jaccard).
  result.candidates = candidate_ids.size();
  {
    util::TraceSpan rank_span("rank");
    result.hits.reserve(candidate_ids.size());
    for (const std::uint64_t id : candidate_ids) {
      const auto it = signatures_.find(id);
      FAST_CHECK(it != signatures_.end());
      result.hits.push_back(
          ScoredId{id, hash::SparseSignature::jaccard(signature, it->second)});
    }
    // Ranking cost: one sparse-overlap merge per candidate. Each merge is an
    // independent unit of parallel work (Fig. 7).
    result.cost.charge_ram(config_.cost.ram_access_s, candidate_ids.size());
    for (std::size_t c = 0; c < candidate_ids.size(); ++c) {
      result.parallel_tasks.push_back(config_.cost.ram_access_s);
    }

    const std::size_t keep = std::min(k, result.hits.size());
    std::partial_sort(result.hits.begin(),
                      result.hits.begin() + static_cast<std::ptrdiff_t>(keep),
                      result.hits.end(),
                      [](const ScoredId& a, const ScoredId& b) {
                        if (a.score != b.score) return a.score > b.score;
                        return a.id < b.id;  // deterministic tie-break
                      });
    result.hits.resize(keep);
    rank_span.attr("candidates", static_cast<double>(result.candidates));
    rank_span.attr("hits", static_cast<double>(result.hits.size()));
  }
  m_.queries->add();
  m_.chs_bucket_probes->observe(static_cast<double>(result.bucket_probes));
  m_.chs_candidates->observe(static_cast<double>(result.candidates));
  m_.query_sim_s->observe(result.cost.elapsed_s());

  qspan.attr("k", static_cast<double>(k));
  qspan.attr("hits", static_cast<double>(result.hits.size()));
  qspan.attr("candidates", static_cast<double>(result.candidates));
  qspan.attr("bucket_probes", static_cast<double>(result.bucket_probes));
  if (profiling) {
    util::QueryProfile profile;
    profile.request_id = qspan.request_id();
    profile.sampled = qspan.active();
    profile.start_s = profile_start_s;
    profile.wall_s = wall_timer.elapsed_seconds();
    profile.sa_keys_s = keys_s;
    profile.probe_rank_s = profile.wall_s - keys_s;
    profile.k = k;
    profile.hits = result.hits.size();
    profile.candidates = result.candidates;
    profile.bucket_probes = result.bucket_probes;
    profile.probe_keys = probe_keys;
    profile.slot_reads = slot_reads_total;
    tracer.record_query(profile);
  }
  return result;
}

const hash::SparseSignature* FastIndex::signature_of(std::uint64_t id) const {
  const auto it = signatures_.find(id);
  return it == signatures_.end() ? nullptr : &it->second;
}

std::size_t FastIndex::index_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [id, sig] : signatures_) {
    bytes += sizeof(id) + sig.storage_bytes();
  }
  bytes += store_->store_bytes();
  for (const auto& group : groups_) {
    bytes += sizeof(std::uint64_t) * group.size() + sizeof(std::uint64_t);
  }
  bytes += aggregator_->param_bytes();
  return bytes;
}

hash::CuckooStats FastIndex::cuckoo_stats() const {
  return store_->stats();
}

}  // namespace fast::core
