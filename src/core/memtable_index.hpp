// The mutable layer of the tiered index (DESIGN.md §3f): the current
// FastIndex core — group store, membership lists, signature map — plus a
// tombstone set, with key derivation hoisted OUT. The owning TieredIndex
// computes per-table bucket keys before taking the lane lock, so the
// memtable's critical section is pure placement: bounded slot reads and a
// few hash-map updates. A sealed memtable becomes the payload of an
// ImmutableSegment verbatim (move, no rebuild), which is what makes
// sealing O(1) on the writer path.
//
// Shadowing contract: within one lane, the newest layer mentioning an id
// owns it. `contains` (a live signature) and `tombstoned` (an erase marker)
// are the two kinds of mention; `shadows` is their union. The memtable
// never holds both for one id — place() clears the tombstone, and
// add_tombstone is only called for ids not present locally.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.hpp"
#include "core/pipeline/group_store.hpp"
#include "hash/sparse_signature.hpp"
#include "util/codec.hpp"

namespace fast::core {

class MemtableIndex {
 public:
  /// Builds an empty memtable with its own group store (config.chs_backend)
  /// over `tables` tables.
  MemtableIndex(const FastConfig& config, std::size_t tables);

  MemtableIndex(MemtableIndex&&) = default;
  MemtableIndex& operator=(MemtableIndex&&) = default;

  std::size_t table_count() const noexcept { return store_->table_count(); }
  /// Live signatures stored here.
  std::size_t entries() const noexcept { return signatures_.size(); }
  std::size_t tombstone_count() const noexcept { return tombstones_.size(); }
  /// Seal pressure: every id this layer says something about.
  std::size_t mention_count() const noexcept {
    return signatures_.size() + tombstones_.size();
  }
  bool empty() const noexcept { return mention_count() == 0; }

  bool contains(std::uint64_t id) const {
    return signatures_.find(id) != signatures_.end();
  }
  bool tombstoned(std::uint64_t id) const {
    return tombstones_.find(id) != tombstones_.end();
  }
  /// True when this layer decides `id`'s fate (older layers are shadowed).
  bool shadows(std::uint64_t id) const {
    return contains(id) || tombstoned(id);
  }

  const hash::SparseSignature* signature_of(std::uint64_t id) const {
    const auto it = signatures_.find(id);
    return it == signatures_.end() ? nullptr : &it->second;
  }

  /// The per-table home keys `id` was placed under. Keys are derived once
  /// on the insert path and cached here so removal, sealing (bloom build)
  /// and compaction never re-run the aggregator's hashing.
  const std::vector<std::uint64_t>* keys_of(std::uint64_t id) const {
    const auto it = keys_.find(id);
    return it == keys_.end() ? nullptr : &it->second;
  }

  /// Places `id` under precomputed per-table home keys (keys.size() ==
  /// table_count()) and drops any tombstone for it. The id must not already
  /// be present — the caller erases the old version first (re-insert).
  /// Returns rehash events; adds modeled slot reads to *slot_reads when
  /// non-null.
  std::size_t place(std::uint64_t id, const hash::SparseSignature& signature,
                    std::span<const std::uint64_t> keys,
                    std::size_t* slot_reads = nullptr);

  /// Removes a locally stored id under its cached keys (emptied groups
  /// release their bucket key). The id must be present.
  void remove(std::uint64_t id);

  /// Marks an id that lives in an OLDER layer as erased.
  void add_tombstone(std::uint64_t id) { tombstones_.insert(id); }

  /// Probes one (table, key) bucket and unions the group's members into
  /// `out`. Adds the modeled slot reads of the lookup to *slot_reads.
  void collect(std::size_t t, std::uint64_t key,
               std::unordered_set<std::uint64_t>& out,
               std::size_t* slot_reads) const;

  const std::unordered_map<std::uint64_t, hash::SparseSignature>& signatures()
      const noexcept {
    return signatures_;
  }
  const std::unordered_set<std::uint64_t>& tombstones() const noexcept {
    return tombstones_;
  }

  /// Ids with live signatures, sorted ascending — the deterministic
  /// iteration order for sealing, compaction and snapshots.
  std::vector<std::uint64_t> sorted_ids() const;

  /// In-memory bytes (signatures + store slots + membership lists).
  std::size_t bytes() const;
  hash::CuckooStats stats() const { return store_->stats(); }

  /// Snapshot-section codec. serialize() is a pure function of content
  /// (id-sorted), never of hash-map iteration order; deserialize() returns
  /// false on malformed bytes, leaving the memtable unusable (discard it).
  void serialize(util::ByteWriter& out) const;
  bool deserialize(util::ByteReader& in, std::size_t bloom_bits);

 private:
  std::unique_ptr<pipeline::GroupStore> store_;
  std::vector<std::vector<std::uint64_t>> groups_;  // group id -> member ids
  std::unordered_map<std::uint64_t, hash::SparseSignature> signatures_;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> keys_;
  std::unordered_set<std::uint64_t> tombstones_;
};

}  // namespace fast::core
