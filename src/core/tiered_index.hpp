// TieredIndex — LSM-style layered assembly of the FAST pipeline
// (DESIGN.md §3f).
//
// Layout: ids are hash-partitioned across a few independent LANES. Each
// lane holds one small mutable MemtableIndex guarded by its own
// shared_mutex, plus a lock-free, newest-first list of ImmutableSegments
// published through an atomic shared_ptr. Inserts derive bucket keys
// OUTSIDE any lock, then take only their lane's mutex for the bounded
// placement work; once a memtable reaches tier.seal_threshold mentions it
// is sealed — an O(1) move into a frozen segment — off the hot path.
// Queries take each lane's mutex in shared mode only for the memtable
// probe; segments are read with no lock at all, and a per-segment bloom
// summary skips segments that cannot contain any probe key. A background
// thread finalizes segment blooms and merges adjacent segment runs under a
// size-tiered policy (tier.compact_fanin / compact_trigger) without ever
// blocking readers: merges build a fresh frozen state aside and swap the
// published list pointer.
//
// Shadowing: within a lane, the newest layer mentioning an id owns it
// (memtable, then segments newest→oldest); a mention is either a live
// signature or a tombstone. Because candidate generation unions group
// members across layers and ranking is a pure function of live signatures,
// query results are identical to a single flat FastIndex holding the same
// live set — tier_test asserts hit-and-score equality.
//
// Durability reuses the PR 4 substrate unchanged: one global WAL (records
// logged under the lane lock so per-lane apply order equals sequence
// order), and full-tier snapshots — manifest of live segments per lane +
// one CRC-framed section per memtable and segment — written via the
// snapshot codec with the same rotation/retention as FastIndex.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/durability.hpp"
#include "core/memtable_index.hpp"
#include "core/pipeline/semantic_aggregator.hpp"
#include "core/pipeline/summarizer.hpp"
#include "core/result.hpp"
#include "core/segment.hpp"
#include "hash/sparse_signature.hpp"
#include "img/image.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"
#include "vision/pca.hpp"

namespace fast::util {
class ThreadPool;
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}

namespace fast::core {

struct BatchImage;

class TieredIndex {
 public:
  /// Newest-first; immutable once published (replaced wholesale).
  using SegmentList = std::vector<std::shared_ptr<const ImmutableSegment>>;

  TieredIndex(FastConfig config, vision::PcaModel pca);
  ~TieredIndex();

  TieredIndex(const TieredIndex&) = delete;
  TieredIndex& operator=(const TieredIndex&) = delete;

  /// Durable tiered index in opts.dir: newest intact snapshot (manifest +
  /// segments + memtables), WAL tail replayed through the normal mutation
  /// path (so seals re-fire at the same thresholds), fresh WAL segment.
  /// Same error contract as FastIndex::open_or_recover.
  static storage::StatusOr<std::unique_ptr<TieredIndex>> open_or_recover(
      FastConfig config, vision::PcaModel pca, const DurabilityOptions& opts,
      RecoveryStats* stats = nullptr);

  const FastConfig& config() const noexcept { return config_; }
  /// Live images (inserted and not erased), across all layers.
  std::size_t size() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }
  std::size_t lane_count() const noexcept { return lanes_.size(); }
  std::size_t segment_count() const;
  /// Tombstones still pending compaction (memtables + segments).
  std::size_t tombstone_count() const;
  std::size_t index_bytes() const;
  util::MetricsRegistry& metrics() const noexcept { return *metrics_; }

  bool durable() const noexcept { return wal_ != nullptr; }
  std::uint64_t last_seq() const;

  // --- FE + SM (identical to FastIndex) ---
  hash::SparseSignature summarize(const img::Image& image) const;
  sim::SimClock frontend_insert_cost() const noexcept;
  void calibrate_scale(std::span<const hash::SparseSignature> sample_queries,
                       std::span<const hash::SparseSignature> corpus_sample,
                       util::ThreadPool* pool = nullptr);

  // --- Mutations ---
  InsertResult insert(std::uint64_t id, const img::Image& image);
  InsertResult insert_signature(std::uint64_t id,
                                const hash::SparseSignature& signature);
  /// FE+SM fans across `pool`; placement runs in item order.
  std::vector<InsertResult> insert_batch(std::span<const BatchImage> items,
                                         util::ThreadPool* pool = nullptr);
  bool erase(std::uint64_t id);
  /// Erases each id (skipping unknowns); returns the number erased.
  std::size_t erase_batch(std::span<const std::uint64_t> ids);

  // --- Queries ---
  QueryResult query(const img::Image& image, std::size_t k) const;
  QueryResult query_signature(const hash::SparseSignature& signature,
                              std::size_t k) const;
  QueryResult query_summarized(const hash::SparseSignature& signature,
                               std::size_t k) const;
  std::vector<QueryResult> query_batch(
      std::span<const img::Image* const> images, std::size_t k,
      util::ThreadPool* pool = nullptr) const;

  /// Stored signature of a live id (copy: the owning layer may be compacted
  /// away at any time); nullopt when absent or tombstoned.
  std::optional<hash::SparseSignature> find_signature(std::uint64_t id) const;

  /// Visits every live (id, signature) pair across all layers, honoring
  /// shadowing (the newest layer mentioning an id owns it, same rule as
  /// find_signature). Used by the sharded facade to rebuild its routing
  /// summaries after recovery; not a hot path.
  void for_each_live_signature(
      const std::function<void(std::uint64_t, const hash::SparseSignature&)>&
          fn) const;

  // --- Durability ---
  storage::Status save_snapshot();
  /// Forces an fsync of WAL records buffered by wal_sync_every > 1 (see
  /// FastIndex::sync_wal). No-op when already synced or non-durable.
  storage::Status sync_wal();

  // --- Maintenance (tests / benches) ---
  /// Seals every non-empty memtable regardless of threshold.
  void seal_active();
  /// One synchronous maintenance pass: finalizes segment blooms, then
  /// merges every eligible run. Returns true when anything was merged.
  /// Safe to call concurrently with the background worker (serialized).
  bool compact_once();
  /// Blocks until the background worker has drained its queue.
  void wait_idle() const;

 private:
  struct Lane {
    mutable std::shared_mutex mem_mutex;
    std::unique_ptr<MemtableIndex> mem;
    /// Lock-free reads; replaced under publish_mutex (seal prepend, bloom
    /// upgrade, compaction splice).
    std::atomic<std::shared_ptr<const SegmentList>> segments;
    std::mutex publish_mutex;
  };

  struct TierMetrics {
    util::Counter* fe_sm_images = nullptr;
    util::Histogram* fe_sm_summarize_s = nullptr;
    util::Counter* inserts = nullptr;
    util::Counter* erases = nullptr;
    util::Counter* queries = nullptr;
    util::Histogram* insert_sim_s = nullptr;
    util::Histogram* query_sim_s = nullptr;
    util::Histogram* query_wall_s = nullptr;
    util::Counter* sa_keys_derived = nullptr;
    util::Counter* sa_insert_hash_ops = nullptr;
    util::Histogram* sa_keys_wall_s = nullptr;
    util::Histogram* sa_probe_keys = nullptr;
    util::Counter* chs_slot_reads = nullptr;
    util::Histogram* chs_bucket_probes = nullptr;
    util::Histogram* chs_candidates = nullptr;
    util::Gauge* index_size = nullptr;
    util::Gauge* tier_lanes = nullptr;
    util::Gauge* tier_memtable_entries = nullptr;
    util::Gauge* tier_tombstones = nullptr;
    util::Counter* tier_seals = nullptr;
    util::Counter* tier_segment_skips = nullptr;
    util::Gauge* segment_count = nullptr;
    util::Counter* compaction_runs = nullptr;
    util::Counter* compaction_dropped_tombstones = nullptr;
    util::Histogram* compaction_merge_s = nullptr;
    util::Histogram* compaction_merge_entries = nullptr;
    util::Histogram* compaction_merged_segments = nullptr;
    util::Counter* wal_appends = nullptr;
    util::Counter* wal_bytes = nullptr;
    util::Counter* wal_syncs = nullptr;
    util::Histogram* snapshot_write_s = nullptr;
    util::Gauge* snapshot_bytes = nullptr;
    util::Counter* recovery_replayed_records = nullptr;
    util::Counter* recovery_snapshots_skipped = nullptr;
  };

  TieredIndex(FastConfig config, vision::PcaModel pca, bool start_worker);

  void init_metrics();
  std::size_t lane_of(std::uint64_t id) const noexcept {
    return static_cast<std::size_t>((id * 0x9e3779b97f4a7c15ULL) >> 32) %
           lanes_.size();
  }

  /// Newest segment mention of `id` in the lane is a live signature.
  static bool segments_contain_live(const Lane& lane, std::uint64_t id);

  /// Mutation bodies; `log` is false on WAL replay. Both take the lane
  /// lock themselves.
  InsertResult insert_internal(std::uint64_t id,
                               const hash::SparseSignature& signature,
                               bool log);
  bool erase_internal(std::uint64_t id, bool log);

  /// Caller holds lane.mem_mutex exclusively.
  bool maybe_seal_locked(Lane& lane, std::size_t lane_idx);
  void seal_locked(Lane& lane, std::size_t lane_idx);

  /// Wakes the worker, or runs the pass inline when there is none
  /// (tier.background == false, or during recovery replay).
  void schedule_maintenance();
  void worker_loop();
  void stop_worker();

  /// Upgrades un-finalized segments of `lane` with their bloom summary.
  void finalize_blooms(Lane& lane);
  /// Merges one eligible run in `lane`; false when nothing is eligible.
  bool try_compact_lane(Lane& lane);
  /// Swaps `count` entries starting at the entry with id `first_id` for
  /// `replacement` (empty = plain removal) in the published list.
  void splice_segments(Lane& lane, std::uint64_t first_id, std::size_t count,
                       std::shared_ptr<const ImmutableSegment> replacement);
  void publish_tier_gauges();

  void wal_log(std::uint8_t type, std::uint64_t id,
               std::span<const std::uint8_t> payload);
  storage::SnapshotFile build_snapshot_locked() const;
  bool restore_snapshot(const storage::SnapshotFile& snapshot);
  std::size_t count_live() const;

  FastConfig config_;
  /// config_ with the cuckoo store pre-sized for one seal interval, so a
  /// replacement memtable does not re-pay proactive doubling every cycle.
  FastConfig mem_config_;
  std::unique_ptr<pipeline::Summarizer> summarizer_;
  std::unique_ptr<pipeline::SemanticAggregator> aggregator_;
  std::size_t tables_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<std::size_t> live_{0};
  std::atomic<std::uint64_t> next_segment_id_{1};
  // Memtable content tallies (signed: deltas are applied under lane locks
  // but read lock-free by gauges). Segment tallies come from the published
  // immutable lists instead.
  std::atomic<std::int64_t> mem_entries_{0};
  std::atomic<std::int64_t> mem_tombstones_{0};

  std::shared_ptr<util::MetricsRegistry> metrics_;
  TierMetrics m_;

  // Durability (null/zero for a purely in-memory tier). Lock order is
  // lane.mem_mutex -> wal_mutex_; the snapshot path takes every lane lock
  // (in index order) first, which also quiesces the WAL.
  storage::Env* env_ = nullptr;
  std::string dir_;
  std::size_t wal_sync_every_ = 1;
  mutable std::mutex wal_mutex_;
  std::unique_ptr<storage::WalWriter> wal_;
  std::uint64_t last_seq_ = 0;
  std::size_t appends_since_sync_ = 0;

  // Background maintenance. compaction_mutex_ serializes whole passes
  // (worker vs explicit compact_once); work_mutex_ guards the wake flags.
  std::mutex compaction_mutex_;
  mutable std::mutex work_mutex_;
  mutable std::condition_variable work_cv_;
  mutable std::condition_variable idle_cv_;
  bool work_pending_ = false;
  bool worker_busy_ = false;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace fast::core
