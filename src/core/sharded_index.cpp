#include "core/sharded_index.hpp"

#include <algorithm>

#include "core/pipeline/factory.hpp"
#include "core/segment.hpp"
#include "util/check.hpp"
#include "util/trace.hpp"

namespace fast::core {

namespace {

/// Per-shard storage seed derivation — shared by the in-memory and durable
/// construction paths so both produce identical shard pipelines.
FastConfig shard_config(const FastConfig& config, std::size_t s) {
  FastConfig shard_cfg = config;
  shard_cfg.cuckoo.seed = config.cuckoo.seed + s * 0x51edULL;
  return shard_cfg;
}

std::vector<std::unique_ptr<FastIndex>> build_flat_shards(
    const FastConfig& config, const vision::PcaModel& pca,
    std::size_t shards) {
  std::vector<std::unique_ptr<FastIndex>> built;
  if (config.tier.enabled) return built;
  built.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    built.push_back(std::make_unique<FastIndex>(shard_config(config, s), pca));
  }
  return built;
}

std::vector<std::unique_ptr<TieredIndex>> build_tiered_shards(
    const FastConfig& config, const vision::PcaModel& pca,
    std::size_t shards) {
  std::vector<std::unique_ptr<TieredIndex>> built;
  if (!config.tier.enabled) return built;
  built.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    built.push_back(
        std::make_unique<TieredIndex>(shard_config(config, s), pca));
  }
  return built;
}

}  // namespace

ShardedFastIndex::ShardedFastIndex(FastConfig config, vision::PcaModel pca,
                                   std::size_t shards, std::size_t threads)
    : ShardedFastIndex(config, build_flat_shards(config, pca, shards),
                       build_tiered_shards(config, pca, shards), threads) {}

ShardedFastIndex::ShardedFastIndex(
    FastConfig config, std::vector<std::unique_ptr<FastIndex>> shards,
    std::vector<std::unique_ptr<TieredIndex>> tiered_shards,
    std::size_t threads)
    : config_(std::move(config)),
      shard_map_(shards.empty() ? tiered_shards.size() : shards.size()),
      shards_(std::move(shards)), tiered_shards_(std::move(tiered_shards)),
      pool_(threads), metrics_(std::make_shared<util::MetricsRegistry>()) {
  FAST_CHECK(shards_.empty() != tiered_shards_.empty());
  queries_ = &metrics_->counter("sharded.queries");
  inserts_ = &metrics_->counter("sharded.inserts");
  erases_ = &metrics_->counter("sharded.erases");
  scatter_msgs_ = &metrics_->counter("sharded.scatter_msgs");
  gather_msgs_ = &metrics_->counter("sharded.gather_msgs");
  routing_skips_ = &metrics_->counter("shard.routing_skips");
  batch_size_ = &metrics_->count_histogram("sharded.insert_batch_size");
  shard_batch_items_ = &metrics_->count_histogram("sharded.shard_batch_items");
  gather_candidates_ = &metrics_->count_histogram("sharded.gather_candidates");
  shards_probed_ = &metrics_->count_histogram("sharded.shards_probed");
  metrics_->gauge("sharded.shards")
      .set(static_cast<double>(shard_map_.shard_count()));
  metrics_->gauge("shard.routing_bits")
      .set(static_cast<double>(config_.shard_routing_bits));

  if (config_.shard_routing_bits > 0) {
    router_agg_ = pipeline::make_aggregator(config_);
    // A recovered shard may carry a calibrated LSH input scale; the
    // coordinator's key derivation must match the shards'.
    const FastConfig& shard_cfg = is_tiered() ? tiered_shards_.front()->config()
                                              : shards_.front()->config();
    router_agg_->set_input_scale(shard_cfg.lsh_input_scale);
    const std::size_t counters = std::size_t{1} << config_.shard_routing_bits;
    summaries_.reserve(shard_map_.shard_count());
    for (std::size_t s = 0; s < shard_map_.shard_count(); ++s) {
      summaries_.emplace_back(counters, /*k=*/4);
    }
    // The durable path hands this constructor pre-built recovered shards;
    // summaries are derived state, so repopulate them here (a no-op for
    // the fresh in-memory construction path).
    rebuild_routing_summaries();
  }
}

std::vector<std::uint64_t> ShardedFastIndex::routing_fingerprints(
    const hash::SparseSignature& signature, bool include_probes) const {
  std::vector<std::vector<std::uint64_t>> probes;
  const std::vector<std::uint64_t> keys =
      router_agg_->keys(signature, include_probes ? &probes : nullptr);
  std::vector<std::uint64_t> fps;
  fps.reserve(keys.size() * (include_probes ? 2 : 1));
  for (std::size_t t = 0; t < keys.size(); ++t) {
    fps.push_back(ImmutableSegment::key_fingerprint(t, keys[t]));
    if (include_probes) {
      for (const std::uint64_t pk : probes[t]) {
        fps.push_back(ImmutableSegment::key_fingerprint(t, pk));
      }
    }
  }
  return fps;
}

std::vector<std::size_t> ShardedFastIndex::route_query(
    const hash::SparseSignature& signature) const {
  // Only home keys are ever placed in a shard's store, so a probed key can
  // surface candidates only if it equals a resident home key — and every
  // resident home key is in the summary (no false negatives). Skipping a
  // shard whose summary excludes all probed keys is therefore lossless.
  const std::vector<std::uint64_t> fps =
      routing_fingerprints(signature, /*include_probes=*/true);
  std::vector<std::size_t> targets;
  targets.reserve(summaries_.size());
  for (std::size_t s = 0; s < summaries_.size(); ++s) {
    for (const std::uint64_t fp : fps) {
      if (summaries_[s].maybe_contains_u64(fp)) {
        targets.push_back(s);
        break;
      }
    }
  }
  return targets;
}

void ShardedFastIndex::routing_add(std::size_t s,
                                   const hash::SparseSignature& signature) {
  for (const std::uint64_t fp :
       routing_fingerprints(signature, /*include_probes=*/false)) {
    summaries_[s].insert_u64(fp);
  }
}

void ShardedFastIndex::routing_remove(std::size_t s,
                                      const hash::SparseSignature& signature) {
  for (const std::uint64_t fp :
       routing_fingerprints(signature, /*include_probes=*/false)) {
    summaries_[s].remove_u64(fp);
  }
}

std::optional<hash::SparseSignature> ShardedFastIndex::shard_signature(
    std::size_t s, std::uint64_t id) const {
  if (is_tiered()) return tiered_shards_[s]->find_signature(id);
  if (const auto* sig = shards_[s]->signature_of(id)) return *sig;
  return std::nullopt;
}

void ShardedFastIndex::routing_replace(std::size_t s, std::uint64_t id,
                                       const hash::SparseSignature& signature) {
  // Re-insert evicts the previous signature inside the shard; mirror the
  // eviction here so the counting summary stays balanced.
  if (const auto old = shard_signature(s, id)) routing_remove(s, *old);
  routing_add(s, signature);
}

void ShardedFastIndex::rebuild_routing_summaries() {
  if (!routing_enabled()) return;
  for (std::size_t s = 0; s < shard_map_.shard_count(); ++s) {
    const auto add = [&](std::uint64_t, const hash::SparseSignature& sig) {
      routing_add(s, sig);
    };
    if (is_tiered()) {
      tiered_shards_[s]->for_each_live_signature(add);
    } else {
      shards_[s]->for_each_signature(add);
    }
  }
}

storage::StatusOr<std::unique_ptr<ShardedFastIndex>>
ShardedFastIndex::open_or_recover(FastConfig config, vision::PcaModel pca,
                                  std::size_t shards,
                                  const DurabilityOptions& opts,
                                  RecoveryStats* stats, std::size_t threads) {
  FAST_CHECK(shards >= 1);
  RecoveryStats total;
  std::vector<std::unique_ptr<FastIndex>> flat_built;
  std::vector<std::unique_ptr<TieredIndex>> tiered_built;
  for (std::size_t s = 0; s < shards; ++s) {
    DurabilityOptions shard_opts = opts;
    shard_opts.dir = opts.dir + "/shard-" + std::to_string(s);
    RecoveryStats shard_stats;
    if (config.tier.enabled) {
      auto index = TieredIndex::open_or_recover(shard_config(config, s), pca,
                                                shard_opts, &shard_stats);
      if (!index.ok()) return index.status();
      tiered_built.push_back(std::move(index).value());
    } else {
      auto index = FastIndex::open_or_recover(shard_config(config, s), pca,
                                              shard_opts, &shard_stats);
      if (!index.ok()) return index.status();
      flat_built.push_back(
          std::make_unique<FastIndex>(std::move(index).value()));
    }
    total.loaded_snapshot |= shard_stats.loaded_snapshot;
    total.snapshot_seq = std::max(total.snapshot_seq,
                                  shard_stats.snapshot_seq);
    total.snapshots_skipped += shard_stats.snapshots_skipped;
    total.segments_scanned += shard_stats.segments_scanned;
    total.replayed_records += shard_stats.replayed_records;
    total.wal_torn |= shard_stats.wal_torn;
  }
  std::unique_ptr<ShardedFastIndex> sharded(
      new ShardedFastIndex(std::move(config), std::move(flat_built),
                           std::move(tiered_built), threads));
  if (stats != nullptr) *stats = total;
  return sharded;
}

storage::Status ShardedFastIndex::save_snapshot() {
  storage::Status first;
  for (const auto& shard : shards_) {
    storage::Status s = shard->save_snapshot();
    if (!s.ok() && first.ok()) first = std::move(s);
  }
  for (const auto& shard : tiered_shards_) {
    storage::Status s = shard->save_snapshot();
    if (!s.ok() && first.ok()) first = std::move(s);
  }
  return first;
}

std::size_t ShardedFastIndex::size() const noexcept {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->size();
  for (const auto& s : tiered_shards_) n += s->size();
  return n;
}

hash::SparseSignature ShardedFastIndex::summarize_front(
    const img::Image& image) const {
  // Any shard's summarizer is equivalent (shards differ only in storage
  // seeds).
  return is_tiered() ? tiered_shards_.front()->summarize(image)
                     : shards_.front()->summarize(image);
}

sim::SimClock ShardedFastIndex::frontend_cost() const {
  return is_tiered() ? tiered_shards_.front()->frontend_insert_cost()
                     : shards_.front()->frontend_insert_cost();
}

InsertResult ShardedFastIndex::shard_insert_signature(
    std::size_t s, std::uint64_t id, const hash::SparseSignature& signature) {
  return is_tiered() ? tiered_shards_[s]->insert_signature(id, signature)
                     : shards_[s]->insert_signature(id, signature);
}

QueryResult ShardedFastIndex::shard_query_signature(
    std::size_t s, const hash::SparseSignature& signature,
    std::size_t k) const {
  return is_tiered() ? tiered_shards_[s]->query_signature(signature, k)
                     : shards_[s]->query_signature(signature, k);
}

InsertResult ShardedFastIndex::insert(std::uint64_t id,
                                      const img::Image& image) {
  inserts_->add();
  scatter_msgs_->add();
  const std::size_t s = shard_map_.shard_of(id);
  InsertResult r;
  if (routing_enabled()) {
    // Summarize at the coordinator (same FE+SM work the shard would do) so
    // the summary can track the placed signature; cost accounting matches
    // the direct shard->insert path exactly.
    const hash::SparseSignature sig = summarize_front(image);
    routing_replace(s, id, sig);
    r = shard_insert_signature(s, id, sig);
    r.cost.merge(frontend_cost());
  } else {
    r = is_tiered() ? tiered_shards_[s]->insert(id, image)
                    : shards_[s]->insert(id, image);
  }
  // Routing the signature to the owner node: one network hop.
  r.cost.charge(config_.cost.net_transfer_s(512));
  return r;
}

InsertResult ShardedFastIndex::insert_signature(
    std::uint64_t id, const hash::SparseSignature& signature) {
  inserts_->add();
  scatter_msgs_->add();
  const std::size_t s = shard_map_.shard_of(id);
  if (routing_enabled()) routing_replace(s, id, signature);
  InsertResult r = shard_insert_signature(s, id, signature);
  r.cost.charge(config_.cost.net_transfer_s(signature.storage_bytes()));
  return r;
}

bool ShardedFastIndex::erase(std::uint64_t id) {
  scatter_msgs_->add();
  const std::size_t s = shard_map_.shard_of(id);
  // Copy the live signature before the erase invalidates it; only decrement
  // the summary once the shard confirms the id was resident.
  std::optional<hash::SparseSignature> old;
  if (routing_enabled()) old = shard_signature(s, id);
  const bool erased = is_tiered() ? tiered_shards_[s]->erase(id)
                                  : shards_[s]->erase(id);
  if (erased) {
    erases_->add();
    if (old) routing_remove(s, *old);
  }
  return erased;
}

std::vector<InsertResult> ShardedFastIndex::insert_batch(
    std::span<const BatchImage> items) {
  util::TraceSpan span("sharded.insert_batch");
  span.attr("items", static_cast<double>(items.size()));
  batch_size_->observe(static_cast<double>(items.size()));
  inserts_->add(items.size());
  scatter_msgs_->add(items.size());
  // FE+SM for the whole batch, fanned across the native pool.
  std::vector<hash::SparseSignature> sigs(items.size());
  pool_.parallel_for(items.size(), [&](std::size_t i) {
    sigs[i] = summarize_front(*items[i].image);
  });

  // Partition item indices into per-shard sub-batches, then let every
  // shard place its own sub-batch in parallel (shards are independent).
  const std::size_t ns = shard_map_.shard_count();
  std::vector<std::vector<std::size_t>> by_shard(ns);
  for (std::size_t i = 0; i < items.size(); ++i) {
    by_shard[shard_map_.shard_of(items[i].id)].push_back(i);
  }
  for (const auto& sub : by_shard) {
    shard_batch_items_->observe(static_cast<double>(sub.size()));
  }
  const sim::SimClock frontend = frontend_cost();
  std::vector<InsertResult> results(items.size());
  pool_.parallel_for(ns, [&](std::size_t s) {
    util::TraceSpan shard_span("shard.place");
    shard_span.attr("shard", static_cast<double>(s));
    shard_span.attr("items", static_cast<double>(by_shard[s].size()));
    for (const std::size_t i : by_shard[s]) {
      // Summary writes are race-free here: each task touches only its own
      // shard's summary, mirroring the shard-disjoint placement below.
      if (routing_enabled()) routing_replace(s, items[i].id, sigs[i]);
      InsertResult stored = shard_insert_signature(s, items[i].id, sigs[i]);
      stored.cost.merge(frontend);
      stored.cost.charge(config_.cost.net_transfer_s(512));
      results[i] = std::move(stored);
    }
  });
  return results;
}

std::vector<QueryResult> ShardedFastIndex::query_batch(
    std::span<const img::Image* const> images, std::size_t k) const {
  std::vector<hash::SparseSignature> sigs(images.size());
  pool_.parallel_for(images.size(), [&](std::size_t i) {
    sigs[i] = summarize_front(*images[i]);
  });

  // Per-query shard targets: all shards, or the routed subset when
  // summaries are active (route_query only reads the summaries, so it is
  // safe to fan across the pool).
  const std::size_t ns = shard_map_.shard_count();
  std::vector<std::vector<std::size_t>> targets(images.size());
  if (routing_enabled()) {
    pool_.parallel_for(images.size(),
                       [&](std::size_t q) { targets[q] = route_query(sigs[q]); });
  } else {
    for (auto& t : targets) {
      t.resize(ns);
      for (std::size_t s = 0; s < ns; ++s) t[s] = s;
    }
  }

  // Flat (query x probed-shard) probe matrix: every cell is independent, so
  // the pool schedules across both dimensions at once instead of
  // serializing queries behind each other's scatter-gather.
  struct Cell {
    std::size_t q, slot, s;
  };
  std::vector<Cell> cells;
  std::vector<std::vector<QueryResult>> per_query(images.size());
  for (std::size_t q = 0; q < images.size(); ++q) {
    per_query[q].resize(targets[q].size());
    for (std::size_t slot = 0; slot < targets[q].size(); ++slot) {
      cells.push_back(Cell{q, slot, targets[q][slot]});
    }
  }
  pool_.parallel_for(cells.size(), [&](std::size_t c) {
    const Cell& cell = cells[c];
    util::TraceSpan shard_span("shard.probe");
    shard_span.attr("shard", static_cast<double>(cell.s));
    shard_span.attr("query", static_cast<double>(cell.q));
    per_query[cell.q][cell.slot] = shard_query_signature(cell.s, sigs[cell.q], k);
  });

  std::vector<QueryResult> results;
  results.reserve(images.size());
  for (auto& per_shard : per_query) {
    results.push_back(
        gather(std::move(per_shard), k, config_.feature_extract_s));
  }
  return results;
}

QueryResult ShardedFastIndex::gather(std::vector<QueryResult> per_shard,
                                     std::size_t k, double fe_cost) const {
  util::TraceSpan span("sharded.gather");
  span.attr("shards", static_cast<double>(per_shard.size()));
  queries_->add();
  scatter_msgs_->add(per_shard.size());
  gather_msgs_->add(per_shard.size());
  shards_probed_->observe(static_cast<double>(per_shard.size()));
  routing_skips_->add(shard_map_.shard_count() - per_shard.size());
  QueryResult merged;
  merged.cost.charge(fe_cost);
  double slowest_shard = 0;
  for (QueryResult& r : per_shard) {
    slowest_shard = std::max(slowest_shard, r.cost.elapsed_s());
    merged.candidates += r.candidates;
    merged.bucket_probes += r.bucket_probes;
    for (const ScoredId& hit : r.hits) merged.hits.push_back(hit);
    for (double t : r.parallel_tasks) merged.parallel_tasks.push_back(t);
  }
  // Scatter (signature to every probed shard) + parallel shard work +
  // gather (top-k id/score pairs back). When routing skipped every shard
  // there are no hops to charge.
  if (!per_shard.empty()) {
    const std::size_t scatter_bytes = 512;
    const std::size_t gather_bytes =
        k * (sizeof(std::uint64_t) + sizeof(float));
    merged.cost.charge(config_.cost.net_transfer_s(scatter_bytes));
    merged.cost.charge(slowest_shard);
    merged.cost.charge(config_.cost.net_transfer_s(gather_bytes));
  }

  std::sort(merged.hits.begin(), merged.hits.end(),
            [](const ScoredId& a, const ScoredId& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (merged.hits.size() > k) merged.hits.resize(k);
  gather_candidates_->observe(static_cast<double>(merged.candidates));
  return merged;
}

QueryResult ShardedFastIndex::query(const img::Image& image,
                                    std::size_t k) const {
  // Summarize once at the front end; only the signature travels.
  const hash::SparseSignature sig = summarize_front(image);
  QueryResult r = query_signature(sig, k);
  // Account the front-end extraction in the merged cost.
  QueryResult with_fe = std::move(r);
  with_fe.cost.charge(config_.feature_extract_s);
  return with_fe;
}

QueryResult ShardedFastIndex::query_signature(
    const hash::SparseSignature& signature, std::size_t k) const {
  util::TraceSpan span("sharded.query");
  std::vector<std::size_t> targets;
  if (routing_enabled()) {
    targets = route_query(signature);
  } else {
    targets.resize(shard_map_.shard_count());
    for (std::size_t s = 0; s < targets.size(); ++s) targets[s] = s;
  }
  span.attr("shards", static_cast<double>(targets.size()));
  std::vector<QueryResult> per_shard(targets.size());
  pool_.parallel_for(targets.size(), [&](std::size_t i) {
    util::TraceSpan shard_span("shard.probe");
    shard_span.attr("shard", static_cast<double>(targets[i]));
    per_shard[i] = shard_query_signature(targets[i], signature, k);
  });
  return gather(std::move(per_shard), k, 0.0);
}

std::size_t ShardedFastIndex::index_bytes() const {
  std::size_t bytes = 0;
  for (const auto& s : shards_) bytes += s->index_bytes();
  for (const auto& s : tiered_shards_) bytes += s->index_bytes();
  return bytes;
}

}  // namespace fast::core
