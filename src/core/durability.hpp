// Durability contract of FastIndex: snapshot + write-ahead log.
//
// An index opened with open_or_recover logs every mutation to the WAL
// BEFORE applying it, fsyncing on a configurable cadence; save_snapshot
// writes a full checksummed image of the index and rotates the log. After a
// crash, open_or_recover loads the newest intact snapshot, replays the WAL
// tail on top, and truncates the torn record of an in-flight append — so
// with wal_sync_every == 1 every acknowledged mutation survives, and the
// recovered index answers queries bit-identically to the pre-crash one
// (DESIGN.md §3d states the invariants; tests/recovery_test.cpp sweeps
// every failure point).
#pragma once

#include <cstdint>
#include <string>

#include "storage/io.hpp"

namespace fast::core {

struct FastConfig;

struct DurabilityOptions {
  /// Directory holding snapshot-*.fast and wal-*.log; created when absent.
  std::string dir;

  /// fsync the WAL after every N appended records. 1 (default) makes every
  /// returned mutation durable; larger values trade the crash window for
  /// ingest throughput, exactly the group-commit knob of a database.
  std::size_t wal_sync_every = 1;

  /// Filesystem to operate through; nullptr = the real one. Tests pass a
  /// storage::FaultInjectingEnv here to crash at a chosen operation.
  storage::Env* env = nullptr;
};

/// What open_or_recover found and did; for observability and tests.
struct RecoveryStats {
  bool loaded_snapshot = false;
  std::uint64_t snapshot_seq = 0;     ///< last_seq of the loaded snapshot
  std::size_t snapshots_skipped = 0;  ///< corrupt snapshots passed over
  std::size_t segments_scanned = 0;   ///< WAL segments read
  std::size_t replayed_records = 0;   ///< WAL records applied on top
  bool wal_torn = false;              ///< truncated a torn tail / header
};

/// FNV-1a over the SM/SA/CHS geometry of a config — every field that
/// changes how persisted index state must be interpreted (Bloom width,
/// aggregator seeds and table counts, storage backend and shape). Frontend
/// and cost-model settings are excluded: they affect future summaries, not
/// the meaning of stored ones. lsh_input_scale is excluded too — it is
/// persisted in the snapshot's params section and restored on load.
std::uint64_t config_fingerprint(const FastConfig& config) noexcept;

}  // namespace fast::core
