// Thread-safe facade over the index for online operation: the cloud
// middleware ingests uploads continuously while serving queries. Two
// concurrency regimes live behind one interface, selected by
// config.tier.enabled:
//
//  - Flat (default): one FastIndex under a shared_mutex. Readers (queries)
//    share it; writers (insert/erase) take it exclusively. Summarization —
//    the expensive feature-extraction step — runs outside the lock, and the
//    batch paths take the lock exactly once per batch.
//  - Tiered: a TieredIndex, which synchronizes internally (per-lane memtable
//    locks, lock-free segment reads, background compaction). The facade
//    adds NO lock of its own — writers in different lanes and all queries
//    proceed in parallel, which is where the multi-thread ingest speedup
//    comes from (bench/fig5_insertion --churn measures it).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "core/fast_index.hpp"
#include "core/tiered_index.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace fast::core {

class ConcurrentFastIndex {
 public:
  /// `batch_threads` workers for the batch FE+SM fan-out (0 = hardware
  /// concurrency); the pool is created lazily on the first batch call.
  /// config.tier.enabled picks the flat or tiered regime.
  ConcurrentFastIndex(FastConfig config, vision::PcaModel pca,
                      std::size_t batch_threads = 0)
      : batch_threads_(batch_threads) {
    if (config.tier.enabled) {
      tiered_ =
          std::make_unique<TieredIndex>(std::move(config), std::move(pca));
    } else {
      flat_.emplace(std::move(config), std::move(pca));
    }
    init_facade_metrics();
  }

  /// Wraps an already-built flat index (e.g., one recovered from disk).
  explicit ConcurrentFastIndex(FastIndex index, std::size_t batch_threads = 0)
      : flat_(std::move(index)), batch_threads_(batch_threads) {
    init_facade_metrics();
  }

  /// Wraps an already-built tiered index.
  explicit ConcurrentFastIndex(std::unique_ptr<TieredIndex> tiered,
                               std::size_t batch_threads = 0)
      : tiered_(std::move(tiered)), batch_threads_(batch_threads) {
    init_facade_metrics();
  }

  /// Durable concurrent index: recovers (or initializes) state in opts.dir
  /// and wraps it, dispatching on config.tier.enabled. Returns a pointer
  /// because the facade holds a mutex and cannot move.
  static storage::StatusOr<std::unique_ptr<ConcurrentFastIndex>>
  open_or_recover(FastConfig config, vision::PcaModel pca,
                  const DurabilityOptions& opts, RecoveryStats* stats = nullptr,
                  std::size_t batch_threads = 0) {
    if (config.tier.enabled) {
      auto tiered = TieredIndex::open_or_recover(std::move(config),
                                                 std::move(pca), opts, stats);
      if (!tiered.ok()) return tiered.status();
      return std::make_unique<ConcurrentFastIndex>(
          std::move(tiered).value(), batch_threads);
    }
    auto index = FastIndex::open_or_recover(std::move(config), std::move(pca),
                                            opts, stats);
    if (!index.ok()) return index.status();
    return std::make_unique<ConcurrentFastIndex>(std::move(index).value(),
                                                 batch_threads);
  }

  bool is_tiered() const noexcept { return tiered_ != nullptr; }

  std::size_t size() const {
    if (tiered_) return tiered_->size();
    std::shared_lock lock(mutex_);
    reader_locks_->add();
    return flat_->size();
  }

  /// Extraction + summarization without the lock, placement under it.
  /// Charges the same frontend cost as FastIndex::insert (the original
  /// concurrent path silently dropped the FE + Bloom-hash charge).
  InsertResult insert(std::uint64_t id, const img::Image& image) {
    util::TraceSpan span("concurrent.insert");
    if (tiered_) return tiered_->insert(id, image);
    const hash::SparseSignature sig = flat_->summarize(image);
    const sim::SimClock frontend = flat_->frontend_insert_cost();
    std::unique_lock lock = writer_lock();
    InsertResult result = flat_->insert_signature(id, sig);
    result.cost.merge(frontend);
    return result;
  }

  InsertResult insert_signature(std::uint64_t id,
                                const hash::SparseSignature& signature) {
    util::TraceSpan span("concurrent.insert");
    if (tiered_) return tiered_->insert_signature(id, signature);
    std::unique_lock lock = writer_lock();
    return flat_->insert_signature(id, signature);
  }

  /// Batch ingest: FE+SM for all items runs on the pool with no lock held,
  /// then every placement happens under a single writer-lock acquisition —
  /// one lock round-trip per batch instead of per image. Per-item costs
  /// match insert()'s accounting. (Tiered: placements take only per-lane
  /// memtable locks, so batches from different threads interleave.)
  std::vector<InsertResult> insert_batch(std::span<const BatchImage> items) {
    util::TraceSpan span("concurrent.insert_batch");
    span.attr("items", static_cast<double>(items.size()));
    insert_batch_size_->observe(static_cast<double>(items.size()));
    if (tiered_) return tiered_->insert_batch(items, &pool());
    std::vector<const img::Image*> images(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) images[i] = items[i].image;
    std::vector<hash::SparseSignature> sigs(items.size());
    pool().parallel_for(items.size(), [&](std::size_t i) {
      sigs[i] = flat_->summarize(*images[i]);
    });
    const sim::SimClock frontend = flat_->frontend_insert_cost();

    std::unique_lock lock = writer_lock();
    std::vector<InsertResult> results;
    results.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      InsertResult result = flat_->insert_signature(items[i].id, sigs[i]);
      result.cost.merge(frontend);
      results.push_back(std::move(result));
    }
    return results;
  }

  bool erase(std::uint64_t id) {
    util::TraceSpan span("concurrent.erase");
    if (tiered_) return tiered_->erase(id);
    std::unique_lock lock = writer_lock();
    return flat_->erase(id);
  }

  /// Batch erase, the write-side twin of insert_batch: one writer-lock
  /// acquisition covers every eviction (flat), or per-lane locking lets
  /// erases from different threads interleave (tiered). Skips unknown ids;
  /// returns the number actually erased.
  std::size_t erase_batch(std::span<const std::uint64_t> ids) {
    util::TraceSpan span("concurrent.erase_batch");
    span.attr("items", static_cast<double>(ids.size()));
    erase_batch_size_->observe(static_cast<double>(ids.size()));
    if (tiered_) return tiered_->erase_batch(ids);
    std::unique_lock lock = writer_lock();
    std::size_t erased = 0;
    for (const std::uint64_t id : ids) {
      if (flat_->erase(id)) ++erased;
    }
    return erased;
  }

  /// Summarization outside the lock, probe/rank under it; identical cost
  /// accounting to FastIndex::query (FE + Bloom hash ops + FE task chunks).
  QueryResult query(const img::Image& image, std::size_t k) const {
    util::TraceSpan span("concurrent.query");
    if (tiered_) return tiered_->query(image, k);
    const hash::SparseSignature sig = flat_->summarize(image);
    std::shared_lock lock = reader_lock();
    return flat_->query_summarized(sig, k);
  }

  QueryResult query_signature(const hash::SparseSignature& signature,
                              std::size_t k) const {
    util::TraceSpan span("concurrent.query");
    if (tiered_) return tiered_->query_signature(signature, k);
    std::shared_lock lock = reader_lock();
    return flat_->query_signature(signature, k);
  }

  /// Batch query: FE+SM on the pool without the lock, then all probe/rank
  /// work under one shared (reader) lock acquisition.
  std::vector<QueryResult> query_batch(
      std::span<const img::Image* const> images, std::size_t k) const {
    util::TraceSpan span("concurrent.query_batch");
    span.attr("items", static_cast<double>(images.size()));
    query_batch_size_->observe(static_cast<double>(images.size()));
    if (tiered_) return tiered_->query_batch(images, k, &pool());
    std::vector<hash::SparseSignature> sigs(images.size());
    pool().parallel_for(images.size(), [&](std::size_t i) {
      sigs[i] = flat_->summarize(*images[i]);
    });

    std::shared_lock lock = reader_lock();
    std::vector<QueryResult> results;
    results.reserve(images.size());
    for (const auto& sig : sigs) {
      results.push_back(flat_->query_summarized(sig, k));
    }
    return results;
  }

  /// Writer-lock acquisitions so far (batch-amortization observability).
  /// Always 0 in tiered mode: there is no facade-wide writer lock to count.
  std::size_t writer_lock_count() const noexcept {
    return writer_locks_->value();
  }
  /// Reader (shared) lock acquisitions so far.
  std::size_t reader_lock_count() const noexcept {
    return reader_locks_->value();
  }

  /// The shared per-stage registry (same instance as the inner index's).
  util::MetricsRegistry& metrics() const noexcept {
    return tiered_ ? tiered_->metrics() : flat_->metrics();
  }

  /// Snapshot accessors (consistent under the shared lock).
  std::size_t index_bytes() const {
    if (tiered_) return tiered_->index_bytes();
    std::shared_lock lock(mutex_);
    reader_locks_->add();
    return flat_->index_bytes();
  }

  void save(const std::string& path) const {
    FAST_CHECK_MSG(!tiered_, "save() is the legacy flat-file format");
    std::shared_lock lock(mutex_);
    reader_locks_->add();
    flat_->save(path);
  }

  /// Snapshot + WAL rotation. Flat: under the writer lock, so the image
  /// captures a point between mutations and no append races the rotation.
  /// Tiered: TieredIndex quiesces its own lanes.
  storage::Status save_snapshot() {
    if (tiered_) return tiered_->save_snapshot();
    std::unique_lock lock = writer_lock();
    return flat_->save_snapshot();
  }

  /// The wrapped flat index; callers must not mutate it concurrently.
  const FastIndex& unsafe_inner() const {
    FAST_CHECK_MSG(flat_.has_value(), "unsafe_inner() on a tiered facade");
    return *flat_;
  }

  /// The wrapped tiered index (nullptr in flat mode). TieredIndex is
  /// internally synchronized, so this accessor is safe to use live.
  TieredIndex* tiered() const noexcept { return tiered_.get(); }

 private:
  void init_facade_metrics() {
    util::MetricsRegistry& r = metrics();
    writer_locks_ = &r.counter("concurrent.writer_locks");
    reader_locks_ = &r.counter("concurrent.reader_locks");
    insert_batch_size_ = &r.count_histogram("concurrent.insert_batch_size");
    query_batch_size_ = &r.count_histogram("concurrent.query_batch_size");
    erase_batch_size_ = &r.count_histogram("concurrent.erase_batch_size");
  }

  /// Exclusive acquisition with the wait itself traced: under writer/reader
  /// contention the "lock.writer_wait" span is exactly the time this thread
  /// spent blocked, which is what the trace viewer needs to show convoy
  /// effects.
  std::unique_lock<std::shared_mutex> writer_lock() const {
    std::unique_lock lock(mutex_, std::defer_lock);
    {
      util::TraceSpan wait("lock.writer_wait");
      lock.lock();
    }
    writer_locks_->add();
    return lock;
  }

  std::shared_lock<std::shared_mutex> reader_lock() const {
    std::shared_lock lock(mutex_, std::defer_lock);
    {
      util::TraceSpan wait("lock.reader_wait");
      lock.lock();
    }
    reader_locks_->add();
    return lock;
  }

  util::ThreadPool& pool() const {
    std::call_once(pool_once_, [this] {
      pool_ = std::make_unique<util::ThreadPool>(batch_threads_);
    });
    return *pool_;
  }

  mutable std::shared_mutex mutex_;
  std::optional<FastIndex> flat_;
  std::unique_ptr<TieredIndex> tiered_;
  std::size_t batch_threads_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
  util::Counter* writer_locks_ = nullptr;
  util::Counter* reader_locks_ = nullptr;
  util::Histogram* insert_batch_size_ = nullptr;
  util::Histogram* query_batch_size_ = nullptr;
  util::Histogram* erase_batch_size_ = nullptr;
};

}  // namespace fast::core
