// Thread-safe facade over FastIndex for online operation: the cloud
// middleware ingests uploads continuously while serving queries. Readers
// (queries) share the index; writers (insert/erase) take it exclusively.
// Summarization — the expensive feature-extraction step — runs outside the
// lock, so concurrent uploads only serialize on the cheap hashing/placement
// phase. The batch paths amortize further: insert_batch fans FE+SM for the
// whole batch across a thread pool and then takes the writer lock exactly
// once for all placements.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/fast_index.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace fast::core {

class ConcurrentFastIndex {
 public:
  /// `batch_threads` workers for the batch FE+SM fan-out (0 = hardware
  /// concurrency); the pool is created lazily on the first batch call.
  ConcurrentFastIndex(FastConfig config, vision::PcaModel pca,
                      std::size_t batch_threads = 0)
      : ConcurrentFastIndex(FastIndex(std::move(config), std::move(pca)),
                            batch_threads) {}

  /// Wraps an already-built index (e.g., one recovered from disk).
  explicit ConcurrentFastIndex(FastIndex index, std::size_t batch_threads = 0)
      : index_(std::move(index)), batch_threads_(batch_threads) {
    util::MetricsRegistry& r = index_.metrics();
    writer_locks_ = &r.counter("concurrent.writer_locks");
    reader_locks_ = &r.counter("concurrent.reader_locks");
    insert_batch_size_ = &r.count_histogram("concurrent.insert_batch_size");
    query_batch_size_ = &r.count_histogram("concurrent.query_batch_size");
  }

  /// Durable concurrent index: recovers (or initializes) FastIndex state in
  /// opts.dir and wraps it. Returns a pointer because the facade holds a
  /// mutex and cannot move. See FastIndex::open_or_recover for semantics.
  static storage::StatusOr<std::unique_ptr<ConcurrentFastIndex>>
  open_or_recover(FastConfig config, vision::PcaModel pca,
                  const DurabilityOptions& opts, RecoveryStats* stats = nullptr,
                  std::size_t batch_threads = 0) {
    auto index = FastIndex::open_or_recover(std::move(config), std::move(pca),
                                            opts, stats);
    if (!index.ok()) return index.status();
    return std::make_unique<ConcurrentFastIndex>(std::move(index).value(),
                                                 batch_threads);
  }

  std::size_t size() const {
    std::shared_lock lock(mutex_);
    reader_locks_->add();
    return index_.size();
  }

  /// Extraction + summarization without the lock, placement under it.
  /// Charges the same frontend cost as FastIndex::insert (the original
  /// concurrent path silently dropped the FE + Bloom-hash charge).
  InsertResult insert(std::uint64_t id, const img::Image& image) {
    util::TraceSpan span("concurrent.insert");
    const hash::SparseSignature sig = index_.summarize(image);
    const sim::SimClock frontend = index_.frontend_insert_cost();
    std::unique_lock lock = writer_lock();
    InsertResult result = index_.insert_signature(id, sig);
    result.cost.merge(frontend);
    return result;
  }

  InsertResult insert_signature(std::uint64_t id,
                                const hash::SparseSignature& signature) {
    util::TraceSpan span("concurrent.insert");
    std::unique_lock lock = writer_lock();
    return index_.insert_signature(id, signature);
  }

  /// Batch ingest: FE+SM for all items runs on the pool with no lock held,
  /// then every placement happens under a single writer-lock acquisition —
  /// one lock round-trip per batch instead of per image. Per-item costs
  /// match insert()'s accounting.
  std::vector<InsertResult> insert_batch(std::span<const BatchImage> items) {
    util::TraceSpan span("concurrent.insert_batch");
    span.attr("items", static_cast<double>(items.size()));
    insert_batch_size_->observe(static_cast<double>(items.size()));
    std::vector<const img::Image*> images(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) images[i] = items[i].image;
    std::vector<hash::SparseSignature> sigs(items.size());
    pool().parallel_for(items.size(), [&](std::size_t i) {
      sigs[i] = index_.summarize(*images[i]);
    });
    const sim::SimClock frontend = index_.frontend_insert_cost();

    std::unique_lock lock = writer_lock();
    std::vector<InsertResult> results;
    results.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      InsertResult result = index_.insert_signature(items[i].id, sigs[i]);
      result.cost.merge(frontend);
      results.push_back(std::move(result));
    }
    return results;
  }

  bool erase(std::uint64_t id) {
    util::TraceSpan span("concurrent.erase");
    std::unique_lock lock = writer_lock();
    return index_.erase(id);
  }

  /// Summarization outside the lock, probe/rank under it; identical cost
  /// accounting to FastIndex::query (FE + Bloom hash ops + FE task chunks).
  QueryResult query(const img::Image& image, std::size_t k) const {
    util::TraceSpan span("concurrent.query");
    const hash::SparseSignature sig = index_.summarize(image);
    std::shared_lock lock = reader_lock();
    return index_.query_summarized(sig, k);
  }

  QueryResult query_signature(const hash::SparseSignature& signature,
                              std::size_t k) const {
    util::TraceSpan span("concurrent.query");
    std::shared_lock lock = reader_lock();
    return index_.query_signature(signature, k);
  }

  /// Batch query: FE+SM on the pool without the lock, then all probe/rank
  /// work under one shared (reader) lock acquisition.
  std::vector<QueryResult> query_batch(
      std::span<const img::Image* const> images, std::size_t k) const {
    util::TraceSpan span("concurrent.query_batch");
    span.attr("items", static_cast<double>(images.size()));
    query_batch_size_->observe(static_cast<double>(images.size()));
    std::vector<hash::SparseSignature> sigs(images.size());
    pool().parallel_for(images.size(), [&](std::size_t i) {
      sigs[i] = index_.summarize(*images[i]);
    });

    std::shared_lock lock = reader_lock();
    std::vector<QueryResult> results;
    results.reserve(images.size());
    for (const auto& sig : sigs) {
      results.push_back(index_.query_summarized(sig, k));
    }
    return results;
  }

  /// Writer-lock acquisitions so far (batch-amortization observability).
  std::size_t writer_lock_count() const noexcept {
    return writer_locks_->value();
  }
  /// Reader (shared) lock acquisitions so far.
  std::size_t reader_lock_count() const noexcept {
    return reader_locks_->value();
  }

  /// The shared per-stage registry (same instance as the inner index's).
  util::MetricsRegistry& metrics() const noexcept { return index_.metrics(); }

  /// Snapshot accessors (consistent under the shared lock).
  std::size_t index_bytes() const {
    std::shared_lock lock(mutex_);
    reader_locks_->add();
    return index_.index_bytes();
  }

  void save(const std::string& path) const {
    std::shared_lock lock(mutex_);
    reader_locks_->add();
    index_.save(path);
  }

  /// Snapshot + WAL rotation under the writer lock: the image captures a
  /// point between mutations, and no append can race the rotation.
  storage::Status save_snapshot() {
    std::unique_lock lock = writer_lock();
    return index_.save_snapshot();
  }

  /// The wrapped index; callers must not mutate it concurrently.
  const FastIndex& unsafe_inner() const { return index_; }

 private:
  /// Exclusive acquisition with the wait itself traced: under writer/reader
  /// contention the "lock.writer_wait" span is exactly the time this thread
  /// spent blocked, which is what the trace viewer needs to show convoy
  /// effects.
  std::unique_lock<std::shared_mutex> writer_lock() const {
    std::unique_lock lock(mutex_, std::defer_lock);
    {
      util::TraceSpan wait("lock.writer_wait");
      lock.lock();
    }
    writer_locks_->add();
    return lock;
  }

  std::shared_lock<std::shared_mutex> reader_lock() const {
    std::shared_lock lock(mutex_, std::defer_lock);
    {
      util::TraceSpan wait("lock.reader_wait");
      lock.lock();
    }
    reader_locks_->add();
    return lock;
  }

  util::ThreadPool& pool() const {
    std::call_once(pool_once_, [this] {
      pool_ = std::make_unique<util::ThreadPool>(batch_threads_);
    });
    return *pool_;
  }

  mutable std::shared_mutex mutex_;
  FastIndex index_;
  std::size_t batch_threads_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
  util::Counter* writer_locks_ = nullptr;
  util::Counter* reader_locks_ = nullptr;
  util::Histogram* insert_batch_size_ = nullptr;
  util::Histogram* query_batch_size_ = nullptr;
};

}  // namespace fast::core
