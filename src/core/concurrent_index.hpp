// Thread-safe facade over FastIndex for online operation: the cloud
// middleware ingests uploads continuously while serving queries. Readers
// (queries) share the index; writers (insert/erase) take it exclusively.
// Summarization — the expensive feature-extraction step — runs outside the
// lock, so concurrent uploads only serialize on the cheap hashing/placement
// phase.
#pragma once

#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "core/fast_index.hpp"

namespace fast::core {

class ConcurrentFastIndex {
 public:
  ConcurrentFastIndex(FastConfig config, vision::PcaModel pca)
      : index_(std::move(config), std::move(pca)) {}

  std::size_t size() const {
    std::shared_lock lock(mutex_);
    return index_.size();
  }

  /// Extraction + summarization without the lock, placement under it.
  InsertResult insert(std::uint64_t id, const img::Image& image) {
    const hash::SparseSignature sig = index_.summarize(image);
    std::unique_lock lock(mutex_);
    return index_.insert_signature(id, sig);
  }

  InsertResult insert_signature(std::uint64_t id,
                                const hash::SparseSignature& signature) {
    std::unique_lock lock(mutex_);
    return index_.insert_signature(id, signature);
  }

  bool erase(std::uint64_t id) {
    std::unique_lock lock(mutex_);
    return index_.erase(id);
  }

  QueryResult query(const img::Image& image, std::size_t k) const {
    const hash::SparseSignature sig = index_.summarize(image);
    QueryResult r = query_signature(sig, k);
    r.cost.charge(index_.config().feature_extract_s);
    return r;
  }

  QueryResult query_signature(const hash::SparseSignature& signature,
                              std::size_t k) const {
    std::shared_lock lock(mutex_);
    return index_.query_signature(signature, k);
  }

  /// Snapshot accessors (consistent under the shared lock).
  std::size_t index_bytes() const {
    std::shared_lock lock(mutex_);
    return index_.index_bytes();
  }

  void save(const std::string& path) const {
    std::shared_lock lock(mutex_);
    index_.save(path);
  }

  /// The wrapped index; callers must not mutate it concurrently.
  const FastIndex& unsafe_inner() const { return index_; }

 private:
  mutable std::shared_mutex mutex_;
  FastIndex index_;
};

}  // namespace fast::core
