#include "core/memtable_index.hpp"

#include <algorithm>

#include "core/pipeline/factory.hpp"
#include "util/check.hpp"

namespace fast::core {

MemtableIndex::MemtableIndex(const FastConfig& config, std::size_t tables)
    : store_(pipeline::make_group_store(config, tables)) {}

std::size_t MemtableIndex::place(std::uint64_t id,
                                 const hash::SparseSignature& signature,
                                 std::span<const std::uint64_t> keys,
                                 std::size_t* slot_reads) {
  FAST_CHECK(keys.size() == store_->table_count());
  FAST_CHECK_MSG(!contains(id), "place() on a present id; remove() it first");
  std::size_t rehashes = 0;
  for (std::size_t t = 0; t < keys.size(); ++t) {
    std::size_t lookup_probes = 0;
    const auto group = store_->find(t, keys[t], &lookup_probes);
    if (slot_reads != nullptr) *slot_reads += lookup_probes;
    if (group) {
      groups_[*group].push_back(id);
    } else {
      const std::uint64_t group_id = groups_.size();
      groups_.emplace_back(std::vector<std::uint64_t>{id});
      rehashes += store_->place(t, keys[t], group_id);
    }
  }
  signatures_.emplace(id, signature);
  keys_.emplace(id, std::vector<std::uint64_t>(keys.begin(), keys.end()));
  tombstones_.erase(id);
  return rehashes;
}

void MemtableIndex::remove(std::uint64_t id) {
  const auto it = signatures_.find(id);
  FAST_CHECK_MSG(it != signatures_.end(), "remove() on an absent id");
  const std::vector<std::uint64_t>& keys = keys_.at(id);
  for (std::size_t t = 0; t < keys.size(); ++t) {
    if (const auto group = store_->find(t, keys[t])) {
      auto& members = groups_[*group];
      members.erase(std::remove(members.begin(), members.end(), id),
                    members.end());
      // An emptied group's bucket key is dropped so queries stop probing it.
      if (members.empty()) store_->erase_key(t, keys[t]);
    }
  }
  signatures_.erase(it);
  keys_.erase(id);
}

void MemtableIndex::collect(std::size_t t, std::uint64_t key,
                            std::unordered_set<std::uint64_t>& out,
                            std::size_t* slot_reads) const {
  std::size_t lookup_probes = 0;
  if (const auto group = store_->find(t, key, &lookup_probes)) {
    for (const std::uint64_t id : groups_[*group]) out.insert(id);
  }
  if (slot_reads != nullptr) *slot_reads += lookup_probes;
}

std::vector<std::uint64_t> MemtableIndex::sorted_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(signatures_.size());
  for (const auto& entry : signatures_) ids.push_back(entry.first);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t MemtableIndex::bytes() const {
  std::size_t bytes = 0;
  for (const auto& [id, sig] : signatures_) {
    bytes += sizeof(id) + sig.storage_bytes() +
             sizeof(std::uint64_t) * store_->table_count();
  }
  bytes += store_->store_bytes();
  for (const auto& group : groups_) {
    bytes += sizeof(std::uint64_t) * group.size() + sizeof(std::uint64_t);
  }
  bytes += sizeof(std::uint64_t) * tombstones_.size();
  return bytes;
}

void MemtableIndex::serialize(util::ByteWriter& out) const {
  const std::vector<std::uint64_t> ids = sorted_ids();
  out.u64(ids.size());
  for (const std::uint64_t id : ids) {
    out.u64(id);
    out.blob(signatures_.at(id).encode());
    // Cached home keys, one per table (count implied by the store).
    for (const std::uint64_t key : keys_.at(id)) out.u64(key);
  }

  std::vector<std::uint64_t> dead(tombstones_.begin(), tombstones_.end());
  std::sort(dead.begin(), dead.end());
  out.u64(dead.size());
  for (const std::uint64_t id : dead) out.u64(id);

  out.u64(groups_.size());
  for (const auto& members : groups_) {
    out.u64(members.size());
    for (const std::uint64_t id : members) out.u64(id);
  }
  store_->serialize(out);
}

bool MemtableIndex::deserialize(util::ByteReader& in, std::size_t bloom_bits) {
  const std::uint64_t count = in.u64();
  // Each entry spends at least 8 (id) + 4 (blob length prefix) +
  // table_count*8 (home keys) bytes, so bound the reserve against the
  // bytes actually left instead of trusting a CRC-valid-but-bogus count.
  const std::size_t min_entry_bytes = 8 + 4 + store_->table_count() * 8;
  if (!in.ok() || count > in.remaining() / min_entry_bytes) return false;
  std::unordered_map<std::uint64_t, hash::SparseSignature> sigs;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> keys;
  sigs.reserve(count);
  keys.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = in.u64();
    const auto encoded = in.blob();
    if (!in.ok()) return false;
    try {
      hash::SparseSignature sig = hash::SparseSignature::decode(encoded);
      if (sig.bit_count() != bloom_bits) return false;
      sigs.emplace(id, std::move(sig));
    } catch (const std::runtime_error&) {
      return false;
    }
    std::vector<std::uint64_t> home(store_->table_count());
    for (auto& key : home) key = in.u64();
    if (!in.ok()) return false;
    keys.emplace(id, std::move(home));
  }

  const std::uint64_t dead_count = in.u64();
  if (!in.ok() || dead_count > in.remaining() / 8) return false;
  std::unordered_set<std::uint64_t> dead;
  dead.reserve(dead_count);
  for (std::uint64_t i = 0; i < dead_count; ++i) dead.insert(in.u64());

  const std::uint64_t group_count = in.u64();
  if (!in.ok() || group_count > in.remaining() / 8) return false;
  std::vector<std::vector<std::uint64_t>> groups;
  groups.reserve(group_count);
  for (std::uint64_t g = 0; g < group_count; ++g) {
    const std::uint64_t members = in.u64();
    if (!in.ok() || members > in.remaining() / 8) return false;
    std::vector<std::uint64_t> list;
    list.reserve(members);
    for (std::uint64_t i = 0; i < members; ++i) list.push_back(in.u64());
    groups.push_back(std::move(list));
  }
  if (!in.ok()) return false;
  if (!store_->deserialize(in)) return false;

  signatures_ = std::move(sigs);
  keys_ = std::move(keys);
  tombstones_ = std::move(dead);
  groups_ = std::move(groups);
  return true;
}

}  // namespace fast::core
