#include "core/segment.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fast::core {

namespace {
// Segments always hash key fingerprints with the same probe count and
// seed; only the width scales with content.
constexpr std::size_t kSegmentBloomHashes = 6;
constexpr std::uint64_t kSegmentBloomSeed = 0x5e67;
}  // namespace

hash::BloomFilter ImmutableSegment::build_bloom(const MemtableIndex& state,
                                                double bits_per_key) {
  const std::size_t pairs = state.entries() * state.table_count();
  const std::size_t bits = std::max<std::size_t>(
      64, static_cast<std::size_t>(static_cast<double>(pairs) *
                                   std::max(bits_per_key, 1.0)));
  hash::BloomFilter bloom(bits, kSegmentBloomHashes, kSegmentBloomSeed);
  for (const std::uint64_t id : state.sorted_ids()) {
    const std::vector<std::uint64_t>& keys = *state.keys_of(id);
    for (std::size_t t = 0; t < keys.size(); ++t) {
      bloom.insert_u64(key_fingerprint(t, keys[t]));
    }
  }
  return bloom;
}

void ImmutableSegment::serialize(util::ByteWriter& out) const {
  out.u64(id_);
  out.u8(bloom_.has_value() ? 1 : 0);
  if (bloom_.has_value()) {
    out.u64(bloom_->bit_count());
    out.u64(bloom_->hash_count());
    out.u64(bloom_->hash_seed());
    out.u64(bloom_->inserted_count());
    const auto words = bloom_->words();
    out.u64(words.size());
    for (const std::uint64_t w : words) out.u64(w);
  }
  state_->serialize(out);
}

std::shared_ptr<const ImmutableSegment> ImmutableSegment::deserialize(
    util::ByteReader& in, const FastConfig& config, std::size_t tables) {
  const std::uint64_t id = in.u64();
  const bool has_bloom = in.u8() != 0;
  std::optional<hash::BloomFilter> bloom;
  if (has_bloom) {
    const std::uint64_t bits = in.u64();
    const std::uint64_t k = in.u64();
    const std::uint64_t seed = in.u64();
    const std::uint64_t inserted = in.u64();
    const std::uint64_t word_count = in.u64();
    if (!in.ok() || bits == 0 || bits % 64 != 0 || k == 0 ||
        word_count != bits / 64 || word_count > in.remaining() / 8) {
      return nullptr;
    }
    std::vector<std::uint64_t> words;
    words.reserve(word_count);
    for (std::uint64_t i = 0; i < word_count; ++i) words.push_back(in.u64());
    if (!in.ok()) return nullptr;
    bloom = hash::BloomFilter::from_state(bits, k, seed, std::move(words),
                                          inserted);
  }
  auto state = std::make_shared<MemtableIndex>(config, tables);
  if (!state->deserialize(in, config.bloom_bits)) return nullptr;
  if (bloom.has_value()) {
    return std::make_shared<const ImmutableSegment>(
        id, std::shared_ptr<const MemtableIndex>(std::move(state)),
        std::move(*bloom));
  }
  return std::make_shared<const ImmutableSegment>(
      id, std::shared_ptr<const MemtableIndex>(std::move(state)));
}

}  // namespace fast::core
