// End-to-end configuration of the FAST pipeline. Defaults follow the
// paper's §IV-A2 parameters: LSH L = 7, M = 10, omega = 0.85; Bloom k = 8;
// multi-probe over adjacent buckets; two-choice cuckoo storage with
// adjacent-neighborhood windows.
#pragma once

#include <cstdint>

#include "hash/flat_cuckoo_table.hpp"
#include "hash/minhash.hpp"
#include "hash/pstable_lsh.hpp"
#include "sim/cost_model.hpp"
#include "vision/dog_detector.hpp"
#include "vision/pca_sift.hpp"

namespace fast::core {

struct FastConfig {
  // FE: DoG detection + PCA-SIFT description.
  vision::DogConfig dog;
  vision::PcaSiftConfig pca_sift;
  std::size_t max_keypoints = 128;

  // SM: per-image Bloom summary. Descriptors are whitened (divided by the
  // per-component PCA standard deviation), split into groups of
  // `quantize_group_dims` components, and each group's coarsely quantized
  // cell tuple is one Bloom insertion. Near-duplicate descriptors agree on
  // most groups, so similar images share most of their set bits, while a
  // single jittered component only perturbs its own group — the robustness
  // whole-descriptor quantization lacks.
  std::size_t bloom_bits = 16384;  ///< m
  std::size_t bloom_hashes = 8;   ///< k = 8 (paper §IV-A2)
  std::size_t quantize_group_dims = 6;  ///< components per quantized group
  float quantize_cell = 2.0f;     ///< cell width in whitened units
  double spatial_cell_px = 32.0;  ///< coarse keypoint-position cell

  // SA: locality hashing over the Bloom summaries. Two interchangeable
  // backends feed the same cuckoo storage:
  //  - kPStable: the paper's p-stable (L2) LSH over the dense bit-vector
  //    (L = 7, M = 10, omega = 0.85 per §IV-A2);
  //  - kMinHash: MinHash banding over the sparse set-bit list, whose
  //    collision probability equals the signatures' Jaccard similarity —
  //    the default here because the synthetic feature pipeline yields
  //    lower bit overlap than the paper's real-image features (DESIGN.md §2).
  enum class SaBackend { kPStable, kMinHash };
  SaBackend sa_backend = SaBackend::kMinHash;
  hash::LshConfig lsh{
      .dim = 16384, .tables = 7, .hashes_per_table = 10, .omega = 0.85,
      .seed = 0x15b};
  hash::MinHashConfig minhash{.bands = 48, .band_size = 2, .seed = 0x31a};
  bool minhash_multiprobe = false;  ///< probe runner-up bands (recall boost)
  int probe_depth = 1;  ///< adjacent-bucket probing depth (0 disables)
  /// Input vectors are scaled by this factor before hashing so that the
  /// typical nearest-neighbor distance lands well inside one omega cell
  /// (the paper's R-tuning step; see FastIndex::calibrate_scale).
  double lsh_input_scale = 1.0;
  /// Scaled NN distance the calibration targets, as a fraction of omega.
  double calibrate_target = 0.25;

  // CHS: group storage behind the aggregator's bucket keys. Two runtime-
  // selectable backends:
  //  - kFlatCuckoo: the paper's flat-structured cuckoo addressing — fixed
  //    2W-probe lookups, proactive doubling at 80% load (amortized O(1));
  //  - kChained: conventional vertical addressing (bucket chains), the
  //    baseline of §III-C3 kept selectable for ablations.
  enum class ChsBackend { kFlatCuckoo, kChained };
  ChsBackend chs_backend = ChsBackend::kFlatCuckoo;
  hash::FlatCuckooConfig cuckoo{
      .capacity = 256, .window = 4, .max_kicks = 500, .seed = 0xfa57};
  /// Chain heads per table for the kChained baseline (fixed; chains absorb
  /// overflow, which is exactly the unbounded-probe behavior under study).
  std::size_t chained_buckets = 4096;

  // Simulated platform for the cost accounting.
  sim::CostModel cost;

  /// Per-image feature-extraction cost on the paper's hardware (DoG +
  /// PCA-SIFT on a ~1 MB JPEG). Used by the simulated-latency experiments;
  /// the real extraction also runs natively on the synthetic images.
  double feature_extract_s = 0.040;

  FastConfig() {
    dog.max_keypoints = max_keypoints;
    // Keep LSH input dimensionality in lockstep with the Bloom width.
    lsh.dim = bloom_bits;
  }
};

}  // namespace fast::core
