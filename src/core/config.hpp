// End-to-end configuration of the FAST pipeline. Defaults follow the
// paper's §IV-A2 parameters: LSH L = 7, M = 10, omega = 0.85; Bloom k = 8;
// multi-probe over adjacent buckets; two-choice cuckoo storage with
// adjacent-neighborhood windows.
#pragma once

#include <cstdint>

#include "hash/flat_cuckoo_table.hpp"
#include "hash/minhash.hpp"
#include "hash/pstable_lsh.hpp"
#include "sim/cost_model.hpp"
#include "vision/dog_detector.hpp"
#include "vision/pca_sift.hpp"

namespace fast::core {

/// LSM-style tiering of the index (DESIGN.md §3f). When enabled, inserts
/// land in small per-lane mutable memtables that are sealed into immutable
/// read-only segments once they reach `seal_threshold` entries; a
/// background thread merges segment runs under a size-tiered policy.
/// Queries fan across memtable + segments and merge by distance, honoring
/// tombstones, so results are identical to a single flat index holding the
/// same live set.
struct TierConfig {
  bool enabled = false;
  /// Memtable entries (signatures + tombstones) that trigger a seal.
  std::size_t seal_threshold = 4096;
  /// Independent memtable lanes; ids are hash-partitioned across lanes so
  /// concurrent writers contend only 1/lanes of the time.
  std::size_t lanes = 4;
  /// Adjacent segments merged per compaction run.
  std::size_t compact_fanin = 4;
  /// Per-lane segment count that makes the lane eligible for compaction.
  std::size_t compact_trigger = 8;
  /// Per-segment bloom summary sizing over (table, bucket-key) pairs; the
  /// filter lets queries skip segments that cannot contain any probe key.
  double bloom_bits_per_key = 10.0;
  /// Run seal finalization + compaction on a background thread. Tests and
  /// crash-matrix workloads set false to make merges deterministic and
  /// inline (compaction runs at seal time on the calling thread).
  bool background = true;
};

struct FastConfig {
  // FE: DoG detection + PCA-SIFT description.
  vision::DogConfig dog;
  vision::PcaSiftConfig pca_sift;
  std::size_t max_keypoints = 128;

  // SM: per-image Bloom summary. Descriptors are whitened (divided by the
  // per-component PCA standard deviation), split into groups of
  // `quantize_group_dims` components, and each group's coarsely quantized
  // cell tuple is one Bloom insertion. Near-duplicate descriptors agree on
  // most groups, so similar images share most of their set bits, while a
  // single jittered component only perturbs its own group — the robustness
  // whole-descriptor quantization lacks.
  std::size_t bloom_bits = 16384;  ///< m
  std::size_t bloom_hashes = 8;   ///< k = 8 (paper §IV-A2)
  std::size_t quantize_group_dims = 6;  ///< components per quantized group
  float quantize_cell = 2.0f;     ///< cell width in whitened units
  double spatial_cell_px = 32.0;  ///< coarse keypoint-position cell

  // SA: locality hashing over the Bloom summaries. Two interchangeable
  // backends feed the same cuckoo storage:
  //  - kPStable: the paper's p-stable (L2) LSH over the dense bit-vector
  //    (L = 7, M = 10, omega = 0.85 per §IV-A2);
  //  - kMinHash: MinHash banding over the sparse set-bit list, whose
  //    collision probability equals the signatures' Jaccard similarity —
  //    the default here because the synthetic feature pipeline yields
  //    lower bit overlap than the paper's real-image features (DESIGN.md §2).
  enum class SaBackend { kPStable, kMinHash };
  SaBackend sa_backend = SaBackend::kMinHash;
  hash::LshConfig lsh{
      .dim = 16384, .tables = 7, .hashes_per_table = 10, .omega = 0.85,
      .seed = 0x15b};
  hash::MinHashConfig minhash{.bands = 48, .band_size = 2, .seed = 0x31a};
  bool minhash_multiprobe = false;  ///< probe runner-up bands (recall boost)
  int probe_depth = 1;  ///< adjacent-bucket probing depth (0 disables)
  /// Input vectors are scaled by this factor before hashing so that the
  /// typical nearest-neighbor distance lands well inside one omega cell
  /// (the paper's R-tuning step; see FastIndex::calibrate_scale).
  double lsh_input_scale = 1.0;
  /// Scaled NN distance the calibration targets, as a fraction of omega.
  double calibrate_target = 0.25;

  // CHS: group storage behind the aggregator's bucket keys. Three runtime-
  // selectable backends:
  //  - kFlatCuckoo: the paper's flat-structured cuckoo addressing — fixed
  //    2W-probe lookups, proactive doubling at 80% load (amortized O(1));
  //  - kChained: conventional vertical addressing (bucket chains), the
  //    baseline of §III-C3 kept selectable for ablations;
  //  - kCompactFlatCuckoo ("flat_compact"): flat addressing over the
  //    fingerprint-compressed SoA table (DESIGN.md §3h) — 16-bit
  //    fingerprint lane scanned first, full keys out-of-line; bit-identical
  //    results to kFlatCuckoo with a ~4x smaller probe working set.
  enum class ChsBackend { kFlatCuckoo, kChained, kCompactFlatCuckoo };
  ChsBackend chs_backend = ChsBackend::kFlatCuckoo;
  hash::FlatCuckooConfig cuckoo{
      .capacity = 256, .window = 4, .max_kicks = 500, .seed = 0xfa57};
  /// Chain heads per table for the kChained baseline (fixed; chains absorb
  /// overflow, which is exactly the unbounded-probe behavior under study).
  std::size_t chained_buckets = 4096;

  /// Tiered (memtable + sealed segments) layout; off = one flat mutable
  /// index. Thresholds/lanes are operational knobs and do not change how
  /// persisted state is interpreted, so only `enabled` enters the config
  /// fingerprint (a tiered directory is not openable as flat or vice versa
  /// — the on-disk manifest shapes differ).
  TierConfig tier;

  /// Bloofi-style shard routing in ShardedFastIndex (DESIGN.md §3h): log2
  /// of the per-shard counting-bloom summary over resident (table,
  /// home-key) fingerprints. Queries skip shards whose summary excludes
  /// every probed key. 0 disables routing (scatter to all shards — the
  /// ablation baseline). Operational knob: summaries are rebuilt from
  /// recovered state, never persisted, so it stays out of the config
  /// fingerprint.
  std::size_t shard_routing_bits = 0;

  // Simulated platform for the cost accounting.
  sim::CostModel cost;

  /// Per-image feature-extraction cost on the paper's hardware (DoG +
  /// PCA-SIFT on a ~1 MB JPEG). Used by the simulated-latency experiments;
  /// the real extraction also runs natively on the synthetic images.
  double feature_extract_s = 0.040;

  FastConfig() {
    dog.max_keypoints = max_keypoints;
    // Keep LSH input dimensionality in lockstep with the Bloom width.
    lsh.dim = bloom_bits;
  }
};

}  // namespace fast::core
