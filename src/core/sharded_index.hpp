// Distributed FAST: the paper's 256-node deployment shape.
//
// Photos are hash-partitioned across shards (one per cluster node in the
// paper); each shard runs an independent local index over its partition —
// a flat FastIndex by default, or a TieredIndex (memtable + sealed
// segments + background compaction) when config.tier.enabled is set, so a
// churn-heavy deployment keeps per-node ingest off the query path. Queries
// scatter the ~hundreds-of-bytes signature to all shards — not the image —
// gather the per-shard top-k and merge. Per-query simulated cost models the
// scatter/gather network hops plus the slowest shard's local probe (shards
// work in parallel), which is what keeps the distributed query latency flat
// as nodes are added.
// Bloofi-style routing (DESIGN.md §3h): when config.shard_routing_bits > 0
// the facade keeps one counting-bloom summary per shard over the
// fingerprints of every resident signature's (table, home-key) pairs,
// maintained on insert/erase. Queries derive their probe keys once at the
// coordinator and skip shards whose summary excludes every probed key —
// those shards incur no scatter hop, no probe work, and no gather message.
// Summaries have no false negatives, so results are identical to the
// gather-all baseline (shard_routing_bits = 0).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/fast_index.hpp"
#include "core/tiered_index.hpp"
#include "hash/counting_bloom.hpp"
#include "storage/shard.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace fast::core {

class ShardedFastIndex {
 public:
  /// `shards` independent partitions (flat or tiered per
  /// config.tier.enabled); `threads` native workers for parallel shard
  /// probing (0 = hardware concurrency).
  ShardedFastIndex(FastConfig config, vision::PcaModel pca,
                   std::size_t shards, std::size_t threads = 0);

  /// Durable sharded index: each shard recovers independently from its own
  /// snapshot + WAL directory (opts.dir/shard-<i>), with the same per-shard
  /// seed derivation as the in-memory constructor, so a recovered deployment
  /// is bit-identical to the pre-crash one. When `stats` is non-null it
  /// receives the aggregate across shards (counts summed, snapshot_seq the
  /// max, flags OR-ed).
  static storage::StatusOr<std::unique_ptr<ShardedFastIndex>> open_or_recover(
      FastConfig config, vision::PcaModel pca, std::size_t shards,
      const DurabilityOptions& opts, RecoveryStats* stats = nullptr,
      std::size_t threads = 0);

  /// Snapshots every shard (each rotates its own WAL). All shards are
  /// attempted; the first error is returned.
  storage::Status save_snapshot();

  std::size_t shard_count() const noexcept { return shard_map_.shard_count(); }
  std::size_t size() const noexcept;
  const FastConfig& config() const noexcept { return config_; }
  bool is_tiered() const noexcept { return !tiered_shards_.empty(); }

  /// Shard that owns an image id.
  std::size_t shard_of(std::uint64_t id) const noexcept {
    return shard_map_.shard_of(id);
  }

  /// Inserts into the owning shard (plus the scatter network hop).
  InsertResult insert(std::uint64_t id, const img::Image& image);
  InsertResult insert_signature(std::uint64_t id,
                                const hash::SparseSignature& signature);

  /// Batch ingest: FE+SM for the whole batch fans across the native pool,
  /// then each shard places its sub-batch — shards are independent, so the
  /// placement phase itself runs shard-parallel. Per-item results match
  /// insert()'s accounting; results[i] corresponds to items[i].
  std::vector<InsertResult> insert_batch(std::span<const BatchImage> items);

  /// Erases from the owning shard; false when no shard held the id.
  bool erase(std::uint64_t id);

  /// Scatter-gather query across all shards; shards probe in parallel
  /// (native threads) and the merged top-k is returned. The simulated cost
  /// is scatter + max over shards + gather.
  QueryResult query(const img::Image& image, std::size_t k) const;
  QueryResult query_signature(const hash::SparseSignature& signature,
                              std::size_t k) const;

  /// Batch scatter-gather: summarization and the (query x shard) probe
  /// matrix both fan across the native pool; results match per-item
  /// query() calls.
  std::vector<QueryResult> query_batch(
      std::span<const img::Image* const> images, std::size_t k) const;

  /// Sum of all shards' in-memory index bytes.
  std::size_t index_bytes() const;

  /// Access to a flat shard's local index (tests, rebalancing tooling).
  /// Only valid when !is_tiered().
  const FastIndex& shard(std::size_t i) const {
    FAST_CHECK_MSG(!is_tiered(), "shard() on a tiered deployment");
    return *shards_.at(i);
  }
  /// Access to a tiered shard's local index. Only valid when is_tiered().
  const TieredIndex& tiered_shard(std::size_t i) const {
    FAST_CHECK_MSG(is_tiered(), "tiered_shard() on a flat deployment");
    return *tiered_shards_.at(i);
  }

  /// Scatter/gather and fan-out observability for the distributed frontend
  /// (per-shard stage metrics live in each shard's own registry).
  util::MetricsRegistry& metrics() const noexcept { return *metrics_; }

  /// True when per-shard routing summaries are active
  /// (config.shard_routing_bits > 0).
  bool routing_enabled() const noexcept { return !summaries_.empty(); }

 private:
  /// Assembles the facade around pre-built shard indexes (the durable path
  /// recovers each shard before construction). Exactly one of the two
  /// vectors is non-empty.
  ShardedFastIndex(FastConfig config,
                   std::vector<std::unique_ptr<FastIndex>> shards,
                   std::vector<std::unique_ptr<TieredIndex>> tiered_shards,
                   std::size_t threads);

  QueryResult gather(std::vector<QueryResult> per_shard, std::size_t k,
                     double fe_cost) const;

  // --- Bloofi-style routing (no-ops when routing_enabled() is false) ---

  /// Fingerprints of the signature's (table, key) pairs in the summary
  /// domain: home keys only for maintenance, home + probe keys for queries.
  std::vector<std::uint64_t> routing_fingerprints(
      const hash::SparseSignature& signature, bool include_probes) const;
  /// Shard indices whose summary may contain at least one probed key.
  std::vector<std::size_t> route_query(
      const hash::SparseSignature& signature) const;
  void routing_add(std::size_t s, const hash::SparseSignature& signature);
  void routing_remove(std::size_t s, const hash::SparseSignature& signature);
  /// Insert-path maintenance: removes the id's previous signature from
  /// shard `s`'s summary (re-insert evicts it) and adds the new one.
  /// Callers must only touch the summary of the shard they own in a
  /// parallel batch — summaries are not internally synchronized (same
  /// contract as shard writes).
  void routing_replace(std::size_t s, std::uint64_t id,
                       const hash::SparseSignature& signature);
  /// The id's currently-live signature in shard `s` (copy), if any.
  std::optional<hash::SparseSignature> shard_signature(std::size_t s,
                                                       std::uint64_t id) const;
  /// Repopulates every summary from its shard's resident signatures.
  /// Summaries are derived state: recovery rebuilds them instead of
  /// persisting them, so they can never be stale relative to the WAL tail.
  void rebuild_routing_summaries();

  // Shard-local dispatch (flat vs tiered) for the scatter/gather plumbing.
  hash::SparseSignature summarize_front(const img::Image& image) const;
  sim::SimClock frontend_cost() const;
  InsertResult shard_insert_signature(std::size_t s, std::uint64_t id,
                                      const hash::SparseSignature& signature);
  QueryResult shard_query_signature(std::size_t s,
                                    const hash::SparseSignature& signature,
                                    std::size_t k) const;

  FastConfig config_;
  storage::ShardMap shard_map_;
  std::vector<std::unique_ptr<FastIndex>> shards_;
  std::vector<std::unique_ptr<TieredIndex>> tiered_shards_;
  mutable util::ThreadPool pool_;
  std::shared_ptr<util::MetricsRegistry> metrics_;
  /// Coordinator-side key derivation for routing: shards differ only in
  /// storage seeds, so one aggregator derives every shard's bucket keys.
  /// Null when routing is off.
  std::unique_ptr<pipeline::SemanticAggregator> router_agg_;
  /// One summary per shard; empty when routing is off. Reads are lock-free
  /// (const); writers follow the shard-write synchronization contract.
  std::vector<hash::CountingBloomFilter> summaries_;
  util::Counter* queries_ = nullptr;
  util::Counter* inserts_ = nullptr;
  util::Counter* erases_ = nullptr;
  util::Counter* scatter_msgs_ = nullptr;
  util::Counter* gather_msgs_ = nullptr;
  util::Counter* routing_skips_ = nullptr;
  util::Histogram* batch_size_ = nullptr;
  util::Histogram* shard_batch_items_ = nullptr;
  util::Histogram* gather_candidates_ = nullptr;
  util::Histogram* shards_probed_ = nullptr;
};

}  // namespace fast::core
