#include "core/query_engine.hpp"

#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fast::core {

namespace {

void register_engine_metrics(util::MetricsRegistry& r, util::Counter** batches,
                             util::Histogram** batch_size,
                             util::Histogram** batch_wall_s,
                             util::Gauge** last_sim_mean_s,
                             util::Gauge** last_sim_makespan_s) {
  *batches = &r.counter("engine.batches");
  *batch_size = &r.count_histogram("engine.batch_size");
  *batch_wall_s = &r.latency_histogram("engine.batch_native_wall_s");
  *last_sim_mean_s = &r.gauge("engine.last_sim_mean_latency_s");
  *last_sim_makespan_s = &r.gauge("engine.last_sim_makespan_s");
}

}  // namespace

QueryEngine::QueryEngine(const FastIndex& index, std::size_t threads)
    : flat_(&index), pool_(threads) {
  register_engine_metrics(index.metrics(), &batches_, &batch_size_,
                          &batch_wall_s_, &last_sim_mean_s_,
                          &last_sim_makespan_s_);
}

QueryEngine::QueryEngine(const TieredIndex& index, std::size_t threads)
    : tiered_(&index), pool_(threads) {
  register_engine_metrics(index.metrics(), &batches_, &batch_size_,
                          &batch_wall_s_, &last_sim_mean_s_,
                          &last_sim_makespan_s_);
}

QueryEngine::QueryEngine(std::unique_ptr<FastIndex> owned, std::size_t threads)
    : QueryEngine(*owned, threads) {
  owned_ = std::move(owned);
}

QueryEngine::QueryEngine(std::unique_ptr<TieredIndex> owned,
                         std::size_t threads)
    : QueryEngine(*owned, threads) {
  owned_tiered_ = std::move(owned);
}

storage::StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::open(
    FastConfig config, vision::PcaModel pca, const DurabilityOptions& opts,
    RecoveryStats* stats, std::size_t threads) {
  if (config.tier.enabled) {
    auto index = TieredIndex::open_or_recover(std::move(config),
                                              std::move(pca), opts, stats);
    if (!index.ok()) return index.status();
    return std::unique_ptr<QueryEngine>(
        new QueryEngine(std::move(index).value(), threads));
  }
  auto index = FastIndex::open_or_recover(std::move(config), std::move(pca),
                                          opts, stats);
  if (!index.ok()) return index.status();
  return std::unique_ptr<QueryEngine>(new QueryEngine(
      std::make_unique<FastIndex>(std::move(index).value()), threads));
}

void QueryEngine::finish_report(BatchReport& report,
                                std::size_t sim_slots) const {
  std::size_t slots = sim_slots;
  if (slots == 0) {
    const FastConfig& c = backend_config();
    slots = c.cost.nodes * c.cost.cores_per_node;
  }
  std::vector<double> costs;
  costs.reserve(report.results.size());
  for (const QueryResult& r : report.results) {
    costs.push_back(r.cost.elapsed_s());
  }
  report.sim_mean_latency_s = sim::ClusterModel::mean_completion(costs, slots);
  report.sim_makespan_s = sim::ClusterModel::makespan(costs, slots);

  batches_->add();
  batch_size_->observe(static_cast<double>(report.results.size()));
  batch_wall_s_->observe(report.native_wall_s);
  last_sim_mean_s_->set(report.sim_mean_latency_s);
  last_sim_makespan_s_->set(report.sim_makespan_s);
}

BatchReport QueryEngine::run_batch(
    std::span<const hash::SparseSignature> queries,
    const BatchOptions& options) {
  util::TraceSpan span("engine.batch");
  span.attr("queries", static_cast<double>(queries.size()));
  BatchReport report;
  report.results.resize(queries.size());

  util::WallTimer timer;
  pool_.parallel_for(queries.size(), [&](std::size_t i) {
    report.results[i] =
        tiered_ != nullptr
            ? tiered_->query_signature(queries[i], options.top_k)
            : flat_->query_signature(queries[i], options.top_k);
  });
  report.native_wall_s = timer.elapsed_seconds();

  finish_report(report, options.sim_slots);
  return report;
}

BatchReport QueryEngine::run_image_batch(
    std::span<const img::Image* const> images, const BatchOptions& options) {
  util::TraceSpan span("engine.batch");
  span.attr("queries", static_cast<double>(images.size()));
  BatchReport report;

  util::WallTimer timer;
  report.results = tiered_ != nullptr
                       ? tiered_->query_batch(images, options.top_k, &pool_)
                       : flat_->query_batch(images, options.top_k, &pool_);
  report.native_wall_s = timer.elapsed_seconds();

  finish_report(report, options.sim_slots);
  return report;
}

double QueryEngine::simulated_query_latency(const QueryResult& result,
                                            std::size_t cores) {
  if (result.parallel_tasks.empty()) {
    return result.cost.elapsed_s();
  }
  return sim::ClusterModel::makespan(result.parallel_tasks, cores);
}

}  // namespace fast::core
