#include "core/query_engine.hpp"

#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fast::core {

namespace {

void register_engine_metrics(util::MetricsRegistry& r, util::Counter** batches,
                             util::Histogram** batch_size,
                             util::Histogram** batch_wall_s,
                             util::Gauge** last_sim_mean_s,
                             util::Gauge** last_sim_makespan_s) {
  *batches = &r.counter("engine.batches");
  *batch_size = &r.count_histogram("engine.batch_size");
  *batch_wall_s = &r.latency_histogram("engine.batch_native_wall_s");
  *last_sim_mean_s = &r.gauge("engine.last_sim_mean_latency_s");
  *last_sim_makespan_s = &r.gauge("engine.last_sim_makespan_s");
}

}  // namespace

QueryEngine::QueryEngine(const FastIndex& index, std::size_t threads)
    : flat_(&index), pool_(threads) {
  register_engine_metrics(index.metrics(), &batches_, &batch_size_,
                          &batch_wall_s_, &last_sim_mean_s_,
                          &last_sim_makespan_s_);
}

QueryEngine::QueryEngine(const TieredIndex& index, std::size_t threads)
    : tiered_(&index), pool_(threads) {
  register_engine_metrics(index.metrics(), &batches_, &batch_size_,
                          &batch_wall_s_, &last_sim_mean_s_,
                          &last_sim_makespan_s_);
}

QueryEngine::QueryEngine(FastIndex& index, std::size_t threads)
    : QueryEngine(static_cast<const FastIndex&>(index), threads) {
  mut_flat_ = &index;
}

QueryEngine::QueryEngine(TieredIndex& index, std::size_t threads)
    : QueryEngine(static_cast<const TieredIndex&>(index), threads) {
  mut_tiered_ = &index;
}

QueryEngine::QueryEngine(std::unique_ptr<FastIndex> owned, std::size_t threads)
    : QueryEngine(*owned, threads) {  // non-const *owned: engine is writable
  owned_ = std::move(owned);
}

QueryEngine::QueryEngine(std::unique_ptr<TieredIndex> owned,
                         std::size_t threads)
    : QueryEngine(*owned, threads) {
  owned_tiered_ = std::move(owned);
}

storage::StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::open(
    FastConfig config, vision::PcaModel pca, const DurabilityOptions& opts,
    RecoveryStats* stats, std::size_t threads) {
  if (config.tier.enabled) {
    auto index = TieredIndex::open_or_recover(std::move(config),
                                              std::move(pca), opts, stats);
    if (!index.ok()) return index.status();
    return std::unique_ptr<QueryEngine>(
        new QueryEngine(std::move(index).value(), threads));
  }
  auto index = FastIndex::open_or_recover(std::move(config), std::move(pca),
                                          opts, stats);
  if (!index.ok()) return index.status();
  return std::unique_ptr<QueryEngine>(new QueryEngine(
      std::make_unique<FastIndex>(std::move(index).value()), threads));
}

void QueryEngine::finish_report(BatchReport& report,
                                std::size_t sim_slots) const {
  std::size_t slots = sim_slots;
  if (slots == 0) {
    const FastConfig& c = backend_config();
    slots = c.cost.nodes * c.cost.cores_per_node;
  }
  std::vector<double> costs;
  costs.reserve(report.results.size());
  for (const QueryResult& r : report.results) {
    costs.push_back(r.cost.elapsed_s());
  }
  report.sim_mean_latency_s = sim::ClusterModel::mean_completion(costs, slots);
  report.sim_makespan_s = sim::ClusterModel::makespan(costs, slots);

  batches_->add();
  batch_size_->observe(static_cast<double>(report.results.size()));
  batch_wall_s_->observe(report.native_wall_s);
  last_sim_mean_s_->set(report.sim_mean_latency_s);
  last_sim_makespan_s_->set(report.sim_makespan_s);
}

BatchReport QueryEngine::run_batch(
    std::span<const hash::SparseSignature> queries,
    const BatchOptions& options) {
  util::TraceSpan span("engine.batch");
  span.attr("queries", static_cast<double>(queries.size()));
  BatchReport report;
  report.results.resize(queries.size());

  util::WallTimer timer;
  // A writable flat backend can have facade writers racing this batch;
  // hold the reader side for the batch (readers never block readers).
  std::shared_lock<std::shared_mutex> guard = reader_guard();
  pool_.parallel_for(queries.size(), [&](std::size_t i) {
    report.results[i] =
        tiered_ != nullptr
            ? tiered_->query_signature(queries[i], options.top_k)
            : flat_->query_signature(queries[i], options.top_k);
  });
  guard = {};
  report.native_wall_s = timer.elapsed_seconds();

  finish_report(report, options.sim_slots);
  return report;
}

BatchReport QueryEngine::run_image_batch(
    std::span<const img::Image* const> images, const BatchOptions& options) {
  util::TraceSpan span("engine.batch");
  span.attr("queries", static_cast<double>(images.size()));
  BatchReport report;

  util::WallTimer timer;
  {
    std::shared_lock<std::shared_mutex> guard = reader_guard();
    report.results = tiered_ != nullptr
                         ? tiered_->query_batch(images, options.top_k, &pool_)
                         : flat_->query_batch(images, options.top_k, &pool_);
  }
  report.native_wall_s = timer.elapsed_seconds();

  finish_report(report, options.sim_slots);
  return report;
}

QueryResult QueryEngine::query_signature(
    const hash::SparseSignature& signature, std::size_t k) const {
  if (tiered_ != nullptr) return tiered_->query_signature(signature, k);
  std::shared_lock<std::shared_mutex> guard = reader_guard();
  return flat_->query_signature(signature, k);
}

std::size_t QueryEngine::size() const {
  if (tiered_ != nullptr) return tiered_->size();
  std::shared_lock<std::shared_mutex> guard = reader_guard();
  return flat_->size();
}

bool QueryEngine::durable() const noexcept {
  return tiered_ != nullptr ? tiered_->durable() : flat_->durable();
}

InsertResult QueryEngine::insert_signature(
    std::uint64_t id, const hash::SparseSignature& signature) {
  FAST_CHECK_MSG(writable(), "insert through a read-only QueryEngine");
  if (mut_tiered_ != nullptr) return mut_tiered_->insert_signature(id, signature);
  std::unique_lock<std::shared_mutex> guard(rw_mutex_);
  return mut_flat_->insert_signature(id, signature);
}

std::vector<InsertResult> QueryEngine::insert_batch(
    std::span<const EngineWrite> items) {
  FAST_CHECK_MSG(writable(), "insert through a read-only QueryEngine");
  std::vector<InsertResult> results;
  results.reserve(items.size());
  if (mut_tiered_ != nullptr) {
    // Per-lane locking inside the tier: batches from different connections
    // interleave without a facade lock.
    for (const EngineWrite& item : items) {
      results.push_back(mut_tiered_->insert_signature(item.id, item.signature));
    }
    return results;
  }
  std::unique_lock<std::shared_mutex> guard(rw_mutex_);
  for (const EngineWrite& item : items) {
    results.push_back(mut_flat_->insert_signature(item.id, item.signature));
  }
  return results;
}

bool QueryEngine::erase(std::uint64_t id) {
  FAST_CHECK_MSG(writable(), "erase through a read-only QueryEngine");
  if (mut_tiered_ != nullptr) return mut_tiered_->erase(id);
  std::unique_lock<std::shared_mutex> guard(rw_mutex_);
  return mut_flat_->erase(id);
}

std::size_t QueryEngine::erase_batch(std::span<const std::uint64_t> ids) {
  FAST_CHECK_MSG(writable(), "erase through a read-only QueryEngine");
  if (mut_tiered_ != nullptr) return mut_tiered_->erase_batch(ids);
  std::unique_lock<std::shared_mutex> guard(rw_mutex_);
  std::size_t erased = 0;
  for (const std::uint64_t id : ids) {
    if (mut_flat_->erase(id)) ++erased;
  }
  return erased;
}

storage::Status QueryEngine::sync_wal() {
  FAST_CHECK_MSG(writable(), "sync_wal through a read-only QueryEngine");
  if (mut_tiered_ != nullptr) return mut_tiered_->sync_wal();
  std::unique_lock<std::shared_mutex> guard(rw_mutex_);
  return mut_flat_->sync_wal();
}

storage::Status QueryEngine::save_snapshot() {
  FAST_CHECK_MSG(writable(), "save_snapshot through a read-only QueryEngine");
  if (mut_tiered_ != nullptr) return mut_tiered_->save_snapshot();
  std::unique_lock<std::shared_mutex> guard(rw_mutex_);
  return mut_flat_->save_snapshot();
}

double QueryEngine::simulated_query_latency(const QueryResult& result,
                                            std::size_t cores) {
  if (result.parallel_tasks.empty()) {
    return result.cost.elapsed_s();
  }
  return sim::ClusterModel::makespan(result.parallel_tasks, cores);
}

}  // namespace fast::core
