// Result records returned by the FAST index operations, carrying both the
// answers and the simulated-cost accounting that drives the figures.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sim_clock.hpp"

namespace fast::core {

struct ScoredId {
  std::uint64_t id = 0;
  double score = 0;  ///< similarity in [0, 1] (Bloom-signature Jaccard)
};

struct QueryResult {
  std::vector<ScoredId> hits;      ///< ranked, best first
  std::size_t candidates = 0;      ///< ids inspected before ranking
  std::size_t bucket_probes = 0;   ///< cuckoo probes across tables
  sim::SimClock cost;              ///< simulated platform cost
  /// Per-table probe costs (seconds): the independent work units that a
  /// multicore can execute in parallel (Fig. 7).
  std::vector<double> parallel_tasks;
};

struct InsertResult {
  bool ok = true;              ///< false if cuckoo placement failed (rehash)
  std::size_t rehashes = 0;    ///< rehash events triggered by this insert
  sim::SimClock cost;
};

}  // namespace fast::core
