// Wire protocol of the fast::server front door (DESIGN.md §3g).
//
// Framing: every message — request or response — is one length-prefixed
// frame: a little-endian u32 body length followed by the body. Bodies are
// built with util::ByteWriter and parsed fail-soft with util::ByteReader,
// the same primitives as the persistence formats, so the byte layout is
// explicit and endianness-independent.
//
// Request body:   u8 op | u64 seq | op-specific payload
// Response body:  u8 op | u64 seq | u8 status | status/op-specific payload
//
// `seq` is chosen by the client and echoed verbatim, so clients may
// pipeline arbitrarily many requests per connection and match responses
// out of order (the server preserves per-connection execution order, but a
// rejected request is answered immediately, ahead of admitted ones).
// Signatures travel in their sparse varint encoding
// (hash::SparseSignature::encode — the paper's ~40 B/image summary), so a
// query request is typically a few hundred bytes.
//
// Multi-tenant QoS (DESIGN.md §3i): a connection may identify its tenant
// with a kHello handshake (u16 tenant id) at any point; every subsequent
// frame on that connection is accounted against that tenant's quota and
// priority lane. Connections that never send kHello — every pre-QoS
// client — are mapped to the default tenant 0 and keep working unchanged.
//
// Admission control surfaces in-band: a request arriving past the
// connection window, the tenant's admitted-inflight window, or the
// tenant's token-bucket rate is answered with kRetryAfter and an adaptive
// retry hint in milliseconds (derived from the target lane's queue depth
// and recent service time) instead of being queued — the bounded queue is
// the overload-shedding contract, not a TCP stall. kShuttingDown carries
// the same hint so rejected-at-drain clients back off adaptively too.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "hash/sparse_signature.hpp"
#include "util/codec.hpp"

namespace fast::server {

enum class Op : std::uint8_t {
  kPing = 0,
  kInsert = 1,
  kInsertBatch = 2,
  kQuery = 3,
  kQueryBatch = 4,
  kErase = 5,
  kEraseBatch = 6,
  kMetrics = 7,  ///< Prometheus text exposition of the engine registry
  kHello = 8,    ///< tenant handshake; payload = u16 tenant [+ u32 caps]
};

enum class Status : std::uint8_t {
  kOk = 0,
  kRetryAfter = 1,    ///< conn/tenant window or quota; payload = u32 retry ms
  kBadRequest = 2,    ///< unparsable or geometry-mismatched payload
  kShuttingDown = 3,  ///< draining; payload = u32 retry ms + text blob
  kError = 4,         ///< execution failed (e.g. WAL I/O error)
};

/// kHello capability bits (optional u32 after the u16 tenant id; a legacy
/// 2-byte hello means no capabilities). The server echoes the accepted
/// subset in the kOk hello response, and the negotiated bits apply to
/// every later frame on the connection.
///
/// kCapServerTiming: worker-executed responses carry a 16-byte server
/// timing trailer — u64 queue_ns (admission to worker pickup) + u64
/// exec_ns (execution wall time) — so clients can split observed latency
/// into network vs queue vs execute. Never attached to I/O-thread inline
/// answers (hello, rejections), and never sent to connections that did
/// not negotiate it, so legacy decoders see byte-identical frames.
inline constexpr std::uint32_t kCapServerTiming = 1u << 0;

/// Frames grow a 4-byte length prefix; bodies above this are rejected and
/// the connection dropped (garbage or a hostile length).
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;
/// Byte offset of `seq` in every body (after the u8 op).
inline constexpr std::size_t kSeqOffset = 1;
/// Minimum parsable body: op + seq.
inline constexpr std::size_t kMinBodyBytes = 9;

/// A fully decoded request, whichever op it carries.
struct Request {
  Op op = Op::kPing;
  std::uint64_t seq = 0;
  std::uint16_t tenant = 0;                   ///< kHello
  std::uint32_t caps = 0;                     ///< kHello capability bits
  std::uint32_t k = 0;                        ///< kQuery / kQueryBatch
  std::vector<std::uint64_t> ids;             ///< kErase(Batch): targets
  std::vector<std::uint64_t> insert_ids;      ///< kInsert(Batch)
  std::vector<hash::SparseSignature> sigs;    ///< kInsert(Batch)/kQuery(Batch)
};

/// A fully decoded response.
struct Response {
  Op op = Op::kPing;
  std::uint64_t seq = 0;
  Status status = Status::kOk;
  std::uint32_t count = 0;            ///< inserted / erased
  std::uint32_t retry_after_ms = 0;   ///< kRetryAfter / kShuttingDown
  std::vector<std::vector<core::ScoredId>> results;  ///< per query
  std::string text;                   ///< kMetrics payload / error message
  std::uint32_t caps = 0;             ///< kHello kOk: accepted capabilities
  bool has_timing = false;            ///< server-timing trailer present
  std::uint64_t queue_ns = 0;         ///< admission -> worker pickup
  std::uint64_t exec_ns = 0;          ///< execution wall time
};

// --- Encoding (either side) ------------------------------------------------

/// Wraps `body` in a length-prefixed frame ready for the wire.
std::vector<std::uint8_t> frame(std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_ping(std::uint64_t seq);
std::vector<std::uint8_t> encode_insert(std::uint64_t seq, std::uint64_t id,
                                        const hash::SparseSignature& sig);
std::vector<std::uint8_t> encode_insert_batch(
    std::uint64_t seq, std::span<const std::uint64_t> ids,
    std::span<const hash::SparseSignature> sigs);
std::vector<std::uint8_t> encode_query(std::uint64_t seq, std::uint32_t k,
                                       const hash::SparseSignature& sig);
std::vector<std::uint8_t> encode_query_batch(
    std::uint64_t seq, std::uint32_t k,
    std::span<const hash::SparseSignature> sigs);
std::vector<std::uint8_t> encode_erase(std::uint64_t seq, std::uint64_t id);
std::vector<std::uint8_t> encode_erase_batch(
    std::uint64_t seq, std::span<const std::uint64_t> ids);
std::vector<std::uint8_t> encode_metrics(std::uint64_t seq);
/// caps == 0 emits the legacy 2-byte hello payload, byte-identical to the
/// pre-capability wire format.
std::vector<std::uint8_t> encode_hello(std::uint64_t seq,
                                       std::uint16_t tenant,
                                       std::uint32_t caps = 0);

/// Serializes a response body (server side).
std::vector<std::uint8_t> encode_response(const Response& response);

// --- Decoding --------------------------------------------------------------

/// Parses a request body. On failure returns false and sets *error; *out
/// still carries the op/seq when the 9-byte prefix was readable (so the
/// server can answer kBadRequest with the right seq).
bool decode_request(std::span<const std::uint8_t> body, Request* out,
                    std::string* error);

/// Parses a response body (client side).
bool decode_response(std::span<const std::uint8_t> body, Response* out,
                     std::string* error);

// --- Incremental framing ---------------------------------------------------

/// Accumulates arbitrary byte chunks from a socket and yields complete
/// frame bodies. Rejects frames above kMaxFrameBytes via error().
class FrameAssembler {
 public:
  void feed(std::span<const std::uint8_t> chunk);
  /// Pops the next complete body into *body; false when none is buffered.
  bool next(std::vector<std::uint8_t>* body);
  /// Sticky: a hostile/corrupt length was seen; drop the connection.
  bool error() const noexcept { return error_; }
  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool error_ = false;
};

}  // namespace fast::server
