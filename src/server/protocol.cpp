#include "server/protocol.hpp"

#include <cstring>
#include <stdexcept>

namespace fast::server {

namespace {

util::ByteWriter request_header(Op op, std::uint64_t seq) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(seq);
  return w;
}

void write_signature(util::ByteWriter& w, const hash::SparseSignature& sig) {
  w.blob(sig.encode());
}

/// SparseSignature::decode throws on malformed input; the wire path wants
/// fail-soft parsing instead.
bool read_signature(util::ByteReader& r, hash::SparseSignature* out) {
  const auto bytes = r.blob();
  if (!r.ok()) return false;
  try {
    *out = hash::SparseSignature::decode(bytes);
  } catch (const std::runtime_error&) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> frame(std::span<const std::uint8_t> body) {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.bytes(body);
  return w.take();
}

std::vector<std::uint8_t> encode_ping(std::uint64_t seq) {
  return request_header(Op::kPing, seq).take();
}

std::vector<std::uint8_t> encode_insert(std::uint64_t seq, std::uint64_t id,
                                        const hash::SparseSignature& sig) {
  util::ByteWriter w = request_header(Op::kInsert, seq);
  w.u64(id);
  write_signature(w, sig);
  return w.take();
}

std::vector<std::uint8_t> encode_insert_batch(
    std::uint64_t seq, std::span<const std::uint64_t> ids,
    std::span<const hash::SparseSignature> sigs) {
  util::ByteWriter w = request_header(Op::kInsertBatch, seq);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    w.u64(ids[i]);
    write_signature(w, sigs[i]);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_query(std::uint64_t seq, std::uint32_t k,
                                       const hash::SparseSignature& sig) {
  util::ByteWriter w = request_header(Op::kQuery, seq);
  w.u32(k);
  write_signature(w, sig);
  return w.take();
}

std::vector<std::uint8_t> encode_query_batch(
    std::uint64_t seq, std::uint32_t k,
    std::span<const hash::SparseSignature> sigs) {
  util::ByteWriter w = request_header(Op::kQueryBatch, seq);
  w.u32(k);
  w.u32(static_cast<std::uint32_t>(sigs.size()));
  for (const auto& sig : sigs) write_signature(w, sig);
  return w.take();
}

std::vector<std::uint8_t> encode_erase(std::uint64_t seq, std::uint64_t id) {
  util::ByteWriter w = request_header(Op::kErase, seq);
  w.u64(id);
  return w.take();
}

std::vector<std::uint8_t> encode_erase_batch(
    std::uint64_t seq, std::span<const std::uint64_t> ids) {
  util::ByteWriter w = request_header(Op::kEraseBatch, seq);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const std::uint64_t id : ids) w.u64(id);
  return w.take();
}

std::vector<std::uint8_t> encode_metrics(std::uint64_t seq) {
  return request_header(Op::kMetrics, seq).take();
}

std::vector<std::uint8_t> encode_hello(std::uint64_t seq,
                                       std::uint16_t tenant,
                                       std::uint32_t caps) {
  util::ByteWriter w = request_header(Op::kHello, seq);
  w.u16(tenant);
  if (caps != 0) w.u32(caps);
  return w.take();
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(response.op));
  w.u64(response.seq);
  w.u8(static_cast<std::uint8_t>(response.status));
  bool ok_payload = false;
  switch (response.status) {
    case Status::kRetryAfter:
      w.u32(response.retry_after_ms);
      break;
    case Status::kShuttingDown: {
      // Draining rejections carry the same adaptive backoff hint as
      // kRetryAfter, so clients spread their reconnect attempts.
      w.u32(response.retry_after_ms);
      const auto* text =
          reinterpret_cast<const std::uint8_t*>(response.text.data());
      w.blob({text, response.text.size()});
      break;
    }
    case Status::kBadRequest:
    case Status::kError: {
      const auto* text =
          reinterpret_cast<const std::uint8_t*>(response.text.data());
      w.blob({text, response.text.size()});
      break;
    }
    case Status::kOk:
      ok_payload = true;
      break;
  }
  if (ok_payload) {
    switch (response.op) {
      case Op::kPing:
        break;
      case Op::kHello:
        // Accepted capability bits; omitted when none, so pre-capability
        // clients keep seeing the legacy zero-payload hello ack.
        if (response.caps != 0) w.u32(response.caps);
        break;
      case Op::kInsert:
      case Op::kInsertBatch:
      case Op::kErase:
      case Op::kEraseBatch:
        w.u32(response.count);
        break;
      case Op::kQuery:
      case Op::kQueryBatch:
        w.u32(static_cast<std::uint32_t>(response.results.size()));
        for (const auto& hits : response.results) {
          w.u32(static_cast<std::uint32_t>(hits.size()));
          for (const auto& hit : hits) {
            w.u64(hit.id);
            w.f64(hit.score);
          }
        }
        break;
      case Op::kMetrics: {
        const auto* text =
            reinterpret_cast<const std::uint8_t*>(response.text.data());
        w.blob({text, response.text.size()});
        break;
      }
    }
  }
  // Server-timing trailer (kCapServerTiming): appended after the normal
  // payload, whatever the status, but only on connections that negotiated
  // the capability — legacy clients never see these 16 bytes.
  if (response.has_timing) {
    w.u64(response.queue_ns);
    w.u64(response.exec_ns);
  }
  return w.take();
}

bool decode_request(std::span<const std::uint8_t> body, Request* out,
                    std::string* error) {
  *out = Request{};
  util::ByteReader r{body};
  const std::uint8_t op_byte = r.u8();
  out->seq = r.u64();
  if (!r.ok()) {
    if (error != nullptr) *error = "truncated header";
    return false;
  }
  if (op_byte > static_cast<std::uint8_t>(Op::kHello)) {
    if (error != nullptr) *error = "unknown op";
    return false;
  }
  out->op = static_cast<Op>(op_byte);
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  switch (out->op) {
    case Op::kPing:
    case Op::kMetrics:
      break;
    case Op::kHello:
      out->tenant = r.u16();
      if (!r.ok()) return fail("bad hello");
      // Optional capability word; a legacy 2-byte hello means caps = 0.
      if (r.remaining() >= 4) out->caps = r.u32();
      break;
    case Op::kInsert: {
      out->insert_ids.push_back(r.u64());
      hash::SparseSignature sig;
      if (!r.ok() || !read_signature(r, &sig)) return fail("bad insert");
      out->sigs.push_back(std::move(sig));
      break;
    }
    case Op::kInsertBatch: {
      const std::uint32_t n = r.u32();
      if (!r.ok() || n > r.remaining() / 9) return fail("bad batch count");
      out->insert_ids.reserve(n);
      out->sigs.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        out->insert_ids.push_back(r.u64());
        hash::SparseSignature sig;
        if (!r.ok() || !read_signature(r, &sig)) return fail("bad insert");
        out->sigs.push_back(std::move(sig));
      }
      break;
    }
    case Op::kQuery: {
      out->k = r.u32();
      hash::SparseSignature sig;
      if (!r.ok() || !read_signature(r, &sig)) return fail("bad query");
      out->sigs.push_back(std::move(sig));
      break;
    }
    case Op::kQueryBatch: {
      out->k = r.u32();
      const std::uint32_t n = r.u32();
      if (!r.ok() || n > r.remaining() / 2) return fail("bad batch count");
      out->sigs.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        hash::SparseSignature sig;
        if (!read_signature(r, &sig)) return fail("bad query");
        out->sigs.push_back(std::move(sig));
      }
      break;
    }
    case Op::kErase:
      out->ids.push_back(r.u64());
      break;
    case Op::kEraseBatch: {
      const std::uint32_t n = r.u32();
      if (!r.ok() || n > r.remaining() / 8) return fail("bad batch count");
      out->ids.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) out->ids.push_back(r.u64());
      break;
    }
  }
  if (!r.exhausted()) return fail("trailing bytes");
  return true;
}

bool decode_response(std::span<const std::uint8_t> body, Response* out,
                     std::string* error) {
  *out = Response{};
  util::ByteReader r{body};
  const std::uint8_t op_byte = r.u8();
  out->seq = r.u64();
  const std::uint8_t status_byte = r.u8();
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!r.ok()) return fail("truncated header");
  if (op_byte > static_cast<std::uint8_t>(Op::kHello) ||
      status_byte > static_cast<std::uint8_t>(Status::kError)) {
    return fail("unknown op/status");
  }
  out->op = static_cast<Op>(op_byte);
  out->status = static_cast<Status>(status_byte);
  bool ok_payload = false;
  switch (out->status) {
    case Status::kRetryAfter:
      out->retry_after_ms = r.u32();
      if (!r.ok()) return fail("bad retry payload");
      break;
    case Status::kShuttingDown: {
      out->retry_after_ms = r.u32();
      const auto text = r.blob();
      if (!r.ok()) return fail("bad drain payload");
      out->text.assign(reinterpret_cast<const char*>(text.data()),
                       text.size());
      break;
    }
    case Status::kBadRequest:
    case Status::kError: {
      const auto text = r.blob();
      if (!r.ok()) return fail("bad error payload");
      out->text.assign(reinterpret_cast<const char*>(text.data()),
                       text.size());
      break;
    }
    case Status::kOk:
      ok_payload = true;
      break;
  }
  if (ok_payload) {
    switch (out->op) {
      case Op::kPing:
        break;
      case Op::kHello:
        // 0 bytes = legacy ack; 4 = caps; 20 = caps + timing trailer. The
        // trailer is never sent on hello acks today, but the decoder stays
        // permissive so the framing rule is uniform.
        if (r.remaining() == 4 || r.remaining() == 20) out->caps = r.u32();
        break;
      case Op::kInsert:
      case Op::kInsertBatch:
      case Op::kErase:
      case Op::kEraseBatch:
        out->count = r.u32();
        break;
      case Op::kQuery:
      case Op::kQueryBatch: {
        const std::uint32_t queries = r.u32();
        if (!r.ok() || queries > r.remaining() / 4 + 1) {
          return fail("bad result count");
        }
        out->results.resize(queries);
        for (std::uint32_t q = 0; q < queries; ++q) {
          const std::uint32_t hits = r.u32();
          if (!r.ok() || hits > r.remaining() / 16) {
            return fail("bad hit count");
          }
          out->results[q].reserve(hits);
          for (std::uint32_t h = 0; h < hits; ++h) {
            core::ScoredId hit;
            hit.id = r.u64();
            hit.score = r.f64();
            out->results[q].push_back(hit);
          }
        }
        break;
      }
      case Op::kMetrics: {
        const auto text = r.blob();
        out->text.assign(reinterpret_cast<const char*>(text.data()),
                         text.size());
        break;
      }
    }
  }
  if (!r.ok()) return fail("truncated payload");
  // Exactly 16 trailing bytes after the payload are the negotiated
  // server-timing trailer (queue_ns + exec_ns); anything else trailing is
  // a framing error, same as before the capability existed.
  if (r.remaining() == 16) {
    out->queue_ns = r.u64();
    out->exec_ns = r.u64();
    out->has_timing = true;
  }
  if (!r.exhausted()) return fail("trailing bytes");
  return true;
}

void FrameAssembler::feed(std::span<const std::uint8_t> chunk) {
  if (error_) return;
  // Compact once consumed bytes dominate, so the buffer does not grow
  // without bound across a long-lived pipelined connection.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

bool FrameAssembler::next(std::vector<std::uint8_t>* body) {
  if (error_ || buf_.size() - pos_ < 4) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, 4);  // wire format is little-endian
  if constexpr (std::endian::native == std::endian::big) {
    len = ((len & 0xff000000u) >> 24) | ((len & 0x00ff0000u) >> 8) |
          ((len & 0x0000ff00u) << 8) | ((len & 0x000000ffu) << 24);
  }
  if (len > kMaxFrameBytes) {
    error_ = true;
    return false;
  }
  if (buf_.size() - pos_ - 4 < len) return false;
  body->assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
  pos_ += 4 + len;
  return true;
}

}  // namespace fast::server
