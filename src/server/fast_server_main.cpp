// fast_server — standalone serving front door (README "Serving
// quick-start").
//
//   fast_server [--port=N] [--workers=N] [--queue=N] [--tiered]
//               [--dir=PATH] [--wal-sync-every=N] [--bloom-bits=N]
//               [--query-weight=N] [--retry-ms=N] [--retry-max-ms=N]
//               [--tenant-rate=R] [--tenant-burst=R] [--tenant-inflight=N]
//               [--tenant=ID:RATE:BURST:INFLIGHT]...
//               [--admin-port=N] [--drain-grace-ms=N]
//
// Serves the wire protocol of server/protocol.hpp over TCP on loopback.
// With --dir the engine opens (or recovers) a durable index there and every
// acked write is WAL-logged; without it the index is in-memory. SIGINT /
// SIGTERM trigger the graceful shutdown sequence: drain in-flight
// requests, flush response buffers, fsync the WAL, snapshot (durable
// runs), exit 0.
//
// QoS knobs (DESIGN.md §3i): --query-weight sets the lane ratio,
// --retry-ms/--retry-max-ms clamp the adaptive retry hint,
// --tenant-rate/--tenant-burst/--tenant-inflight are the default
// per-tenant quota and --tenant=ID:RATE:BURST:INFLIGHT overrides it for
// one tenant (repeatable).
//
// Observability (DESIGN.md §3j): --admin-port=N starts the HTTP admin
// plane (healthz/readyz/metrics/varz/statusz/tracez) on loopback port N
// (0 = disabled, the default). --drain-grace-ms=N turns SIGTERM into a
// two-phase shutdown: readiness flips to 503 immediately while the data
// plane keeps serving for N ms, THEN the normal drain begins — the window
// a load balancer needs to stop routing before connections are cut.
//
// Environment knobs (checked parsing, util/env.hpp): FAST_SERVER_PORT,
// FAST_SERVER_WORKERS, FAST_SERVER_QUEUE, FAST_SERVER_QUERY_WEIGHT,
// FAST_SERVER_RETRY_MS, FAST_SERVER_RETRY_MAX_MS, FAST_SERVER_TENANT_RATE,
// FAST_SERVER_TENANT_BURST, FAST_SERVER_TENANT_INFLIGHT,
// FAST_SERVER_ADMIN_PORT, FAST_SERVER_DRAIN_GRACE_MS — flags win over
// environment.
#include <sys/signalfd.h>
#include <unistd.h>

#include <array>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include <chrono>
#include <thread>

#include "core/query_engine.hpp"
#include "server/http_admin.hpp"
#include "server/server.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"
#include "util/vecmath.hpp"
#include "vision/pca.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int) {
  const unsigned char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// The serving path only moves precomputed signatures (the paper's mobile
/// clients summarize on-device), so the engine's PCA model is never
/// exercised by wire requests; a deterministic random eigenspace keeps the
/// index constructible without a training corpus.
fast::vision::PcaModel placeholder_pca() {
  fast::vision::PcaModel model;
  const std::size_t input_dim = 578, output_dim = 36;
  model.mean.assign(input_dim, 0.0f);
  model.eigenvalues.assign(output_dim, 1.0f / static_cast<float>(input_dim));
  fast::util::Rng rng(0xfa57);
  model.components.resize(output_dim);
  for (auto& row : model.components) {
    row.resize(input_dim);
    for (auto& v : row) v = static_cast<float>(rng.gaussian());
    fast::util::normalize_l2(row);
  }
  return model;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port=N] [--workers=N] [--queue=N] [--tiered]\n"
      "          [--dir=PATH] [--wal-sync-every=N] [--bloom-bits=N]\n"
      "          [--query-weight=N] [--retry-ms=N] [--retry-max-ms=N]\n"
      "          [--tenant-rate=R] [--tenant-burst=R] [--tenant-inflight=N]\n"
      "          [--tenant=ID:RATE:BURST:INFLIGHT]...\n"
      "          [--admin-port=N] [--drain-grace-ms=N]\n",
      argv0);
  return 2;
}

/// Parses one --tenant=ID:RATE:BURST:INFLIGHT override.
bool parse_tenant_quota(const std::string& value,
                        fast::server::TenantQuota* out) {
  std::array<std::string, 4> part;
  std::size_t start = 0, n = 0;
  for (; n < part.size(); ++n) {
    const std::size_t colon = value.find(':', start);
    if (colon == std::string::npos) {
      part[n] = value.substr(start);
      ++n;
      break;
    }
    part[n] = value.substr(start, colon - start);
    start = colon + 1;
  }
  if (n != part.size()) return false;
  const auto id =
      fast::util::parse_checked_count("--tenant id", part[0].c_str(), 0, 65535);
  const auto rate = fast::util::parse_checked_number(
      "--tenant rate", part[1].c_str(), 0.0, 1e9);
  const auto burst = fast::util::parse_checked_number(
      "--tenant burst", part[2].c_str(), 1.0, 1e9);
  const auto inflight = fast::util::parse_checked_count(
      "--tenant inflight", part[3].c_str(), 0, 1u << 20);
  if (!id || !rate || !burst || !inflight) return false;
  out->tenant = static_cast<std::uint16_t>(*id);
  out->rate = *rate;
  out->burst = *burst;
  out->inflight = *inflight;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fast;

  server::ServerOptions options = server::ServerOptions::from_env();
  bool tiered = false;
  std::string dir;
  std::size_t wal_sync_every = 1;
  std::size_t bloom_bits = 0;
  std::uint16_t admin_port = 0;  // 0 = admin plane disabled
  std::size_t drain_grace_ms = 0;
  if (const auto v = util::env_count("FAST_SERVER_ADMIN_PORT", 0, 65535)) {
    admin_port = static_cast<std::uint16_t>(*v);
  }
  if (const auto v =
          util::env_count("FAST_SERVER_DRAIN_GRACE_MS", 0, 600000)) {
    drain_grace_ms = *v;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg]() {
      const std::size_t eq = arg.find('=');
      return eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    }();
    const auto count_flag = [&](const char* name, unsigned long min,
                                unsigned long max) {
      return util::parse_checked_count(name, value.c_str(), min, max);
    };
    if (arg == "--tiered") {
      tiered = true;
    } else if (arg.rfind("--port=", 0) == 0) {
      const auto v = count_flag("--port", 0, 65535);
      if (!v) return usage(argv[0]);
      options.port = static_cast<std::uint16_t>(*v);
    } else if (arg.rfind("--workers=", 0) == 0) {
      const auto v = count_flag("--workers", 1, 1024);
      if (!v) return usage(argv[0]);
      options.workers = *v;
    } else if (arg.rfind("--queue=", 0) == 0) {
      const auto v = count_flag("--queue", 1, 1u << 20);
      if (!v) return usage(argv[0]);
      options.queue_depth = *v;
    } else if (arg.rfind("--query-weight=", 0) == 0) {
      const auto v = count_flag("--query-weight", 1, 1024);
      if (!v) return usage(argv[0]);
      options.query_weight = *v;
    } else if (arg.rfind("--retry-ms=", 0) == 0) {
      const auto v = count_flag("--retry-ms", 1, 60000);
      if (!v) return usage(argv[0]);
      options.retry_after_ms = static_cast<std::uint32_t>(*v);
    } else if (arg.rfind("--retry-max-ms=", 0) == 0) {
      const auto v = count_flag("--retry-max-ms", 1, 600000);
      if (!v) return usage(argv[0]);
      options.retry_max_ms = static_cast<std::uint32_t>(*v);
    } else if (arg.rfind("--tenant-rate=", 0) == 0) {
      const auto v = util::parse_checked_number("--tenant-rate",
                                                value.c_str(), 0.0, 1e9);
      if (!v) return usage(argv[0]);
      options.tenant_rate = *v;
    } else if (arg.rfind("--tenant-burst=", 0) == 0) {
      const auto v = util::parse_checked_number("--tenant-burst",
                                                value.c_str(), 1.0, 1e9);
      if (!v) return usage(argv[0]);
      options.tenant_burst = *v;
    } else if (arg.rfind("--tenant-inflight=", 0) == 0) {
      const auto v = count_flag("--tenant-inflight", 0, 1u << 20);
      if (!v) return usage(argv[0]);
      options.tenant_inflight = *v;
    } else if (arg.rfind("--tenant=", 0) == 0) {
      server::TenantQuota quota;
      if (!parse_tenant_quota(value, &quota)) return usage(argv[0]);
      options.tenant_quotas.push_back(quota);
    } else if (arg.rfind("--admin-port=", 0) == 0) {
      const auto v = count_flag("--admin-port", 0, 65535);
      if (!v) return usage(argv[0]);
      admin_port = static_cast<std::uint16_t>(*v);
    } else if (arg.rfind("--drain-grace-ms=", 0) == 0) {
      const auto v = count_flag("--drain-grace-ms", 0, 600000);
      if (!v) return usage(argv[0]);
      drain_grace_ms = *v;
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = value;
    } else if (arg.rfind("--wal-sync-every=", 0) == 0) {
      const auto v = count_flag("--wal-sync-every", 1, 1u << 20);
      if (!v) return usage(argv[0]);
      wal_sync_every = *v;
    } else if (arg.rfind("--bloom-bits=", 0) == 0) {
      const auto v = count_flag("--bloom-bits", 64, 1u << 24);
      if (!v) return usage(argv[0]);
      bloom_bits = *v;
    } else {
      return usage(argv[0]);
    }
  }

  util::configure_global_tracer_from_env();

  core::FastConfig config;
  config.tier.enabled = tiered;
  if (bloom_bits != 0) {
    config.bloom_bits = bloom_bits;
    config.lsh.dim = bloom_bits;
  }

  // Build the engine: durable (open/recover in --dir) or in-memory.
  std::unique_ptr<core::FastIndex> flat;
  std::unique_ptr<core::TieredIndex> tiered_index;
  std::unique_ptr<core::QueryEngine> engine;
  if (!dir.empty()) {
    core::DurabilityOptions opts;
    opts.dir = dir;
    opts.wal_sync_every = wal_sync_every;
    core::RecoveryStats stats;
    auto opened = core::QueryEngine::open(config, placeholder_pca(), opts,
                                          &stats);
    if (!opened.ok()) {
      std::fprintf(stderr, "fast_server: open %s failed: %s\n", dir.c_str(),
                   opened.status().message().c_str());
      return 1;
    }
    engine = std::move(opened).value();
    std::printf("fast_server: recovered %zu images from %s (replayed %zu)\n",
                engine->size(), dir.c_str(), stats.replayed_records);
  } else if (tiered) {
    tiered_index =
        std::make_unique<core::TieredIndex>(config, placeholder_pca());
    engine = std::make_unique<core::QueryEngine>(*tiered_index);
  } else {
    flat = std::make_unique<core::FastIndex>(config, placeholder_pca());
    engine = std::make_unique<core::QueryEngine>(*flat);
  }

  // Graceful-shutdown plumbing: signals write one byte to a self-pipe; the
  // main thread blocks on the read end.
  if (::pipe(g_signal_pipe) != 0) {
    std::perror("fast_server: pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  server::Server srv(*engine, options);
  const storage::Status st = srv.start();
  if (!st.ok()) {
    std::fprintf(stderr, "fast_server: start failed: %s\n",
                 st.message().c_str());
    return 1;
  }
  // Admin plane (optional): started after the data plane so /readyz never
  // reports ready for a server that failed to bind.
  std::unique_ptr<server::HttpAdmin> admin;
  if (admin_port != 0) {
    server::HttpAdminOptions admin_options;
    admin_options.port = admin_port;
    admin = std::make_unique<server::HttpAdmin>(*engine, &srv, admin_options);
    const storage::Status admin_st = admin->start();
    if (!admin_st.ok()) {
      std::fprintf(stderr, "fast_server: admin plane start failed: %s\n",
                   admin_st.message().c_str());
      srv.stop();
      return 1;
    }
    std::printf("fast_server: admin plane on 127.0.0.1:%u\n", admin->port());
  }
  std::printf("fast_server: listening on %s:%u (workers=%zu queue=%zu "
              "tiered=%d durable=%d)\n",
              options.bind_addr.c_str(), srv.port(), options.workers,
              options.queue_depth, tiered ? 1 : 0, engine->durable() ? 1 : 0);
  std::fflush(stdout);

  unsigned char byte = 0;
  while (true) {
    const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n == 1 || (n < 0 && errno != EINTR)) break;
  }

  // Two-phase shutdown: flip readiness first (admin /readyz answers 503
  // while the data plane keeps serving), hold for the grace window so load
  // balancers stop routing, then run the normal drain-and-stop sequence.
  if (drain_grace_ms > 0) {
    srv.enter_draining();
    std::printf("fast_server: draining (grace %zu ms)\n", drain_grace_ms);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(drain_grace_ms));
  }
  std::printf("fast_server: shutting down\n");
  std::fflush(stdout);
  srv.stop();
  if (engine->durable()) {
    const storage::Status snap = engine->save_snapshot();
    if (!snap.ok()) {
      std::fprintf(stderr, "fast_server: final snapshot failed: %s\n",
                   snap.message().c_str());
    }
  }
  // The admin plane outlives stop() + snapshot on purpose: /metrics and
  // /statusz stay scrapeable through the drain, reporting state=stopped.
  if (admin != nullptr) admin->stop();
  std::printf("fast_server: bye\n");
  return 0;
}
