#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>

#include "util/env.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fast::server {

namespace {

storage::Status posix_error(const char* what) {
  return storage::Status::error(storage::StatusCode::kIoError,
                                std::string(what) + ": " +
                                    std::strerror(errno));
}

bool is_mutation(Op op) {
  switch (op) {
    case Op::kInsert:
    case Op::kInsertBatch:
    case Op::kErase:
    case Op::kEraseBatch:
      return true;
    case Op::kPing:
    case Op::kQuery:
    case Op::kQueryBatch:
    case Op::kMetrics:
    case Op::kHello:
      return false;
  }
  return false;
}

/// Best-effort op/seq peek from the fixed 9-byte body prefix, so the I/O
/// thread can answer rejections with the client's seq without paying for a
/// full parse. An out-of-range op byte is clamped to kPing — the client
/// matches responses by seq, not op.
void peek_header(const std::vector<std::uint8_t>& body, Op* op,
                 std::uint64_t* seq) {
  util::ByteReader r{body};
  const std::uint8_t op_byte = r.u8();
  *seq = r.u64();
  *op = op_byte <= static_cast<std::uint8_t>(Op::kHello)
            ? static_cast<Op>(op_byte)
            : Op::kPing;
}

/// EWMA smoothing for per-lane service time: heavy enough history that one
/// outlier does not swing the hint, fresh enough to track load shifts.
constexpr double kEwmaAlpha = 0.2;

}  // namespace

Lane lane_of(Op op) noexcept {
  return is_mutation(op) ? Lane::kBulk : Lane::kQuery;
}

std::uint32_t compute_retry_after_ms(std::size_t queue_depth,
                                     double ewma_service_us,
                                     std::uint32_t base_ms,
                                     std::uint32_t max_ms) noexcept {
  if (max_ms < base_ms) max_ms = base_ms;
  if (!(ewma_service_us > 0.0)) ewma_service_us = 0.0;  // also rejects NaN
  const double backlog_ms =
      static_cast<double>(queue_depth) * ewma_service_us / 1000.0;
  const double hint = static_cast<double>(base_ms) + backlog_ms;
  if (hint >= static_cast<double>(max_ms)) return max_ms;
  return static_cast<std::uint32_t>(std::lround(hint));
}

/// Per-tenant QoS state. The token bucket and quota fields are touched by
/// the I/O thread only (all admission decisions happen there); `inflight`
/// is also decremented by workers on completion, hence atomic.
struct Server::TenantState {
  std::uint16_t id = 0;
  double rate = 0.0;
  double burst = 0.0;
  std::size_t inflight_limit = 0;
  double tokens = 0.0;
  std::chrono::steady_clock::time_point last_refill{};
  std::atomic<std::size_t> inflight{0};
  util::Counter* m_requests = nullptr;  ///< every frame from this tenant
  util::Counter* m_rejected = nullptr;  ///< window/quota rejections
  util::Counter* m_ops = nullptr;       ///< executed requests
};

ServerOptions ServerOptions::from_env(ServerOptions defaults) {
  if (const auto port = util::env_count("FAST_SERVER_PORT", 0, 65535)) {
    defaults.port = static_cast<std::uint16_t>(*port);
  }
  if (const auto workers = util::env_count("FAST_SERVER_WORKERS", 1, 1024)) {
    defaults.workers = static_cast<std::size_t>(*workers);
  }
  if (const auto depth = util::env_count("FAST_SERVER_QUEUE", 1, 1u << 20)) {
    defaults.queue_depth = static_cast<std::size_t>(*depth);
  }
  if (const auto weight =
          util::env_count("FAST_SERVER_QUERY_WEIGHT", 1, 1024)) {
    defaults.query_weight = static_cast<std::size_t>(*weight);
  }
  if (const auto base = util::env_count("FAST_SERVER_RETRY_MS", 1, 60000)) {
    defaults.retry_after_ms = static_cast<std::uint32_t>(*base);
  }
  if (const auto max =
          util::env_count("FAST_SERVER_RETRY_MAX_MS", 1, 600000)) {
    defaults.retry_max_ms = static_cast<std::uint32_t>(*max);
  }
  if (const auto rate =
          util::env_number("FAST_SERVER_TENANT_RATE", 0.0, 1e9)) {
    defaults.tenant_rate = *rate;
  }
  if (const auto burst =
          util::env_number("FAST_SERVER_TENANT_BURST", 1.0, 1e9)) {
    defaults.tenant_burst = *burst;
  }
  if (const auto inflight =
          util::env_count("FAST_SERVER_TENANT_INFLIGHT", 0, 1u << 20)) {
    defaults.tenant_inflight = static_cast<std::size_t>(*inflight);
  }
  return defaults;
}

Server::Server(core::QueryEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  util::MetricsRegistry& r = engine_.metrics();
  m_accepted_ = &r.counter("server.accepted");
  m_requests_ = &r.counter("server.requests");
  m_rejected_retry_ = &r.counter("server.rejected_retry_after");
  m_rejected_draining_ = &r.counter("server.rejected_draining");
  m_bad_requests_ = &r.counter("server.bad_requests");
  m_bytes_in_ = &r.counter("server.bytes_in");
  m_bytes_out_ = &r.counter("server.bytes_out");
  m_lane_executed_[0] = &r.counter("server.lane.query.executed");
  m_lane_executed_[1] = &r.counter("server.lane.bulk.executed");
  m_connections_ = &r.gauge("server.connections");
  m_inflight_ = &r.gauge("server.inflight");
  m_lane_depth_[0] = &r.gauge("server.lane.query.queue_depth");
  m_lane_depth_[1] = &r.gauge("server.lane.bulk.queue_depth");
  m_state_ = &r.gauge("server.state");
  m_state_->set(static_cast<double>(
      static_cast<std::uint8_t>(ServerState::kStarting)));
  m_request_wall_s_ = &r.latency_histogram("server.request_wall_s");
  m_queue_wait_s_ = &r.latency_histogram("server.queue_wait_s");
  m_retry_after_ms_ = &r.histogram(
      "server.retry_after_ms",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
  workers_held_ = options_.debug_hold_workers;
}

Server::~Server() { stop(); }

void Server::set_state(ServerState next) noexcept {
  state_.store(static_cast<std::uint8_t>(next), std::memory_order_release);
  m_state_->set(static_cast<double>(static_cast<std::uint8_t>(next)));
}

void Server::enter_draining() noexcept {
  // CAS keeps the lifecycle monotone: only kServing may move to kDraining,
  // so a late enter_draining() cannot resurrect a stopped server's gauge.
  std::uint8_t expected = static_cast<std::uint8_t>(ServerState::kServing);
  if (state_.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(ServerState::kDraining),
          std::memory_order_acq_rel)) {
    m_state_->set(static_cast<double>(
        static_cast<std::uint8_t>(ServerState::kDraining)));
  }
}

storage::Status Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    return storage::Status::error(storage::StatusCode::kIoError,
                                  "server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return posix_error("socket");
  const auto fail = [this](const char* what) {
    storage::Status s = posix_error(what);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return s;
  };

  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return storage::Status::error(storage::StatusCode::kIoError,
                                  "bad bind address: " + options_.bind_addr);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return fail("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return fail("epoll_ctl(wake)");
  }

  draining_.store(false, std::memory_order_release);
  io_stop_.store(false, std::memory_order_release);
  workers_stop_ = false;
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  const std::size_t n = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  set_state(ServerState::kServing);
  return {};
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Readiness flips first (no-op if enter_draining() already ran), so an
  // admin-plane /readyz is 503 before the listener closes below.
  enter_draining();
  const auto kick = [this] {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof(one));
  };
  // 1. Stop admitting: new frames answer kShuttingDown, and the I/O thread
  //    closes the listen socket at its next wakeup. A test-held worker
  //    pool is released — drain must always make progress.
  draining_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(work_mutex_);
    workers_held_ = false;
  }
  work_cv_.notify_all();
  kick();
  // 2. Drain: every admitted request executes and queues its response.
  {
    std::unique_lock<std::mutex> lk(drain_mutex_);
    while (admitted_.load(std::memory_order_acquire) != 0) {
      drain_cv_.wait_for(lk, std::chrono::milliseconds(50));
    }
  }
  // 3. Join the workers — the work queues are empty and stay empty.
  {
    std::lock_guard<std::mutex> lk(work_mutex_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  // 4. The I/O thread flushes every response buffer (bounded wait for
  //    clients that stopped reading), closes the sockets, and exits.
  io_stop_.store(true, std::memory_order_release);
  kick();
  io_thread_.join();
  // 5. Acked writes hit disk before we return: fsync the WAL group-commit
  //    tail through the facade.
  if (engine_.writable() && engine_.durable()) {
    const storage::Status st = engine_.sync_wal();
    if (!st.ok()) {
      std::fprintf(stderr, "fast_server: final wal sync failed: %s\n",
                   st.message().c_str());
    }
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
  // The I/O thread normally closed the listen socket when it saw
  // draining_; cover the path where it exited before noticing.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  set_state(ServerState::kStopped);
}

void Server::debug_hold_workers(bool hold) {
  {
    std::lock_guard<std::mutex> lk(work_mutex_);
    workers_held_ = hold;
  }
  work_cv_.notify_all();
}

std::uint32_t Server::current_retry_after_ms(Lane lane) const noexcept {
  const std::size_t i = static_cast<std::size_t>(lane);
  const double ewma_us = std::bit_cast<double>(
      lane_ewma_us_bits_[i].load(std::memory_order_relaxed));
  return compute_retry_after_ms(
      lane_depth_[i].load(std::memory_order_relaxed), ewma_us,
      options_.retry_after_ms, options_.retry_max_ms);
}

void Server::io_loop() {
  std::array<epoll_event, 64> events;
  bool flush_deadline_set = false;
  std::chrono::steady_clock::time_point flush_deadline{};
  while (true) {
    if (draining_.load(std::memory_order_acquire) && listen_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (io_stop_.load(std::memory_order_acquire)) {
      if (!flush_deadline_set) {
        flush_deadline_set = true;
        flush_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
      }
      if (all_flushed() ||
          std::chrono::steady_clock::now() >= flush_deadline) {
        break;
      }
    }
    const int timeout_ms = flush_deadline_set ? 20 : 200;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_ && fd >= 0) {
        accept_ready();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) ==
               static_cast<ssize_t>(sizeof(drained))) {
        }
        std::vector<std::weak_ptr<Conn>> pending;
        {
          std::lock_guard<std::mutex> lk(wake_mutex_);
          pending.swap(pending_flush_);
        }
        for (const auto& weak : pending) {
          if (auto conn = weak.lock()) flush_conn(conn);
        }
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      // Copy: close_conn erases the map entry mid-handling.
      const std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) conn_readable(conn);
      if ((events[i].events & EPOLLOUT) != 0 &&
          conns_.find(fd) != conns_.end()) {
        conn_writable(conn);
      }
    }
  }
  // Exit: drop whatever connections remain (drained or past the deadline).
  std::vector<std::shared_ptr<Conn>> remaining;
  remaining.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) remaining.push_back(conn);
  for (const auto& conn : remaining) close_conn(conn);
}

void Server::accept_ready() {
  while (listen_fd_ >= 0) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error; epoll retriggers
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    connections_.fetch_add(1, std::memory_order_relaxed);
    m_accepted_->add();
    m_connections_->set(static_cast<double>(conns_.size()));
  }
}

void Server::conn_readable(const std::shared_ptr<Conn>& conn) {
  std::array<std::uint8_t, 65536> buf;
  std::vector<std::uint8_t> body;
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      m_bytes_in_->add(static_cast<std::uint64_t>(n));
      conn->assembler.feed({buf.data(), static_cast<std::size_t>(n)});
      while (conn->assembler.next(&body)) {
        handle_frame(conn, std::move(body));
        body.clear();
      }
      if (conn->assembler.error()) {
        close_conn(conn);
        return;
      }
      continue;
    }
    if (n == 0) {
      close_conn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(conn);
    return;
  }
}

void Server::conn_writable(const std::shared_ptr<Conn>& conn) {
  flush_conn(conn);
}

const std::shared_ptr<Server::TenantState>& Server::tenant_state(
    std::uint16_t id) {
  auto it = tenants_.find(id);
  if (it != tenants_.end()) return it->second;
  auto state = std::make_shared<TenantState>();
  state->id = id;
  state->rate = options_.tenant_rate;
  state->burst = options_.tenant_burst;
  state->inflight_limit = options_.tenant_inflight;
  for (const TenantQuota& q : options_.tenant_quotas) {
    if (q.tenant == id) {
      state->rate = q.rate;
      state->burst = q.burst;
      state->inflight_limit = q.inflight;
    }
  }
  state->burst = std::max(1.0, state->burst);
  state->tokens = state->burst;  // full bucket at first sight
  state->last_refill = std::chrono::steady_clock::now();
  const std::string prefix = "server.tenant." + std::to_string(id);
  util::MetricsRegistry& r = engine_.metrics();
  state->m_requests = &r.counter(prefix + ".requests");
  state->m_rejected = &r.counter(prefix + ".rejected");
  state->m_ops = &r.counter(prefix + ".ops");
  return tenants_.emplace(id, std::move(state)).first->second;
}

bool Server::admit_tenant(TenantState& tenant) {
  // Window first: a tenant at its admitted-inflight cap is rejected
  // without consuming a token, so its bucket is not drained by retries.
  if (tenant.inflight_limit > 0 &&
      tenant.inflight.load(std::memory_order_relaxed) >=
          tenant.inflight_limit) {
    return false;
  }
  if (tenant.rate > 0.0) {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed_s =
        std::chrono::duration<double>(now - tenant.last_refill).count();
    tenant.last_refill = now;
    tenant.tokens =
        std::min(tenant.burst, tenant.tokens + elapsed_s * tenant.rate);
    if (tenant.tokens < 1.0) return false;
    tenant.tokens -= 1.0;
  }
  return true;
}

void Server::handle_frame(const std::shared_ptr<Conn>& conn,
                          std::vector<std::uint8_t> body) {
  if (body.size() < kMinBodyBytes) {
    Response resp;
    resp.status = Status::kBadRequest;
    resp.text = "truncated header";
    m_bad_requests_->add();
    send_response(conn, resp);
    return;
  }
  Response reject;
  peek_header(body, &reject.op, &reject.seq);
  const Lane lane = lane_of(reject.op);
  const std::size_t lane_idx = static_cast<std::size_t>(lane);
  if (draining_.load(std::memory_order_acquire)) {
    reject.status = Status::kShuttingDown;
    reject.retry_after_ms = current_retry_after_ms(lane);
    reject.text = "shutting down";
    m_rejected_draining_->add();
    m_retry_after_ms_->observe(static_cast<double>(reject.retry_after_ms));
    send_response(conn, reject);
    return;
  }
  // kHello binds the connection's tenant inline on the I/O thread: it is
  // the QoS control plane, never queued, never counted against a quota.
  if (reject.op == Op::kHello) {
    Request request;
    std::string error;
    if (!decode_request(body, &request, &error)) {
      reject.status = Status::kBadRequest;
      reject.text = error;
      m_bad_requests_->add();
      send_response(conn, reject);
      return;
    }
    conn->tenant = tenant_state(request.tenant);
    // Capability negotiation: accept the subset we implement and echo it,
    // so the client knows exactly which extensions are live.
    conn->caps = request.caps & kCapServerTiming;
    reject.status = Status::kOk;
    reject.caps = conn->caps;
    send_response(conn, reject);
    return;
  }
  if (conn->tenant == nullptr) conn->tenant = tenant_state(0);
  TenantState& tenant = *conn->tenant;
  tenant.m_requests->add();
  const bool conn_window_ok =
      conn->inflight.load(std::memory_order_relaxed) < options_.queue_depth;
  if (!conn_window_ok || !admit_tenant(tenant)) {
    reject.status = Status::kRetryAfter;
    reject.retry_after_ms = current_retry_after_ms(lane);
    m_rejected_retry_->add();
    tenant.m_rejected->add();
    m_retry_after_ms_->observe(static_cast<double>(reject.retry_after_ms));
    send_response(conn, reject);
    return;
  }
  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  tenant.inflight.fetch_add(1, std::memory_order_relaxed);
  const std::size_t inflight =
      admitted_.fetch_add(1, std::memory_order_acq_rel) + 1;
  m_inflight_->set(static_cast<double>(inflight));
  const std::size_t depth =
      lane_depth_[lane_idx].fetch_add(1, std::memory_order_acq_rel) + 1;
  m_lane_depth_[lane_idx]->set(static_cast<double>(depth));
  {
    std::lock_guard<std::mutex> lk(work_mutex_);
    WorkItem item{conn, conn->tenant, lane, std::move(body),
                  std::chrono::steady_clock::now(),
                  (conn->caps & kCapServerTiming) != 0};
    (lane == Lane::kBulk ? lane_bulk_ : lane_query_)
        .push_back(std::move(item));
  }
  work_cv_.notify_one();
}

bool Server::pop_work(WorkItem* item) {
  std::unique_lock<std::mutex> lk(work_mutex_);
  work_cv_.wait(lk, [this] {
    if (workers_stop_) return true;
    if (workers_held_) return false;
    return !lane_query_.empty() || !lane_bulk_.empty();
  });
  if (lane_query_.empty() && lane_bulk_.empty()) {
    return false;  // workers_stop_ with drained lanes
  }
  // Weighted round-robin: when both lanes are backlogged, serve
  // query_weight queries per bulk item — queries overtake bulk ingest but
  // bulk always makes progress. A lone non-empty lane drains at full
  // speed and does not advance the credit counter, so the ratio is exact
  // under contention (the deterministic lane tests assert the sequence).
  const std::size_t weight = std::max<std::size_t>(1, options_.query_weight);
  std::deque<WorkItem>* lane = nullptr;
  if (lane_query_.empty()) {
    lane = &lane_bulk_;
  } else if (lane_bulk_.empty()) {
    lane = &lane_query_;
  } else if (queries_since_bulk_ >= weight) {
    queries_since_bulk_ = 0;
    lane = &lane_bulk_;
  } else {
    ++queries_since_bulk_;
    lane = &lane_query_;
  }
  *item = std::move(lane->front());
  lane->pop_front();
  lk.unlock();
  const std::size_t lane_idx = static_cast<std::size_t>(item->lane);
  const std::size_t depth =
      lane_depth_[lane_idx].fetch_sub(1, std::memory_order_acq_rel) - 1;
  m_lane_depth_[lane_idx]->set(static_cast<double>(depth));
  return true;
}

void Server::worker_loop() {
  while (true) {
    WorkItem item;
    if (!pop_work(&item)) return;
    // Queue wait = admission (I/O thread) to pickup (here). Always
    // observed; also the queue_ns half of the negotiated timing trailer.
    const double queue_wait_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      item.admitted_at)
            .count();
    m_queue_wait_s_->observe(queue_wait_s);
    util::WallTimer timer;
    Request request;
    std::string error;
    Response response;
    if (decode_request(item.body, &request, &error)) {
      response = execute(request, item);
    } else {
      response.op = request.op;  // decode fills op/seq when readable
      response.seq = request.seq;
      response.status = Status::kBadRequest;
      response.text = error;
      m_bad_requests_->add();
    }
    const double wall_s = timer.elapsed_seconds();
    if (item.want_timing) {
      response.has_timing = true;
      response.queue_ns = static_cast<std::uint64_t>(
          std::max(0.0, queue_wait_s) * 1e9);
      response.exec_ns = static_cast<std::uint64_t>(
          std::max(0.0, wall_s) * 1e9);
    }
    m_requests_->add();
    m_request_wall_s_->observe(wall_s);
    const std::size_t lane_idx = static_cast<std::size_t>(item.lane);
    m_lane_executed_[lane_idx]->add();
    item.tenant->m_ops->add();
    // Fold the observed service time into the lane's EWMA (lossy relaxed
    // exchange: concurrent workers may overwrite each other's fold, which
    // only costs one sample of smoothing accuracy).
    {
      const double sample_us = wall_s * 1e6;
      auto& bits = lane_ewma_us_bits_[lane_idx];
      const double prev =
          std::bit_cast<double>(bits.load(std::memory_order_relaxed));
      const double next =
          prev <= 0.0 ? sample_us
                      : prev * (1.0 - kEwmaAlpha) + sample_us * kEwmaAlpha;
      bits.store(std::bit_cast<std::uint64_t>(next),
                 std::memory_order_relaxed);
    }
    // Queue the response bytes BEFORE dropping the inflight/drain counts:
    // once stop() observes a drained server, every admitted request's
    // response is already in an output buffer.
    send_response(item.conn, response);
    item.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    item.tenant->inflight.fetch_sub(1, std::memory_order_relaxed);
    const std::size_t left =
        admitted_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    m_inflight_->set(static_cast<double>(left));
    if (left == 0 && draining_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lk(drain_mutex_);
      drain_cv_.notify_all();
    }
  }
}

Response Server::execute(const Request& request, const WorkItem& item) {
  Response response;
  response.op = request.op;
  response.seq = request.seq;
  util::TraceSpan span("server.request");
  span.attr("op", static_cast<double>(static_cast<std::uint8_t>(request.op)));
  span.attr("lane", static_cast<double>(static_cast<std::uint8_t>(item.lane)));
  span.attr("tenant", static_cast<double>(item.tenant->id));
  if (options_.debug_request_delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.debug_request_delay_us));
  }
  if (is_mutation(request.op) && !engine_.writable()) {
    response.status = Status::kError;
    response.text = "read-only engine";
    return response;
  }
  // Reject geometry mismatches before the backend FAST_CHECKs them: a
  // client built against different bloom_bits is a bad request, not a
  // server crash.
  const auto want_bits =
      static_cast<std::uint32_t>(engine_.config().bloom_bits);
  for (const hash::SparseSignature& sig : request.sigs) {
    if (sig.bit_count() != want_bits) {
      response.status = Status::kBadRequest;
      response.text = "signature geometry mismatch";
      m_bad_requests_->add();
      return response;
    }
  }
  try {
    switch (request.op) {
      case Op::kPing:
      case Op::kHello:  // handled inline on the I/O thread; kOk here
        break;
      case Op::kInsert:
      case Op::kInsertBatch: {
        std::vector<core::EngineWrite> items(request.sigs.size());
        for (std::size_t i = 0; i < items.size(); ++i) {
          items[i].id = request.insert_ids[i];
          items[i].signature = request.sigs[i];
        }
        const auto results = engine_.insert_batch(items);
        response.count = static_cast<std::uint32_t>(results.size());
        break;
      }
      case Op::kQuery:
      case Op::kQueryBatch: {
        const std::size_t k =
            std::min<std::uint32_t>(request.k == 0 ? 10 : request.k, 1u << 16);
        response.results.reserve(request.sigs.size());
        for (const hash::SparseSignature& sig : request.sigs) {
          response.results.push_back(engine_.query_signature(sig, k).hits);
        }
        break;
      }
      case Op::kErase:
      case Op::kEraseBatch:
        response.count =
            static_cast<std::uint32_t>(engine_.erase_batch(request.ids));
        break;
      case Op::kMetrics:
        // Refresh process.{rss_bytes,open_fds,threads,uptime_s} so the
        // binary scrape op matches the admin plane's /metrics.
        util::sample_process_gauges(engine_.metrics());
        response.text = engine_.metrics().to_prometheus();
        break;
    }
  } catch (const std::exception& e) {
    response.results.clear();
    response.count = 0;
    response.status = Status::kError;
    response.text = e.what();
  }
  return response;
}

void Server::send_response(const std::shared_ptr<Conn>& conn,
                           const Response& response) {
  const std::vector<std::uint8_t> framed = frame(encode_response(response));
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed) return;  // client went away; nothing to ack
    conn->out.insert(conn->out.end(), framed.begin(), framed.end());
  }
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    pending_flush_.push_back(conn);
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::flush_conn(const std::shared_ptr<Conn>& conn) {
  bool drop = false;
  bool want_write = false;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed) return;
    while (conn->out_off < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_off,
                 conn->out.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<std::size_t>(n);
        m_bytes_out_->add(static_cast<std::uint64_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
        break;
      }
      if (n < 0 && errno == EINTR) continue;
      drop = true;
      break;
    }
    if (conn->out_off == conn->out.size()) {
      conn->out.clear();
      conn->out_off = 0;
    } else if (conn->out_off > (1u << 20) &&
               conn->out_off > conn->out.size() / 2) {
      conn->out.erase(conn->out.begin(),
                      conn->out.begin() +
                          static_cast<std::ptrdiff_t>(conn->out_off));
      conn->out_off = 0;
    }
    if (!drop &&
        conn->out.size() - conn->out_off > options_.max_outbuf_bytes) {
      drop = true;  // client stopped reading; shed it
    }
  }
  if (drop) {
    close_conn(conn);
    return;
  }
  if (want_write != conn->want_write) update_epoll(*conn, want_write);
}

void Server::close_conn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  connections_.fetch_sub(1, std::memory_order_relaxed);
  m_connections_->set(static_cast<double>(conns_.size()));
}

void Server::update_epoll(Conn& conn, bool want_write) {
  epoll_event ev{};
  ev.events = static_cast<std::uint32_t>(EPOLLIN) |
              (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.want_write = want_write;
}

bool Server::all_flushed() {
  for (const auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->out.size() - conn->out_off != 0) return false;
  }
  return true;
}

}  // namespace fast::server
