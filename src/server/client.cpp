#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

namespace fast::server {

namespace {

storage::Status posix_error(const char* what) {
  return storage::Status::error(storage::StatusCode::kIoError,
                                std::string(what) + ": " +
                                    std::strerror(errno));
}

storage::Status closed_error() {
  return storage::Status::error(storage::StatusCode::kIoError,
                                "client not connected");
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      seq_(other.seq_),
      assembler_(std::move(other.assembler_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    seq_ = other.seq_;
    assembler_ = std::move(other.assembler_);
  }
  return *this;
}

storage::Status Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return posix_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return storage::Status::error(storage::StatusCode::kIoError,
                                  "bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const storage::Status s = posix_error("connect");
    close();
    return s;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return {};
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  assembler_ = FrameAssembler{};
}

storage::Status Client::send(std::span<const std::uint8_t> body) {
  if (fd_ < 0) return closed_error();
  const std::vector<std::uint8_t> framed = frame(body);
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return posix_error("send");
  }
  return {};
}

storage::Status Client::recv(Response* out) {
  if (fd_ < 0) return closed_error();
  std::array<std::uint8_t, 65536> buf;
  std::vector<std::uint8_t> body;
  while (true) {
    if (assembler_.next(&body)) {
      std::string error;
      if (!decode_response(body, out, &error)) {
        return storage::Status::error(storage::StatusCode::kCorrupt,
                                      "bad response: " + error);
      }
      return {};
    }
    if (assembler_.error()) {
      return storage::Status::error(storage::StatusCode::kCorrupt,
                                    "oversized response frame");
    }
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) {
      assembler_.feed({buf.data(), static_cast<std::size_t>(n)});
      continue;
    }
    if (n == 0) {
      return storage::Status::error(storage::StatusCode::kIoError,
                                    "connection closed by server");
    }
    if (errno == EINTR) continue;
    return posix_error("recv");
  }
}

storage::StatusOr<Response> Client::call(std::uint64_t seq,
                                         std::span<const std::uint8_t> body) {
  storage::Status st = send(body);
  if (!st.ok()) return st;
  Response response;
  st = recv(&response);
  if (!st.ok()) return st;
  if (response.seq != seq) {
    return storage::Status::error(
        storage::StatusCode::kCorrupt,
        "response seq mismatch (pipelined use requires send/recv)");
  }
  return response;
}

storage::StatusOr<Response> Client::ping() {
  const std::uint64_t seq = next_seq();
  return call(seq, encode_ping(seq));
}

storage::StatusOr<Response> Client::hello(std::uint16_t tenant,
                                          std::uint32_t caps) {
  const std::uint64_t seq = next_seq();
  return call(seq, encode_hello(seq, tenant, caps));
}

storage::StatusOr<Response> Client::insert(std::uint64_t id,
                                           const hash::SparseSignature& sig) {
  const std::uint64_t seq = next_seq();
  return call(seq, encode_insert(seq, id, sig));
}

storage::StatusOr<Response> Client::insert_batch(
    std::span<const std::uint64_t> ids,
    std::span<const hash::SparseSignature> sigs) {
  const std::uint64_t seq = next_seq();
  return call(seq, encode_insert_batch(seq, ids, sigs));
}

storage::StatusOr<Response> Client::query(const hash::SparseSignature& sig,
                                          std::uint32_t k) {
  const std::uint64_t seq = next_seq();
  return call(seq, encode_query(seq, k, sig));
}

storage::StatusOr<Response> Client::query_batch(
    std::span<const hash::SparseSignature> sigs, std::uint32_t k) {
  const std::uint64_t seq = next_seq();
  return call(seq, encode_query_batch(seq, k, sigs));
}

storage::StatusOr<Response> Client::erase(std::uint64_t id) {
  const std::uint64_t seq = next_seq();
  return call(seq, encode_erase(seq, id));
}

storage::StatusOr<Response> Client::erase_batch(
    std::span<const std::uint64_t> ids) {
  const std::uint64_t seq = next_seq();
  return call(seq, encode_erase_batch(seq, ids));
}

storage::StatusOr<Response> Client::metrics() {
  const std::uint64_t seq = next_seq();
  return call(seq, encode_metrics(seq));
}

}  // namespace fast::server
