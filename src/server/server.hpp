// fast::server — the network front door (DESIGN.md §3g, QoS §3i).
//
// One epoll I/O thread owns every socket: it accepts connections, splits
// the byte stream into length-prefixed frames (protocol.hpp), makes the
// admission decision per frame, and flushes response bytes. Admitted
// requests are executed by a pool of worker threads against the
// QueryEngine mutating facade; workers never touch sockets — they append
// serialized responses to the connection's output buffer and kick the I/O
// thread through an eventfd. Request order is preserved per lane for
// admitted requests, while rejections are answered immediately from the
// I/O thread, ahead of the queues.
//
// Multi-tenant QoS (DESIGN.md §3i):
//   - Tenancy: a kHello frame binds the connection to a tenant id;
//     connections that never send one are the default tenant 0, so every
//     pre-QoS client keeps working. Admission is layered: the
//     per-connection window first, then the tenant's admitted-inflight
//     window, then the tenant's token bucket — a rejection at any layer
//     answers kRetryAfter without consuming a token.
//   - Priority lanes: admitted requests land in one of two FIFO lanes —
//     queries (reads) or bulk (mutations). Workers drain them through a
//     weighted round-robin: `query_weight` queries per bulk item when both
//     lanes are backlogged, so interactive queries overtake bulk ingest
//     without ever fully starving it (and bulk drains at full speed when
//     the query lane is idle).
//   - Adaptive retry-after: every rejection hint is derived from the
//     target lane's current queue depth and its EWMA service time,
//     clamped to [retry_after_ms, retry_max_ms] and monotone in load —
//     replacing the fixed knob (compute_retry_after_ms below is the pure,
//     unit-testable formula).
//
// Graceful shutdown (stop(), also the SIGTERM path of fast_server):
//   1. stop accepting; answer new frames kShuttingDown with an adaptive
//      retry hint (counted as server.rejected_draining);
//   2. drain — every admitted request executes and its response is queued;
//   3. workers join; the I/O thread flushes every output buffer;
//   4. the WAL is fsynced through the engine facade, so every
//      acknowledged write is durable before the process exits (the
//      loopback integration test asserts zero acked-write loss).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/query_engine.hpp"
#include "server/protocol.hpp"
#include "storage/io.hpp"

namespace fast::util {
class Counter;
class Gauge;
class Histogram;
}

namespace fast::server {

/// The two priority lanes of the worker pool. Reads (ping/query/metrics)
/// are interactive; mutations (insert/erase, batched or not) are bulk.
enum class Lane : std::uint8_t { kQuery = 0, kBulk = 1 };

/// Lifecycle of a Server, exported as the `server.state` gauge and served
/// by the admin plane's GET /readyz (DESIGN.md §3j). The numeric values
/// are the wire/metric encoding — keep them stable.
///
/// kStarting -> kServing -> kDraining -> kStopped, strictly monotone:
/// enter_draining() flips kServing -> kDraining (readiness goes 503)
/// while the data plane keeps serving, so orchestrators stop routing new
/// clients before in-flight work is cut off; stop() passes through
/// kDraining on its way to kStopped.
enum class ServerState : std::uint8_t {
  kStarting = 0,
  kServing = 1,
  kDraining = 2,
  kStopped = 3,
};

/// Lane classification for an op (pure; used by admission and tests).
Lane lane_of(Op op) noexcept;

/// The adaptive retry-after formula: base plus the expected wait for the
/// lane backlog (queue depth x EWMA service time), clamped to
/// [base_ms, max_ms]. Monotone (non-strictly) in both queue_depth and
/// ewma_service_us; exactly base_ms when the lane is empty or no request
/// has completed yet.
std::uint32_t compute_retry_after_ms(std::size_t queue_depth,
                                     double ewma_service_us,
                                     std::uint32_t base_ms,
                                     std::uint32_t max_ms) noexcept;

/// Per-tenant quota override (fast_server --tenant=ID:rate:burst:inflight).
struct TenantQuota {
  std::uint16_t tenant = 0;
  /// Token-bucket refill rate, requests/second. 0 = unlimited (no bucket).
  double rate = 0.0;
  /// Token-bucket capacity (burst size), whole requests.
  double burst = 64.0;
  /// Admitted-but-unanswered window across the tenant's connections.
  /// 0 = unlimited.
  std::size_t inflight = 0;
};

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Bind address; loopback by default (the load harness and tests).
  std::string bind_addr = "127.0.0.1";
  /// Request-execution threads.
  std::size_t workers = 4;
  /// Per-connection admitted-but-unanswered window (admission control).
  std::size_t queue_depth = 64;
  /// Floor (and empty-lane value) of the adaptive retry hint, ms.
  std::uint32_t retry_after_ms = 10;
  /// Ceiling of the adaptive retry hint, ms.
  std::uint32_t retry_max_ms = 1000;
  /// Queries drained per bulk item when both lanes are backlogged (>= 1).
  std::size_t query_weight = 4;
  /// Default tenant quota, applied to any tenant without an override.
  double tenant_rate = 0.0;       ///< tokens/s; 0 = unlimited
  double tenant_burst = 64.0;     ///< bucket capacity
  std::size_t tenant_inflight = 0;  ///< admitted window; 0 = unlimited
  /// Per-tenant overrides of the defaults above.
  std::vector<TenantQuota> tenant_quotas;
  /// A connection whose unsent output exceeds this is dropped (client
  /// stopped reading).
  std::size_t max_outbuf_bytes = 64u << 20;
  /// Test-only: artificial per-request execution delay, so admission-
  /// control tests can fill the window deterministically.
  std::size_t debug_request_delay_us = 0;
  /// Test-only: start with the worker pool held — admitted requests queue
  /// but never execute until debug_hold_workers(false). Lane and quota
  /// decisions become assertable by exact counts, no wall-clock sleeps.
  bool debug_hold_workers = false;

  /// Applies FAST_SERVER_PORT / FAST_SERVER_WORKERS / FAST_SERVER_QUEUE /
  /// FAST_SERVER_QUERY_WEIGHT / FAST_SERVER_RETRY_MS /
  /// FAST_SERVER_RETRY_MAX_MS / FAST_SERVER_TENANT_RATE /
  /// FAST_SERVER_TENANT_BURST / FAST_SERVER_TENANT_INFLIGHT on top of
  /// `defaults`, with checked parsing (util/env.hpp): garbage, negative or
  /// out-of-range values warn once and are ignored.
  static ServerOptions from_env(ServerOptions defaults);
  static ServerOptions from_env() { return from_env(ServerOptions{}); }
};

class Server {
 public:
  /// The engine must outlive the server. A read-only engine serves queries
  /// and answers mutations kError; a writable one (QueryEngine::open or a
  /// mutable-index constructor) serves the full op set.
  Server(core::QueryEngine& engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the I/O + worker threads.
  storage::Status start();

  /// The bound port (after start(); resolves port 0 to the real one).
  std::uint16_t port() const noexcept { return bound_port_; }

  /// Graceful shutdown as documented above. Idempotent; called by the
  /// destructor if still running. Must not be called from a worker.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Current lifecycle state (admin plane /readyz and the `server.state`
  /// gauge; safe from any thread).
  ServerState state() const noexcept {
    return static_cast<ServerState>(state_.load(std::memory_order_acquire));
  }

  /// Flips kServing -> kDraining WITHOUT closing the listener or rejecting
  /// traffic: the data plane keeps serving while /readyz answers 503, so a
  /// load balancer drains new arrivals before stop() cuts in-flight work
  /// off. Idempotent; a no-op unless currently kServing. stop() calls it
  /// first, so a plain stop() still passes through kDraining.
  void enter_draining() noexcept;

  /// Live connection count (diagnostics/tests).
  std::size_t connection_count() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Test-only: holds (true) or releases (false) the worker pool. While
  /// held, admitted requests pile up in their lanes without executing, so
  /// tests can assert admission outcomes by exact counts. stop() releases
  /// the hold itself, so a held server still shuts down cleanly.
  void debug_hold_workers(bool hold);

  /// Test-only: current depth of a lane's admitted queue.
  std::size_t debug_lane_depth(Lane lane) const noexcept {
    return lane_depth_[static_cast<std::size_t>(lane)].load(
        std::memory_order_acquire);
  }

  /// The retry hint the server would attach to a rejection routed at
  /// `lane` right now (tests assert monotonicity against this).
  std::uint32_t current_retry_after_ms(Lane lane) const noexcept;

 private:
  struct TenantState;

  struct Conn {
    int fd = -1;
    FrameAssembler assembler;
    /// Admitted-but-unanswered requests on this connection.
    std::atomic<std::size_t> inflight{0};
    /// Tenant binding (kHello); read and written by the I/O thread only.
    std::shared_ptr<TenantState> tenant;
    /// Negotiated capability bits (kHello; I/O thread only, like tenant).
    std::uint32_t caps = 0;
    std::mutex mu;                    ///< guards out/out_off/closed
    std::vector<std::uint8_t> out;    ///< serialized, unsent response bytes
    std::size_t out_off = 0;
    bool closed = false;
    bool want_write = false;          ///< EPOLLOUT armed (I/O thread only)
  };

  struct WorkItem {
    std::shared_ptr<Conn> conn;
    /// Captured at admission so a later kHello on the connection cannot
    /// race the completion-side accounting.
    std::shared_ptr<TenantState> tenant;
    Lane lane = Lane::kQuery;
    std::vector<std::uint8_t> body;
    /// Admission timestamp: worker pickup minus this is the queue wait
    /// (server.queue_wait_s histogram and the kCapServerTiming trailer).
    std::chrono::steady_clock::time_point admitted_at{};
    /// Connection negotiated kCapServerTiming (captured at admission —
    /// Conn::caps is I/O-thread-only state).
    bool want_timing = false;
  };

  void io_loop();
  void worker_loop();

  void accept_ready();
  void conn_readable(const std::shared_ptr<Conn>& conn);
  void conn_writable(const std::shared_ptr<Conn>& conn);
  /// Admission decision + dispatch for one complete frame (I/O thread).
  void handle_frame(const std::shared_ptr<Conn>& conn,
                    std::vector<std::uint8_t> body);
  /// Executes one admitted request (worker thread).
  Response execute(const Request& request, const WorkItem& item);

  /// Tenant registry lookup/creation (I/O thread only).
  const std::shared_ptr<TenantState>& tenant_state(std::uint16_t id);
  /// Token-bucket + tenant-window admission (I/O thread only).
  bool admit_tenant(TenantState& tenant);
  /// Pops the next admitted request honoring the lane weights; false on
  /// worker shutdown.
  bool pop_work(WorkItem* item);

  /// Appends a serialized response and wakes the I/O thread (any thread).
  void send_response(const std::shared_ptr<Conn>& conn,
                     const Response& response);
  /// Flushes the output buffer; arms/disarms EPOLLOUT (I/O thread).
  void flush_conn(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void update_epoll(Conn& conn, bool want_write);
  /// True when every connection's output buffer is empty (drain check).
  bool all_flushed();

  core::QueryEngine& engine_;
  const ServerOptions options_;
  std::uint16_t bound_port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd the workers kick after queuing output

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};   ///< reject new frames
  std::atomic<bool> io_stop_{false};    ///< I/O thread exits once flushed
  /// Lifecycle state (ServerState values; see state()/enter_draining()).
  std::atomic<std::uint8_t> state_{
      static_cast<std::uint8_t>(ServerState::kStarting)};

  // Two admitted-request lanes (FIFO within a lane) + weighted dispatch
  // state, all guarded by work_mutex_.
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> lane_query_;
  std::deque<WorkItem> lane_bulk_;
  /// Queries handed out since the last bulk item (weighted round-robin).
  std::size_t queries_since_bulk_ = 0;
  bool workers_stop_ = false;
  bool workers_held_ = false;

  // Lock-free mirrors for the adaptive hint + tests: queue depth per lane
  // and the EWMA of request service time (double bits, microseconds).
  std::atomic<std::size_t> lane_depth_[2] = {{0}, {0}};
  std::atomic<std::uint64_t> lane_ewma_us_bits_[2] = {{0}, {0}};

  // Tenant registry: created on first frame / kHello (I/O thread only);
  // workers only ever touch a TenantState through the shared_ptr captured
  // in their WorkItem.
  std::unordered_map<std::uint16_t, std::shared_ptr<TenantState>> tenants_;

  // Connections needing a flush, posted by workers (guarded by wake_mutex_).
  std::mutex wake_mutex_;
  std::vector<std::weak_ptr<Conn>> pending_flush_;

  // Drain accounting: admitted requests not yet answered, process-wide.
  std::atomic<std::size_t> admitted_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::atomic<std::size_t> connections_{0};

  /// I/O-thread-private registry of live connections.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  // Instruments live in the engine's registry, so one kMetrics scrape (or
  // registry JSON dump) covers pipeline and serving metrics together.
  util::Counter* m_accepted_ = nullptr;
  util::Counter* m_requests_ = nullptr;
  util::Counter* m_rejected_retry_ = nullptr;
  util::Counter* m_rejected_draining_ = nullptr;
  util::Counter* m_bad_requests_ = nullptr;
  util::Counter* m_bytes_in_ = nullptr;
  util::Counter* m_bytes_out_ = nullptr;
  util::Counter* m_lane_executed_[2] = {nullptr, nullptr};
  util::Gauge* m_connections_ = nullptr;
  util::Gauge* m_inflight_ = nullptr;
  util::Gauge* m_lane_depth_[2] = {nullptr, nullptr};
  util::Gauge* m_state_ = nullptr;  ///< ServerState as a number
  util::Histogram* m_request_wall_s_ = nullptr;
  util::Histogram* m_queue_wait_s_ = nullptr;
  util::Histogram* m_retry_after_ms_ = nullptr;

  /// Single writer for state_ + its gauge mirror (start/stop/drain paths).
  void set_state(ServerState next) noexcept;
};

}  // namespace fast::server
