// fast::server — the network front door (DESIGN.md §3g).
//
// One epoll I/O thread owns every socket: it accepts connections, splits
// the byte stream into length-prefixed frames (protocol.hpp), makes the
// admission decision per frame, and flushes response bytes. Admitted
// requests are executed by a pool of worker threads against the
// QueryEngine mutating facade; workers never touch sockets — they append
// serialized responses to the connection's output buffer and kick the I/O
// thread through an eventfd. Request order is preserved per connection for
// admitted requests (one FIFO work queue), while rejections are answered
// immediately from the I/O thread, ahead of the queue.
//
// Admission control: each connection may have at most
// ServerOptions::queue_depth admitted-but-unanswered requests. A frame
// arriving past that window is answered kRetryAfter (with a retry hint in
// milliseconds) instead of being buffered — the server sheds overload
// explicitly rather than stalling the TCP stream, so a closed-loop client
// sees bounded latency and an open-loop client sees rejects, exactly the
// behavior the loadgen sweep measures.
//
// Graceful shutdown (stop(), also the SIGTERM path of fast_server):
//   1. stop accepting; answer new frames kShuttingDown;
//   2. drain — every admitted request executes and its response is queued;
//   3. workers join; the I/O thread flushes every output buffer;
//   4. the WAL is fsynced through the engine facade, so every
//      acknowledged write is durable before the process exits (the
//      loopback integration test asserts zero acked-write loss).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/query_engine.hpp"
#include "server/protocol.hpp"
#include "storage/io.hpp"

namespace fast::util {
class Counter;
class Gauge;
class Histogram;
}

namespace fast::server {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Bind address; loopback by default (the load harness and tests).
  std::string bind_addr = "127.0.0.1";
  /// Request-execution threads.
  std::size_t workers = 4;
  /// Per-connection admitted-but-unanswered window (admission control).
  std::size_t queue_depth = 64;
  /// Hint returned with kRetryAfter.
  std::uint32_t retry_after_ms = 10;
  /// A connection whose unsent output exceeds this is dropped (client
  /// stopped reading).
  std::size_t max_outbuf_bytes = 64u << 20;
  /// Test-only: artificial per-request execution delay, so admission-
  /// control tests can fill the window deterministically.
  std::size_t debug_request_delay_us = 0;

  /// Applies FAST_SERVER_PORT / FAST_SERVER_WORKERS / FAST_SERVER_QUEUE on
  /// top of `defaults`, with checked parsing (util/env.hpp): garbage,
  /// negative or out-of-range values warn once and are ignored.
  static ServerOptions from_env(ServerOptions defaults);
  static ServerOptions from_env() { return from_env(ServerOptions{}); }
};

class Server {
 public:
  /// The engine must outlive the server. A read-only engine serves queries
  /// and answers mutations kError; a writable one (QueryEngine::open or a
  /// mutable-index constructor) serves the full op set.
  Server(core::QueryEngine& engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the I/O + worker threads.
  storage::Status start();

  /// The bound port (after start(); resolves port 0 to the real one).
  std::uint16_t port() const noexcept { return bound_port_; }

  /// Graceful shutdown as documented above. Idempotent; called by the
  /// destructor if still running. Must not be called from a worker.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Live connection count (diagnostics/tests).
  std::size_t connection_count() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    FrameAssembler assembler;
    /// Admitted-but-unanswered requests on this connection.
    std::atomic<std::size_t> inflight{0};
    std::mutex mu;                    ///< guards out/out_off/closed
    std::vector<std::uint8_t> out;    ///< serialized, unsent response bytes
    std::size_t out_off = 0;
    bool closed = false;
    bool want_write = false;          ///< EPOLLOUT armed (I/O thread only)
  };

  struct WorkItem {
    std::shared_ptr<Conn> conn;
    std::vector<std::uint8_t> body;
  };

  void io_loop();
  void worker_loop();

  void accept_ready();
  void conn_readable(const std::shared_ptr<Conn>& conn);
  void conn_writable(const std::shared_ptr<Conn>& conn);
  /// Admission decision + dispatch for one complete frame (I/O thread).
  void handle_frame(const std::shared_ptr<Conn>& conn,
                    std::vector<std::uint8_t> body);
  /// Executes one admitted request (worker thread).
  Response execute(const Request& request);

  /// Appends a serialized response and wakes the I/O thread (any thread).
  void send_response(const std::shared_ptr<Conn>& conn,
                     const Response& response);
  /// Flushes the output buffer; arms/disarms EPOLLOUT (I/O thread).
  void flush_conn(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void update_epoll(Conn& conn, bool want_write);
  /// True when every connection's output buffer is empty (drain check).
  bool all_flushed();

  core::QueryEngine& engine_;
  const ServerOptions options_;
  std::uint16_t bound_port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd the workers kick after queuing output

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};   ///< reject new frames
  std::atomic<bool> io_stop_{false};    ///< I/O thread exits once flushed

  // Work queue (admitted requests, FIFO across connections).
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_;
  bool workers_stop_ = false;

  // Connections needing a flush, posted by workers (guarded by wake_mutex_).
  std::mutex wake_mutex_;
  std::vector<std::weak_ptr<Conn>> pending_flush_;

  // Drain accounting: admitted requests not yet answered, process-wide.
  std::atomic<std::size_t> admitted_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::atomic<std::size_t> connections_{0};

  /// I/O-thread-private registry of live connections.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  // Instruments live in the engine's registry, so one kMetrics scrape (or
  // registry JSON dump) covers pipeline and serving metrics together.
  util::Counter* m_accepted_ = nullptr;
  util::Counter* m_requests_ = nullptr;
  util::Counter* m_rejected_retry_ = nullptr;
  util::Counter* m_rejected_shutdown_ = nullptr;
  util::Counter* m_bad_requests_ = nullptr;
  util::Counter* m_bytes_in_ = nullptr;
  util::Counter* m_bytes_out_ = nullptr;
  util::Gauge* m_connections_ = nullptr;
  util::Gauge* m_inflight_ = nullptr;
  util::Histogram* m_request_wall_s_ = nullptr;
};

}  // namespace fast::server
