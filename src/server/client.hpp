// Blocking client for the fast::server wire protocol.
//
// One Client is one TCP connection. The low-level interface is explicitly
// pipelined: send() frames and writes a request body, recv() blocks for
// the next response frame — callers keep any number of requests in flight
// and match responses by seq (the server may answer rejections out of
// order). The convenience RPCs (insert/query/erase/metrics) are the
// one-outstanding-request special case: send, then block for the matching
// response. Not thread-safe; the load harness gives each connection its
// own thread.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "server/protocol.hpp"
#include "storage/io.hpp"

namespace fast::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  storage::Status connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Fresh per-connection sequence number for hand-built request bodies.
  std::uint64_t next_seq() noexcept { return seq_++; }

  // --- Pipelined interface ---

  /// Frames `body` and writes it fully (blocking).
  storage::Status send(std::span<const std::uint8_t> body);
  /// Blocks for the next response frame and decodes it into *out.
  storage::Status recv(Response* out);

  // --- One-shot RPCs (send + blocking recv of the matching response) ---

  storage::StatusOr<Response> ping();
  /// Binds this connection to a tenant (QoS). Optional: connections that
  /// never say hello are the default tenant 0. `caps` requests capability
  /// bits (e.g. kCapServerTiming); the kOk response's `caps` field carries
  /// the subset the server accepted.
  storage::StatusOr<Response> hello(std::uint16_t tenant,
                                    std::uint32_t caps = 0);
  storage::StatusOr<Response> insert(std::uint64_t id,
                                     const hash::SparseSignature& sig);
  storage::StatusOr<Response> insert_batch(
      std::span<const std::uint64_t> ids,
      std::span<const hash::SparseSignature> sigs);
  storage::StatusOr<Response> query(const hash::SparseSignature& sig,
                                    std::uint32_t k);
  storage::StatusOr<Response> query_batch(
      std::span<const hash::SparseSignature> sigs, std::uint32_t k);
  storage::StatusOr<Response> erase(std::uint64_t id);
  storage::StatusOr<Response> erase_batch(std::span<const std::uint64_t> ids);
  storage::StatusOr<Response> metrics();

 private:
  storage::StatusOr<Response> call(std::uint64_t seq,
                                   std::span<const std::uint8_t> body);

  int fd_ = -1;
  std::uint64_t seq_ = 1;
  FrameAssembler assembler_;
};

}  // namespace fast::server
