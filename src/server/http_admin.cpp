#include "server/http_admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/durability.hpp"
#include "server/server.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace fast::server {

namespace {

storage::Status posix_error(const char* what) {
  return storage::Status::error(storage::StatusCode::kIoError,
                                std::string(what) + ": " +
                                    std::strerror(errno));
}

/// Seconds on the steady clock — the CounterRateTracker time base.
double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_socket_timeout(int fd, long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer, tolerating short writes; false on error or
/// timeout (the client gets cut off — admin responses are best-effort).
bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default:  return "OK";
  }
}

void send_http(int fd, int status, const std::string& content_type,
               const std::string& body) {
  char head[256];
  const int n = std::snprintf(
      head, sizeof(head),
      "HTTP/1.0 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      status, reason_phrase(status), content_type.c_str(), body.size());
  if (n <= 0) return;
  if (write_all(fd, {head, static_cast<std::size_t>(n)})) {
    write_all(fd, body);
  }
}

/// JSON string escaping for metric names (conservative: quotes,
/// backslashes and control bytes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

const char* sa_backend_name(core::FastConfig::SaBackend b) {
  return b == core::FastConfig::SaBackend::kPStable ? "pstable" : "minhash";
}

const char* chs_backend_name(core::FastConfig::ChsBackend b) {
  switch (b) {
    case core::FastConfig::ChsBackend::kFlatCuckoo: return "flat";
    case core::FastConfig::ChsBackend::kChained: return "chained";
    case core::FastConfig::ChsBackend::kCompactFlatCuckoo:
      return "flat_compact";
  }
  return "unknown";
}

const char* state_name(ServerState s) {
  switch (s) {
    case ServerState::kStarting: return "starting";
    case ServerState::kServing: return "serving";
    case ServerState::kDraining: return "draining";
    case ServerState::kStopped: return "stopped";
  }
  return "unknown";
}

constexpr std::string_view kIndexBody =
    "fast admin plane (DESIGN.md \xc2\xa7"
    "3j)\n"
    "  /healthz  liveness\n"
    "  /readyz   readiness (503 while draining)\n"
    "  /metrics  Prometheus text exposition\n"
    "  /varz     JSON counters + windowed rates\n"
    "  /statusz  build/config/engine status\n"
    "  /tracez   slow queries + sampled spans (Chrome trace JSON)\n";

}  // namespace

HttpParse parse_http_request(std::string_view data, std::size_t max_bytes,
                             HttpRequest* out) {
  const std::size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return data.size() > max_bytes ? HttpParse::kTooLarge
                                   : HttpParse::kNeedMore;
  }
  if (head_end + 4 > max_bytes) return HttpParse::kTooLarge;
  *out = HttpRequest{};
  const std::string_view head = data.substr(0, head_end);

  // Request line: METHOD SP TARGET SP VERSION — exactly three tokens.
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return HttpParse::kBad;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return HttpParse::kBad;
  const std::string_view version = line.substr(sp2 + 1);
  if (version.empty() || version.find(' ') != std::string_view::npos ||
      version.substr(0, 5) != "HTTP/") {
    return HttpParse::kBad;
  }
  out->method.assign(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // The ?query suffix is stripped: no endpoint takes parameters, and a
  // scraper appending ?format=... should still route.
  const std::size_t q = target.find('?');
  if (q != std::string_view::npos) target = target.substr(0, q);
  out->target.assign(target);

  // Header lines: anything after the request line must contain a colon.
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view header = head.substr(pos, eol - pos);
    if (!header.empty()) {
      const std::size_t colon = header.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return HttpParse::kBad;
      }
      ++out->header_count;
    }
    pos = eol + 2;
  }
  return HttpParse::kOk;
}

/// /varz's windowed-rate state; heap-held so the header stays light.
struct HttpAdmin::RateState {
  util::CounterRateTracker tracker{64};
};

HttpAdmin::HttpAdmin(core::QueryEngine& engine, const Server* server,
                     HttpAdminOptions options)
    : engine_(engine),
      server_(server),
      options_(std::move(options)),
      rates_(std::make_unique<RateState>()) {}

HttpAdmin::~HttpAdmin() { stop(); }

storage::Status HttpAdmin::start() {
  if (running_.load(std::memory_order_acquire)) {
    return storage::Status::error(storage::StatusCode::kIoError,
                                  "admin plane already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return posix_error("socket");
  const auto fail = [this](const char* what) {
    storage::Status s = posix_error(what);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  };
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return storage::Status::error(storage::StatusCode::kIoError,
                                  "bad bind address: " + options_.bind_addr);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return {};
}

void HttpAdmin::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpAdmin::serve_loop() {
  // Blocking accept behind a short poll, so stop() is observed within one
  // poll interval without a wake pipe.
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int n = ::poll(&pfd, 1, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    set_socket_timeout(fd, options_.client_timeout_ms);
    serve_client(fd);
    ::close(fd);
  }
}

void HttpAdmin::serve_client(int fd) {
  std::string data;
  char buf[4096];
  HttpRequest request;
  while (true) {
    const HttpParse outcome =
        parse_http_request(data, options_.max_request_bytes, &request);
    if (outcome == HttpParse::kOk) break;
    if (outcome == HttpParse::kTooLarge) {
      send_http(fd, 431, "text/plain", "request too large\n");
      return;
    }
    if (outcome == HttpParse::kBad) {
      send_http(fd, 400, "text/plain", "bad request\n");
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client closed or timed out before a full request head
    }
    data.append(buf, static_cast<std::size_t>(n));
  }
  respond(fd, request);
}

void HttpAdmin::respond(int fd, const HttpRequest& request) {
  if (request.method != "GET") {
    send_http(fd, 405, "text/plain", "method not allowed\n");
    return;
  }
  const std::string& t = request.target;
  if (t == "/" || t.empty()) {
    send_http(fd, 200, "text/plain; charset=utf-8",
              std::string(kIndexBody));
  } else if (t == "/healthz") {
    send_http(fd, 200, "text/plain", "ok\n");
  } else if (t == "/readyz") {
    const bool ready =
        server_ == nullptr || server_->state() == ServerState::kServing;
    if (ready) {
      send_http(fd, 200, "text/plain", "ready\n");
    } else {
      send_http(fd, 503, "text/plain", "draining\n");
    }
  } else if (t == "/metrics") {
    send_http(fd, 200, "text/plain; version=0.0.4; charset=utf-8",
              metrics_body());
  } else if (t == "/varz") {
    send_http(fd, 200, "application/json", varz_body());
  } else if (t == "/statusz") {
    send_http(fd, 200, "application/json", statusz_body());
  } else if (t == "/tracez") {
    send_http(fd, 200, "application/json",
              util::Tracer::global().tracez_json());
  } else {
    send_http(fd, 404, "text/plain", "not found\n");
  }
}

std::string HttpAdmin::metrics_body() {
  util::sample_process_gauges(engine_.metrics());
  const util::MetricsSnapshot snapshot = engine_.metrics().snapshot();
  // Feed the rate rings on every scrape, whichever endpoint triggered it,
  // so /varz rates stay fresh even when only Prometheus is polling.
  rates_->tracker.feed(snapshot.counters, steady_now_s());
  return util::metrics_to_prometheus(snapshot);
}

std::string HttpAdmin::varz_body() {
  util::sample_process_gauges(engine_.metrics());
  const util::MetricsSnapshot snapshot = engine_.metrics().snapshot();
  const double now_s = steady_now_s();
  rates_->tracker.feed(snapshot.counters, now_s);
  std::string out = "{\n";
  out += "  \"uptime_s\": " + fmt_double(util::process_uptime_s()) + ",\n";
  if (server_ != nullptr) {
    const ServerState s = server_->state();
    out += "  \"state\": " +
           std::to_string(static_cast<unsigned>(
               static_cast<std::uint8_t>(s))) +
           ",\n  \"state_name\": \"" + state_name(s) + "\",\n";
  }
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + fmt_double(value);
  }
  out += "\n  },\n  \"rates\": {";
  first = true;
  for (const auto& [name, value] : snapshot.counters) {
    (void)value;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"rate_10s\": " +
           fmt_double(rates_->tracker.rate(name, 10, now_s)) +
           ", \"rate_60s\": " +
           fmt_double(rates_->tracker.rate(name, 60, now_s)) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string HttpAdmin::statusz_body() {
  const core::FastConfig& config = engine_.config();
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64,
                core::config_fingerprint(config));
  std::string out = "{\n";
#if defined(__VERSION__)
  out += "  \"compiler\": \"" + json_escape(__VERSION__) + "\",\n";
#endif
  out += "  \"cxx_standard\": " + std::to_string(__cplusplus) + ",\n";
#if defined(NDEBUG)
  out += "  \"build\": \"release\",\n";
#else
  out += "  \"build\": \"debug\",\n";
#endif
  out += "  \"uptime_s\": " + fmt_double(util::process_uptime_s()) + ",\n";
  out += "  \"config_fingerprint\": \"" + std::string(fp) + "\",\n";
  out += "  \"engine\": {\n";
  out += "    \"writable\": ";
  out += engine_.writable() ? "true" : "false";
  out += ",\n    \"durable\": ";
  out += engine_.durable() ? "true" : "false";
  out += ",\n    \"tiered\": ";
  out += engine_.is_tiered() ? "true" : "false";
  out += ",\n    \"size\": " + std::to_string(engine_.size()) + "\n  },\n";
  out += "  \"config\": {\n";
  out += "    \"bloom_bits\": " + std::to_string(config.bloom_bits) + ",\n";
  out += "    \"bloom_hashes\": " + std::to_string(config.bloom_hashes) +
         ",\n";
  out += "    \"sa_backend\": \"" +
         std::string(sa_backend_name(config.sa_backend)) + "\",\n";
  out += "    \"chs_backend\": \"" +
         std::string(chs_backend_name(config.chs_backend)) + "\",\n";
  out += "    \"lsh_tables\": " + std::to_string(config.lsh.tables) + ",\n";
  out += "    \"shard_routing_bits\": " +
         std::to_string(config.shard_routing_bits) + ",\n";
  out += "    \"tier_enabled\": ";
  out += config.tier.enabled ? "true" : "false";
  out += "\n  }";
  if (server_ != nullptr) {
    const ServerState s = server_->state();
    out += ",\n  \"server\": {\n    \"state\": " +
           std::to_string(static_cast<unsigned>(
               static_cast<std::uint8_t>(s))) +
           ",\n    \"state_name\": \"" + state_name(s) +
           "\",\n    \"port\": " + std::to_string(server_->port()) +
           ",\n    \"connections\": " +
           std::to_string(server_->connection_count()) + "\n  }";
  }
  out += "\n}\n";
  return out;
}

bool http_get(const std::string& host, std::uint16_t port,
              const std::string& target, int* status_out,
              std::string* body_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  set_socket_timeout(fd, 5000);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!write_all(fd, request)) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or error/timeout; parse what we have
  }
  ::close(fd);
  // Status line: "HTTP/1.x NNN Reason".
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || response.substr(0, 5) != "HTTP/") {
    return false;
  }
  const int status = std::atoi(response.c_str() + sp + 1);
  if (status < 100 || status > 599) return false;
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  if (status_out != nullptr) *status_out = status;
  if (body_out != nullptr) *body_out = response.substr(head_end + 4);
  return true;
}

}  // namespace fast::server
