// HTTP/1.0 admin plane for the fast::server front door (DESIGN.md §3j).
//
// A second, tiny listener — separate port, one dedicated thread — serves
// plain-text/JSON observability endpoints to stock HTTP clients (curl,
// a Prometheus scraper, a Kubernetes probe), so nothing operational needs
// the binary wire protocol:
//
//   GET /          index of the endpoints below
//   GET /healthz   liveness: 200 "ok" while the admin thread runs
//   GET /readyz    readiness: 200 while the data plane is kServing, 503
//                  the moment it enters draining — BEFORE the data
//                  listener closes, so load balancers stop routing new
//                  connections ahead of the cutoff
//   GET /metrics   Prometheus text exposition (version 0.0.4) of the
//                  engine registry, process gauges freshly sampled
//   GET /varz      JSON counters + gauges + windowed rates (10s/60s),
//                  computed at scrape from a CounterRateTracker
//   GET /statusz   build info, uptime, config fingerprint, backend and
//                  tier selection, engine size — one JSON object
//   GET /tracez    tracer stats + slow-query ring + sampled spans as
//                  Chrome-trace-loadable JSON (util::Tracer::tracez_json)
//
// Isolation: the admin thread never takes a data-plane lock — it reads
// relaxed-atomic instruments (MetricsRegistry snapshots), the server's
// lifecycle atomic, and the tracer's own exporter locks. A slow or stuck
// scrape therefore cannot slow a query, and the request hot path carries
// zero admin-plane cost.
//
// The server is HTTP/1.0, Connection: close, GET-only, one request per
// connection, bounded request size and per-client socket timeouts — the
// minimum surface that still satisfies curl, probes and Prometheus. The
// request parser is a pure function (parse_http_request) so malformed,
// oversized and split-across-reads inputs are unit-testable without
// sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "core/query_engine.hpp"
#include "storage/io.hpp"

namespace fast::server {

class Server;

/// Parse outcome of one buffered HTTP request head.
enum class HttpParse : std::uint8_t {
  kNeedMore = 0,  ///< no terminating CRLFCRLF yet; read more bytes
  kOk = 1,
  kBad = 2,       ///< malformed request line or header
  kTooLarge = 3,  ///< head exceeds the configured byte budget
};

/// A parsed request head. Bodies are never read (GET-only plane).
struct HttpRequest {
  std::string method;
  std::string target;        ///< path only; the ?query suffix is stripped
  std::size_t header_count = 0;
};

/// Incremental parser for one HTTP/1.x request head in `data` (everything
/// received so far). Returns kNeedMore until the blank-line terminator is
/// buffered, kTooLarge once `data` exceeds `max_bytes` without one, and
/// kBad for a malformed request line (not exactly "METHOD SP TARGET SP
/// VERSION") or a header line without a colon. Pure — no I/O, no state —
/// so property tests can drive every split point and byte-level mutation.
HttpParse parse_http_request(std::string_view data, std::size_t max_bytes,
                             HttpRequest* out);

struct HttpAdminOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Loopback by default: the admin plane is an operator surface, not a
  /// public one.
  std::string bind_addr = "127.0.0.1";
  /// Request heads above this answer 431 and close.
  std::size_t max_request_bytes = 8192;
  /// Per-client socket receive/send timeout — a stalled client cannot
  /// wedge the single admin thread for longer than this.
  long client_timeout_ms = 2000;
};

/// The admin-plane server. `engine` must outlive it; `server` is optional
/// (nullptr serves every endpoint except that /readyz is then always 200
/// and /statusz omits the data-plane section) and must outlive it when
/// given.
class HttpAdmin {
 public:
  HttpAdmin(core::QueryEngine& engine, const Server* server,
            HttpAdminOptions options);
  ~HttpAdmin();

  HttpAdmin(const HttpAdmin&) = delete;
  HttpAdmin& operator=(const HttpAdmin&) = delete;

  /// Binds, listens and spawns the admin thread.
  storage::Status start();
  /// Stops the thread and closes the listener. Idempotent.
  void stop();

  /// The bound port (after start(); resolves port 0 to the real one).
  std::uint16_t port() const noexcept { return bound_port_; }

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void serve_loop();
  void serve_client(int fd);
  /// Routes one parsed request to its endpoint payload.
  void respond(int fd, const HttpRequest& request);

  std::string metrics_body();
  std::string varz_body();
  std::string statusz_body();

  core::QueryEngine& engine_;
  const Server* server_;  ///< nullable
  const HttpAdminOptions options_;
  std::uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};

  /// Windowed rates for /varz; admin thread only (never locked).
  struct RateState;
  std::unique_ptr<RateState> rates_;
};

/// Minimal blocking HTTP/1.0 GET for tests and benches: fetches
/// `target` from host:port, fills *status_out from the status line and
/// *body_out with everything after the head. Returns false on connect,
/// I/O or parse failure. Not a general client — no redirects, no TLS,
/// no chunked decoding (the admin plane sends none of those).
bool http_get(const std::string& host, std::uint16_t port,
              const std::string& target, int* status_out,
              std::string* body_out);

}  // namespace fast::server
