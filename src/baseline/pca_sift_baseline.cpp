#include "baseline/pca_sift_baseline.hpp"

#include <algorithm>

#include "vision/matcher.hpp"

namespace fast::baseline {

PcaSiftBaseline::PcaSiftBaseline(PcaSiftBaselineConfig config,
                                 sim::CostModel cost, vision::PcaModel pca)
    : config_(std::move(config)), cost_(cost), pca_(std::move(pca)),
      store_(cost, config_.cache_pages) {}

InsertOutcome PcaSiftBaseline::insert(std::uint64_t id,
                                      const img::Image& image) {
  InsertOutcome out;
  std::vector<vision::Feature> feats = vision::extract_pca_sift_features(
      image, pca_, config_.pca_sift, config_.max_keypoints);
  out.cost.charge(config_.extract.pca_sift_s);

  const std::size_t blob =
      feats.size() * config_.space.pca_sift_bytes_per_feature +
      config_.space.sql_row_overhead;
  store_.put(id, blob, out.cost);
  store_bytes_ += blob;
  // SQL secondary-index maintenance: random page updates per record.
  for (std::size_t p = 0; p < config_.index_update_pages; ++p) {
    out.cost.charge_disk_write(cost_.disk_write_s(cost_.disk_page_bytes));
  }

  // PCA triage filters outliers, so the ingest-time correlation pass
  // compares against a bounded working set rather than the whole store.
  const std::size_t compare_window = std::min<std::size_t>(ids_.size(), 16);
  const std::size_t dim = config_.pca_sift.output_dim;
  for (std::size_t i = ids_.size() - compare_window; i < ids_.size(); ++i) {
    store_.read(ids_[i], out.cost);
  }
  out.cost.charge_flops(cost_.flop_s, feats.size() * config_.max_keypoints *
                                          dim * compare_window);

  ids_.push_back(id);
  features_.push_back(std::move(feats));
  return out;
}

QueryOutcome PcaSiftBaseline::query(const img::Image& image,
                                    std::size_t k) const {
  QueryOutcome out;
  out.cost.charge(config_.extract.pca_sift_s);
  const std::vector<vision::Feature> qfeats = vision::extract_pca_sift_features(
      image, pca_, config_.pca_sift, config_.max_keypoints);

  vision::MatcherConfig mc;
  mc.ratio = config_.match_ratio;
  out.hits.reserve(ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    store_.read(ids_[i], out.cost);
    const double sim = vision::image_similarity(qfeats, features_[i], mc);
    out.cost.charge_flops(cost_.flop_s, qfeats.size() * features_[i].size() *
                                            config_.pca_sift.output_dim);
    out.hits.push_back(core::ScoredId{ids_[i], sim});
  }
  const std::size_t keep = std::min(k, out.hits.size());
  std::partial_sort(out.hits.begin(),
                    out.hits.begin() + static_cast<std::ptrdiff_t>(keep),
                    out.hits.end(),
                    [](const core::ScoredId& a, const core::ScoredId& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  out.hits.resize(keep);
  return out;
}

}  // namespace fast::baseline
