// Shared result types and calibrated per-scheme cost/space constants for
// the three baselines the paper compares against (SIFT, PCA-SIFT, RNPE).
//
// Per-image feature-extraction times are derived from Fig. 3 of the paper
// (total seconds on a 256-node x 32-core cluster over 21M / 39M images):
//   SIFT      240.2 s -> ~94 ms/image     (exhaustive extraction + matching)
//   PCA-SIFT  101.8 s -> ~40 ms/image     (light-weight PCA triage)
//   RNPE      152.7 s -> ~60 ms/image     (view retrieval + geo handling)
//   FAST      = PCA-SIFT extraction (same PCA front end).
// Space constants are calibrated to reproduce Table IV's relative overheads
// (SIFT 1.0, PCA-SIFT ~0.8, RNPE ~0.5, FAST ~0.1): the paper's baselines
// persist not only raw descriptors but SQL row metadata, keypoint geometry
// and (for RNPE) view thumbnails, which the constants below account for.
#pragma once

#include <cstdint>
#include <vector>

#include "core/result.hpp"

namespace fast::baseline {

struct QueryOutcome {
  std::vector<core::ScoredId> hits;  ///< ranked, best first
  sim::SimClock cost;
};

struct InsertOutcome {
  sim::SimClock cost;
};

/// Per-image feature-extraction seconds on the paper's platform.
struct ExtractCosts {
  double sift_s = 0.094;
  double pca_sift_s = 0.040;
  double rnpe_s = 0.060;
};

/// Bytes persisted per image by each baseline's store (beyond what this
/// repository's in-memory structures physically hold), per descriptor.
struct SpaceModel {
  /// SIFT: 128 float32 descriptor + 16 B keypoint geometry per feature.
  std::size_t sift_bytes_per_feature = 128 * 4 + 16;
  /// PCA-SIFT (paper impl): 36 float64 projections + geometry + patch
  /// verification residual per feature (-> ~0.8 of SIFT).
  std::size_t pca_sift_bytes_per_feature = 36 * 8 + 16 + 112;
  /// RNPE: per-image location record + view thumbnail used by the MNPG
  /// diverse-view elimination (-> ~0.4-0.5 of SIFT at bench feature counts).
  std::size_t rnpe_bytes_per_image = 10 * 1024;
  /// SQL row/index overhead per image record in the baselines' database.
  std::size_t sql_row_overhead = 512;
};

}  // namespace fast::baseline
