// The paper's SIFT baseline: exact brute-force feature matching over an
// SQL-backed on-disk feature store.
//
// Querying compares the query's descriptors against every stored image's
// descriptors (no index narrows the scope — "zero-dimensional correlation"),
// reading feature blobs through the store's page cache. This is the
// accuracy gold standard (Table III normalizes to it) and the latency/space
// worst case (Figs. 3-5, Table IV).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baseline/common.hpp"
#include "img/image.hpp"
#include "sim/cost_model.hpp"
#include "storage/sql_like_store.hpp"
#include "vision/keypoint.hpp"

namespace fast::baseline {

struct SiftBaselineConfig {
  std::size_t max_keypoints = 128;
  double match_ratio = 0.8;         ///< Lowe ratio test
  std::size_t cache_pages = 4096;   ///< page cache of the SQL store
  /// Random page updates per record from the SQL database's secondary
  /// index maintenance (B-tree splits, address tables). Calibrated so the
  /// per-image index-storage latency matches Fig. 3's SIFT (~320 ms).
  std::size_t index_update_pages = 30;
  ExtractCosts extract;
  SpaceModel space;
};

class SiftBaseline {
 public:
  SiftBaseline(SiftBaselineConfig config, sim::CostModel cost);

  std::size_t size() const noexcept { return ids_.size(); }

  /// Indexes one image: native SIFT extraction + simulated store write.
  InsertOutcome insert(std::uint64_t id, const img::Image& image);

  /// Brute-force query: match against every stored image, rank by match
  /// fraction. Charges extraction, full store scan and matching FLOPs.
  QueryOutcome query(const img::Image& image, std::size_t k) const;

  /// Total persisted bytes (Table IV numerator).
  std::size_t index_bytes() const noexcept { return store_bytes_; }

 private:
  SiftBaselineConfig config_;
  sim::CostModel cost_;
  mutable storage::SqlLikeStore store_;
  std::vector<std::uint64_t> ids_;
  std::vector<std::vector<vision::Feature>> features_;  // native descriptors
  std::size_t store_bytes_ = 0;
};

}  // namespace fast::baseline
