#include "baseline/rnpe.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fast::baseline {

Rnpe::Rnpe(RnpeConfig config, sim::CostModel cost)
    : config_(config), cost_(cost), cache_(config.cache_pages),
      rng_(config.seed) {}

InsertOutcome Rnpe::insert(std::uint64_t id, double geo_x, double geo_y,
                           std::uint32_t landmark_tag,
                           std::uint32_t view_tag) {
  InsertOutcome out;
  out.cost.charge(config_.extract.rnpe_s);

  // Tags come from EXIF/user annotations and visual-word heuristics; both
  // misfile a photo's view with some probability.
  Record rec{id, landmark_tag, view_tag};
  if (rng_.bernoulli(config_.tag_error_prob)) {
    rec.view_tag = static_cast<std::uint32_t>(rng_.uniform_u64(8));
  }
  if (rng_.bernoulli(config_.tag_error_prob / 4.0)) {
    rec.landmark_tag ^= 1u;  // confuse neighbouring landmarks
  }

  FAST_CHECK_MSG(id == records_.size(),
                 "Rnpe expects dense ids in insertion order");
  records_.push_back(rec);
  rtree_.insert(id, geo_x, geo_y);

  // R-tree insert touches O(log n) nodes (one page write per level), and
  // the MNPG view registration updates its view store and tag lists.
  const std::size_t levels = rtree_.height();
  for (std::size_t p = 0; p < levels + config_.view_update_pages; ++p) {
    out.cost.charge_disk_write(cost_.disk_write_s(cost_.disk_page_bytes));
  }
  return out;
}

QueryOutcome Rnpe::query(double geo_x, double geo_y,
                         std::uint32_t landmark_tag, std::uint32_t view_tag,
                         std::size_t k) const {
  QueryOutcome out;
  out.cost.charge(config_.extract.rnpe_s);

  std::size_t accesses = 0;
  const auto near =
      rtree_.nearest(geo_x, geo_y, config_.proximity_neighbors, &accesses);

  // Each R-tree node visited faults a page (the index is disk-resident at
  // the paper's scale).
  for (std::size_t a = 0; a < accesses; ++a) {
    if (cache_.access(a)) {
      out.cost.charge_ram(cost_.ram_access_s);
    } else {
      out.cost.charge_disk_read(cost_.disk_read_s(cost_.disk_page_bytes));
    }
  }

  // MNPG view grouping: pairwise view comparisons over the retrieved set
  // (quadratic in the proximity neighborhood — the "high-complexity MNPG
  // identification algorithm").
  out.cost.charge_flops(cost_.flop_s, near.size() * near.size() * 64);

  // Rank by tag agreement, geo proximity as tie-break. Wrongly stored tags
  // are exactly what caps RNPE's accuracy in Table III.
  out.hits.reserve(near.size());
  for (const auto& n : near) {
    const Record& rec = records_[static_cast<std::size_t>(n.id)];
    double score = 0.0;
    if (rec.landmark_tag == landmark_tag) score += 0.6;
    if (rec.view_tag == view_tag) score += 0.4;
    score -= 0.001 * n.distance;
    out.hits.push_back(core::ScoredId{n.id, score});
  }
  const std::size_t keep = std::min(k, out.hits.size());
  std::partial_sort(out.hits.begin(),
                    out.hits.begin() + static_cast<std::ptrdiff_t>(keep),
                    out.hits.end(),
                    [](const core::ScoredId& a, const core::ScoredId& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  out.hits.resize(keep);
  return out;
}

std::size_t Rnpe::index_bytes() const noexcept {
  // Location record + view thumbnail per image, plus R-tree nodes.
  return records_.size() * config_.space.rnpe_bytes_per_image +
         rtree_.node_count() * cost_.disk_page_bytes / 4;
}

}  // namespace fast::baseline
