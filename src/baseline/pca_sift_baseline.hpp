// The paper's PCA-SIFT baseline: compact PCA-projected descriptors, still
// matched brute-force and persisted in the SQL-backed disk store. Fast(er)
// extraction and smaller blobs than SIFT, but queries remain a full store
// scan — the disk-bound behaviour that separates it from FAST in Fig. 4.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/common.hpp"
#include "img/image.hpp"
#include "sim/cost_model.hpp"
#include "storage/sql_like_store.hpp"
#include "vision/keypoint.hpp"
#include "vision/pca.hpp"
#include "vision/pca_sift.hpp"

namespace fast::baseline {

struct PcaSiftBaselineConfig {
  std::size_t max_keypoints = 128;
  vision::PcaSiftConfig pca_sift;
  double match_ratio = 0.8;
  std::size_t cache_pages = 4096;
  /// SQL secondary-index page updates per record (fewer than SIFT: smaller
  /// rows, fewer index entries). Calibrated to Fig. 3's PCA-SIFT ~128 ms.
  std::size_t index_update_pages = 12;
  ExtractCosts extract;
  SpaceModel space;
};

class PcaSiftBaseline {
 public:
  PcaSiftBaseline(PcaSiftBaselineConfig config, sim::CostModel cost,
                  vision::PcaModel pca);

  std::size_t size() const noexcept { return ids_.size(); }

  InsertOutcome insert(std::uint64_t id, const img::Image& image);

  QueryOutcome query(const img::Image& image, std::size_t k) const;

  std::size_t index_bytes() const noexcept { return store_bytes_; }

 private:
  PcaSiftBaselineConfig config_;
  sim::CostModel cost_;
  vision::PcaModel pca_;
  mutable storage::SqlLikeStore store_;
  std::vector<std::uint64_t> ids_;
  std::vector<std::vector<vision::Feature>> features_;
  std::size_t store_bytes_ = 0;
};

}  // namespace fast::baseline
