// RNPE — real-time near-duplicate photo elimination (Liu et al., ICDE 2013;
// the paper's ref [9]).
//
// RNPE identifies near-duplicate photos from geo-tags and location views
// rather than content descriptors: photos are indexed by position in an
// R-tree; a query retrieves photos within local proximity (O(log n) node
// accesses) and the MNPG view-grouping step picks representatives of
// diverse views using simple tags. Tags are cheap but error-prone, which is
// why RNPE's accuracy sits at 92-97% in Table III; its R-tree queries and
// view grouping also degrade under concurrent load (Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/common.hpp"
#include "index/r_tree.hpp"
#include "sim/cost_model.hpp"
#include "storage/page_cache.hpp"
#include "util/rng.hpp"

namespace fast::baseline {

struct RnpeConfig {
  std::size_t proximity_neighbors = 64;  ///< photos fetched per query
  double tag_error_prob = 0.05;  ///< P(stored view tag is wrong) — the
                                 ///< "simple but error-prone tags"
  std::size_t cache_pages = 1024;
  /// Disk pages touched when registering a photo's location views for the
  /// MNPG grouping (view store append + inverted tag lists). Calibrated to
  /// Fig. 3's RNPE index-storage latency (~110 ms/image).
  std::size_t view_update_pages = 10;
  ExtractCosts extract;
  SpaceModel space;
  std::uint64_t seed = 0x27e9;
};

class Rnpe {
 public:
  Rnpe(RnpeConfig config, sim::CostModel cost);

  std::size_t size() const noexcept { return records_.size(); }

  /// Indexes a photo by its geo-tag and (noisily recorded) view tags.
  InsertOutcome insert(std::uint64_t id, double geo_x, double geo_y,
                       std::uint32_t landmark_tag, std::uint32_t view_tag);

  /// Query by location + observed tags: R-tree proximity retrieval, then
  /// MNPG-style ranking by tag agreement with view-diversity filtering.
  QueryOutcome query(double geo_x, double geo_y, std::uint32_t landmark_tag,
                     std::uint32_t view_tag, std::size_t k) const;

  std::size_t index_bytes() const noexcept;

 private:
  struct Record {
    std::uint64_t id;
    std::uint32_t landmark_tag;  ///< as stored (possibly corrupted)
    std::uint32_t view_tag;      ///< as stored (possibly corrupted)
  };

  RnpeConfig config_;
  sim::CostModel cost_;
  index::RTree rtree_;
  std::vector<Record> records_;  ///< indexed by insertion order
  mutable storage::PageCache cache_;
  util::Rng rng_;
};

}  // namespace fast::baseline
