#include "baseline/sift_baseline.hpp"

#include <algorithm>

#include "vision/matcher.hpp"
#include "vision/sift_descriptor.hpp"

namespace fast::baseline {

SiftBaseline::SiftBaseline(SiftBaselineConfig config, sim::CostModel cost)
    : config_(std::move(config)), cost_(cost),
      store_(cost, config_.cache_pages) {}

InsertOutcome SiftBaseline::insert(std::uint64_t id, const img::Image& image) {
  InsertOutcome out;
  // Native extraction (used for real matching) + simulated extraction cost.
  std::vector<vision::Feature> feats =
      vision::extract_sift_features(image, config_.max_keypoints);
  out.cost.charge(config_.extract.sift_s);

  // Persist the feature blob + row metadata in the SQL-like store. SIFT
  // additionally performs brute-force comparisons against stored images to
  // identify correlated files at ingest (the paper's index-storage phase):
  // charge one blob read per existing image through the page cache.
  const std::size_t blob =
      feats.size() * config_.space.sift_bytes_per_feature +
      config_.space.sql_row_overhead;
  store_.put(id, blob, out.cost);
  store_bytes_ += blob;
  // SQL secondary-index maintenance: random page updates per record.
  for (std::size_t p = 0; p < config_.index_update_pages; ++p) {
    out.cost.charge_disk_write(cost_.disk_write_s(cost_.disk_page_bytes));
  }

  for (std::uint64_t existing : ids_) {
    store_.read(existing, out.cost);
  }
  // Matching FLOPs: |new| x |existing avg| x dim multiply-adds per pair.
  const std::size_t dim = vision::kSiftDim;
  out.cost.charge_flops(cost_.flop_s,
                        feats.size() * config_.max_keypoints * dim *
                            std::min<std::size_t>(ids_.size(), 64));

  ids_.push_back(id);
  features_.push_back(std::move(feats));
  return out;
}

QueryOutcome SiftBaseline::query(const img::Image& image,
                                 std::size_t k) const {
  QueryOutcome out;
  out.cost.charge(config_.extract.sift_s);
  const std::vector<vision::Feature> qfeats =
      vision::extract_sift_features(image, config_.max_keypoints);

  vision::MatcherConfig mc;
  mc.ratio = config_.match_ratio;
  out.hits.reserve(ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    // Fault the stored blob in from disk, then match natively.
    store_.read(ids_[i], out.cost);
    const double sim = vision::image_similarity(qfeats, features_[i], mc);
    out.cost.charge_flops(cost_.flop_s, qfeats.size() * features_[i].size() *
                                            vision::kSiftDim);
    out.hits.push_back(core::ScoredId{ids_[i], sim});
  }
  const std::size_t keep = std::min(k, out.hits.size());
  std::partial_sort(out.hits.begin(),
                    out.hits.begin() + static_cast<std::ptrdiff_t>(keep),
                    out.hits.end(),
                    [](const core::ScoredId& a, const core::ScoredId& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  out.hits.resize(keep);
  return out;
}

}  // namespace fast::baseline
