#include "sim/cluster_model.hpp"

#include <algorithm>
#include <functional>
#include <queue>

#include "util/check.hpp"

namespace fast::sim {

double ClusterModel::makespan(std::vector<double> task_costs,
                              std::size_t slots) {
  FAST_CHECK(slots > 0);
  if (task_costs.empty()) return 0.0;
  std::sort(task_costs.begin(), task_costs.end(), std::greater<>());
  // Min-heap of per-slot accumulated load; always assign to the least-loaded.
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (std::size_t i = 0; i < slots; ++i) loads.push(0.0);
  for (double c : task_costs) {
    double lo = loads.top();
    loads.pop();
    loads.push(lo + c);
  }
  double mk = 0.0;
  while (!loads.empty()) {
    mk = loads.top();
    loads.pop();
  }
  return mk;
}

double ClusterModel::mean_completion(const std::vector<double>& task_costs,
                                     std::size_t slots) {
  FAST_CHECK(slots > 0);
  if (task_costs.empty()) return 0.0;
  // FIFO in arrival order: request i runs on the earliest-free slot; its
  // latency is that slot's new finish time.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (std::size_t i = 0; i < slots; ++i) free_at.push(0.0);
  double total = 0.0;
  for (double c : task_costs) {
    double start = free_at.top();
    free_at.pop();
    const double finish = start + c;
    total += finish;
    free_at.push(finish);
  }
  return total / static_cast<double>(task_costs.size());
}

}  // namespace fast::sim
