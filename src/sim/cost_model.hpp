// Device-cost constants for the simulated evaluation platform.
//
// The paper evaluates FAST on a 256-node cluster (32 cores, 64 GB RAM,
// 1 TB 7200RPM disk, GbE per node) that we do not have. Every latency the
// paper reports is, however, dominated by *countable events* — disk seeks,
// page transfers, hash probes, descriptor arithmetic — multiplied by device
// constants. The simulation layer counts those events exactly and charges the
// constants below, so relative results (who wins, by what factor, where the
// curves bend) are preserved on any host. See DESIGN.md §2.
#pragma once

#include <cstddef>

namespace fast::sim {

/// Calibrated per-operation costs, in seconds (or bytes/second for
/// bandwidths). Defaults model the paper's 2014-era evaluation hardware.
struct CostModel {
  // --- Disk (7200 RPM SATA) ---
  /// Average seek + rotational latency for a random page access.
  double disk_seek_s = 8.0e-3;
  /// Sequential transfer bandwidth, bytes/second.
  double disk_bandwidth_Bps = 120.0e6;
  /// Page size used by the disk-backed stores.
  std::size_t disk_page_bytes = 4096;

  // --- Memory ---
  /// Cost of one random DRAM access (cache-missing pointer chase).
  double ram_access_s = 100.0e-9;
  /// Cost of streaming one byte through memory (bandwidth-bound scans).
  double ram_stream_s_per_byte = 0.1e-9;

  // --- CPU ---
  /// One hash-function evaluation over a small key (Murmur-class).
  double hash_op_s = 60.0e-9;
  /// One register-level integer mix (mix64 in minwise-hash inner loops).
  double mix_op_s = 3.0e-9;
  /// One floating-point multiply-add (descriptor distance inner loops).
  double flop_s = 1.0e-9;

  // --- Network (GbE) ---
  /// One round trip between cluster nodes.
  double net_rtt_s = 200.0e-6;
  /// Network bandwidth, bytes/second (1 Gb/s).
  double net_bandwidth_Bps = 125.0e6;

  // --- Cluster shape (paper's testbed) ---
  std::size_t nodes = 256;
  std::size_t cores_per_node = 32;

  /// Time to read `bytes` from disk starting at a random position:
  /// one seek plus page-granular sequential transfer.
  double disk_read_s(std::size_t bytes) const noexcept {
    return disk_seek_s + static_cast<double>(bytes) / disk_bandwidth_Bps;
  }

  /// Time to write `bytes` (same model as reads for a 7200RPM disk).
  double disk_write_s(std::size_t bytes) const noexcept {
    return disk_read_s(bytes);
  }

  /// Time to move `bytes` across the cluster network.
  double net_transfer_s(std::size_t bytes) const noexcept {
    return net_rtt_s + static_cast<double>(bytes) / net_bandwidth_Bps;
  }
};

}  // namespace fast::sim
