// Scheduling model for the paper's 256-node / 32-core evaluation cluster.
//
// Given a bag of independent task costs (simulated seconds each), the cluster
// model computes the makespan under greedy longest-processing-time-first
// assignment to `slots` parallel execution slots — the standard 4/3-optimal
// LPT bound, which matches how embarrassingly-parallel query batches behave
// on a real cluster. This drives Fig. 4 (concurrent query latency) and
// Fig. 7 (multicore speedup).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/cost_model.hpp"

namespace fast::sim {

class ClusterModel {
 public:
  explicit ClusterModel(CostModel cost = {}) : cost_(cost) {}

  const CostModel& cost() const noexcept { return cost_; }

  std::size_t total_cores() const noexcept {
    return cost_.nodes * cost_.cores_per_node;
  }

  /// Makespan of independent tasks over `slots` parallel slots (LPT greedy).
  /// With slots == 1 this degenerates to the serial sum.
  static double makespan(std::vector<double> task_costs, std::size_t slots);

  /// Mean completion time of independent tasks over `slots` slots when tasks
  /// are processed FIFO in arrival order (models "average query latency" for
  /// a batch of simultaneous requests: each request's latency is the finish
  /// time of its slot up to and including itself).
  static double mean_completion(const std::vector<double>& task_costs,
                                std::size_t slots);

 private:
  CostModel cost_;
};

}  // namespace fast::sim
