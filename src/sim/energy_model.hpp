// Smartphone energy model replacing the paper's Monsoon power monitor.
//
// Fig. 8(b) compares the energy of uploading image batches under FAST's
// near-deduplication scheme vs. a chunk-based transmission baseline. Energy
// on the handset decomposes into (i) radio transmission energy, which is
// proportional to bytes sent plus a per-connection tail-energy ramp, and
// (ii) local CPU energy for feature extraction / chunking. Constants follow
// the published WiFi measurements the paper cites (ref [35], Liu et al.,
// "battery power consumption for streaming data transmission to mobile
// devices") and standard WiFi tail-energy literature; the *relative* savings
// (the quantity the paper reports) depend only on byte/op counts, which this
// repository measures exactly.
#pragma once

#include <cstddef>

namespace fast::sim {

struct EnergyModel {
  /// Joules to transmit one byte over WiFi (~5 uJ/B ≈ 5 J/MB).
  double tx_joule_per_byte = 5.0e-6;
  /// Tail energy per transmission burst (radio stays in high-power state).
  double tx_tail_joule = 0.4;
  /// Joules per CPU-second of local processing (smartphone SoC active power).
  double cpu_joule_per_s = 1.2;
  /// Idle screen-on baseline power, charged over the whole session (the
  /// paper keeps the screen awake at constant brightness during runs).
  double idle_watt = 0.7;

  /// Energy of one upload burst of `bytes` bytes.
  double transmit_joule(std::size_t bytes) const noexcept {
    return tx_tail_joule + tx_joule_per_byte * static_cast<double>(bytes);
  }

  /// Energy of `cpu_seconds` of local computation.
  double compute_joule(double cpu_seconds) const noexcept {
    return cpu_joule_per_s * cpu_seconds;
  }

  /// Baseline (screen) energy across a session of `seconds`.
  double idle_joule(double seconds) const noexcept {
    return idle_watt * seconds;
  }
};

}  // namespace fast::sim
