// Accumulator for simulated elapsed time and event counts.
//
// Code paths that the paper measures on cluster hardware charge their work
// into a SimClock instead of (or in addition to) being wall-clock timed.
// A SimClock is deliberately a plain value type: each logical task owns one,
// and the cluster scheduler combines task clocks into a makespan.
#pragma once

#include <cstddef>

namespace fast::sim {

class SimClock {
 public:
  /// Advances simulated time by `seconds` (may be fractional; must be >= 0).
  void charge(double seconds) noexcept {
    if (seconds > 0) elapsed_ += seconds;
  }

  void charge_disk_read(double seconds) noexcept {
    charge(seconds);
    ++disk_reads_;
  }

  void charge_disk_write(double seconds) noexcept {
    charge(seconds);
    ++disk_writes_;
  }

  void charge_hash(double seconds, std::size_t ops = 1) noexcept {
    charge(seconds * static_cast<double>(ops));
    hash_ops_ += ops;
  }

  void charge_flops(double flop_s, std::size_t flops) noexcept {
    charge(flop_s * static_cast<double>(flops));
    flops_ += flops;
  }

  void charge_ram(double seconds, std::size_t accesses = 1) noexcept {
    charge(seconds * static_cast<double>(accesses));
    ram_accesses_ += accesses;
  }

  void merge(const SimClock& other) noexcept {
    elapsed_ += other.elapsed_;
    disk_reads_ += other.disk_reads_;
    disk_writes_ += other.disk_writes_;
    hash_ops_ += other.hash_ops_;
    flops_ += other.flops_;
    ram_accesses_ += other.ram_accesses_;
  }

  void reset() noexcept { *this = SimClock{}; }

  double elapsed_s() const noexcept { return elapsed_; }
  std::size_t disk_reads() const noexcept { return disk_reads_; }
  std::size_t disk_writes() const noexcept { return disk_writes_; }
  std::size_t hash_ops() const noexcept { return hash_ops_; }
  std::size_t flops() const noexcept { return flops_; }
  std::size_t ram_accesses() const noexcept { return ram_accesses_; }

 private:
  double elapsed_ = 0.0;
  std::size_t disk_reads_ = 0;
  std::size_t disk_writes_ = 0;
  std::size_t hash_ops_ = 0;
  std::size_t flops_ = 0;
  std::size_t ram_accesses_ = 0;
};

}  // namespace fast::sim
