#include "workload/tune.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/vecmath.hpp"

namespace fast::workload {

RadiusTuning tune_radius(std::span<const std::vector<float>> corpus,
                         std::span<const std::vector<float>> queries) {
  FAST_CHECK(!corpus.empty() && !queries.empty());
  std::vector<double> nn_dists;
  nn_dists.reserve(queries.size());
  for (const auto& q : queries) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : corpus) {
      best = std::min(best, util::l2_distance_sq(q, p));
    }
    nn_dists.push_back(std::sqrt(best));
  }
  RadiusTuning t;
  util::OnlineStats stats;
  for (double d : nn_dists) stats.add(d);
  t.mean_nn_distance = stats.mean();
  t.p90_nn_distance = util::percentile(nn_dists, 0.90);
  // R slightly above the typical NN distance so true neighbors fall inside.
  t.radius = t.p90_nn_distance;
  return t;
}

double proximity_chi(double searched_distance, double true_nn_distance) {
  if (true_nn_distance <= 0) return searched_distance <= 0 ? 1.0 : 1e9;
  return searched_distance / true_nn_distance;
}

}  // namespace fast::workload
