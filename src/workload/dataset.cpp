#include "workload/dataset.hpp"

namespace fast::workload {

DatasetSpec DatasetSpec::wuhan(std::size_t num_images) {
  DatasetSpec spec;
  spec.name = "wuhan";
  spec.landmarks = 16;   // Table II: Wuhan has 16 representative landmarks
  spec.num_images = num_images;
  spec.mean_file_mb = 3.1;  // 62.7 TB / 21 M images
  spec.seed = 0x8a11;
  return spec;
}

DatasetSpec DatasetSpec::shanghai(std::size_t num_images) {
  DatasetSpec spec;
  spec.name = "shanghai";
  spec.landmarks = 22;   // Table II: Shanghai has 22 landmarks
  spec.num_images = num_images;
  spec.mean_file_mb = 4.1;  // 152.5 TB / 39 M images
  spec.seed = 0x54a4;
  return spec;
}

std::vector<std::uint64_t> Dataset::child_photo_ids() const {
  std::vector<std::uint64_t> ids;
  for (const PhotoRecord& p : photos) {
    if (p.contains_child) ids.push_back(p.id);
  }
  return ids;
}

std::vector<std::uint64_t> Dataset::cluster_ids(std::uint32_t landmark,
                                                std::uint32_t view) const {
  std::vector<std::uint64_t> ids;
  for (const PhotoRecord& p : photos) {
    if (p.landmark == landmark && p.view == view) ids.push_back(p.id);
  }
  return ids;
}

std::size_t Dataset::total_file_bytes() const {
  std::size_t total = 0;
  for (const PhotoRecord& p : photos) total += p.file_bytes;
  return total;
}

}  // namespace fast::workload
