// Query workload: portrait variants of the missing child plus generic
// similarity probes, mirroring the paper's setup where 500 clients issue
// 1000-5000 simultaneous portrait queries.
#pragma once

#include <vector>

#include "img/image.hpp"
#include "workload/dataset.hpp"
#include "workload/scene_generator.hpp"

namespace fast::workload {

struct QuerySet {
  std::vector<img::Image> portraits;     ///< query images (child portraits)
  std::vector<std::uint64_t> relevant;   ///< ids of photos containing the child
};

/// Builds `count` portrait queries (variant-perturbed) and the exact
/// relevance ground truth from the dataset.
QuerySet make_child_queries(const Dataset& dataset, std::size_t count);

/// Builds `count` generic near-duplicate probes: each query is a fresh
/// perturbation of a randomly chosen photo; its relevant set is that
/// photo's (landmark, view) cluster.
struct DupQuery {
  img::Image image;
  std::uint64_t source = 0;  ///< id of the photo the query was derived from
  std::uint32_t landmark = 0;
  std::uint32_t view = 0;
  std::vector<std::uint64_t> relevant;
};
std::vector<DupQuery> make_dup_queries(const Dataset& dataset,
                                       std::size_t count,
                                       std::uint64_t seed = 0xdeed);

}  // namespace fast::workload
