// Synthetic photo-workload specification and container.
//
// The paper evaluates on 60M real tourist photos (Table II: Wuhan — 21M
// images / 62.7 TB / 16 landmarks; Shanghai — 39M / 152.5 TB / 22
// landmarks) that we cannot obtain. The generator reproduces the structural
// properties every evaluated mechanism depends on: photos cluster into
// near-duplicate groups per landmark view, landmark popularity is skewed,
// a small set of images contains the person of interest ("missing child"),
// and each photo carries a geo-tag (for the RNPE baseline) plus an original
// file size (for the space and transmission accounting). Scaled-down counts
// keep the 21:39 Wuhan:Shanghai ratio. Ground truth is exact by
// construction — the generator knows which images contain the child and
// which images depict the same landmark view.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "img/image.hpp"

namespace fast::workload {

struct DatasetSpec {
  std::string name;
  std::size_t landmarks = 16;
  std::size_t views_per_landmark = 3;  ///< distinct canonical viewpoints
  std::size_t num_images = 400;
  std::size_t image_size = 128;         ///< square images, pixels per side
  double landmark_zipf_skew = 0.8;     ///< popularity skew across landmarks
  double child_presence_prob = 0.05;   ///< P(image contains the child)
  double mean_file_mb = 3.0;           ///< original JPEG size (for space/IO)
  std::uint64_t seed = 42;

  /// Scaled stand-ins for the paper's two datasets (Table II shape).
  static DatasetSpec wuhan(std::size_t num_images);
  static DatasetSpec shanghai(std::size_t num_images);
};

struct PhotoRecord {
  std::uint64_t id = 0;
  std::uint32_t landmark = 0;
  std::uint32_t view = 0;           ///< viewpoint cluster within landmark
  bool contains_child = false;
  double geo_x = 0, geo_y = 0;      ///< geo-tag (RNPE's input)
  double upload_time_s = 0;         ///< seconds into the collection window
  std::size_t file_bytes = 0;       ///< original on-disk photo size
  img::Image image;                 ///< rendered pixels
};

struct Dataset {
  DatasetSpec spec;
  std::vector<PhotoRecord> photos;
  std::vector<std::pair<double, double>> landmark_geo;  ///< per landmark

  /// Ids of all photos that contain the child (query ground truth).
  std::vector<std::uint64_t> child_photo_ids() const;

  /// Ids of all photos of a given (landmark, view) near-duplicate cluster.
  std::vector<std::uint64_t> cluster_ids(std::uint32_t landmark,
                                         std::uint32_t view) const;

  std::size_t total_file_bytes() const;
};

}  // namespace fast::workload
