// Multi-type generality (the paper's §II-A and Table I): FAST's pipeline
// accepts any data representable as multi-dimensional vectors. This module
// turns file-system metadata records (the Spyglass/SmartStore use case) into
// such vectors so the same Bloom -> LSH -> cuckoo pipeline can index and
// query them (demonstrated by examples/metadata_search).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fast::workload {

/// A file-system metadata record (what Spyglass/SmartStore index).
struct FileMeta {
  std::uint64_t id = 0;
  std::string name;
  std::string extension;
  std::uint64_t size_bytes = 0;
  double ctime_s = 0;   ///< creation time, seconds since epoch start
  double mtime_s = 0;   ///< modification time
  std::uint32_t owner = 0;
  std::uint32_t depth = 0;  ///< directory depth in the namespace
};

struct MetaVectorConfig {
  std::size_t name_dims = 16;  ///< hashed bag-of-character-trigram dims
  double time_scale_s = 86400.0;  ///< normalize times by this (1 day)
  double size_log_base = 2.0;     ///< sizes enter as log2(bytes + 1)
};

/// Embeds a metadata record into a dense vector: [log-size, times, owner,
/// depth, extension hash bucket, name trigram histogram]. Similar records
/// (same directory vicinity, similar names/sizes/times) land close in L2.
std::vector<float> metadata_vector(const FileMeta& meta,
                                   const MetaVectorConfig& config = {});

/// Generates a synthetic file-system namespace with correlated clusters
/// (project directories whose files share extension, owner and times).
std::vector<FileMeta> generate_namespace(std::size_t files,
                                         std::size_t clusters,
                                         std::uint64_t seed = 0xf11e);

}  // namespace fast::workload
