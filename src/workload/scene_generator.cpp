#include "workload/scene_generator.hpp"

#include <algorithm>
#include <cmath>

#include "hash/hashes.hpp"
#include "img/draw.hpp"
#include "img/transform.hpp"
#include "util/check.hpp"

namespace fast::workload {

namespace {

std::uint64_t scene_seed(std::uint64_t base, std::uint32_t landmark,
                         std::uint32_t view) {
  return hash::mix64(base ^ (static_cast<std::uint64_t>(landmark) << 32) ^
                     view);
}

}  // namespace

img::Image SceneGenerator::canonical_view(std::uint32_t landmark,
                                          std::uint32_t view) const {
  const std::size_t n = spec_.image_size;
  img::Image scene(n, n);
  const std::uint64_t seed = scene_seed(spec_.seed, landmark, 0);
  util::Rng rng(seed);

  // Sky-to-ground gradient; each landmark gets its own sky tone.
  const float sky = static_cast<float>(rng.uniform(0.55, 0.85));
  const float ground = static_cast<float>(rng.uniform(0.25, 0.45));
  img::fill_gradient(scene, sky, ground);

  const auto ni = static_cast<std::ptrdiff_t>(n);

  // Building silhouette: 2-4 towers with distinct widths/heights and tones.
  const int towers = static_cast<int>(rng.uniform_int(2, 4));
  for (int t = 0; t < towers; ++t) {
    const auto w = static_cast<std::ptrdiff_t>(
        rng.uniform(0.12, 0.28) * static_cast<double>(n));
    const auto h = static_cast<std::ptrdiff_t>(
        rng.uniform(0.35, 0.75) * static_cast<double>(n));
    const auto x = static_cast<std::ptrdiff_t>(
        rng.uniform(0.05, 0.75) * static_cast<double>(n));
    const float tone = static_cast<float>(rng.uniform(0.1, 0.5));
    img::fill_rect(scene, x, ni - h, x + w, ni, tone);
    // Roof: triangle or flat antenna.
    if (rng.bernoulli(0.6)) {
      img::fill_triangle(scene, static_cast<double>(x),
                         static_cast<double>(ni - h),
                         static_cast<double>(x + w),
                         static_cast<double>(ni - h),
                         static_cast<double>(x) + static_cast<double>(w) / 2.0,
                         static_cast<double>(ni - h) -
                             static_cast<double>(w) * 0.6,
                         tone * 0.8f);
    } else {
      img::fill_rect(scene, x + w / 2 - 1, ni - h - w / 2, x + w / 2 + 1,
                     ni - h, tone * 1.3f);
    }
    // Windows: a regular grid whose pitch, size and tone are unique to the
    // landmark. Regular structure repeats identical local descriptors
    // within the landmark (strengthening within-landmark correlation) while
    // pitch differences keep landmarks visually distinct from one another.
    const auto pitch = static_cast<std::ptrdiff_t>(rng.uniform_int(6, 14));
    const auto win = static_cast<std::ptrdiff_t>(
        rng.uniform_int(2, std::max<std::int64_t>(3, pitch / 2)));
    const float win_tone = rng.bernoulli(0.5)
                               ? static_cast<float>(rng.uniform(0.75, 1.0))
                               : static_cast<float>(rng.uniform(0.0, 0.2));
    for (std::ptrdiff_t wy = ni - h + pitch / 2; wy + win < ni;
         wy += pitch) {
      for (std::ptrdiff_t wx = x + pitch / 2; wx + win < x + w; wx += pitch) {
        img::fill_rect(scene, wx, wy, wx + win, wy + win, win_tone);
      }
    }
    // Ornamental blobs at a landmark-specific scale.
    const double blob_r = rng.uniform(1.0, 3.2);
    img::scatter_blobs(scene, x + 2, ni - h + 2, x + w - 2, ni - 2,
                       static_cast<std::size_t>(w * h / 140 + 6), blob_r,
                       blob_r + 0.8,
                       seed ^ (0xabcdULL + static_cast<std::uint64_t>(t)));
  }

  // Street furniture / foliage props across the foreground: small
  // high-contrast blobs that give the ground half a stable keypoint
  // population of its own.
  img::scatter_blobs(scene, 0, 2 * ni / 3, ni, ni,
                     static_cast<std::size_t>(spec_.image_size / 2), 1.2, 3.0,
                     seed ^ 0x9f0dULL);
  // Skyline ornaments (birds, antenna tips) in the upper band.
  img::scatter_blobs(scene, 0, 0, ni, ni / 4,
                     static_cast<std::size_t>(spec_.image_size / 8), 1.0, 2.0,
                     seed ^ 0x3c3cULL);

  // Facade / foliage texture over the lower half.
  img::add_texture(scene, 0, ni / 2, ni, ni, 0.11f, seed ^ 0x7e47ULL);
  scene.clamp01();

  // Viewpoints: deterministic similarity warps of the canonical scene.
  if (view > 0) {
    util::Rng vrng(scene_seed(spec_.seed, landmark, view));
    const double angle = vrng.uniform(-0.18, 0.18);
    const double scale = vrng.uniform(0.9, 1.12);
    const double dx = vrng.uniform(-8.0, 8.0);
    const double dy = vrng.uniform(-6.0, 6.0);
    const img::Affine t = img::Affine::similarity(
        angle, scale, static_cast<double>(n) / 2.0,
        static_cast<double>(n) / 2.0, dx, dy);
    scene = img::warp_affine(scene, t);
  }
  return scene;
}

void SceneGenerator::composite_person(img::Image& scene,
                                      std::uint64_t person_id, double cx,
                                      double cy, double h) const {
  util::Rng rng(hash::mix64(person_id ^ 0x9e37ULL));
  const double head_r = h * 0.18;
  const float skin = static_cast<float>(rng.uniform(0.65, 0.9));
  const float shirt = static_cast<float>(rng.uniform(0.05, 0.95));
  const float pants = static_cast<float>(rng.uniform(0.05, 0.6));
  // Head.
  img::fill_circle(scene, cx, cy - h * 0.32, head_r, skin);
  // Torso.
  img::fill_rect(scene,
                 static_cast<std::ptrdiff_t>(cx - h * 0.14),
                 static_cast<std::ptrdiff_t>(cy - h * 0.18),
                 static_cast<std::ptrdiff_t>(cx + h * 0.14),
                 static_cast<std::ptrdiff_t>(cy + h * 0.12), shirt);
  // Legs.
  img::fill_rect(scene,
                 static_cast<std::ptrdiff_t>(cx - h * 0.12),
                 static_cast<std::ptrdiff_t>(cy + h * 0.12),
                 static_cast<std::ptrdiff_t>(cx + h * 0.12),
                 static_cast<std::ptrdiff_t>(cy + h * 0.5), pants);
}

void SceneGenerator::composite_child(img::Image& scene, double cx, double cy,
                                     double h) const {
  // The child's appearance is a fixed, high-contrast pattern derived from
  // the dataset seed: a distinctive "striped shirt" the detector can key on.
  const std::uint64_t child_seed = hash::mix64(spec_.seed ^ 0xc411dULL);
  util::Rng rng(child_seed);
  const double head_r = h * 0.2;
  img::fill_circle(scene, cx, cy - h * 0.3, head_r, 0.92f);
  // Striped torso: alternating bands, unique to this child.
  const int bands = 4;
  const double torso_top = cy - h * 0.14;
  const double torso_h = h * 0.3;
  for (int b = 0; b < bands; ++b) {
    const float tone = (b % 2 == 0) ? 0.05f : 0.95f;
    img::fill_rect(scene,
                   static_cast<std::ptrdiff_t>(cx - h * 0.16),
                   static_cast<std::ptrdiff_t>(torso_top +
                                               torso_h * b / bands),
                   static_cast<std::ptrdiff_t>(cx + h * 0.16),
                   static_cast<std::ptrdiff_t>(torso_top +
                                               torso_h * (b + 1) / bands),
                   tone);
  }
  // Bright cap: a stable blob detection.
  img::fill_circle(scene, cx, cy - h * 0.42, head_r * 0.6,
                   static_cast<float>(rng.uniform(0.85, 1.0)));
  // Legs.
  img::fill_rect(scene,
                 static_cast<std::ptrdiff_t>(cx - h * 0.12),
                 static_cast<std::ptrdiff_t>(cy + h * 0.16),
                 static_cast<std::ptrdiff_t>(cx + h * 0.12),
                 static_cast<std::ptrdiff_t>(cy + h * 0.5), 0.15f);
}

img::Image SceneGenerator::child_portrait(std::uint32_t variant) const {
  const std::size_t n = spec_.image_size;
  img::Image portrait(n, n, 0.5f);
  img::add_texture(portrait, 0, 0, static_cast<std::ptrdiff_t>(n),
                   static_cast<std::ptrdiff_t>(n), 0.03f,
                   hash::mix64(spec_.seed ^ 0xb66ULL));
  composite_child(portrait, static_cast<double>(n) / 2.0,
                  static_cast<double>(n) / 2.0,
                  static_cast<double>(n) * 0.7);
  portrait.clamp01();
  if (variant > 0) {
    util::Rng rng(hash::mix64(spec_.seed ^ (0x9a0ULL + variant)));
    img::PerturbParams params;
    params.max_translate_px = 3.0;
    portrait = img::make_near_duplicate(portrait, params, rng);
  }
  return portrait;
}

Dataset SceneGenerator::generate() const {
  FAST_CHECK(spec_.landmarks > 0 && spec_.views_per_landmark > 0);
  Dataset ds;
  ds.spec = spec_;
  util::Rng rng(hash::mix64(spec_.seed ^ 0xd47aULL));

  // Landmark geo positions: spread over a city-scale [0, 100]^2 km grid.
  ds.landmark_geo.reserve(spec_.landmarks);
  for (std::size_t l = 0; l < spec_.landmarks; ++l) {
    ds.landmark_geo.emplace_back(rng.uniform(0.0, 100.0),
                                 rng.uniform(0.0, 100.0));
  }

  // Pre-render canonical views once; photos perturb them.
  std::vector<img::Image> canon(spec_.landmarks * spec_.views_per_landmark);
  for (std::uint32_t l = 0; l < spec_.landmarks; ++l) {
    for (std::uint32_t v = 0; v < spec_.views_per_landmark; ++v) {
      canon[l * spec_.views_per_landmark + v] = canonical_view(l, v);
    }
  }

  const util::ZipfDistribution landmark_dist(spec_.landmarks,
                                             spec_.landmark_zipf_skew);
  img::PerturbParams perturb;

  ds.photos.reserve(spec_.num_images);
  const double n = static_cast<double>(spec_.image_size);
  for (std::size_t i = 0; i < spec_.num_images; ++i) {
    PhotoRecord photo;
    photo.id = static_cast<std::uint64_t>(i);
    photo.landmark = static_cast<std::uint32_t>(landmark_dist(rng) - 1);
    photo.view = static_cast<std::uint32_t>(
        rng.uniform_u64(spec_.views_per_landmark));
    img::Image scene =
        canon[photo.landmark * spec_.views_per_landmark + photo.view];

    // Tourists in the foreground (0-3 of them).
    const std::size_t tourists = rng.uniform_u64(4);
    for (std::size_t t = 0; t < tourists; ++t) {
      composite_person(scene, rng.next_u64(), rng.uniform(0.1 * n, 0.9 * n),
                       rng.uniform(0.6 * n, 0.85 * n),
                       rng.uniform(0.18 * n, 0.3 * n));
    }
    // Occasionally, the child appears in the background.
    photo.contains_child = rng.bernoulli(spec_.child_presence_prob);
    if (photo.contains_child) {
      composite_child(scene, rng.uniform(0.15 * n, 0.85 * n),
                      rng.uniform(0.55 * n, 0.8 * n),
                      rng.uniform(0.28 * n, 0.42 * n));
    }
    // The "shot": a near-duplicate perturbation of the composed scene.
    photo.image = img::make_near_duplicate(scene, perturb, rng);

    // Geo-tag near the landmark; upload time within a day; file size
    // log-normal-ish around the dataset mean (clamped to plausible range).
    const auto [gx, gy] = ds.landmark_geo[photo.landmark];
    photo.geo_x = gx + rng.gaussian(0.0, 0.4);
    photo.geo_y = gy + rng.gaussian(0.0, 0.4);
    photo.upload_time_s = rng.uniform(0.0, 86400.0);
    const double mb = std::clamp(
        spec_.mean_file_mb * std::exp(rng.gaussian(0.0, 0.35)),
        0.2, 20.0);
    photo.file_bytes = static_cast<std::size_t>(mb * 1024.0 * 1024.0);

    ds.photos.push_back(std::move(photo));
  }
  return ds;
}

}  // namespace fast::workload
