// Procedural scene generator: landmarks, tourists and the "missing child".
//
// Each landmark is a deterministic procedural "building" (silhouette +
// window blobs + facade texture) with a few canonical viewpoints; a photo
// of a (landmark, view) pair is a near-duplicate perturbation of that
// canonical view. The child is a distinctive sprite composited into a
// subset of photos; the portrait used for querying renders the same sprite
// on a neutral background, so query and occurrences share interest points.
#pragma once

#include "img/image.hpp"
#include "util/rng.hpp"
#include "workload/dataset.hpp"

namespace fast::workload {

class SceneGenerator {
 public:
  explicit SceneGenerator(const DatasetSpec& spec) : spec_(spec) {}

  /// Canonical view `view` of `landmark` (deterministic in spec.seed).
  img::Image canonical_view(std::uint32_t landmark, std::uint32_t view) const;

  /// Renders the child sprite into `scene` at (cx, cy) with height `h` px.
  void composite_child(img::Image& scene, double cx, double cy,
                       double h) const;

  /// Renders a generic tourist (person_id seeds their appearance).
  void composite_person(img::Image& scene, std::uint64_t person_id, double cx,
                        double cy, double h) const;

  /// The portrait of the child used as the query input ("given by the
  /// parents"): the sprite on a neutral textured background, optionally
  /// perturbed by `variant` (0 = canonical portrait).
  img::Image child_portrait(std::uint32_t variant = 0) const;

  /// Generates the full dataset (photos, geo-tags, upload times).
  Dataset generate() const;

 private:
  DatasetSpec spec_;
};

}  // namespace fast::workload
