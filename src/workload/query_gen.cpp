#include "workload/query_gen.hpp"

#include "img/transform.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fast::workload {

QuerySet make_child_queries(const Dataset& dataset, std::size_t count) {
  SceneGenerator gen(dataset.spec);
  QuerySet qs;
  qs.portraits.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    qs.portraits.push_back(gen.child_portrait(static_cast<std::uint32_t>(i)));
  }
  qs.relevant = dataset.child_photo_ids();
  return qs;
}

std::vector<DupQuery> make_dup_queries(const Dataset& dataset,
                                       std::size_t count,
                                       std::uint64_t seed) {
  FAST_CHECK(!dataset.photos.empty());
  util::Rng rng(seed);
  img::PerturbParams params;
  std::vector<DupQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const PhotoRecord& photo =
        dataset.photos[rng.uniform_u64(dataset.photos.size())];
    DupQuery q;
    q.image = img::make_near_duplicate(photo.image, params, rng);
    q.source = photo.id;
    q.landmark = photo.landmark;
    q.view = photo.view;
    q.relevant = dataset.cluster_ids(photo.landmark, photo.view);
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace fast::workload
