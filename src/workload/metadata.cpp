#include "workload/metadata.hpp"

#include <cmath>

#include "hash/hashes.hpp"
#include "util/rng.hpp"

namespace fast::workload {

std::vector<float> metadata_vector(const FileMeta& meta,
                                   const MetaVectorConfig& config) {
  std::vector<float> v;
  v.reserve(6 + config.name_dims);
  v.push_back(static_cast<float>(
      std::log2(static_cast<double>(meta.size_bytes) + 1.0)));
  v.push_back(static_cast<float>(meta.ctime_s / config.time_scale_s));
  v.push_back(static_cast<float>(meta.mtime_s / config.time_scale_s));
  v.push_back(static_cast<float>(meta.owner));
  v.push_back(static_cast<float>(meta.depth));
  v.push_back(static_cast<float>(
      hash::fnv1a_64(meta.extension.data(), meta.extension.size()) % 17));

  // Hashed character-trigram histogram of the file name: names sharing
  // prefixes/stems overlap in many buckets.
  std::vector<float> trigrams(config.name_dims, 0.0f);
  const std::string& s = meta.name;
  for (std::size_t i = 0; i + 2 < s.size(); ++i) {
    const std::uint64_t h = hash::fnv1a_64(s.data() + i, 3);
    trigrams[h % config.name_dims] += 1.0f;
  }
  v.insert(v.end(), trigrams.begin(), trigrams.end());
  return v;
}

std::vector<FileMeta> generate_namespace(std::size_t files,
                                         std::size_t clusters,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  if (clusters == 0) clusters = 1;
  const char* extensions[] = {"c", "h", "log", "dat", "jpg", "txt", "o", "md"};
  const char* stems[] = {"report", "frame", "module", "trace",
                         "photo", "notes", "build", "run"};

  std::vector<FileMeta> out;
  out.reserve(files);
  for (std::size_t i = 0; i < files; ++i) {
    const std::size_t cluster = rng.uniform_u64(clusters);
    util::Rng crng(hash::mix64(seed ^ (0xc1u + cluster)));
    FileMeta m;
    m.id = static_cast<std::uint64_t>(i);
    // Cluster-level properties: shared stem, extension, owner, time window,
    // directory depth and size scale — the "semantic correlation" FAST
    // groups on.
    const char* stem = stems[crng.uniform_u64(std::size(stems))];
    const char* ext = extensions[crng.uniform_u64(std::size(extensions))];
    m.extension = ext;
    m.name = std::string(stem) + "_" +
             std::to_string(rng.uniform_int(0, 999)) + "." + ext;
    m.owner = static_cast<std::uint32_t>(crng.uniform_u64(8));
    m.depth = static_cast<std::uint32_t>(2 + crng.uniform_u64(5));
    const double base_time = crng.uniform(0.0, 30.0) * 86400.0;
    m.ctime_s = base_time + rng.uniform(0.0, 86400.0);
    m.mtime_s = m.ctime_s + rng.exponential(1.0 / 3600.0);
    const double size_scale = crng.uniform(8.0, 24.0);  // log2 bytes
    m.size_bytes = static_cast<std::uint64_t>(
        std::exp2(size_scale + rng.gaussian(0.0, 1.0)));
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace fast::workload
