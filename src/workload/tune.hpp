// The paper's parameter-selection procedure (§IV-A2): the LSH radius R is
// chosen by the sampling method of the original LSH study — R should be
// roughly the distance between a queried point and its nearest neighbors —
// and validated with the proximity measure chi = ||p1* - q|| / ||p1 - q||
// (searched vs. actual nearest neighbor).
#pragma once

#include <span>
#include <vector>

namespace fast::workload {

struct RadiusTuning {
  double radius = 0;            ///< suggested R for the LSH structures
  double mean_nn_distance = 0;  ///< average exact-NN distance of the samples
  double p90_nn_distance = 0;   ///< 90th percentile of exact-NN distances
};

/// Samples exact nearest-neighbor distances of `queries` against `corpus`
/// (L2) and derives R. All vectors must share one dimensionality; the corpus
/// must be non-empty.
RadiusTuning tune_radius(std::span<const std::vector<float>> corpus,
                         std::span<const std::vector<float>> queries);

/// Proximity measure chi of one query: the ratio of the searched neighbor's
/// distance to the true nearest neighbor's distance (>= 1; 1 is perfect).
double proximity_chi(double searched_distance, double true_nn_distance);

}  // namespace fast::workload
