// Brute-force nearest-neighbor scan — the paper's "zero-dimensional
// correlation" reference point, and the ground-truth oracle for the
// accuracy experiments (Table III).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fast::index {

struct Neighbor {
  std::uint64_t id = 0;
  double distance = 0;
};

class LinearScan {
 public:
  /// Registers a point; `id` is caller-chosen (need not be dense).
  void add(std::uint64_t id, std::vector<float> point);

  std::size_t size() const noexcept { return ids_.size(); }
  std::size_t dim() const noexcept {
    return points_.empty() ? 0 : points_.front().size();
  }

  /// Exact k nearest neighbors by L2 distance, closest first.
  std::vector<Neighbor> nearest(std::span<const float> query,
                                std::size_t k) const;

  /// All points within L2 distance `radius` of the query, closest first.
  std::vector<Neighbor> within(std::span<const float> query,
                               double radius) const;

 private:
  std::vector<std::uint64_t> ids_;
  std::vector<std::vector<float>> points_;
};

}  // namespace fast::index
