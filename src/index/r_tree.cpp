#include "index/r_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace fast::index {

Rect Rect::expanded(const Rect& o) const noexcept {
  return Rect{std::min(min_x, o.min_x), std::min(min_y, o.min_y),
              std::max(max_x, o.max_x), std::max(max_y, o.max_y)};
}

double Rect::enlargement(const Rect& o) const noexcept {
  return expanded(o).area() - area();
}

double Rect::min_dist_sq(double x, double y) const noexcept {
  const double dx = x < min_x ? min_x - x : (x > max_x ? x - max_x : 0.0);
  const double dy = y < min_y ? min_y - y : (y > max_y ? y - max_y : 0.0);
  return dx * dx + dy * dy;
}

RTree::RTree(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(max_entries, 4)),
      min_entries_(std::max<std::size_t>(max_entries, 4) / 2) {
  nodes_.push_back(Node{});  // empty leaf root
  root_ = 0;
}

Rect RTree::node_mbr(const Node& n) const {
  FAST_CHECK(!n.entries.empty());
  Rect r = n.entries.front().rect;
  for (std::size_t i = 1; i < n.entries.size(); ++i) {
    r = r.expanded(n.entries[i].rect);
  }
  return r;
}

std::int32_t RTree::choose_leaf(const Rect& r) {
  std::int32_t cur = root_;
  while (!nodes_[static_cast<std::size_t>(cur)].leaf) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    std::int32_t best = -1;
    for (const Entry& e : n.entries) {
      const double enl = e.rect.enlargement(r);
      const double area = e.rect.area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best_enl = enl;
        best_area = area;
        best = e.child;
      }
    }
    FAST_CHECK(best >= 0);
    cur = best;
  }
  return cur;
}

std::int32_t RTree::split(std::int32_t n_idx) {
  Node& n = nodes_[static_cast<std::size_t>(n_idx)];
  std::vector<Entry> entries = std::move(n.entries);
  n.entries.clear();

  // Quadratic pick-seeds: the pair wasting the most area.
  std::size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = entries[i].rect.expanded(entries[j].rect).area() -
                           entries[i].rect.area() - entries[j].rect.area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  const std::int32_t sibling_idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  // NOTE: `n` may dangle after push_back; re-acquire references.
  Node& a = nodes_[static_cast<std::size_t>(n_idx)];
  Node& b = nodes_.back();
  b.leaf = a.leaf;
  b.parent = a.parent;

  a.entries.push_back(entries[seed_a]);
  b.entries.push_back(entries[seed_b]);
  Rect mbr_a = entries[seed_a].rect;
  Rect mbr_b = entries[seed_b].rect;

  std::vector<bool> assigned(entries.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  std::size_t remaining = entries.size() - 2;

  while (remaining > 0) {
    // Force-assign when one group must take all the rest to reach min fill.
    if (a.entries.size() + remaining == min_entries_) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          a.entries.push_back(entries[i]);
          mbr_a = mbr_a.expanded(entries[i].rect);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (b.entries.size() + remaining == min_entries_) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          b.entries.push_back(entries[i]);
          mbr_b = mbr_b.expanded(entries[i].rect);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    // Pick-next: entry with the greatest preference difference.
    std::size_t pick = entries.size();
    double best_diff = -1.0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      const double da = mbr_a.enlargement(entries[i].rect);
      const double db = mbr_b.enlargement(entries[i].rect);
      const double diff = std::fabs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    FAST_CHECK(pick < entries.size());
    const double da = mbr_a.enlargement(entries[pick].rect);
    const double db = mbr_b.enlargement(entries[pick].rect);
    const bool to_a = da < db || (da == db && a.entries.size() <= b.entries.size());
    if (to_a) {
      a.entries.push_back(entries[pick]);
      mbr_a = mbr_a.expanded(entries[pick].rect);
    } else {
      b.entries.push_back(entries[pick]);
      mbr_b = mbr_b.expanded(entries[pick].rect);
    }
    assigned[pick] = true;
    --remaining;
  }

  // Re-parent children moved into the sibling.
  if (!b.leaf) {
    for (const Entry& e : b.entries) {
      nodes_[static_cast<std::size_t>(e.child)].parent = sibling_idx;
    }
  }
  return sibling_idx;
}

void RTree::adjust_tree(std::int32_t n_idx, std::int32_t sibling_idx) {
  while (true) {
    Node& n = nodes_[static_cast<std::size_t>(n_idx)];
    if (n.parent < 0) {
      // Root level. If the root split, grow the tree by one level.
      if (sibling_idx >= 0) {
        const std::int32_t new_root = static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(Node{});
        Node& root = nodes_.back();
        root.leaf = false;
        root.entries.push_back(Entry{
            node_mbr(nodes_[static_cast<std::size_t>(n_idx)]), n_idx, 0});
        root.entries.push_back(Entry{
            node_mbr(nodes_[static_cast<std::size_t>(sibling_idx)]),
            sibling_idx, 0});
        nodes_[static_cast<std::size_t>(n_idx)].parent = new_root;
        nodes_[static_cast<std::size_t>(sibling_idx)].parent = new_root;
        root_ = new_root;
      }
      return;
    }

    const std::int32_t parent_idx = n.parent;
    Node& parent = nodes_[static_cast<std::size_t>(parent_idx)];
    // Refresh this child's MBR in the parent.
    for (Entry& e : parent.entries) {
      if (e.child == n_idx) {
        e.rect = node_mbr(nodes_[static_cast<std::size_t>(n_idx)]);
        break;
      }
    }
    std::int32_t new_sibling = -1;
    if (sibling_idx >= 0) {
      parent.entries.push_back(Entry{
          node_mbr(nodes_[static_cast<std::size_t>(sibling_idx)]),
          sibling_idx, 0});
      nodes_[static_cast<std::size_t>(sibling_idx)].parent = parent_idx;
      if (parent.entries.size() > max_entries_) {
        new_sibling = split(parent_idx);
      }
    }
    n_idx = parent_idx;
    sibling_idx = new_sibling;
  }
}

void RTree::insert(std::uint64_t id, double x, double y) {
  const Rect r = Rect::point(x, y);
  const std::int32_t leaf_idx = choose_leaf(r);
  nodes_[static_cast<std::size_t>(leaf_idx)].entries.push_back(
      Entry{r, -1, id});
  std::int32_t sibling = -1;
  if (nodes_[static_cast<std::size_t>(leaf_idx)].entries.size() >
      max_entries_) {
    sibling = split(leaf_idx);
  }
  adjust_tree(leaf_idx, sibling);
  ++size_;
}

std::vector<std::uint64_t> RTree::range(const Rect& query,
                                        std::size_t* accesses) const {
  std::vector<std::uint64_t> out;
  std::size_t seen = 0;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t idx = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    ++seen;
    for (const Entry& e : n.entries) {
      if (!e.rect.intersects(query)) continue;
      if (n.leaf) {
        out.push_back(e.id);
      } else {
        stack.push_back(e.child);
      }
    }
  }
  if (accesses != nullptr) *accesses = seen;
  return out;
}

std::vector<GeoResult> RTree::nearest(double x, double y, std::size_t k,
                                      std::size_t* accesses) const {
  struct QItem {
    double dist_sq;
    std::int32_t node;   ///< -1 when this is a leaf payload
    std::uint64_t id;
    bool operator>(const QItem& o) const { return dist_sq > o.dist_sq; }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  pq.push(QItem{0.0, root_, 0});
  std::vector<GeoResult> out;
  std::size_t seen = 0;
  while (!pq.empty() && out.size() < k) {
    const QItem item = pq.top();
    pq.pop();
    if (item.node < 0) {
      out.push_back(GeoResult{item.id, std::sqrt(item.dist_sq)});
      continue;
    }
    const Node& n = nodes_[static_cast<std::size_t>(item.node)];
    ++seen;
    for (const Entry& e : n.entries) {
      const double d2 = e.rect.min_dist_sq(x, y);
      if (n.leaf) {
        pq.push(QItem{d2, -1, e.id});
      } else {
        pq.push(QItem{d2, e.child, 0});
      }
    }
  }
  if (accesses != nullptr) *accesses = seen;
  return out;
}

std::size_t RTree::height() const noexcept {
  std::size_t h = 1;
  std::int32_t cur = root_;
  while (!nodes_[static_cast<std::size_t>(cur)].leaf) {
    cur = nodes_[static_cast<std::size_t>(cur)].entries.front().child;
    ++h;
  }
  return h;
}

}  // namespace fast::index
