#include "index/linear_scan.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/vecmath.hpp"

namespace fast::index {

void LinearScan::add(std::uint64_t id, std::vector<float> point) {
  FAST_CHECK(points_.empty() || point.size() == points_.front().size());
  ids_.push_back(id);
  points_.push_back(std::move(point));
}

std::vector<Neighbor> LinearScan::nearest(std::span<const float> query,
                                          std::size_t k) const {
  std::vector<Neighbor> all;
  all.reserve(ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    all.push_back(Neighbor{ids_[i], util::l2_distance_sq(query, points_[i])});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance;
                    });
  all.resize(k);
  for (Neighbor& n : all) n.distance = std::sqrt(n.distance);
  return all;
}

std::vector<Neighbor> LinearScan::within(std::span<const float> query,
                                         double radius) const {
  const double r2 = radius * radius;
  std::vector<Neighbor> out;
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    const double d2 = util::l2_distance_sq(query, points_[i]);
    if (d2 <= r2) out.push_back(Neighbor{ids_[i], std::sqrt(d2)});
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  return out;
}

}  // namespace fast::index
