// R-tree (Guttman 1984, the paper's ref [34]) over 2-D points.
//
// The RNPE baseline the paper compares against stores geo-tagged photos in
// an R-tree and answers local-proximity ("diverse location views") queries
// with O(log n) node accesses — the complexity FAST's O(1) flat addressing
// beats. Quadratic-split insertion, rectangle range queries and best-first
// k-NN; node accesses are counted for the simulated cost accounting.
#pragma once

#include <cstdint>
#include <vector>

namespace fast::index {

struct Rect {
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  static Rect point(double x, double y) { return Rect{x, y, x, y}; }

  double area() const noexcept {
    return (max_x - min_x) * (max_y - min_y);
  }
  bool intersects(const Rect& o) const noexcept {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  bool contains_point(double x, double y) const noexcept {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }
  Rect expanded(const Rect& o) const noexcept;
  /// Area increase needed to cover `o`.
  double enlargement(const Rect& o) const noexcept;
  /// Squared distance from a point to this rectangle (0 when inside).
  double min_dist_sq(double x, double y) const noexcept;
};

struct GeoResult {
  std::uint64_t id = 0;
  double distance = 0;  ///< Euclidean distance to the query point
};

class RTree {
 public:
  /// `max_entries` fan-out per node (min is max/2 for quadratic split).
  explicit RTree(std::size_t max_entries = 8);

  std::size_t size() const noexcept { return size_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t height() const noexcept;

  void insert(std::uint64_t id, double x, double y);

  /// Ids of all points inside `query`, with node-access count in `accesses`
  /// when non-null.
  std::vector<std::uint64_t> range(const Rect& query,
                                   std::size_t* accesses = nullptr) const;

  /// Best-first k nearest neighbors to (x, y), closest first.
  std::vector<GeoResult> nearest(double x, double y, std::size_t k,
                                 std::size_t* accesses = nullptr) const;

 private:
  struct Entry {
    Rect rect;
    std::int32_t child = -1;   ///< internal: node index; leaf: -1
    std::uint64_t id = 0;      ///< leaf payload
  };
  struct Node {
    std::vector<Entry> entries;
    bool leaf = true;
    std::int32_t parent = -1;
  };

  Rect node_mbr(const Node& n) const;
  std::int32_t choose_leaf(const Rect& r);
  /// Splits node `n` (quadratic), returns the new sibling's index.
  std::int32_t split(std::int32_t n);
  void adjust_tree(std::int32_t n, std::int32_t split_sibling);

  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t max_entries_;
  std::size_t min_entries_;
  std::size_t size_ = 0;
};

}  // namespace fast::index
