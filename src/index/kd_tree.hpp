// K-d tree over dense float vectors.
//
// Two roles in this repository: (i) the exact-NN oracle that makes the
// accuracy columns of Table III measurable without human verification, and
// (ii) the metadata index Spyglass builds (Table I maps FAST's vector
// extraction to Spyglass's K-D tree). Median-split construction, branch-and-
// bound k-NN and radius search; node visits are counted so simulated query
// costs can be charged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/linear_scan.hpp"

namespace fast::index {

class KdTree {
 public:
  /// Builds the tree over (id, point) pairs. All points share one dim.
  KdTree(std::vector<std::uint64_t> ids,
         std::vector<std::vector<float>> points);

  std::size_t size() const noexcept { return ids_.size(); }
  std::size_t dim() const noexcept { return dim_; }

  /// Exact k nearest neighbors, closest first. `visited` (optional)
  /// receives the number of tree nodes inspected.
  std::vector<Neighbor> nearest(std::span<const float> query, std::size_t k,
                                std::size_t* visited = nullptr) const;

  /// All points within `radius`, closest first.
  std::vector<Neighbor> within(std::span<const float> query, double radius,
                               std::size_t* visited = nullptr) const;

 private:
  struct Node {
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t point = 0;  ///< index into points_/ids_
    std::uint16_t axis = 0;
  };

  std::int32_t build(std::span<std::uint32_t> items, std::size_t depth);

  template <typename Visit>
  void search(std::int32_t node, std::span<const float> query, double& bound,
              std::size_t& visited, const Visit& visit) const;

  std::vector<std::uint64_t> ids_;
  std::vector<std::vector<float>> points_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t dim_ = 0;
};

}  // namespace fast::index
