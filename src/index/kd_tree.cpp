#include "index/kd_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "util/check.hpp"
#include "util/vecmath.hpp"

namespace fast::index {

KdTree::KdTree(std::vector<std::uint64_t> ids,
               std::vector<std::vector<float>> points)
    : ids_(std::move(ids)), points_(std::move(points)) {
  FAST_CHECK(ids_.size() == points_.size());
  if (points_.empty()) return;
  dim_ = points_.front().size();
  for (const auto& p : points_) FAST_CHECK(p.size() == dim_);
  std::vector<std::uint32_t> items(points_.size());
  std::iota(items.begin(), items.end(), 0);
  nodes_.reserve(points_.size());
  root_ = build(items, 0);
}

std::int32_t KdTree::build(std::span<std::uint32_t> items, std::size_t depth) {
  if (items.empty()) return -1;
  const auto axis = static_cast<std::uint16_t>(depth % dim_);
  const std::size_t mid = items.size() / 2;
  std::nth_element(items.begin(),
                   items.begin() + static_cast<std::ptrdiff_t>(mid),
                   items.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return points_[a][axis] < points_[b][axis];
                   });
  const std::int32_t self = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(self)].point = items[mid];
  nodes_[static_cast<std::size_t>(self)].axis = axis;
  const std::int32_t left = build(items.subspan(0, mid), depth + 1);
  const std::int32_t right = build(items.subspan(mid + 1), depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

namespace {

// Max-heap entry for the running k-best set.
struct HeapItem {
  double dist_sq;
  std::uint64_t id;
  bool operator<(const HeapItem& o) const { return dist_sq < o.dist_sq; }
};

}  // namespace

template <typename Visit>
void KdTree::search(std::int32_t node, std::span<const float> query,
                    double& bound, std::size_t& visited,
                    const Visit& visit) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  ++visited;
  const auto& point = points_[n.point];
  visit(n.point, util::l2_distance_sq(query, point));

  const double delta = static_cast<double>(query[n.axis]) -
                       static_cast<double>(point[n.axis]);
  const std::int32_t near = delta <= 0 ? n.left : n.right;
  const std::int32_t far = delta <= 0 ? n.right : n.left;
  search(near, query, bound, visited, visit);
  // Prune the far subtree when the splitting plane is beyond the bound.
  if (delta * delta <= bound) {
    search(far, query, bound, visited, visit);
  }
}

std::vector<Neighbor> KdTree::nearest(std::span<const float> query,
                                      std::size_t k,
                                      std::size_t* visited) const {
  std::vector<Neighbor> out;
  if (root_ < 0 || k == 0) {
    if (visited != nullptr) *visited = 0;
    return out;
  }
  FAST_CHECK(query.size() == dim_);
  std::priority_queue<HeapItem> best;  // max-heap of current k best
  double bound = std::numeric_limits<double>::infinity();
  std::size_t nodes_seen = 0;
  search(root_, query, bound, nodes_seen,
         [&](std::uint32_t idx, double d2) {
           if (best.size() < k) {
             best.push(HeapItem{d2, ids_[idx]});
             if (best.size() == k) bound = best.top().dist_sq;
           } else if (d2 < best.top().dist_sq) {
             best.pop();
             best.push(HeapItem{d2, ids_[idx]});
             bound = best.top().dist_sq;
           }
         });
  if (visited != nullptr) *visited = nodes_seen;
  out.resize(best.size());
  for (std::size_t i = out.size(); i-- > 0;) {
    out[i] = Neighbor{best.top().id, std::sqrt(best.top().dist_sq)};
    best.pop();
  }
  return out;
}

std::vector<Neighbor> KdTree::within(std::span<const float> query,
                                     double radius,
                                     std::size_t* visited) const {
  std::vector<Neighbor> out;
  if (root_ < 0) {
    if (visited != nullptr) *visited = 0;
    return out;
  }
  FAST_CHECK(query.size() == dim_);
  double bound = radius * radius;
  std::size_t nodes_seen = 0;
  search(root_, query, bound, nodes_seen,
         [&](std::uint32_t idx, double d2) {
           if (d2 <= radius * radius) {
             out.push_back(Neighbor{ids_[idx], std::sqrt(d2)});
           }
         });
  if (visited != nullptr) *visited = nodes_seen;
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  return out;
}

}  // namespace fast::index
