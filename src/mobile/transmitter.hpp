// Smartphone upload simulation: chunk-based transmission vs. FAST
// near-deduplication (Fig. 8 of the paper).
//
// The chunk-based baseline (the energy-efficient scheme recommended by the
// paper's ref [35]) fingerprints content-defined chunks and skips chunks the
// server already has — it deduplicates exact repeats only, because two
// different shots of the same scene share no compressed bytes. FAST instead
// ships a ~40 B signature first; if the server already holds a similar
// image (Bloom + LSH match), the upload is suppressed entirely and only the
// signature/reference is kept. Near-duplicates dominate tourist uploads, so
// FAST transmits far fewer bytes — the >55.2% bandwidth and 46.9-62.2%
// energy savings of the paper.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/fast_index.hpp"
#include "mobile/chunker.hpp"
#include "sim/energy_model.hpp"

namespace fast::mobile {

/// One photo the phone wants to upload.
struct UploadItem {
  std::uint64_t id = 0;
  std::uint64_t file_seed = 0;   ///< determines the raw byte stream
  std::size_t file_bytes = 0;    ///< original (compressed) photo size
  const img::Image* image = nullptr;  ///< pixels (for FAST's signature)
  bool exact_dup = false;        ///< re-share of an earlier logical file
  std::uint64_t dup_of_seed = 0; ///< seed of the original when exact_dup
};

struct TransmissionReport {
  std::size_t images = 0;
  std::size_t raw_bytes = 0;        ///< what naive upload would send
  std::size_t sent_bytes = 0;       ///< actually transmitted
  std::size_t full_uploads = 0;     ///< images transmitted in full
  std::size_t suppressed = 0;       ///< images not transmitted (dedup hit)
  double cpu_seconds = 0;           ///< client-side compute
  double energy_joule = 0;          ///< radio + CPU energy

  double bandwidth_savings() const noexcept {
    if (raw_bytes == 0) return 0.0;
    return 1.0 - static_cast<double>(sent_bytes) /
                     static_cast<double>(raw_bytes);
  }
};

struct MobileCosts {
  /// Client CPU seconds per MB of chunking (rolling hash + fingerprints).
  double chunk_cpu_s_per_mb = 0.03;
  /// Client CPU seconds to extract + summarize one photo on a phone SoC.
  double fast_fe_cpu_s = 0.35;
  /// Upload-protocol overhead per transmitted unit (headers, acks).
  std::size_t per_upload_overhead_bytes = 512;
  /// Bytes of a FAST signature probe (sparse signature + request header).
  std::size_t signature_bytes = 256;
};

/// Chunk-based baseline: uploads only chunks the server has not seen.
class ChunkTransmitter {
 public:
  ChunkTransmitter(ChunkerConfig chunker, sim::EnergyModel energy,
                   MobileCosts costs = {});

  /// Processes a batch of uploads, updating the server-side chunk store.
  TransmissionReport upload_batch(std::span<const UploadItem> items);

  std::size_t known_chunks() const noexcept { return server_chunks_.size(); }

 private:
  Chunker chunker_;
  sim::EnergyModel energy_;
  MobileCosts costs_;
  std::vector<std::uint64_t> server_chunks_;  // sorted-set via hash table
  std::unordered_set<std::uint64_t> chunk_set_;
};

/// FAST near-dedup uploader: signature probe first, full upload only when
/// the cloud holds nothing similar.
class FastTransmitter {
 public:
  /// `index` is the server-side FAST index; `similarity_threshold` is the
  /// minimum top-hit score that counts as "the cloud already has this".
  FastTransmitter(core::FastIndex& index, sim::EnergyModel energy,
                  double similarity_threshold = 0.55, MobileCosts costs = {});

  TransmissionReport upload_batch(std::span<const UploadItem> items);

 private:
  core::FastIndex& index_;
  sim::EnergyModel energy_;
  double threshold_;
  MobileCosts costs_;
};

}  // namespace fast::mobile
