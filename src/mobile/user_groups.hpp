// Crowdsourcing user groups for the Fig. 8 experiments.
//
// The paper divides 1,000 client users into 3 groups by crowdsourcing
// interest (roughly equal numbers of landmarks each); each group uploads
// batches of photos of its landmarks. Within a group's stream, some photos
// are exact re-shares of earlier files and many are near-duplicate shots of
// the same views — the redundancy each transmission scheme can (or cannot)
// exploit.
#pragma once

#include <cstdint>
#include <vector>

#include "mobile/transmitter.hpp"
#include "workload/dataset.hpp"

namespace fast::mobile {

struct UserGroupSpec {
  std::string name;
  std::vector<std::uint32_t> landmarks;  ///< landmarks this group shoots
  double exact_dup_prob = 0.15;  ///< P(upload is a re-share of an earlier file)
};

/// Splits the dataset's landmarks into `groups` interest groups of roughly
/// equal size (the paper's grouping).
std::vector<UserGroupSpec> make_user_groups(const workload::Dataset& dataset,
                                            std::size_t groups = 3);

/// Draws an upload batch for one group: photos of the group's landmarks in
/// random order, with `spec.exact_dup_prob` of items re-sharing an earlier
/// item's exact file. Returned items point into `dataset` (which must
/// outlive them).
std::vector<UploadItem> make_upload_batch(const workload::Dataset& dataset,
                                          const UserGroupSpec& spec,
                                          std::size_t count,
                                          std::uint64_t seed);

}  // namespace fast::mobile
