#include "mobile/chunker.hpp"

#include <algorithm>
#include <cstring>

#include "hash/hashes.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fast::mobile {

namespace {
constexpr std::uint64_t kPrime = 0x3b9aca07ULL;  // polynomial base
}

Chunker::Chunker(const ChunkerConfig& config) : config_(config) {
  FAST_CHECK(config.min_chunk >= config.window);
  FAST_CHECK(config.min_chunk <= config.avg_chunk);
  FAST_CHECK(config.avg_chunk <= config.max_chunk);
  FAST_CHECK((config.avg_chunk & (config.avg_chunk - 1)) == 0);
  mask_ = static_cast<std::uint64_t>(config.avg_chunk - 1);

  // P^window mod 2^64 by repeated multiplication.
  std::uint64_t p_w = 1;
  for (std::size_t i = 0; i < config.window; ++i) p_w *= kPrime;
  out_factor_.resize(256);
  for (std::size_t b = 0; b < 256; ++b) {
    out_factor_[b] = static_cast<std::uint64_t>(b) * p_w;
  }
}

std::vector<Chunk> Chunker::chunk(std::span<const std::uint8_t> data) const {
  std::vector<Chunk> chunks;
  std::size_t start = 0;
  std::uint64_t h = 0;

  for (std::size_t i = 0; i < data.size(); ++i) {
    // Rolling hash over the trailing window.
    h = h * kPrime + data[i];
    if (i >= config_.window) {
      h -= out_factor_[data[i - config_.window]];
    }
    const std::size_t len = i - start + 1;
    const bool at_boundary =
        len >= config_.min_chunk && (h & mask_) == mask_;
    if (at_boundary || len >= config_.max_chunk) {
      chunks.push_back(Chunk{
          start, len,
          hash::murmur3_128(data.data() + start, len).lo});
      start = i + 1;
      h = 0;
    }
  }
  if (start < data.size()) {
    const std::size_t len = data.size() - start;
    chunks.push_back(Chunk{
        start, len, hash::murmur3_128(data.data() + start, len).lo});
  }
  return chunks;
}

std::vector<std::uint8_t> synth_file_bytes(std::uint64_t seed,
                                           std::size_t bytes) {
  std::vector<std::uint8_t> data(bytes);
  util::Rng rng(seed);
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    const std::uint64_t w = rng.next_u64();
    std::memcpy(data.data() + i, &w, 8);
  }
  for (; i < bytes; ++i) {
    data[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  return data;
}

}  // namespace fast::mobile
