// Content-defined chunking with a rolling polynomial (Rabin-style) hash —
// the substrate of the chunk-based transmission baseline in Fig. 8.
//
// A chunk boundary is declared where the rolling hash of the last `window`
// bytes matches a mask, yielding content-aligned chunks whose fingerprints
// deduplicate exact repeats even when files are concatenated or shifted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fast::mobile {

struct ChunkerConfig {
  std::size_t min_chunk = 2 * 1024;
  std::size_t avg_chunk = 8 * 1024;   ///< must be a power of two
  std::size_t max_chunk = 64 * 1024;
  std::size_t window = 48;            ///< rolling-hash window bytes
};

struct Chunk {
  std::size_t offset = 0;
  std::size_t length = 0;
  std::uint64_t fingerprint = 0;  ///< Murmur of the chunk contents
};

class Chunker {
 public:
  explicit Chunker(const ChunkerConfig& config = {});

  const ChunkerConfig& config() const noexcept { return config_; }

  /// Splits `data` into content-defined chunks with fingerprints.
  std::vector<Chunk> chunk(std::span<const std::uint8_t> data) const;

 private:
  ChunkerConfig config_;
  std::uint64_t mask_;
  // Precomputed byte multipliers for the rolling polynomial hash:
  // out_factor_[b] = b * P^window mod 2^64, so a byte can be removed from
  // the window in O(1).
  std::vector<std::uint64_t> out_factor_;
};

/// Deterministic synthetic file contents for upload simulation: a file's
/// byte stream is fully determined by its seed, so exact re-uploads of the
/// same logical file produce identical chunks while different shots of the
/// same scene share no bytes (as with real compressed photos).
std::vector<std::uint8_t> synth_file_bytes(std::uint64_t seed,
                                           std::size_t bytes);

}  // namespace fast::mobile
