#include "mobile/user_groups.hpp"

#include <algorithm>

#include "hash/hashes.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fast::mobile {

std::vector<UserGroupSpec> make_user_groups(const workload::Dataset& dataset,
                                            std::size_t groups) {
  FAST_CHECK(groups >= 1);
  std::vector<UserGroupSpec> specs(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    specs[g].name = "group-" + std::to_string(g + 1);
    // Slightly different redundancy per group, as in the paper's 46.9%-62.2%
    // spread of energy savings.
    specs[g].exact_dup_prob = 0.10 + 0.05 * static_cast<double>(g);
  }
  for (std::size_t l = 0; l < dataset.spec.landmarks; ++l) {
    specs[l % groups].landmarks.push_back(static_cast<std::uint32_t>(l));
  }
  return specs;
}

std::vector<UploadItem> make_upload_batch(const workload::Dataset& dataset,
                                          const UserGroupSpec& spec,
                                          std::size_t count,
                                          std::uint64_t seed) {
  FAST_CHECK(!spec.landmarks.empty());
  // Collect the group's photo pool.
  std::vector<const workload::PhotoRecord*> pool;
  for (const auto& photo : dataset.photos) {
    if (std::find(spec.landmarks.begin(), spec.landmarks.end(),
                  photo.landmark) != spec.landmarks.end()) {
      pool.push_back(&photo);
    }
  }
  FAST_CHECK_MSG(!pool.empty(), "group has no photos in the dataset");

  util::Rng rng(seed);
  std::vector<UploadItem> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    UploadItem item;
    item.id = static_cast<std::uint64_t>(i);
    if (!batch.empty() && rng.bernoulli(spec.exact_dup_prob)) {
      // Re-share of a random earlier upload: identical logical file.
      const UploadItem& original = batch[rng.uniform_u64(batch.size())];
      item.file_seed = original.file_seed;
      item.dup_of_seed = original.file_seed;
      item.exact_dup = true;
      item.file_bytes = original.file_bytes;
      item.image = original.image;
    } else {
      const workload::PhotoRecord* photo = pool[rng.uniform_u64(pool.size())];
      item.file_seed = hash::mix64(dataset.spec.seed ^ photo->id);
      item.file_bytes = photo->file_bytes;
      item.image = &photo->image;
    }
    batch.push_back(item);
  }
  return batch;
}

}  // namespace fast::mobile
