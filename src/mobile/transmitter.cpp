#include "mobile/transmitter.hpp"

#include "util/check.hpp"

namespace fast::mobile {

ChunkTransmitter::ChunkTransmitter(ChunkerConfig chunker,
                                   sim::EnergyModel energy, MobileCosts costs)
    : chunker_(chunker), energy_(energy), costs_(costs) {}

TransmissionReport ChunkTransmitter::upload_batch(
    std::span<const UploadItem> items) {
  TransmissionReport report;
  for (const UploadItem& item : items) {
    report.images += 1;
    report.raw_bytes += item.file_bytes;

    const std::vector<std::uint8_t> data =
        synth_file_bytes(item.exact_dup ? item.dup_of_seed : item.file_seed,
                         item.file_bytes);
    const std::vector<Chunk> chunks = chunker_.chunk(data);
    report.cpu_seconds += costs_.chunk_cpu_s_per_mb *
                          static_cast<double>(item.file_bytes) / (1 << 20);

    std::size_t to_send = costs_.per_upload_overhead_bytes +
                          chunks.size() * sizeof(std::uint64_t);  // manifest
    std::size_t new_chunks = 0;
    for (const Chunk& c : chunks) {
      if (chunk_set_.insert(c.fingerprint).second) {
        to_send += c.length;
        ++new_chunks;
        server_chunks_.push_back(c.fingerprint);
      }
    }
    report.sent_bytes += to_send;
    if (new_chunks > 0) {
      report.full_uploads += 1;
    } else {
      report.suppressed += 1;
    }
    report.energy_joule += energy_.transmit_joule(to_send);
  }
  report.energy_joule += energy_.compute_joule(report.cpu_seconds);
  return report;
}

FastTransmitter::FastTransmitter(core::FastIndex& index,
                                 sim::EnergyModel energy,
                                 double similarity_threshold,
                                 MobileCosts costs)
    : index_(index), energy_(energy), threshold_(similarity_threshold),
      costs_(costs) {}

TransmissionReport FastTransmitter::upload_batch(
    std::span<const UploadItem> items) {
  TransmissionReport report;
  for (const UploadItem& item : items) {
    FAST_CHECK(item.image != nullptr);
    report.images += 1;
    report.raw_bytes += item.file_bytes;

    // Client-side: extract + summarize, then probe the cloud with the
    // signature only.
    report.cpu_seconds += costs_.fast_fe_cpu_s;
    const hash::SparseSignature sig = index_.summarize(*item.image);
    std::size_t to_send = costs_.signature_bytes;

    const core::QueryResult hit = index_.query_signature(sig, 1);
    const bool similar_exists =
        !hit.hits.empty() && hit.hits.front().score >= threshold_;
    if (similar_exists) {
      // The cloud already holds a (near-)duplicate: register the reference
      // only; the photo itself never leaves the phone.
      report.suppressed += 1;
    } else {
      to_send += item.file_bytes + costs_.per_upload_overhead_bytes;
      report.full_uploads += 1;
    }
    // Either way, the signature is inserted so later shots dedup against it.
    index_.insert_signature(0x100000000ULL + item.id, sig);

    report.sent_bytes += to_send;
    report.energy_joule += energy_.transmit_joule(to_send);
  }
  report.energy_joule += energy_.compute_joule(report.cpu_seconds);
  return report;
}

}  // namespace fast::mobile
