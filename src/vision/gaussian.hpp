// Separable Gaussian filtering — the workhorse of the DoG scale space.
#pragma once

#include <vector>

#include "img/image.hpp"

namespace fast::vision {

/// Builds a normalized 1-D Gaussian kernel with standard deviation `sigma`.
/// Radius is ceil(3*sigma) (99.7% of mass), minimum 1.
std::vector<float> gaussian_kernel(double sigma);

/// Convolves `src` with a separable Gaussian of the given sigma
/// (horizontal then vertical pass, border replication).
img::Image gaussian_blur(const img::Image& src, double sigma);

/// Pixel-wise difference a - b of two equally sized images.
img::Image subtract(const img::Image& a, const img::Image& b);

}  // namespace fast::vision
