// Interest-point record shared by the DoG detector and the descriptors.
#pragma once

#include <cstddef>
#include <vector>

namespace fast::vision {

/// A scale-space interest point, in base-image coordinates.
struct Keypoint {
  double x = 0;            ///< column, base-image pixels
  double y = 0;            ///< row, base-image pixels
  double sigma = 1.0;      ///< absolute scale of the detection
  double orientation = 0;  ///< dominant gradient orientation, radians
  float response = 0;      ///< |DoG| value at the (refined) extremum
  int octave = 0;          ///< pyramid octave of the detection
  int level = 0;           ///< DoG level within the octave
};

/// A descriptor attached to a keypoint (128-d for SIFT, d-dim for PCA-SIFT).
struct Feature {
  Keypoint keypoint;
  std::vector<float> descriptor;
};

}  // namespace fast::vision
