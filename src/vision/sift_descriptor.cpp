#include "vision/sift_descriptor.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/vecmath.hpp"
#include "vision/dog_detector.hpp"

namespace fast::vision {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::vector<float> compute_sift(const img::Image& image, const Keypoint& kp,
                                const SiftConfig& config) {
  const int grid = config.grid;
  const int obins = config.orient_bins;
  std::vector<float> desc(static_cast<std::size_t>(grid * grid * obins), 0.0f);

  const double cell = config.magnification * std::max(kp.sigma, 0.8);
  const double half_width = cell * grid / 2.0;
  // Sample within a circle that covers the rotated grid (sqrt(2) margin).
  const int radius = std::max(
      2, static_cast<int>(std::lround(half_width * std::sqrt(2.0))) + 1);
  const double cos_t = std::cos(-kp.orientation);
  const double sin_t = std::sin(-kp.orientation);
  const double window_sigma = half_width;  // Gaussian weight over the window
  const double inv_two_sigma2 = 1.0 / (2.0 * window_sigma * window_sigma);

  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      // Rotate the offset into the keypoint frame.
      const double rx = cos_t * dx - sin_t * dy;
      const double ry = sin_t * dx + cos_t * dy;
      // Continuous bin coordinates in [0, grid); outside -> skip.
      const double bx = rx / cell + grid / 2.0 - 0.5;
      const double by = ry / cell + grid / 2.0 - 0.5;
      if (bx <= -1.0 || bx >= grid || by <= -1.0 || by >= grid) continue;

      const double px = kp.x + dx;
      const double py = kp.y + dy;
      const double gx = image.sample_bilinear(px + 1, py) -
                        image.sample_bilinear(px - 1, py);
      const double gy = image.sample_bilinear(px, py + 1) -
                        image.sample_bilinear(px, py - 1);
      const double mag = std::sqrt(gx * gx + gy * gy);
      if (mag <= 0) continue;
      double angle = std::atan2(gy, gx) - kp.orientation;
      while (angle < 0) angle += 2 * kPi;
      while (angle >= 2 * kPi) angle -= 2 * kPi;
      const double bo = angle / (2 * kPi) * obins;

      const double w =
          std::exp(-(rx * rx + ry * ry) * inv_two_sigma2) * mag;

      // Trilinear interpolation into (bx, by, bo).
      const int x0 = static_cast<int>(std::floor(bx));
      const int y0 = static_cast<int>(std::floor(by));
      const int o0 = static_cast<int>(std::floor(bo));
      const double fx = bx - x0;
      const double fy = by - y0;
      const double fo = bo - o0;
      for (int ix = 0; ix <= 1; ++ix) {
        const int xb = x0 + ix;
        if (xb < 0 || xb >= grid) continue;
        const double wx = ix ? fx : 1.0 - fx;
        for (int iy = 0; iy <= 1; ++iy) {
          const int yb = y0 + iy;
          if (yb < 0 || yb >= grid) continue;
          const double wy = iy ? fy : 1.0 - fy;
          for (int io = 0; io <= 1; ++io) {
            const int ob = (o0 + io) % obins;
            const double wo = io ? fo : 1.0 - fo;
            desc[static_cast<std::size_t>((yb * grid + xb) * obins + ob)] +=
                static_cast<float>(w * wx * wy * wo);
          }
        }
      }
    }
  }

  // Normalize, clamp large components (illumination robustness), renormalize.
  util::normalize_l2(desc);
  for (float& v : desc) v = std::min(v, config.clamp);
  util::normalize_l2(desc);
  return desc;
}

std::vector<Feature> extract_sift_features(const img::Image& image,
                                           std::size_t max_keypoints) {
  DogConfig cfg;
  cfg.max_keypoints = max_keypoints;
  const std::vector<Keypoint> kps = detect_keypoints(image, cfg);
  std::vector<Feature> features;
  features.reserve(kps.size());
  for (const Keypoint& kp : kps) {
    Feature f;
    f.keypoint = kp;
    f.descriptor = compute_sift(image, kp);
    features.push_back(std::move(f));
  }
  return features;
}

}  // namespace fast::vision
