// 128-dimensional SIFT descriptor (Lowe 2004, §6): a 4x4 grid of 8-bin
// gradient-orientation histograms sampled in the keypoint's scaled, rotated
// frame, trilinearly interpolated, Gaussian-weighted, normalized, clamped at
// 0.2 and renormalized. This is the exact-matching baseline of the paper
// (its "SIFT" scheme) and the front half of PCA-SIFT.
#pragma once

#include <vector>

#include "img/image.hpp"
#include "vision/keypoint.hpp"

namespace fast::vision {

struct SiftConfig {
  int grid = 4;           ///< spatial bins per side (4 -> 4x4)
  int orient_bins = 8;    ///< orientation bins per spatial cell
  double magnification = 3.0;  ///< descriptor window half-width in units of sigma
  float clamp = 0.2f;     ///< normalization clamp threshold
};

inline constexpr int kSiftDim = 128;

/// Computes the SIFT descriptor of `kp` over `image` (base-resolution
/// intensity image). Returns a `grid*grid*orient_bins`-dim unit vector.
std::vector<float> compute_sift(const img::Image& image, const Keypoint& kp,
                                const SiftConfig& config = {});

/// Detects keypoints and computes SIFT descriptors for all of them.
std::vector<Feature> extract_sift_features(const img::Image& image,
                                           std::size_t max_keypoints = 256);

}  // namespace fast::vision
