// Gaussian and difference-of-Gaussians pyramids (Lowe 2004, §3).
#pragma once

#include <vector>

#include "img/image.hpp"

namespace fast::vision {

struct PyramidConfig {
  int octaves = 4;               ///< number of octaves (halving resolution)
  int scales_per_octave = 3;     ///< s: DoG levels usable for extrema
  double base_sigma = 1.6;       ///< sigma of the first level of each octave
  double initial_blur = 0.5;     ///< assumed blur of the input image
  std::size_t min_dimension = 16;  ///< stop adding octaves below this size
};

/// One octave: scales_per_octave + 3 Gaussian levels and
/// scales_per_octave + 2 DoG levels.
struct Octave {
  std::vector<img::Image> gaussians;
  std::vector<img::Image> dogs;
  double base_sigma = 0;  ///< absolute sigma of gaussians[0]
  int downsample = 1;     ///< factor relative to the base image
};

/// The full scale-space pyramid.
struct Pyramid {
  std::vector<Octave> octaves;
  PyramidConfig config;
};

/// Builds the Gaussian + DoG pyramid for `base`. The number of octaves is
/// capped so the coarsest octave stays at least `min_dimension` on a side.
Pyramid build_pyramid(const img::Image& base, const PyramidConfig& config = {});

}  // namespace fast::vision
