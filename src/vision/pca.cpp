#include "vision/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"
#include "util/vecmath.hpp"

namespace fast::vision {

std::vector<float> PcaModel::project(std::span<const float> x) const {
  FAST_CHECK(x.size() == mean.size());
  std::vector<float> centered(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) centered[i] = x[i] - mean[i];
  std::vector<float> out(components.size());
  for (std::size_t c = 0; c < components.size(); ++c) {
    out[c] = static_cast<float>(util::dot(components[c], centered));
  }
  return out;
}

std::vector<float> PcaModel::reconstruct(
    std::span<const float> projected) const {
  FAST_CHECK(projected.size() == components.size());
  std::vector<float> out(mean.begin(), mean.end());
  for (std::size_t c = 0; c < components.size(); ++c) {
    const float w = projected[c];
    const auto& comp = components[c];
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += w * comp[i];
  }
  return out;
}

void jacobi_eigen_symmetric(std::vector<double> a, std::size_t n,
                            std::vector<double>& eigenvalues,
                            std::vector<std::vector<double>>& eigenvectors,
                            int max_sweeps) {
  FAST_CHECK(a.size() == n * n);
  // V starts as identity; accumulates the rotations.
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto A = [&](std::size_t r, std::size_t c) -> double& { return a[r * n + c]; };
  auto V = [&](std::size_t r, std::size_t c) -> double& { return v[r * n + c]; };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of squares of the strict upper triangle: convergence measure.
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += A(p, q) * A(p, q);
    }
    if (off < 1e-20) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = A(p, q);
        if (std::fabs(apq) < 1e-30) continue;
        const double app = A(p, p);
        const double aqq = A(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          const double aip = A(i, p);
          const double aiq = A(i, q);
          A(i, p) = c * aip - s * aiq;
          A(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = A(p, i);
          const double aqi = A(q, i);
          A(p, i) = c * api - s * aqi;
          A(q, i) = s * api + c * aqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = V(i, p);
          const double viq = V(i, q);
          V(i, p) = c * vip - s * viq;
          V(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Collect eigenpairs and sort by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a[i * n + i] > a[j * n + j];
  });
  eigenvalues.resize(n);
  eigenvectors.assign(n, std::vector<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t col = order[k];
    eigenvalues[k] = a[col * n + col];
    for (std::size_t i = 0; i < n; ++i) {
      eigenvectors[k][i] = v[i * n + col];
    }
  }
}

PcaModel train_pca(std::span<const std::vector<float>> samples,
                   std::size_t output_dim) {
  FAST_CHECK_MSG(samples.size() >= 2, "PCA needs at least two samples");
  const std::size_t d = samples.front().size();
  FAST_CHECK(output_dim >= 1 && output_dim <= d);

  PcaModel model;
  model.mean = util::mean_vector(samples);

  // Covariance (upper triangle, then mirrored).
  std::vector<double> cov(d * d, 0.0);
  std::vector<double> centered(d);
  for (const auto& s : samples) {
    FAST_CHECK(s.size() == d);
    for (std::size_t i = 0; i < d; ++i) {
      centered[i] = static_cast<double>(s[i]) -
                    static_cast<double>(model.mean[i]);
    }
    for (std::size_t i = 0; i < d; ++i) {
      const double ci = centered[i];
      for (std::size_t j = i; j < d; ++j) {
        cov[i * d + j] += ci * centered[j];
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(samples.size() - 1);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov[i * d + j] *= inv_n;
      cov[j * d + i] = cov[i * d + j];
    }
  }

  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  jacobi_eigen_symmetric(std::move(cov), d, evals, evecs);

  model.components.resize(output_dim);
  model.eigenvalues.resize(output_dim);
  for (std::size_t k = 0; k < output_dim; ++k) {
    model.eigenvalues[k] = static_cast<float>(std::max(0.0, evals[k]));
    model.components[k].resize(d);
    for (std::size_t i = 0; i < d; ++i) {
      model.components[k][i] = static_cast<float>(evecs[k][i]);
    }
  }
  return model;
}

}  // namespace fast::vision
