// PCA-SIFT descriptors (Ke & Sukthankar 2004, the paper's ref [7]).
//
// Instead of Lowe's orientation histograms, PCA-SIFT extracts a normalized
// gradient patch around each keypoint (in the keypoint's scaled, rotated
// frame) and projects it onto a PCA eigenspace trained offline from a sample
// of patches. The resulting descriptors are far more compact (the paper uses
// this compactness as the stepping stone to its Bloom-filter summaries).
#pragma once

#include <span>
#include <vector>

#include "img/image.hpp"
#include "vision/keypoint.hpp"
#include "vision/pca.hpp"

namespace fast::vision {

struct PcaSiftConfig {
  int patch_size = 17;      ///< gradient patch side (d_in = 2 * p^2)
  std::size_t output_dim = 36;  ///< projected descriptor dimensionality
  double magnification = 3.0;   ///< patch half-width in units of sigma
};

/// Extracts the raw normalized gradient patch (length 2 * patch^2: all x
/// gradients then all y gradients, unit L2 norm) for a keypoint.
std::vector<float> gradient_patch(const img::Image& image, const Keypoint& kp,
                                  const PcaSiftConfig& config = {});

/// Trains the PCA eigenspace from keypoints detected across `images`.
/// Deterministic given the image list.
PcaModel train_pca_sift(std::span<const img::Image> images,
                        const PcaSiftConfig& config = {},
                        std::size_t max_patches = 2000);

/// Computes the PCA-SIFT descriptor of one keypoint.
std::vector<float> compute_pca_sift(const img::Image& image,
                                    const Keypoint& kp, const PcaModel& model,
                                    const PcaSiftConfig& config = {});

/// Detects keypoints and computes PCA-SIFT descriptors for all of them.
std::vector<Feature> extract_pca_sift_features(const img::Image& image,
                                               const PcaModel& model,
                                               const PcaSiftConfig& config = {},
                                               std::size_t max_keypoints = 256);

}  // namespace fast::vision
