#include "vision/gaussian.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fast::vision {

std::vector<float> gaussian_kernel(double sigma) {
  FAST_CHECK(sigma > 0);
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma * sigma);
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-static_cast<double>(i * i) * inv_two_sigma2);
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
    sum += v;
  }
  const auto inv_sum = static_cast<float>(1.0 / sum);
  for (float& k : kernel) k *= inv_sum;
  return kernel;
}

img::Image gaussian_blur(const img::Image& src, double sigma) {
  const std::vector<float> kernel = gaussian_kernel(sigma);
  const int radius = static_cast<int>(kernel.size() / 2);
  const auto w = static_cast<std::ptrdiff_t>(src.width());
  const auto h = static_cast<std::ptrdiff_t>(src.height());

  // Horizontal pass.
  img::Image tmp(src.width(), src.height());
  for (std::ptrdiff_t y = 0; y < h; ++y) {
    const float* in = src.row(static_cast<std::size_t>(y));
    float* out = tmp.row(static_cast<std::size_t>(y));
    for (std::ptrdiff_t x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const std::ptrdiff_t xx = std::clamp<std::ptrdiff_t>(x + k, 0, w - 1);
        acc += static_cast<double>(in[xx]) *
               kernel[static_cast<std::size_t>(k + radius)];
      }
      out[x] = static_cast<float>(acc);
    }
  }

  // Vertical pass.
  img::Image dst(src.width(), src.height());
  for (std::ptrdiff_t y = 0; y < h; ++y) {
    float* out = dst.row(static_cast<std::size_t>(y));
    for (std::ptrdiff_t x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const std::ptrdiff_t yy = std::clamp<std::ptrdiff_t>(y + k, 0, h - 1);
        acc += static_cast<double>(
                   tmp.row(static_cast<std::size_t>(yy))[x]) *
               kernel[static_cast<std::size_t>(k + radius)];
      }
      out[x] = static_cast<float>(acc);
    }
  }
  return dst;
}

img::Image subtract(const img::Image& a, const img::Image& b) {
  FAST_CHECK(a.width() == b.width() && a.height() == b.height());
  img::Image out(a.width(), a.height());
  const std::size_t n = a.pixel_count();
  auto pa = a.pixels();
  auto pb = b.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
  return out;
}

}  // namespace fast::vision
