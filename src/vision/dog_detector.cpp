#include "vision/dog_detector.hpp"

#include <algorithm>
#include <cmath>

namespace fast::vision {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// True if dogs[l](x, y) is a strict extremum of its 26-neighborhood.
bool is_extremum(const std::vector<img::Image>& dogs, std::size_t l,
                 std::size_t x, std::size_t y) {
  const float v = dogs[l].at(x, y);
  // Ignore tiny responses early; full contrast check happens after refine.
  if (std::fabs(v) < 1e-4f) return false;
  const bool is_max = v > 0;
  for (std::size_t dl = l - 1; dl <= l + 1; ++dl) {
    const img::Image& plane = dogs[dl];
    for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
      for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
        if (dl == l && dx == 0 && dy == 0) continue;
        const float n =
            plane.at(x + static_cast<std::size_t>(dx + 1) - 1,
                     y + static_cast<std::size_t>(dy + 1) - 1);
        if (is_max ? (n >= v) : (n <= v)) return false;
      }
    }
  }
  return true;
}

struct Refined {
  bool ok = false;
  double dx = 0, dy = 0, ds = 0;  // sub-pixel offsets
  double value = 0;               // interpolated |DoG|
};

/// One Newton step on the 3-D quadratic fit around the sample (x, y, l).
Refined refine(const std::vector<img::Image>& dogs, std::size_t l,
               std::size_t x, std::size_t y) {
  const img::Image& c = dogs[l];
  const img::Image& lo = dogs[l - 1];
  const img::Image& hi = dogs[l + 1];
  const double v = c.at(x, y);

  const double gx = 0.5 * (c.at(x + 1, y) - c.at(x - 1, y));
  const double gy = 0.5 * (c.at(x, y + 1) - c.at(x, y - 1));
  const double gs = 0.5 * (hi.at(x, y) - lo.at(x, y));

  const double hxx = c.at(x + 1, y) - 2 * v + c.at(x - 1, y);
  const double hyy = c.at(x, y + 1) - 2 * v + c.at(x, y - 1);
  const double hss = hi.at(x, y) - 2 * v + lo.at(x, y);
  const double hxy = 0.25 * (c.at(x + 1, y + 1) - c.at(x - 1, y + 1) -
                             c.at(x + 1, y - 1) + c.at(x - 1, y - 1));
  const double hxs = 0.25 * (hi.at(x + 1, y) - hi.at(x - 1, y) -
                             lo.at(x + 1, y) + lo.at(x - 1, y));
  const double hys = 0.25 * (hi.at(x, y + 1) - hi.at(x, y - 1) -
                             lo.at(x, y + 1) + lo.at(x, y - 1));

  // Solve H * d = -g with Cramer's rule on the symmetric 3x3 Hessian.
  const double det = hxx * (hyy * hss - hys * hys) -
                     hxy * (hxy * hss - hys * hxs) +
                     hxs * (hxy * hys - hyy * hxs);
  Refined r;
  if (std::fabs(det) < 1e-12) return r;
  const double inv = 1.0 / det;
  const double i00 = (hyy * hss - hys * hys) * inv;
  const double i01 = (hxs * hys - hxy * hss) * inv;
  const double i02 = (hxy * hys - hxs * hyy) * inv;
  const double i11 = (hxx * hss - hxs * hxs) * inv;
  const double i12 = (hxs * hxy - hxx * hys) * inv;
  const double i22 = (hxx * hyy - hxy * hxy) * inv;
  r.dx = -(i00 * gx + i01 * gy + i02 * gs);
  r.dy = -(i01 * gx + i11 * gy + i12 * gs);
  r.ds = -(i02 * gx + i12 * gy + i22 * gs);
  // Diverging fit means the true extremum belongs to a neighboring sample.
  if (std::fabs(r.dx) > 1.5 || std::fabs(r.dy) > 1.5 || std::fabs(r.ds) > 1.5) {
    return r;
  }
  r.value = v + 0.5 * (gx * r.dx + gy * r.dy + gs * r.ds);
  r.ok = true;
  return r;
}

/// Principal-curvature edge test: keeps blob-like extrema only.
bool passes_edge_test(const img::Image& c, std::size_t x, std::size_t y,
                      double edge_ratio) {
  const double v = c.at(x, y);
  const double hxx = c.at(x + 1, y) - 2 * v + c.at(x - 1, y);
  const double hyy = c.at(x, y + 1) - 2 * v + c.at(x, y - 1);
  const double hxy = 0.25 * (c.at(x + 1, y + 1) - c.at(x - 1, y + 1) -
                             c.at(x + 1, y - 1) + c.at(x - 1, y - 1));
  const double tr = hxx + hyy;
  const double det = hxx * hyy - hxy * hxy;
  if (det <= 0) return false;  // saddle: curvatures of opposite sign
  const double r = edge_ratio;
  return tr * tr / det < (r + 1) * (r + 1) / r;
}

}  // namespace

double dominant_orientation(const img::Image& gaussian, double x_oct,
                            double y_oct, double sigma_oct) {
  constexpr int kBins = 36;
  double hist[kBins] = {};
  const double win_sigma = 1.5 * sigma_oct;
  const int radius = std::max(1, static_cast<int>(std::lround(3.0 * win_sigma)));
  const auto cx = static_cast<std::ptrdiff_t>(std::lround(x_oct));
  const auto cy = static_cast<std::ptrdiff_t>(std::lround(y_oct));
  const double inv_two_sigma2 = 1.0 / (2.0 * win_sigma * win_sigma);

  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      const std::ptrdiff_t px = cx + dx;
      const std::ptrdiff_t py = cy + dy;
      const double gx = gaussian.at_clamped(px + 1, py) -
                        gaussian.at_clamped(px - 1, py);
      const double gy = gaussian.at_clamped(px, py + 1) -
                        gaussian.at_clamped(px, py - 1);
      const double mag = std::sqrt(gx * gx + gy * gy);
      if (mag <= 0) continue;
      const double w =
          std::exp(-static_cast<double>(dx * dx + dy * dy) * inv_two_sigma2);
      double angle = std::atan2(gy, gx);  // [-pi, pi]
      if (angle < 0) angle += 2 * kPi;
      int bin = static_cast<int>(angle / (2 * kPi) * kBins);
      bin = std::clamp(bin, 0, kBins - 1);
      hist[bin] += w * mag;
    }
  }

  // Smooth the circular histogram a couple of times (box of width 3).
  for (int pass = 0; pass < 2; ++pass) {
    double prev = hist[kBins - 1];
    const double first = hist[0];
    for (int b = 0; b < kBins; ++b) {
      const double next = (b + 1 < kBins) ? hist[b + 1] : first;
      const double cur = hist[b];
      hist[b] = (prev + cur + next) / 3.0;
      prev = cur;
    }
  }

  int best = 0;
  for (int b = 1; b < kBins; ++b) {
    if (hist[b] > hist[best]) best = b;
  }
  // Parabolic interpolation of the peak.
  const double l = hist[(best + kBins - 1) % kBins];
  const double ctr = hist[best];
  const double rgt = hist[(best + 1) % kBins];
  double offset = 0.0;
  const double denom = l - 2 * ctr + rgt;
  if (std::fabs(denom) > 1e-12) offset = 0.5 * (l - rgt) / denom;
  double angle = (static_cast<double>(best) + 0.5 + offset) / kBins * 2 * kPi;
  if (angle >= 2 * kPi) angle -= 2 * kPi;
  if (angle < 0) angle += 2 * kPi;
  return angle;
}

std::vector<Keypoint> detect_keypoints(const img::Image& image,
                                       const DogConfig& config) {
  const Pyramid pyr = build_pyramid(image, config.pyramid);
  std::vector<Keypoint> keypoints;
  const int s = config.pyramid.scales_per_octave;
  const double k = std::pow(2.0, 1.0 / static_cast<double>(s));

  for (std::size_t o = 0; o < pyr.octaves.size(); ++o) {
    const Octave& oct = pyr.octaves[o];
    const std::size_t w = oct.dogs.front().width();
    const std::size_t h = oct.dogs.front().height();
    if (w < 8 || h < 8) continue;
    for (std::size_t l = 1; l + 1 < oct.dogs.size(); ++l) {
      for (std::size_t y = 1; y + 1 < h; ++y) {
        for (std::size_t x = 1; x + 1 < w; ++x) {
          if (!is_extremum(oct.dogs, l, x, y)) continue;
          const Refined r = refine(oct.dogs, l, x, y);
          if (!r.ok) continue;
          if (std::fabs(r.value) < config.contrast_threshold) continue;
          if (!passes_edge_test(oct.dogs[l], x, y, config.edge_ratio)) continue;

          Keypoint kp;
          const double x_oct = static_cast<double>(x) + r.dx;
          const double y_oct = static_cast<double>(y) + r.dy;
          kp.x = x_oct * oct.downsample;
          kp.y = y_oct * oct.downsample;
          const double level_sigma =
              config.pyramid.base_sigma *
              std::pow(k, static_cast<double>(l) + r.ds);
          kp.sigma = level_sigma * oct.downsample;
          kp.response = static_cast<float>(std::fabs(r.value));
          kp.octave = static_cast<int>(o);
          kp.level = static_cast<int>(l);
          if (config.assign_orientation) {
            kp.orientation =
                dominant_orientation(oct.gaussians[l], x_oct, y_oct,
                                     level_sigma);
          }
          keypoints.push_back(kp);
        }
      }
    }
  }

  std::sort(keypoints.begin(), keypoints.end(),
            [](const Keypoint& a, const Keypoint& b) {
              return a.response > b.response;
            });
  if (config.max_keypoints > 0 && keypoints.size() > config.max_keypoints) {
    keypoints.resize(config.max_keypoints);
  }
  return keypoints;
}

}  // namespace fast::vision
