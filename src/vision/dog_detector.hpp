// Difference-of-Gaussians interest-point detector (Lowe 2004 / the paper's
// FE module): scale-space extrema, quadratic sub-pixel refinement, low-
// contrast and edge-response rejection, and dominant-orientation assignment.
#pragma once

#include <vector>

#include "img/image.hpp"
#include "vision/keypoint.hpp"
#include "vision/pyramid.hpp"

namespace fast::vision {

struct DogConfig {
  PyramidConfig pyramid;
  double contrast_threshold = 0.008;  ///< reject |DoG| below this after refine
  double edge_ratio = 10.0;           ///< reject if tr^2/det > (r+1)^2/r
  std::size_t max_keypoints = 256;    ///< keep strongest N (0 = unlimited)
  bool assign_orientation = true;     ///< compute dominant orientation
};

/// Detects DoG extrema in `image` and returns refined, oriented keypoints,
/// strongest-response first.
std::vector<Keypoint> detect_keypoints(const img::Image& image,
                                       const DogConfig& config = {});

/// Assigns the dominant gradient orientation to `kp` from the Gaussian level
/// it was detected at (36-bin histogram, Gaussian-weighted, peak parabola
/// interpolation). Exposed for testing.
double dominant_orientation(const img::Image& gaussian, double x_oct,
                            double y_oct, double sigma_oct);

}  // namespace fast::vision
