// Principal components analysis with a cyclic Jacobi eigensolver.
//
// PCA-SIFT (Ke & Sukthankar 2004, the paper's ref [7]) projects normalized
// gradient patches onto a low-dimensional eigenspace. We implement PCA from
// scratch: covariance accumulation and symmetric eigendecomposition via
// cyclic Jacobi rotations (robust and dependency-free; dimensionality here
// is a few hundred, well within Jacobi's comfort zone).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fast::vision {

/// A trained PCA basis: projection = components * (x - mean).
struct PcaModel {
  std::vector<float> mean;                 ///< input-space mean, dim = d_in
  std::vector<std::vector<float>> components;  ///< d_out rows of length d_in
  std::vector<float> eigenvalues;          ///< variance along each component

  std::size_t input_dim() const noexcept { return mean.size(); }
  std::size_t output_dim() const noexcept { return components.size(); }

  /// Projects an input vector onto the PCA basis.
  std::vector<float> project(std::span<const float> x) const;

  /// Reconstructs an approximation of x from its projection.
  std::vector<float> reconstruct(std::span<const float> projected) const;
};

/// Eigendecomposition of a symmetric matrix (row-major, n x n) by cyclic
/// Jacobi. Returns eigenvalues (descending) and matching unit eigenvectors
/// (rows of `eigenvectors`). `max_sweeps` bounds the iteration count.
void jacobi_eigen_symmetric(std::vector<double> matrix, std::size_t n,
                            std::vector<double>& eigenvalues,
                            std::vector<std::vector<double>>& eigenvectors,
                            int max_sweeps = 64);

/// Trains a PCA model on `samples` (each of equal dimension), keeping the
/// top `output_dim` components. Requires at least two samples.
PcaModel train_pca(std::span<const std::vector<float>> samples,
                   std::size_t output_dim);

}  // namespace fast::vision
