#include "vision/pyramid.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "vision/gaussian.hpp"

namespace fast::vision {

Pyramid build_pyramid(const img::Image& base, const PyramidConfig& config) {
  FAST_CHECK(config.octaves >= 1);
  FAST_CHECK(config.scales_per_octave >= 1);
  FAST_CHECK(!base.empty());

  Pyramid pyr;
  pyr.config = config;

  const int s = config.scales_per_octave;
  const double k = std::pow(2.0, 1.0 / static_cast<double>(s));
  const int levels = s + 3;

  // Bring the input up to base_sigma from its assumed initial blur.
  img::Image current = base;
  const double delta0 = std::sqrt(
      std::max(0.01, config.base_sigma * config.base_sigma -
                          config.initial_blur * config.initial_blur));
  current = gaussian_blur(current, delta0);

  int downsample = 1;
  for (int o = 0; o < config.octaves; ++o) {
    if (current.width() < config.min_dimension ||
        current.height() < config.min_dimension) {
      break;
    }
    Octave oct;
    oct.base_sigma = config.base_sigma * static_cast<double>(downsample);
    oct.downsample = downsample;
    oct.gaussians.reserve(static_cast<std::size_t>(levels));
    oct.gaussians.push_back(current);
    // Incremental blurs: sigma_i = base * k^i within the octave; each level
    // is produced from the previous with the differential sigma.
    double sigma_prev = config.base_sigma;
    for (int i = 1; i < levels; ++i) {
      const double sigma_i = config.base_sigma * std::pow(k, i);
      const double delta =
          std::sqrt(sigma_i * sigma_i - sigma_prev * sigma_prev);
      oct.gaussians.push_back(gaussian_blur(oct.gaussians.back(), delta));
      sigma_prev = sigma_i;
    }
    oct.dogs.reserve(static_cast<std::size_t>(levels - 1));
    for (int i = 0; i + 1 < levels; ++i) {
      oct.dogs.push_back(subtract(oct.gaussians[static_cast<std::size_t>(i + 1)],
                                  oct.gaussians[static_cast<std::size_t>(i)]));
    }
    // Next octave starts from the level with sigma = 2 * base (index s),
    // downsampled by 2.
    current = oct.gaussians[static_cast<std::size_t>(s)].downsample2();
    downsample *= 2;
    pyr.octaves.push_back(std::move(oct));
  }
  FAST_CHECK_MSG(!pyr.octaves.empty(), "input image too small for pyramid");
  return pyr;
}

}  // namespace fast::vision
