// Brute-force descriptor matching with Lowe's distance-ratio test, plus an
// image-level similarity score. This is the exact (but slow) matching path
// the SIFT / PCA-SIFT baselines use; FAST replaces it with Bloom + LSH.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vision/keypoint.hpp"

namespace fast::vision {

struct Match {
  std::size_t query_idx = 0;  ///< index into the query feature list
  std::size_t train_idx = 0;  ///< index into the train feature list
  double distance = 0;        ///< L2 distance of the matched descriptors
};

struct MatcherConfig {
  double ratio = 0.8;  ///< Lowe ratio: best must be < ratio * second-best
};

/// Finds ratio-test matches from `query` into `train`. O(|q| * |t| * d).
std::vector<Match> match_features(std::span<const Feature> query,
                                  std::span<const Feature> train,
                                  const MatcherConfig& config = {});

/// Image-level similarity: fraction of query features with a ratio-test
/// match in `train`, in [0, 1]. Symmetric enough for near-dup detection.
double image_similarity(std::span<const Feature> query,
                        std::span<const Feature> train,
                        const MatcherConfig& config = {});

}  // namespace fast::vision
