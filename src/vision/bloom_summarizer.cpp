#include "vision/bloom_summarizer.hpp"

#include <cmath>
#include <vector>

#include "hash/bloom_filter.hpp"
#include "util/trace.hpp"
#include "vision/dog_detector.hpp"

namespace fast::vision {

BloomSummarizer::BloomSummarizer(BloomSummarizerConfig config, PcaModel pca)
    : config_(std::move(config)), pca_(std::move(pca)) {
  config_.dog.max_keypoints = config_.max_keypoints;
}

hash::SparseSignature BloomSummarizer::summarize(
    const img::Image& image) const {
  std::vector<Keypoint> keypoints;
  {
    util::TraceSpan fe_span("fe.detect");
    keypoints = detect_keypoints(image, config_.dog);
    fe_span.attr("keypoints", static_cast<double>(keypoints.size()));
  }

  util::TraceSpan sm_span("sm.fold");
  sm_span.attr("keypoints", static_cast<double>(keypoints.size()));
  hash::BloomFilter bloom(config_.bloom_bits, config_.bloom_hashes);
  // Group buffer: [group index, coarse x, coarse y, cell_0, ..., cell_{G-1}].
  std::vector<std::int16_t> cells(3 + config_.quantize_group_dims);
  for (const auto& kp : keypoints) {
    const std::vector<float> desc =
        compute_pca_sift(image, kp, pca_, config_.pca_sift);
    // Whiten each component by its PCA standard deviation so quantization
    // jitter is uniform across dimensions, then hash each group of
    // components as one Bloom item. Descriptors of the same physical
    // feature under near-duplicate perturbations agree on most groups and
    // therefore set mostly identical bits (the paper's "identical features
    // project the same bits"), while unrelated descriptors agree on none.
    const std::size_t g_dims = config_.quantize_group_dims;
    // Coarse spatial cell of the keypoint: near-duplicate shots move
    // keypoints by a few pixels only, while coincidentally similar local
    // structure on a different landmark sits elsewhere in the frame.
    const double spatial = config_.spatial_cell_px;
    cells[1] = static_cast<std::int16_t>(std::lround(kp.x / spatial));
    cells[2] = static_cast<std::int16_t>(std::lround(kp.y / spatial));
    for (std::size_t start = 0; start + g_dims <= desc.size();
         start += g_dims) {
      cells[0] = static_cast<std::int16_t>(start / g_dims);
      for (std::size_t i = 0; i < g_dims; ++i) {
        const float lambda = start + i < pca_.eigenvalues.size()
                                 ? pca_.eigenvalues[start + i]
                                 : 0.0f;
        const float sd = std::sqrt(lambda + 1e-8f);
        cells[3 + i] = static_cast<std::int16_t>(
            std::lround(desc[start + i] / (sd * config_.quantize_cell)));
      }
      bloom.insert(cells.data(), cells.size() * sizeof(cells[0]));
    }
  }
  return hash::SparseSignature(bloom);
}

}  // namespace fast::vision
