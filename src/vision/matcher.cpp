#include "vision/matcher.hpp"

#include <cmath>
#include <limits>

#include "util/vecmath.hpp"

namespace fast::vision {

std::vector<Match> match_features(std::span<const Feature> query,
                                  std::span<const Feature> train,
                                  const MatcherConfig& config) {
  std::vector<Match> matches;
  if (train.size() < 2) return matches;
  for (std::size_t qi = 0; qi < query.size(); ++qi) {
    double best = std::numeric_limits<double>::infinity();
    double second = std::numeric_limits<double>::infinity();
    std::size_t best_idx = 0;
    for (std::size_t ti = 0; ti < train.size(); ++ti) {
      const double d =
          util::l2_distance_sq(query[qi].descriptor, train[ti].descriptor);
      if (d < best) {
        second = best;
        best = d;
        best_idx = ti;
      } else if (d < second) {
        second = d;
      }
    }
    // Ratio test on squared distances: best < r^2 * second.
    if (best < config.ratio * config.ratio * second) {
      matches.push_back(Match{qi, best_idx, std::sqrt(best)});
    }
  }
  return matches;
}

double image_similarity(std::span<const Feature> query,
                        std::span<const Feature> train,
                        const MatcherConfig& config) {
  if (query.empty()) return 0.0;
  const std::vector<Match> matches = match_features(query, train, config);
  return static_cast<double>(matches.size()) /
         static_cast<double>(query.size());
}

}  // namespace fast::vision
