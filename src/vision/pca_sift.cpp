#include "vision/pca_sift.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/vecmath.hpp"
#include "vision/dog_detector.hpp"

namespace fast::vision {

std::vector<float> gradient_patch(const img::Image& image, const Keypoint& kp,
                                  const PcaSiftConfig& config) {
  const int p = config.patch_size;
  FAST_CHECK(p >= 3);
  std::vector<float> patch(static_cast<std::size_t>(2 * p * p));

  const double extent = config.magnification * std::max(kp.sigma, 0.8);
  const double step = 2.0 * extent / static_cast<double>(p - 1);
  const double cos_t = std::cos(kp.orientation);
  const double sin_t = std::sin(kp.orientation);

  std::size_t gx_idx = 0;
  std::size_t gy_idx = static_cast<std::size_t>(p * p);
  for (int iy = 0; iy < p; ++iy) {
    const double oy = (iy - (p - 1) / 2.0) * step;
    for (int ix = 0; ix < p; ++ix) {
      const double ox = (ix - (p - 1) / 2.0) * step;
      // Rotate the sampling offset by the keypoint orientation so the patch
      // is expressed in the keypoint's canonical frame.
      const double sx = kp.x + cos_t * ox - sin_t * oy;
      const double sy = kp.y + sin_t * ox + cos_t * oy;
      // Gradient in the rotated frame: sample along the rotated axes.
      const double hx = step * 0.5;
      const double gx =
          image.sample_bilinear(sx + cos_t * hx, sy + sin_t * hx) -
          image.sample_bilinear(sx - cos_t * hx, sy - sin_t * hx);
      const double gy =
          image.sample_bilinear(sx - sin_t * hx, sy + cos_t * hx) -
          image.sample_bilinear(sx + sin_t * hx, sy - cos_t * hx);
      patch[gx_idx++] = static_cast<float>(gx);
      patch[gy_idx++] = static_cast<float>(gy);
    }
  }
  // Unit-norm the whole patch: gain-invariance (bias vanished in gradients).
  util::normalize_l2(patch);
  return patch;
}

PcaModel train_pca_sift(std::span<const img::Image> images,
                        const PcaSiftConfig& config, std::size_t max_patches) {
  std::vector<std::vector<float>> patches;
  DogConfig dog;
  dog.max_keypoints = 64;
  for (const img::Image& image : images) {
    for (const Keypoint& kp : detect_keypoints(image, dog)) {
      patches.push_back(gradient_patch(image, kp, config));
      if (patches.size() >= max_patches) break;
    }
    if (patches.size() >= max_patches) break;
  }
  FAST_CHECK_MSG(patches.size() >= 2,
                 "too few training patches for PCA-SIFT eigenspace");
  const std::size_t out_dim =
      std::min(config.output_dim, patches.front().size());
  return train_pca(patches, out_dim);
}

std::vector<float> compute_pca_sift(const img::Image& image,
                                    const Keypoint& kp, const PcaModel& model,
                                    const PcaSiftConfig& config) {
  return model.project(gradient_patch(image, kp, config));
}

std::vector<Feature> extract_pca_sift_features(const img::Image& image,
                                               const PcaModel& model,
                                               const PcaSiftConfig& config,
                                               std::size_t max_keypoints) {
  DogConfig dog;
  dog.max_keypoints = max_keypoints;
  const std::vector<Keypoint> kps = detect_keypoints(image, dog);
  std::vector<Feature> features;
  features.reserve(kps.size());
  for (const Keypoint& kp : kps) {
    Feature f;
    f.keypoint = kp;
    f.descriptor = compute_pca_sift(image, kp, model, config);
    features.push_back(std::move(f));
  }
  return features;
}

}  // namespace fast::vision
