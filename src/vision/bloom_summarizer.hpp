// Summarizer adapter: DoG interest points + PCA-SIFT descriptors (FE)
// folded into a per-image Bloom membership summary (SM), stored sparsely at
// ~40 B/image. This is the FE+SM stage of the paper's pipeline, factored
// out of the index so the batch execution path can fan it across a thread
// pool and so alternative front ends (GPU extraction, mobile-shipped
// signatures) can slot in behind the same interface.
#pragma once

#include <cstdint>

#include "core/pipeline/summarizer.hpp"
#include "vision/dog_detector.hpp"
#include "vision/pca.hpp"
#include "vision/pca_sift.hpp"

namespace fast::vision {

struct BloomSummarizerConfig {
  DogConfig dog;
  PcaSiftConfig pca_sift;
  std::size_t max_keypoints = 128;
  std::size_t bloom_bits = 16384;       ///< m
  std::size_t bloom_hashes = 8;         ///< k
  std::size_t quantize_group_dims = 6;  ///< components per quantized group
  float quantize_cell = 2.0f;           ///< cell width in whitened units
  double spatial_cell_px = 32.0;        ///< coarse keypoint-position cell
};

class BloomSummarizer final : public core::pipeline::Summarizer {
 public:
  /// `pca` is the PCA-SIFT eigenspace, trained offline on a corpus sample.
  BloomSummarizer(BloomSummarizerConfig config, PcaModel pca);

  hash::SparseSignature summarize(const img::Image& image) const override;
  std::size_t signature_bits() const noexcept override {
    return config_.bloom_bits;
  }

 private:
  BloomSummarizerConfig config_;
  PcaModel pca_;
};

}  // namespace fast::vision
