#include "img/image.hpp"

#include <algorithm>
#include <cmath>

namespace fast::img {

float Image::at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const noexcept {
  x = std::clamp<std::ptrdiff_t>(x, 0, static_cast<std::ptrdiff_t>(width_) - 1);
  y = std::clamp<std::ptrdiff_t>(y, 0, static_cast<std::ptrdiff_t>(height_) - 1);
  return pixels_[static_cast<std::size_t>(y) * width_ +
                 static_cast<std::size_t>(x)];
}

float Image::sample_bilinear(double x, double y) const noexcept {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto x0 = static_cast<std::ptrdiff_t>(fx);
  const auto y0 = static_cast<std::ptrdiff_t>(fy);
  const auto ax = static_cast<float>(x - fx);
  const auto ay = static_cast<float>(y - fy);
  const float v00 = at_clamped(x0, y0);
  const float v10 = at_clamped(x0 + 1, y0);
  const float v01 = at_clamped(x0, y0 + 1);
  const float v11 = at_clamped(x0 + 1, y0 + 1);
  const float top = v00 + ax * (v10 - v00);
  const float bot = v01 + ax * (v11 - v01);
  return top + ay * (bot - top);
}

void Image::clamp01() noexcept {
  for (float& p : pixels_) p = std::clamp(p, 0.0f, 1.0f);
}

Image Image::downsample2() const {
  Image out(std::max<std::size_t>(1, width_ / 2),
            std::max<std::size_t>(1, height_ / 2));
  for (std::size_t y = 0; y < out.height(); ++y) {
    for (std::size_t x = 0; x < out.width(); ++x) {
      out.at(x, y) = at(std::min(2 * x, width_ - 1),
                        std::min(2 * y, height_ - 1));
    }
  }
  return out;
}

Image Image::upsample2() const {
  Image out(width_ * 2, height_ * 2);
  for (std::size_t y = 0; y < out.height(); ++y) {
    for (std::size_t x = 0; x < out.width(); ++x) {
      out.at(x, y) = sample_bilinear(static_cast<double>(x) / 2.0,
                                     static_cast<double>(y) / 2.0);
    }
  }
  return out;
}

}  // namespace fast::img
