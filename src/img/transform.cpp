#include "img/transform.hpp"

#include <cmath>

namespace fast::img {

Affine Affine::similarity(double angle_rad, double scale, double cx, double cy,
                          double dx, double dy) {
  // Output-to-input mapping: to render the output as the source rotated by
  // +angle and scaled by s about (cx, cy), sample the source at the inverse
  // transform of each output pixel.
  const double inv_s = 1.0 / scale;
  const double c = std::cos(-angle_rad) * inv_s;
  const double s = std::sin(-angle_rad) * inv_s;
  Affine t;
  t.a00 = c;
  t.a01 = -s;
  t.a10 = s;
  t.a11 = c;
  // in = R * (out - center - d) + center
  const double ox = cx + dx;
  const double oy = cy + dy;
  t.tx = cx - (t.a00 * ox + t.a01 * oy);
  t.ty = cy - (t.a10 * ox + t.a11 * oy);
  return t;
}

Affine Affine::compose(const Affine& other) const noexcept {
  // (this ∘ other)(p) = this(other(p))
  Affine r;
  r.a00 = a00 * other.a00 + a01 * other.a10;
  r.a01 = a00 * other.a01 + a01 * other.a11;
  r.a10 = a10 * other.a00 + a11 * other.a10;
  r.a11 = a10 * other.a01 + a11 * other.a11;
  r.tx = a00 * other.tx + a01 * other.ty + tx;
  r.ty = a10 * other.tx + a11 * other.ty + ty;
  return r;
}

Image warp_affine(const Image& src, const Affine& t) {
  Image out(src.width(), src.height());
  for (std::size_t y = 0; y < out.height(); ++y) {
    float* row = out.row(y);
    const double oy = static_cast<double>(y);
    for (std::size_t x = 0; x < out.width(); ++x) {
      const double ox = static_cast<double>(x);
      const double ix = t.a00 * ox + t.a01 * oy + t.tx;
      const double iy = t.a10 * ox + t.a11 * oy + t.ty;
      row[x] = src.sample_bilinear(ix, iy);
    }
  }
  return out;
}

void add_gaussian_noise(Image& image, double stddev, util::Rng& rng) {
  if (stddev <= 0) return;
  for (float& p : image.pixels()) {
    p += static_cast<float>(rng.gaussian(0.0, stddev));
  }
  image.clamp01();
}

void adjust_illumination(Image& image, double gain, double bias) {
  for (float& p : image.pixels()) {
    p = static_cast<float>(gain * p + bias);
  }
  image.clamp01();
}

Image make_near_duplicate(const Image& src, const PerturbParams& params,
                          util::Rng& rng) {
  const double angle =
      rng.uniform(-params.max_rotation_rad, params.max_rotation_rad);
  const double scale = rng.uniform(params.min_scale, params.max_scale);
  const double dx =
      rng.uniform(-params.max_translate_px, params.max_translate_px);
  const double dy =
      rng.uniform(-params.max_translate_px, params.max_translate_px);
  const Affine t = Affine::similarity(
      angle, scale, static_cast<double>(src.width()) / 2.0,
      static_cast<double>(src.height()) / 2.0, dx, dy);
  Image out = warp_affine(src, t);
  adjust_illumination(out, rng.uniform(params.min_gain, params.max_gain),
                      rng.uniform(-params.max_bias, params.max_bias));
  add_gaussian_noise(out, rng.uniform(0.0, params.max_noise_stddev), rng);
  return out;
}

}  // namespace fast::img
