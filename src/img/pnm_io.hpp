// Minimal binary PGM (P5) reader/writer so examples can persist and inspect
// synthetic scenes without any external image dependency.
#pragma once

#include <string>

#include "img/image.hpp"

namespace fast::img {

/// Writes `image` as an 8-bit binary PGM file. Pixel values are clamped to
/// [0, 1] and scaled to [0, 255]. Throws std::runtime_error on I/O failure.
void write_pgm(const Image& image, const std::string& path);

/// Reads an 8-bit binary PGM file into a float image in [0, 1].
/// Throws std::runtime_error on malformed input or I/O failure.
Image read_pgm(const std::string& path);

}  // namespace fast::img
