#include "img/draw.hpp"

#include <algorithm>
#include <cmath>

namespace fast::img {

namespace {

struct ClipBox {
  std::size_t x0, y0, x1, y1;  // half-open [x0, x1) x [y0, y1)
  bool empty;
};

ClipBox clip(const Image& image, std::ptrdiff_t x0, std::ptrdiff_t y0,
             std::ptrdiff_t x1, std::ptrdiff_t y1) {
  ClipBox box{};
  const auto w = static_cast<std::ptrdiff_t>(image.width());
  const auto h = static_cast<std::ptrdiff_t>(image.height());
  x0 = std::clamp<std::ptrdiff_t>(x0, 0, w);
  x1 = std::clamp<std::ptrdiff_t>(x1, 0, w);
  y0 = std::clamp<std::ptrdiff_t>(y0, 0, h);
  y1 = std::clamp<std::ptrdiff_t>(y1, 0, h);
  box.empty = (x0 >= x1) || (y0 >= y1);
  box.x0 = static_cast<std::size_t>(x0);
  box.x1 = static_cast<std::size_t>(x1);
  box.y0 = static_cast<std::size_t>(y0);
  box.y1 = static_cast<std::size_t>(y1);
  return box;
}

}  // namespace

void fill_gradient(Image& image, float top, float bottom) {
  const std::size_t h = image.height();
  for (std::size_t y = 0; y < h; ++y) {
    const float t = h > 1 ? static_cast<float>(y) / static_cast<float>(h - 1)
                          : 0.0f;
    const float v = top + t * (bottom - top);
    float* row = image.row(y);
    std::fill(row, row + image.width(), v);
  }
}

void fill_rect(Image& image, std::ptrdiff_t x0, std::ptrdiff_t y0,
               std::ptrdiff_t x1, std::ptrdiff_t y1, float value) {
  const ClipBox box = clip(image, x0, y0, x1, y1);
  if (box.empty) return;
  for (std::size_t y = box.y0; y < box.y1; ++y) {
    float* row = image.row(y);
    std::fill(row + box.x0, row + box.x1, value);
  }
}

void fill_circle(Image& image, double cx, double cy, double radius,
                 float value) {
  if (radius <= 0) return;
  const auto x0 = static_cast<std::ptrdiff_t>(std::floor(cx - radius));
  const auto x1 = static_cast<std::ptrdiff_t>(std::ceil(cx + radius)) + 1;
  const auto y0 = static_cast<std::ptrdiff_t>(std::floor(cy - radius));
  const auto y1 = static_cast<std::ptrdiff_t>(std::ceil(cy + radius)) + 1;
  const ClipBox box = clip(image, x0, y0, x1, y1);
  if (box.empty) return;
  const double r2 = radius * radius;
  for (std::size_t y = box.y0; y < box.y1; ++y) {
    const double dy = static_cast<double>(y) - cy;
    float* row = image.row(y);
    for (std::size_t x = box.x0; x < box.x1; ++x) {
      const double dx = static_cast<double>(x) - cx;
      if (dx * dx + dy * dy <= r2) row[x] = value;
    }
  }
}

void fill_triangle(Image& image, double x0, double y0, double x1, double y1,
                   double x2, double y2, float value) {
  const auto bx0 = static_cast<std::ptrdiff_t>(
      std::floor(std::min({x0, x1, x2})));
  const auto bx1 = static_cast<std::ptrdiff_t>(
      std::ceil(std::max({x0, x1, x2}))) + 1;
  const auto by0 = static_cast<std::ptrdiff_t>(
      std::floor(std::min({y0, y1, y2})));
  const auto by1 = static_cast<std::ptrdiff_t>(
      std::ceil(std::max({y0, y1, y2}))) + 1;
  const ClipBox box = clip(image, bx0, by0, bx1, by1);
  if (box.empty) return;
  auto edge = [](double ax, double ay, double bx, double by, double px,
                 double py) {
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
  };
  // Winding-independent inside test: point is on the same side of all edges.
  for (std::size_t y = box.y0; y < box.y1; ++y) {
    float* row = image.row(y);
    const double py = static_cast<double>(y);
    for (std::size_t x = box.x0; x < box.x1; ++x) {
      const double px = static_cast<double>(x);
      const double e0 = edge(x0, y0, x1, y1, px, py);
      const double e1 = edge(x1, y1, x2, y2, px, py);
      const double e2 = edge(x2, y2, x0, y0, px, py);
      const bool all_nonneg = e0 >= 0 && e1 >= 0 && e2 >= 0;
      const bool all_nonpos = e0 <= 0 && e1 <= 0 && e2 <= 0;
      if (all_nonneg || all_nonpos) row[x] = value;
    }
  }
}

void add_texture(Image& image, std::ptrdiff_t x0, std::ptrdiff_t y0,
                 std::ptrdiff_t x1, std::ptrdiff_t y1, float amplitude,
                 std::uint64_t seed) {
  const ClipBox box = clip(image, x0, y0, x1, y1);
  if (box.empty) return;
  util::Rng rng(seed);
  // Sum of a handful of oriented sinusoids: cheap, smooth, deterministic,
  // and rich in local extrema for the DoG detector to latch onto.
  constexpr int kWaves = 5;
  double fx[kWaves], fy[kWaves], phase[kWaves], amp[kWaves];
  for (int w = 0; w < kWaves; ++w) {
    fx[w] = rng.uniform(0.05, 0.45);
    fy[w] = rng.uniform(0.05, 0.45);
    phase[w] = rng.uniform(0.0, 6.28318530717958647692);
    amp[w] = rng.uniform(0.3, 1.0);
  }
  double amp_sum = 0.0;
  for (int w = 0; w < kWaves; ++w) amp_sum += amp[w];
  for (std::size_t y = box.y0; y < box.y1; ++y) {
    float* row = image.row(y);
    for (std::size_t x = box.x0; x < box.x1; ++x) {
      double v = 0.0;
      for (int w = 0; w < kWaves; ++w) {
        v += amp[w] * std::sin(fx[w] * static_cast<double>(x) +
                               fy[w] * static_cast<double>(y) + phase[w]);
      }
      row[x] += static_cast<float>(v / amp_sum) * amplitude;
    }
  }
}

void scatter_blobs(Image& image, std::ptrdiff_t x0, std::ptrdiff_t y0,
                   std::ptrdiff_t x1, std::ptrdiff_t y1, std::size_t count,
                   double min_radius, double max_radius, std::uint64_t seed) {
  const ClipBox box = clip(image, x0, y0, x1, y1);
  if (box.empty) return;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const double cx = rng.uniform(static_cast<double>(box.x0),
                                  static_cast<double>(box.x1));
    const double cy = rng.uniform(static_cast<double>(box.y0),
                                  static_cast<double>(box.y1));
    const double r = rng.uniform(min_radius, max_radius);
    const float v = rng.bernoulli(0.5) ? rng.uniform(0.75, 1.0)
                                       : rng.uniform(0.0, 0.25);
    fill_circle(image, cx, cy, r, static_cast<float>(v));
  }
}

}  // namespace fast::img
