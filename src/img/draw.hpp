// Drawing primitives for the synthetic scene generator.
//
// The paper's workload is tourist photos of landmarks that occasionally
// contain a person of interest. We synthesize such scenes from geometric
// primitives and procedural texture so that near-duplicate structure (same
// landmark, slightly different viewpoint/lighting) is controllable and the
// ground truth is exact. All drawing blends with over-compositing on the
// single intensity channel.
#pragma once

#include <cstdint>

#include "img/image.hpp"
#include "util/rng.hpp"

namespace fast::img {

/// Fills the whole image with a vertical intensity gradient (sky-to-ground).
void fill_gradient(Image& image, float top, float bottom);

/// Draws a filled axis-aligned rectangle; coordinates are clipped.
void fill_rect(Image& image, std::ptrdiff_t x0, std::ptrdiff_t y0,
               std::ptrdiff_t x1, std::ptrdiff_t y1, float value);

/// Draws a filled circle; clipped at the borders.
void fill_circle(Image& image, double cx, double cy, double radius,
                 float value);

/// Draws a filled triangle (used for roofs / spires).
void fill_triangle(Image& image, double x0, double y0, double x1, double y1,
                   double x2, double y2, float value);

/// Adds band-limited procedural texture (sum of a few random sinusoids,
/// deterministic in `seed`) over a rectangular region. `amplitude` is the
/// peak intensity perturbation. Texture is what gives each landmark a stable,
/// repeatable set of DoG interest points.
void add_texture(Image& image, std::ptrdiff_t x0, std::ptrdiff_t y0,
                 std::ptrdiff_t x1, std::ptrdiff_t y1, float amplitude,
                 std::uint64_t seed);

/// Scatters small bright/dark blobs (windows, ornaments) in a region,
/// deterministic in `seed`; these produce strong, localizable keypoints.
void scatter_blobs(Image& image, std::ptrdiff_t x0, std::ptrdiff_t y0,
                   std::ptrdiff_t x1, std::ptrdiff_t y1, std::size_t count,
                   double min_radius, double max_radius, std::uint64_t seed);

}  // namespace fast::img
