#include "img/pnm_io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace fast::img {

namespace {

// Skips PNM whitespace and '#' comment lines, then reads one unsigned int.
std::size_t read_pnm_uint(std::istream& in) {
  int c = in.get();
  while (c != EOF) {
    if (c == '#') {
      while (c != EOF && c != '\n') c = in.get();
    } else if (!std::isspace(c)) {
      break;
    }
    c = in.get();
  }
  if (c == EOF) throw std::runtime_error("pgm: unexpected end of header");
  std::size_t value = 0;
  bool any = false;
  while (c != EOF && std::isdigit(c)) {
    value = value * 10 + static_cast<std::size_t>(c - '0');
    any = true;
    c = in.get();
  }
  if (!any) throw std::runtime_error("pgm: expected integer in header");
  return value;
}

}  // namespace

void write_pgm(const Image& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pgm: cannot open for write: " + path);
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  std::vector<std::uint8_t> row(image.width());
  for (std::size_t y = 0; y < image.height(); ++y) {
    const float* src = image.row(y);
    for (std::size_t x = 0; x < image.width(); ++x) {
      const float v = std::clamp(src[x], 0.0f, 1.0f);
      row[x] = static_cast<std::uint8_t>(v * 255.0f + 0.5f);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw std::runtime_error("pgm: write failed: " + path);
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pgm: cannot open for read: " + path);
  char magic[2] = {};
  in.read(magic, 2);
  if (magic[0] != 'P' || magic[1] != '5') {
    throw std::runtime_error("pgm: not a binary PGM (P5): " + path);
  }
  const std::size_t width = read_pnm_uint(in);
  const std::size_t height = read_pnm_uint(in);
  const std::size_t maxval = read_pnm_uint(in);
  if (maxval == 0 || maxval > 255) {
    throw std::runtime_error("pgm: unsupported maxval");
  }
  // Exactly one whitespace byte separates the header from pixel data; the
  // header parser above has already consumed it while scanning past digits.
  Image image(width, height);
  std::vector<std::uint8_t> row(width);
  const float scale = 1.0f / static_cast<float>(maxval);
  for (std::size_t y = 0; y < height; ++y) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    if (!in) throw std::runtime_error("pgm: truncated pixel data: " + path);
    float* dst = image.row(y);
    for (std::size_t x = 0; x < width; ++x) {
      dst[x] = static_cast<float>(row[x]) * scale;
    }
  }
  return image;
}

}  // namespace fast::img
