// Grayscale float image: the pixel substrate for the vision pipeline.
//
// The paper's feature pipeline (DoG + PCA-SIFT) operates on single-channel
// intensity images; we store row-major float32 in [0, 1]. The type follows
// the Core Guidelines value-semantics style (rule of zero, explicit
// dimensions, checked accessors in debug paths).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace fast::img {

class Image {
 public:
  Image() = default;

  Image(std::size_t width, std::size_t height, float fill = 0.0f)
      : width_(width), height_(height), pixels_(width * height, fill) {}

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }
  bool empty() const noexcept { return pixels_.empty(); }
  std::size_t pixel_count() const noexcept { return pixels_.size(); }

  float& at(std::size_t x, std::size_t y) noexcept {
    FAST_CHECK(x < width_ && y < height_);
    return pixels_[y * width_ + x];
  }

  float at(std::size_t x, std::size_t y) const noexcept {
    FAST_CHECK(x < width_ && y < height_);
    return pixels_[y * width_ + x];
  }

  /// Clamped access: coordinates outside the image are clamped to the border
  /// (replicate padding), the convention used by the Gaussian filters.
  float at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const noexcept;

  /// Bilinear sample at a real-valued position with border replication.
  float sample_bilinear(double x, double y) const noexcept;

  std::span<float> pixels() noexcept { return pixels_; }
  std::span<const float> pixels() const noexcept { return pixels_; }

  /// Pointer to the start of row y.
  const float* row(std::size_t y) const noexcept {
    FAST_CHECK(y < height_);
    return pixels_.data() + y * width_;
  }
  float* row(std::size_t y) noexcept {
    FAST_CHECK(y < height_);
    return pixels_.data() + y * width_;
  }

  /// Clamps every pixel into [0, 1].
  void clamp01() noexcept;

  /// Returns a copy downsampled by 2 (every other pixel; used between
  /// Gaussian-pyramid octaves where the image is already band-limited).
  Image downsample2() const;

  /// Returns a copy upsampled by 2 with bilinear interpolation (used for the
  /// optional -1 octave of the DoG detector).
  Image upsample2() const;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<float> pixels_;
};

}  // namespace fast::img
