// Photometric and geometric perturbations.
//
// Near-duplicate photos of the same landmark differ by small viewpoint
// changes (modeled as similarity/affine warps), illumination changes (gain +
// bias) and sensor noise. These transforms generate the duplicate clusters
// whose detection is the core of the paper's use case, and they double as the
// invariance tests for the SIFT/PCA-SIFT implementation.
#pragma once

#include "img/image.hpp"
#include "util/rng.hpp"

namespace fast::img {

/// 2x3 affine transform mapping output pixel coordinates to input
/// coordinates: in = A * out + t.
struct Affine {
  double a00 = 1, a01 = 0, a10 = 0, a11 = 1;
  double tx = 0, ty = 0;

  /// Similarity transform: rotate by `angle_rad`, scale by `scale`, about
  /// the image point (cx, cy), then translate by (dx, dy).
  static Affine similarity(double angle_rad, double scale, double cx,
                           double cy, double dx = 0, double dy = 0);

  /// Composes this transform after `other` (this ∘ other).
  Affine compose(const Affine& other) const noexcept;
};

/// Warps `src` through `transform` (output-to-input mapping) with bilinear
/// sampling and border replication. Output has the same dimensions as input.
Image warp_affine(const Image& src, const Affine& transform);

/// Adds i.i.d. Gaussian pixel noise with the given standard deviation.
void add_gaussian_noise(Image& image, double stddev, util::Rng& rng);

/// Applies illumination change: out = gain * in + bias, then clamps to [0,1].
void adjust_illumination(Image& image, double gain, double bias);

/// Parameters for a random near-duplicate perturbation.
struct PerturbParams {
  double max_rotation_rad = 0.05;   // ~±3 degrees (burst-shot variation)
  double min_scale = 0.96;
  double max_scale = 1.04;
  double max_translate_px = 4.0;
  double max_noise_stddev = 0.012;
  double min_gain = 0.90;
  double max_gain = 1.10;
  double max_bias = 0.04;
};

/// Draws a random perturbation from `params` and applies it, producing a
/// near-duplicate of `src` (same landmark, new "shot").
Image make_near_duplicate(const Image& src, const PerturbParams& params,
                          util::Rng& rng);

}  // namespace fast::img
