#!/bin/bash
# Runs every bench binary and tees each output into results/.
#
# Refuses to measure a non-Release tree: the committed perf trajectory must
# not silently degrade into debug-build numbers (set FAST_BENCH_ALLOW_DEBUG=1
# to override for local smoke runs). Note google-benchmark may still print a
# "Library was built as DEBUG" warning when the *system benchmark library*
# is a debug build; the guard below checks how our code was compiled.
set -u
cd "$(dirname "$0")"

BUILD_DIR="${FAST_BENCH_BUILD_DIR:-build}"
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${BUILD_DIR}/CMakeCache.txt" 2>/dev/null)
case "$build_type" in
  Release) ;;
  *)
    echo "ERROR: ${BUILD_DIR} is built as '${build_type:-unknown}', not Release." >&2
    echo "Benchmark results from non-Release builds are not comparable;" >&2
    echo "configure with -DCMAKE_BUILD_TYPE=Release (or point FAST_BENCH_BUILD_DIR" >&2
    echo "at a Release tree). Set FAST_BENCH_ALLOW_DEBUG=1 to run anyway." >&2
    if [ "${FAST_BENCH_ALLOW_DEBUG:-0}" != "1" ]; then
      exit 1
    fi
    echo "FAST_BENCH_ALLOW_DEBUG=1 set - continuing on a ${build_type:-unknown} build." >&2
    ;;
esac

for b in "${BUILD_DIR}"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "=== running $name ==="
  "$b" 2>&1 | tee "results/${name}.txt"
done
