#!/bin/bash
# Runs every bench binary and tees each output into results/.
set -u
cd "$(dirname "$0")"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "=== running $name ==="
  "$b" 2>&1 | tee "results/${name}.txt"
done
