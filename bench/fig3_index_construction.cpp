// Fig. 3 — Index construction latency, split into feature representation
// and index storage, for SIFT / PCA-SIFT / RNPE / FAST on both datasets.
//
// The paper reports whole-dataset construction seconds on its 256-node x
// 32-core cluster (21M / 39M images). We measure per-image simulated costs
// on the scaled datasets and report both the per-image numbers and the
// extrapolation to paper scale (mean per-image cost x paper image count /
// cluster cores), which is directly comparable to the figure.
#include <chrono>
#include <cstdio>
#include <thread>

#include "common.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace fast::bench {
namespace {

struct Row {
  const char* scheme;
  double fe_s;      // accumulated simulated feature-representation seconds
  double store_s;   // accumulated simulated index-storage seconds
};

void run_batch_construction(const DatasetEnv& env, const SchemeConfig& cfg);

void run_dataset(const workload::DatasetSpec& spec, std::size_t queries,
                 double paper_images) {
  DatasetEnv env = make_dataset_env(spec, queries);
  print_dataset_banner(env.dataset);
  SchemeConfig cfg;
  Schemes schemes = build_schemes(env, cfg);

  const auto n = static_cast<double>(env.dataset.photos.size());
  baseline::ExtractCosts extract;
  const double fast_fe = schemes.fast->config().feature_extract_s;

  const Row rows[] = {
      {"SIFT", extract.sift_s * n,
       schemes.sift_build.elapsed_s() - extract.sift_s * n},
      {"PCA-SIFT", extract.pca_sift_s * n,
       schemes.pca_build.elapsed_s() - extract.pca_sift_s * n},
      {"RNPE", extract.rnpe_s * n,
       schemes.rnpe_build.elapsed_s() - extract.rnpe_s * n},
      {"FAST", fast_fe * n, schemes.fast_build.elapsed_s() - fast_fe * n},
  };

  const double cores = static_cast<double>(cfg.cost.nodes) *
                       static_cast<double>(cfg.cost.cores_per_node);
  util::Table table({"scheme", "feat-rep/img", "storage/img",
                     "paper-scale feat-rep", "paper-scale storage",
                     "paper-scale total"});
  for (const Row& r : rows) {
    const double fe_img = r.fe_s / n;
    const double st_img = r.store_s / n;
    const double fe_paper = fe_img * paper_images / cores;
    const double st_paper = st_img * paper_images / cores;
    table.add_row({r.scheme, util::fmt_duration(fe_img),
                   util::fmt_duration(st_img), util::fmt_duration(fe_paper),
                   util::fmt_duration(st_paper),
                   util::fmt_duration(fe_paper + st_paper)});
  }
  table.print("Fig. 3 — index construction (" + env.dataset.spec.name + ")");

  // The paper's headline comparison: FAST's total improvement over
  // PCA-SIFT and RNPE.
  const double fast_total = rows[3].fe_s + rows[3].store_s;
  const double pca_total = rows[1].fe_s + rows[1].store_s;
  const double rnpe_total = rows[2].fe_s + rows[2].store_s;
  std::printf("FAST vs PCA-SIFT: %s faster;  FAST vs RNPE: %s faster\n",
              util::fmt_percent(1.0 - fast_total / pca_total).c_str(),
              util::fmt_percent(1.0 - fast_total / rnpe_total).c_str());

  dump_metrics(schemes.fast->metrics(), "fig3_" + env.dataset.spec.name);
  run_batch_construction(env, cfg);
}

/// Native wall-clock comparison of the per-image insert loop against the
/// batch-first path, which parallelises summarisation across a thread pool
/// before the (sequential) placement step.
void run_batch_construction(const DatasetEnv& env, const SchemeConfig& cfg) {
  using clock = std::chrono::steady_clock;
  const auto n = static_cast<double>(env.dataset.photos.size());

  std::vector<core::BatchImage> items;
  items.reserve(env.dataset.photos.size());
  for (const auto& photo : env.dataset.photos) {
    items.push_back(core::BatchImage{photo.id, &photo.image});
  }

  util::Table table({"path", "threads", "wall time", "images/s"});
  double seq_s = 0.0;
  {
    std::unique_ptr<core::FastIndex> index = build_fast_only(env, cfg);
    const auto t0 = clock::now();
    for (const auto& item : items) {
      index->insert(item.id, *item.image);
    }
    seq_s = std::chrono::duration<double>(clock::now() - t0).count();
    table.add_row({"insert loop", "1", util::fmt_duration(seq_s),
                   util::fmt_double(n / seq_s, 1)});
  }
  for (std::size_t threads : {2, 4, 8}) {
    std::unique_ptr<core::FastIndex> index = build_fast_only(env, cfg);
    util::ThreadPool pool(threads);
    const auto t0 = clock::now();
    index->insert_batch(items, &pool);
    const double batch_s =
        std::chrono::duration<double>(clock::now() - t0).count();
    table.add_row({"insert_batch", std::to_string(threads),
                   util::fmt_duration(batch_s),
                   util::fmt_double(n / batch_s, 1) + "  (" +
                       util::fmt_double(seq_s / batch_s, 2) + "x)"});
  }
  table.print("Fig. 3 addendum — native batch construction throughput (" +
              env.dataset.spec.name + ")");
  std::printf(
      "hardware threads: %u (batch speedup needs >1; on a single core the\n"
      "parallel summarise stage time-slices and throughput stays flat)\n",
      std::thread::hardware_concurrency());
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  std::printf("== bench fig3: index construction latency ==\n");
  bench::run_dataset(workload::DatasetSpec::wuhan(scale.wuhan_images),
                     scale.queries, 21e6);
  bench::run_dataset(workload::DatasetSpec::shanghai(scale.shanghai_images),
                     scale.queries, 39e6);
  return 0;
}
