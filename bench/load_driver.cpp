#include "load_driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "server/client.hpp"
#include "util/rng.hpp"

namespace fast::bench {

namespace {

using Clock = std::chrono::steady_clock;

double to_ms(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Per-connection tallies, merged into the shared Accum at thread exit.
struct ConnStats {
  std::vector<double> lat_ms;
  std::vector<double> net_ms;    ///< total - queue - exec, clamped >= 0
  std::vector<double> queue_ms;  ///< trailer queue_ns
  std::vector<double> exec_ms;   ///< trailer exec_ns
  std::size_t ok = 0;
  std::size_t retries = 0;
  std::size_t errors = 0;

  /// Splits one kOk response's observed latency using the negotiated
  /// server-timing trailer (no-op for legacy responses).
  void observe_timing(const server::Response& response, double total_ms) {
    if (!response.has_timing) return;
    const double queue = static_cast<double>(response.queue_ns) * 1e-6;
    const double exec = static_cast<double>(response.exec_ns) * 1e-6;
    queue_ms.push_back(queue);
    exec_ms.push_back(exec);
    net_ms.push_back(std::max(0.0, total_ms - queue - exec));
  }
};

/// Shared accumulator the per-connection threads merge into.
struct Accum {
  std::mutex mu;
  std::vector<double> latencies_ms;
  std::vector<double> net_ms;
  std::vector<double> queue_ms;
  std::vector<double> exec_ms;
  std::size_t ops = 0;
  std::size_t retries = 0;
  std::size_t errors = 0;

  void merge(ConnStats&& s) {
    std::lock_guard<std::mutex> lk(mu);
    latencies_ms.insert(latencies_ms.end(), s.lat_ms.begin(), s.lat_ms.end());
    net_ms.insert(net_ms.end(), s.net_ms.begin(), s.net_ms.end());
    queue_ms.insert(queue_ms.end(), s.queue_ms.begin(), s.queue_ms.end());
    exec_ms.insert(exec_ms.end(), s.exec_ms.begin(), s.exec_ms.end());
    ops += s.ok;
    retries += s.retries;
    errors += s.errors;
  }
};

struct OpChoice {
  enum Kind { kQuery, kInsert, kErase } kind = kQuery;
  std::uint64_t key = 0;
};

OpChoice choose_op(util::Rng& rng, const util::ZipfDistribution& zipf,
                   const LoadOptions& opt) {
  OpChoice choice;
  choice.key = static_cast<std::uint64_t>(zipf(rng));
  if (rng.bernoulli(opt.read_fraction)) {
    choice.kind = OpChoice::kQuery;
  } else {
    // Writes split 9:1 insert:erase, so the key space keeps churning
    // without emptying out.
    choice.kind = rng.bernoulli(0.1) ? OpChoice::kErase : OpChoice::kInsert;
  }
  return choice;
}

std::vector<std::uint8_t> encode_op(const OpChoice& choice,
                                    std::uint64_t seq,
                                    const LoadOptions& opt) {
  switch (choice.kind) {
    case OpChoice::kQuery:
      return server::encode_query(
          seq, static_cast<std::uint32_t>(opt.top_k),
          synth_signature(choice.key, opt.bloom_bits, opt.sig_bits_set));
    case OpChoice::kInsert:
      return server::encode_insert(
          seq, choice.key,
          synth_signature(choice.key, opt.bloom_bits, opt.sig_bits_set));
    case OpChoice::kErase:
      return server::encode_erase(seq, choice.key);
  }
  return server::encode_ping(seq);
}

/// Connect + optional kHello handshake: sent when a tenant id or the
/// server-timing capability is requested (legacy tenant-0, no-timing
/// connections stay hello-less).
bool connect_with_hello(server::Client* client, const LoadOptions& opt) {
  if (!client->connect(opt.host, opt.port).ok()) return false;
  if (opt.tenant != 0 || opt.want_timing) {
    const std::uint32_t caps =
        opt.want_timing ? server::kCapServerTiming : 0;
    const auto hello = client->hello(opt.tenant, caps);
    if (!hello.ok() || hello.value().status != server::Status::kOk) {
      return false;
    }
  }
  return true;
}

/// Closed loop: one outstanding request per connection; the response gates
/// the next send.
void closed_loop_conn(const LoadOptions& opt,
                      const util::ZipfDistribution& zipf, std::size_t conn_id,
                      Accum* accum) {
  server::Client client;
  ConnStats stats;
  if (!connect_with_hello(&client, opt)) {
    stats.errors = 1;
    accum->merge(std::move(stats));
    return;
  }
  util::Rng rng(opt.seed * 0x9e3779b9ULL + conn_id);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opt.duration_s));
  while (Clock::now() < deadline) {
    const OpChoice choice = choose_op(rng, zipf, opt);
    const std::uint64_t seq = client.next_seq();
    const std::vector<std::uint8_t> body = encode_op(choice, seq, opt);
    const Clock::time_point t0 = Clock::now();
    if (!client.send(body).ok()) {
      ++stats.errors;
      break;
    }
    server::Response response;
    if (!client.recv(&response).ok()) {
      ++stats.errors;
      break;
    }
    switch (response.status) {
      case server::Status::kOk: {
        ++stats.ok;
        const double total_ms = to_ms(Clock::now() - t0);
        stats.lat_ms.push_back(total_ms);
        stats.observe_timing(response, total_ms);
        break;
      }
      case server::Status::kRetryAfter:
        ++stats.retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::uint32_t>(response.retry_after_ms, 100)));
        break;
      default:
        ++stats.errors;
        break;
    }
  }
  accum->merge(std::move(stats));
}

/// Open loop: a sender paces exponential arrivals at the per-connection
/// rate and pipelines; a receiver matches responses by seq. The generator
/// never slows down with the server — overload surfaces as latency and
/// kRetryAfter, not as a reduced offered rate.
void open_loop_conn(const LoadOptions& opt, const util::ZipfDistribution& zipf,
                    std::size_t conn_id, double rate_per_conn, Accum* accum) {
  server::Client client;
  ConnStats stats;
  if (!connect_with_hello(&client, opt)) {
    stats.errors = 1;
    accum->merge(std::move(stats));
    return;
  }

  std::mutex pending_mu;
  std::unordered_map<std::uint64_t, Clock::time_point> pending;
  std::atomic<bool> sender_done{false};

  std::thread sender([&] {
    util::Rng rng(opt.seed * 0x517cc1b7ULL + conn_id);
    const Clock::time_point start = Clock::now();
    const Clock::time_point deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(opt.duration_s));
    Clock::time_point next = start;
    while (true) {
      const Clock::time_point now = Clock::now();
      if (now >= deadline) break;
      if (now < next) {
        std::this_thread::sleep_for(
            std::min<Clock::duration>(next - now,
                                      std::chrono::milliseconds(5)));
        continue;
      }
      const OpChoice choice = choose_op(rng, zipf, opt);
      const std::uint64_t seq = client.next_seq();
      const std::vector<std::uint8_t> body = encode_op(choice, seq, opt);
      {
        std::lock_guard<std::mutex> lk(pending_mu);
        pending.emplace(seq, Clock::now());
      }
      if (!client.send(body).ok()) {
        std::lock_guard<std::mutex> lk(pending_mu);
        pending.erase(seq);
        break;
      }
      next += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(rng.exponential(rate_per_conn)));
    }
    sender_done.store(true, std::memory_order_release);
  });

  // Receive until every sent request is answered: the server answers every
  // admitted or rejected frame, so once the sender stops, the pending set
  // drains to zero (or the connection errors out). recv() only blocks while
  // something is actually in flight.
  while (true) {
    bool empty;
    {
      std::lock_guard<std::mutex> lk(pending_mu);
      empty = pending.empty();
    }
    if (empty) {
      if (sender_done.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    server::Response response;
    if (!client.recv(&response).ok()) {
      ++stats.errors;
      break;
    }
    Clock::time_point t0{};
    bool known = false;
    {
      std::lock_guard<std::mutex> lk(pending_mu);
      const auto it = pending.find(response.seq);
      if (it != pending.end()) {
        t0 = it->second;
        known = true;
        pending.erase(it);
      }
    }
    switch (response.status) {
      case server::Status::kOk:
        ++stats.ok;
        if (known) {
          const double total_ms = to_ms(Clock::now() - t0);
          stats.lat_ms.push_back(total_ms);
          stats.observe_timing(response, total_ms);
        }
        break;
      case server::Status::kRetryAfter:
        ++stats.retries;
        break;
      default:
        ++stats.errors;
        break;
    }
  }
  sender.join();
  accum->merge(std::move(stats));
}

}  // namespace

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(std::max(0.0, std::ceil(rank) - 1.0),
                       static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

hash::SparseSignature synth_signature(std::uint64_t key,
                                      std::size_t bloom_bits,
                                      std::size_t bits_set) {
  util::SplitMix64 sm(key * 0x2545f4914f6cdd1dULL + 0xfa57);
  std::vector<std::uint32_t> bits;
  bits.reserve(bits_set);
  for (std::size_t i = 0; i < bits_set; ++i) {
    bits.push_back(static_cast<std::uint32_t>(sm.next() % bloom_bits));
  }
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  return hash::SparseSignature(std::move(bits),
                               static_cast<std::uint32_t>(bloom_bits));
}

LoadReport run_load(const LoadOptions& options) {
  const util::ZipfDistribution zipf(std::max<std::size_t>(1,
                                                          options.key_space),
                                    options.zipf_skew);
  Accum accum;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  const double rate_per_conn =
      options.arrival_rate > 0
          ? options.arrival_rate /
                static_cast<double>(std::max<std::size_t>(1,
                                                          options.connections))
          : 0.0;
  for (std::size_t i = 0; i < options.connections; ++i) {
    if (options.arrival_rate > 0) {
      threads.emplace_back([&, i] {
        open_loop_conn(options, zipf, i, rate_per_conn, &accum);
      });
    } else {
      threads.emplace_back([&, i] { closed_loop_conn(options, zipf, i,
                                                     &accum); });
    }
  }
  for (std::thread& t : threads) t.join();

  LoadReport report;
  report.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.ops = accum.ops;
  report.retries = accum.retries;
  report.errors = accum.errors;
  std::sort(accum.latencies_ms.begin(), accum.latencies_ms.end());
  report.p50_ms = percentile(accum.latencies_ms, 50.0);
  report.p99_ms = percentile(accum.latencies_ms, 99.0);
  report.p999_ms = percentile(accum.latencies_ms, 99.9);
  report.timing_samples = accum.queue_ms.size();
  if (report.timing_samples > 0) {
    std::sort(accum.net_ms.begin(), accum.net_ms.end());
    std::sort(accum.queue_ms.begin(), accum.queue_ms.end());
    std::sort(accum.exec_ms.begin(), accum.exec_ms.end());
    report.net_p50_ms = percentile(accum.net_ms, 50.0);
    report.net_p99_ms = percentile(accum.net_ms, 99.0);
    report.queue_p50_ms = percentile(accum.queue_ms, 50.0);
    report.queue_p99_ms = percentile(accum.queue_ms, 99.0);
    report.exec_p50_ms = percentile(accum.exec_ms, 50.0);
    report.exec_p99_ms = percentile(accum.exec_ms, 99.0);
  }
  return report;
}

std::vector<LoadReport> run_mixed_load(
    const LoadOptions& base, const std::vector<TenantLoad>& tenants) {
  std::vector<LoadReport> reports(tenants.size());
  std::vector<std::thread> runners;
  runners.reserve(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    runners.emplace_back([&base, &tenants, &reports, i] {
      const TenantLoad& row = tenants[i];
      LoadOptions opt = base;
      opt.tenant = row.tenant;
      opt.connections = row.connections;
      opt.read_fraction = row.read_fraction;
      opt.arrival_rate = row.arrival_rate;
      // Distinct streams per tenant even when the base seed is shared.
      opt.seed = base.seed + 0x1000003ULL * (row.tenant + 1);
      reports[i] = run_load(opt);
    });
  }
  for (std::thread& t : runners) t.join();
  return reports;
}

}  // namespace fast::bench
