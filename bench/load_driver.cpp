#include "load_driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "server/client.hpp"
#include "util/rng.hpp"

namespace fast::bench {

namespace {

using Clock = std::chrono::steady_clock;

double to_ms(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Shared accumulator the per-connection threads merge into.
struct Accum {
  std::mutex mu;
  std::vector<double> latencies_ms;
  std::size_t ops = 0;
  std::size_t retries = 0;
  std::size_t errors = 0;

  void merge(std::vector<double>&& lat, std::size_t ok, std::size_t retry,
             std::size_t err) {
    std::lock_guard<std::mutex> lk(mu);
    latencies_ms.insert(latencies_ms.end(), lat.begin(), lat.end());
    ops += ok;
    retries += retry;
    errors += err;
  }
};

struct OpChoice {
  enum Kind { kQuery, kInsert, kErase } kind = kQuery;
  std::uint64_t key = 0;
};

OpChoice choose_op(util::Rng& rng, const util::ZipfDistribution& zipf,
                   const LoadOptions& opt) {
  OpChoice choice;
  choice.key = static_cast<std::uint64_t>(zipf(rng));
  if (rng.bernoulli(opt.read_fraction)) {
    choice.kind = OpChoice::kQuery;
  } else {
    // Writes split 9:1 insert:erase, so the key space keeps churning
    // without emptying out.
    choice.kind = rng.bernoulli(0.1) ? OpChoice::kErase : OpChoice::kInsert;
  }
  return choice;
}

std::vector<std::uint8_t> encode_op(const OpChoice& choice,
                                    std::uint64_t seq,
                                    const LoadOptions& opt) {
  switch (choice.kind) {
    case OpChoice::kQuery:
      return server::encode_query(
          seq, static_cast<std::uint32_t>(opt.top_k),
          synth_signature(choice.key, opt.bloom_bits, opt.sig_bits_set));
    case OpChoice::kInsert:
      return server::encode_insert(
          seq, choice.key,
          synth_signature(choice.key, opt.bloom_bits, opt.sig_bits_set));
    case OpChoice::kErase:
      return server::encode_erase(seq, choice.key);
  }
  return server::encode_ping(seq);
}

/// Closed loop: one outstanding request per connection; the response gates
/// the next send.
/// Connect + optional tenant handshake (LoadOptions::tenant != 0).
bool connect_with_hello(server::Client* client, const LoadOptions& opt) {
  if (!client->connect(opt.host, opt.port).ok()) return false;
  if (opt.tenant != 0) {
    const auto hello = client->hello(opt.tenant);
    if (!hello.ok() || hello.value().status != server::Status::kOk) {
      return false;
    }
  }
  return true;
}

void closed_loop_conn(const LoadOptions& opt,
                      const util::ZipfDistribution& zipf, std::size_t conn_id,
                      Accum* accum) {
  server::Client client;
  if (!connect_with_hello(&client, opt)) {
    accum->merge({}, 0, 0, 1);
    return;
  }
  util::Rng rng(opt.seed * 0x9e3779b9ULL + conn_id);
  std::vector<double> lat;
  std::size_t ok = 0, retry = 0, err = 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opt.duration_s));
  while (Clock::now() < deadline) {
    const OpChoice choice = choose_op(rng, zipf, opt);
    const std::uint64_t seq = client.next_seq();
    const std::vector<std::uint8_t> body = encode_op(choice, seq, opt);
    const Clock::time_point t0 = Clock::now();
    if (!client.send(body).ok()) {
      ++err;
      break;
    }
    server::Response response;
    if (!client.recv(&response).ok()) {
      ++err;
      break;
    }
    switch (response.status) {
      case server::Status::kOk:
        ++ok;
        lat.push_back(to_ms(Clock::now() - t0));
        break;
      case server::Status::kRetryAfter:
        ++retry;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::uint32_t>(response.retry_after_ms, 100)));
        break;
      default:
        ++err;
        break;
    }
  }
  accum->merge(std::move(lat), ok, retry, err);
}

/// Open loop: a sender paces exponential arrivals at the per-connection
/// rate and pipelines; a receiver matches responses by seq. The generator
/// never slows down with the server — overload surfaces as latency and
/// kRetryAfter, not as a reduced offered rate.
void open_loop_conn(const LoadOptions& opt, const util::ZipfDistribution& zipf,
                    std::size_t conn_id, double rate_per_conn, Accum* accum) {
  server::Client client;
  if (!connect_with_hello(&client, opt)) {
    accum->merge({}, 0, 0, 1);
    return;
  }

  std::mutex pending_mu;
  std::unordered_map<std::uint64_t, Clock::time_point> pending;
  std::atomic<bool> sender_done{false};

  std::thread sender([&] {
    util::Rng rng(opt.seed * 0x517cc1b7ULL + conn_id);
    const Clock::time_point start = Clock::now();
    const Clock::time_point deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(opt.duration_s));
    Clock::time_point next = start;
    while (true) {
      const Clock::time_point now = Clock::now();
      if (now >= deadline) break;
      if (now < next) {
        std::this_thread::sleep_for(
            std::min<Clock::duration>(next - now,
                                      std::chrono::milliseconds(5)));
        continue;
      }
      const OpChoice choice = choose_op(rng, zipf, opt);
      const std::uint64_t seq = client.next_seq();
      const std::vector<std::uint8_t> body = encode_op(choice, seq, opt);
      {
        std::lock_guard<std::mutex> lk(pending_mu);
        pending.emplace(seq, Clock::now());
      }
      if (!client.send(body).ok()) {
        std::lock_guard<std::mutex> lk(pending_mu);
        pending.erase(seq);
        break;
      }
      next += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(rng.exponential(rate_per_conn)));
    }
    sender_done.store(true, std::memory_order_release);
  });

  std::vector<double> lat;
  std::size_t ok = 0, retry = 0, err = 0;
  // Receive until every sent request is answered: the server answers every
  // admitted or rejected frame, so once the sender stops, the pending set
  // drains to zero (or the connection errors out). recv() only blocks while
  // something is actually in flight.
  while (true) {
    bool empty;
    {
      std::lock_guard<std::mutex> lk(pending_mu);
      empty = pending.empty();
    }
    if (empty) {
      if (sender_done.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    server::Response response;
    if (!client.recv(&response).ok()) {
      ++err;
      break;
    }
    Clock::time_point t0{};
    bool known = false;
    {
      std::lock_guard<std::mutex> lk(pending_mu);
      const auto it = pending.find(response.seq);
      if (it != pending.end()) {
        t0 = it->second;
        known = true;
        pending.erase(it);
      }
    }
    switch (response.status) {
      case server::Status::kOk:
        ++ok;
        if (known) lat.push_back(to_ms(Clock::now() - t0));
        break;
      case server::Status::kRetryAfter:
        ++retry;
        break;
      default:
        ++err;
        break;
    }
  }
  sender.join();
  accum->merge(std::move(lat), ok, retry, err);
}

}  // namespace

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(std::max(0.0, std::ceil(rank) - 1.0),
                       static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

hash::SparseSignature synth_signature(std::uint64_t key,
                                      std::size_t bloom_bits,
                                      std::size_t bits_set) {
  util::SplitMix64 sm(key * 0x2545f4914f6cdd1dULL + 0xfa57);
  std::vector<std::uint32_t> bits;
  bits.reserve(bits_set);
  for (std::size_t i = 0; i < bits_set; ++i) {
    bits.push_back(static_cast<std::uint32_t>(sm.next() % bloom_bits));
  }
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  return hash::SparseSignature(std::move(bits),
                               static_cast<std::uint32_t>(bloom_bits));
}

LoadReport run_load(const LoadOptions& options) {
  const util::ZipfDistribution zipf(std::max<std::size_t>(1,
                                                          options.key_space),
                                    options.zipf_skew);
  Accum accum;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  const double rate_per_conn =
      options.arrival_rate > 0
          ? options.arrival_rate /
                static_cast<double>(std::max<std::size_t>(1,
                                                          options.connections))
          : 0.0;
  for (std::size_t i = 0; i < options.connections; ++i) {
    if (options.arrival_rate > 0) {
      threads.emplace_back([&, i] {
        open_loop_conn(options, zipf, i, rate_per_conn, &accum);
      });
    } else {
      threads.emplace_back([&, i] { closed_loop_conn(options, zipf, i,
                                                     &accum); });
    }
  }
  for (std::thread& t : threads) t.join();

  LoadReport report;
  report.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.ops = accum.ops;
  report.retries = accum.retries;
  report.errors = accum.errors;
  std::sort(accum.latencies_ms.begin(), accum.latencies_ms.end());
  report.p50_ms = percentile(accum.latencies_ms, 50.0);
  report.p99_ms = percentile(accum.latencies_ms, 99.0);
  report.p999_ms = percentile(accum.latencies_ms, 99.9);
  return report;
}

std::vector<LoadReport> run_mixed_load(
    const LoadOptions& base, const std::vector<TenantLoad>& tenants) {
  std::vector<LoadReport> reports(tenants.size());
  std::vector<std::thread> runners;
  runners.reserve(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    runners.emplace_back([&base, &tenants, &reports, i] {
      const TenantLoad& row = tenants[i];
      LoadOptions opt = base;
      opt.tenant = row.tenant;
      opt.connections = row.connections;
      opt.read_fraction = row.read_fraction;
      opt.arrival_rate = row.arrival_rate;
      // Distinct streams per tenant even when the base seed is shared.
      opt.seed = base.seed + 0x1000003ULL * (row.tenant + 1);
      reports[i] = run_load(opt);
    });
  }
  for (std::thread& t : runners) t.join();
  return reports;
}

}  // namespace fast::bench
