// Ablation — shard count of the distributed index (DESIGN.md §5): insert
// routing cost, scatter-gather query latency and result fidelity as the
// cluster grows from 1 to 32 shards.
//
// `--skew` mode — Bloofi-style shard routing (DESIGN.md §3h) under a
// zipfian hot-query workload: the same query stream against a routing-off
// and a routing-on deployment, comparing shards-probed p50/p99, skip
// counts, and simulated latency. Results must be identical (summaries have
// no false negatives); exits nonzero otherwise or when routing never
// skips.
#include <cstdio>
#include <cstring>

#include "common.hpp"
#include "core/sharded_index.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

void run(const workload::DatasetSpec& spec, std::size_t queries) {
  DatasetEnv env = make_dataset_env(spec, queries);
  print_dataset_banner(env.dataset);

  // Reference single-node index for fidelity comparison.
  SchemeConfig scfg;
  std::unique_ptr<core::FastIndex> single = build_fast_only(env, scfg);
  std::vector<hash::SparseSignature> sigs;
  for (const auto& photo : env.dataset.photos) {
    sigs.push_back(single->summarize(photo.image));
    single->insert_signature(photo.id, sigs.back());
  }
  std::vector<hash::SparseSignature> qsigs;
  for (const auto& q : env.queries) {
    qsigs.push_back(single->summarize(q.image));
  }

  util::Table table({"shards", "query latency (sim)", "top-1 agreement",
                     "src recall@5"});
  for (std::size_t shards : {1, 2, 4, 8, 16, 32}) {
    core::FastConfig cfg;
    cfg.pca_sift = env.pca_cfg;
    core::ShardedFastIndex index(cfg, env.pca, shards, 2);
    for (std::size_t i = 0; i < env.dataset.photos.size(); ++i) {
      index.insert_signature(env.dataset.photos[i].id, sigs[i]);
    }
    util::OnlineStats latency;
    std::size_t agree = 0, recall = 0;
    for (std::size_t qi = 0; qi < qsigs.size(); ++qi) {
      const core::QueryResult sharded = index.query_signature(qsigs[qi], 5);
      const core::QueryResult ref = single->query_signature(qsigs[qi], 5);
      latency.add(sharded.cost.elapsed_s());
      if (!sharded.hits.empty() && !ref.hits.empty() &&
          sharded.hits.front().score == ref.hits.front().score) {
        ++agree;
      }
      recall += contains_id(sharded.hits, env.queries[qi].source);
    }
    const auto nq = static_cast<double>(qsigs.size());
    table.add_row({std::to_string(shards),
                   util::fmt_duration(latency.mean()),
                   util::fmt_percent(static_cast<double>(agree) / nq, 1),
                   util::fmt_percent(static_cast<double>(recall) / nq, 1)});
  }
  table.print("Ablation — distributed index shard count (" +
              env.dataset.spec.name + ")");
}

/// Zipfian hot-query stream against routing-off vs routing-on twins of the
/// same deployment. Returns false when results diverge or routing never
/// skips a shard.
bool run_skew(const workload::DatasetSpec& spec, std::size_t queries,
              std::size_t shards) {
  DatasetEnv env = make_dataset_env(spec, queries);
  print_dataset_banner(env.dataset);

  SchemeConfig scfg;
  std::unique_ptr<core::FastIndex> front = build_fast_only(env, scfg);
  std::vector<hash::SparseSignature> sigs;
  for (const auto& photo : env.dataset.photos) {
    sigs.push_back(front->summarize(photo.image));
  }
  std::vector<hash::SparseSignature> qsigs;
  for (const auto& q : env.queries) {
    qsigs.push_back(front->summarize(q.image));
  }

  core::FastConfig cfg_off;
  cfg_off.pca_sift = env.pca_cfg;
  core::FastConfig cfg_on = cfg_off;
  cfg_on.shard_routing_bits = 12;
  core::ShardedFastIndex off(cfg_off, env.pca, shards, 2);
  core::ShardedFastIndex on(cfg_on, env.pca, shards, 2);
  for (std::size_t i = 0; i < env.dataset.photos.size(); ++i) {
    off.insert_signature(env.dataset.photos[i].id, sigs[i]);
    on.insert_signature(env.dataset.photos[i].id, sigs[i]);
  }

  // Zipf-skewed query popularity: a few hot near-duplicate queries dominate,
  // so most scatters chase keys resident on a handful of shards.
  const std::size_t draws = qsigs.size() * 8;
  util::Rng rng(0x51e2);
  const util::ZipfDistribution zipf(qsigs.size(), 1.1);
  util::OnlineStats lat_off, lat_on;
  bool identical = true;
  for (std::size_t d = 0; d < draws; ++d) {
    const hash::SparseSignature& q = qsigs[zipf(rng) - 1];
    const core::QueryResult a = off.query_signature(q, 5);
    const core::QueryResult b = on.query_signature(q, 5);
    lat_off.add(a.cost.elapsed_s());
    lat_on.add(b.cost.elapsed_s());
    identical &= a.hits.size() == b.hits.size();
    for (std::size_t h = 0; identical && h < a.hits.size(); ++h) {
      identical &= a.hits[h].id == b.hits[h].id &&
                   a.hits[h].score == b.hits[h].score;
    }
  }

  const util::MetricsSnapshot m_off = off.metrics().snapshot();
  const util::MetricsSnapshot m_on = on.metrics().snapshot();
  const auto& probed_off = m_off.histograms.at("sharded.shards_probed");
  const auto& probed_on = m_on.histograms.at("sharded.shards_probed");
  const std::uint64_t skips = m_on.counters.at("shard.routing_skips");

  const auto fmt1 = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return std::string(buf);
  };
  util::Table table({"routing", "shards probed p50", "p99", "skips",
                     "mean query latency (sim)"});
  table.add_row({"off", fmt1(probed_off.percentile(50)),
                 fmt1(probed_off.percentile(99)),
                 std::to_string(m_off.counters.at("shard.routing_skips")),
                 util::fmt_duration(lat_off.mean())});
  table.add_row({"on (bits=12)", fmt1(probed_on.percentile(50)),
                 fmt1(probed_on.percentile(99)), std::to_string(skips),
                 util::fmt_duration(lat_on.mean())});
  table.print("Ablation — shard routing under zipfian skew (" +
              std::to_string(shards) + " shards, " + std::to_string(draws) +
              " queries)");

  // The distributed win is message count: every skipped shard is one
  // scatter hop and one gather reply that never happen.
  const std::uint64_t net_off = m_off.counters.at("sharded.scatter_msgs") +
                                m_off.counters.at("sharded.gather_msgs");
  const std::uint64_t net_on = m_on.counters.at("sharded.scatter_msgs") +
                               m_on.counters.at("sharded.gather_msgs");
  const bool ok = identical && skips > 0 && net_on < net_off &&
                  probed_on.percentile(99) <= probed_off.percentile(99) &&
                  lat_on.mean() <= lat_off.mean();
  std::printf(
      "shard routing (skew): routing_skips=%llu, probed p99 %.1f -> %.1f, "
      "net msgs %llu -> %llu, latency %.3gs -> %.3gs, results=%s -> %s\n",
      static_cast<unsigned long long>(skips), probed_off.percentile(99),
      probed_on.percentile(99), static_cast<unsigned long long>(net_off),
      static_cast<unsigned long long>(net_on), lat_off.mean(), lat_on.mean(),
      identical ? "identical" : "DIVERGED", ok ? "OK" : "FAIL");
  return ok;
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  bool skew = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skew") == 0) skew = true;
  }
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  if (skew) {
    std::printf("== bench ablation_shards --skew: routing under skew ==\n");
    // A wide deployment (paper: 256 nodes) is where routing pays off: a
    // query's near-duplicate cluster is resident on a small fraction of the
    // shards, so most scatter hops are provably wasted.
    return bench::run_skew(workload::DatasetSpec::wuhan(scale.wuhan_images),
                           scale.queries, /*shards=*/32)
               ? 0
               : 1;
  }
  std::printf("== bench ablation_shards: distributed index ==\n");
  bench::run(workload::DatasetSpec::wuhan(scale.wuhan_images), scale.queries);
  return 0;
}
