// Ablation — shard count of the distributed index (DESIGN.md §5): insert
// routing cost, scatter-gather query latency and result fidelity as the
// cluster grows from 1 to 32 shards.
#include <cstdio>

#include "common.hpp"
#include "core/sharded_index.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

void run(const workload::DatasetSpec& spec, std::size_t queries) {
  DatasetEnv env = make_dataset_env(spec, queries);
  print_dataset_banner(env.dataset);

  // Reference single-node index for fidelity comparison.
  SchemeConfig scfg;
  std::unique_ptr<core::FastIndex> single = build_fast_only(env, scfg);
  std::vector<hash::SparseSignature> sigs;
  for (const auto& photo : env.dataset.photos) {
    sigs.push_back(single->summarize(photo.image));
    single->insert_signature(photo.id, sigs.back());
  }
  std::vector<hash::SparseSignature> qsigs;
  for (const auto& q : env.queries) {
    qsigs.push_back(single->summarize(q.image));
  }

  util::Table table({"shards", "query latency (sim)", "top-1 agreement",
                     "src recall@5"});
  for (std::size_t shards : {1, 2, 4, 8, 16, 32}) {
    core::FastConfig cfg;
    cfg.pca_sift = env.pca_cfg;
    core::ShardedFastIndex index(cfg, env.pca, shards, 2);
    for (std::size_t i = 0; i < env.dataset.photos.size(); ++i) {
      index.insert_signature(env.dataset.photos[i].id, sigs[i]);
    }
    util::OnlineStats latency;
    std::size_t agree = 0, recall = 0;
    for (std::size_t qi = 0; qi < qsigs.size(); ++qi) {
      const core::QueryResult sharded = index.query_signature(qsigs[qi], 5);
      const core::QueryResult ref = single->query_signature(qsigs[qi], 5);
      latency.add(sharded.cost.elapsed_s());
      if (!sharded.hits.empty() && !ref.hits.empty() &&
          sharded.hits.front().score == ref.hits.front().score) {
        ++agree;
      }
      recall += contains_id(sharded.hits, env.queries[qi].source);
    }
    const auto nq = static_cast<double>(qsigs.size());
    table.add_row({std::to_string(shards),
                   util::fmt_duration(latency.mean()),
                   util::fmt_percent(static_cast<double>(agree) / nq, 1),
                   util::fmt_percent(static_cast<double>(recall) / nq, 1)});
  }
  table.print("Ablation — distributed index shard count (" +
              env.dataset.spec.name + ")");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  std::printf("== bench ablation_shards: distributed index ==\n");
  bench::run(workload::DatasetSpec::wuhan(scale.wuhan_images), scale.queries);
  return 0;
}
