// fig_serving — sustained serving throughput and tail latency of the
// network front door (DESIGN.md §3g).
//
// Starts an in-process fast::server over a tiered, writable engine,
// preloads a zipf key space, then measures:
//   1. closed-loop sweep: connections 1..N, 90/10 read/write zipf mix —
//      sustained QPS and p50/p99/p999 per concurrency level;
//   2. open-loop sweep: offered arrival rates around the closed-loop peak
//      — where latency degrades and admission control starts shedding
//      (kRetryAfter) instead of queueing without bound.
// Finishes with a Prometheus scrape through the wire (kMetrics) proving
// the serving counters export alongside the pipeline metrics, and — with
// observability on — an HTTP admin-plane check (DESIGN.md §3j): /metrics,
// /healthz and /varz answered by a stock HTTP GET while the engine is
// loaded.
//
//   fig_serving [duration_s_per_point] [preload_keys] [observability_0_1]
//   (default 2 10000 1; observability=0 disables server-timing
//   negotiation AND the admin plane, for overhead A/B comparisons)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/query_engine.hpp"
#include "core/tiered_index.hpp"
#include "load_driver.hpp"
#include "server/client.hpp"
#include "server/http_admin.hpp"
#include "server/server.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/vecmath.hpp"

namespace fast::bench {
namespace {

vision::PcaModel placeholder_pca() {
  vision::PcaModel model;
  const std::size_t input_dim = 578, output_dim = 36;
  model.mean.assign(input_dim, 0.0f);
  model.eigenvalues.assign(output_dim, 1.0f / static_cast<float>(input_dim));
  util::Rng rng(0xfa57);
  model.components.resize(output_dim);
  for (auto& row : model.components) {
    row.resize(input_dim);
    for (auto& v : row) v = static_cast<float>(rng.gaussian());
    util::normalize_l2(row);
  }
  return model;
}

std::string fmt(double v, int digits) { return util::fmt_double(v, digits); }

void add_report_row(util::Table& table, const std::string& label,
                    const LoadReport& r) {
  table.add_row({label, std::to_string(r.ops), fmt(r.qps(), 0),
                 fmt(r.p50_ms, 3), fmt(r.p99_ms, 3), fmt(r.p999_ms, 3),
                 std::to_string(r.retries), std::to_string(r.errors)});
}

/// Open-loop row with the server-timing breakdown columns.
void add_timed_row(util::Table& table, const std::string& label,
                   const LoadReport& r) {
  table.add_row({label, std::to_string(r.ops), fmt(r.qps(), 0),
                 fmt(r.p50_ms, 3), fmt(r.p99_ms, 3), fmt(r.net_p99_ms, 3),
                 fmt(r.queue_p99_ms, 3), fmt(r.exec_p99_ms, 3),
                 std::to_string(r.retries), std::to_string(r.errors)});
}

int run(double duration_s, std::size_t preload, bool observability) {
  core::FastConfig config;
  config.tier.enabled = true;
  core::TieredIndex index(config, placeholder_pca());
  core::QueryEngine engine(index);

  server::ServerOptions options;
  options.port = 0;  // ephemeral
  // The mixed-tenant section measures the query lane's isolation from a
  // bulk tenant; favor queries strongly (bulk still progresses — see the
  // bulk_ops check below and the no-starvation proof in qos_test).
  options.query_weight = 8;
  server::Server srv(engine, options);
  const storage::Status st = srv.start();
  if (!st.ok()) {
    std::fprintf(stderr, "fig_serving: start failed: %s\n",
                 st.message().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (workers=%zu queue=%zu "
              "observability=%d)\n",
              srv.port(), options.workers, options.queue_depth,
              observability ? 1 : 0);

  // Admin plane on an ephemeral port (observability runs only).
  std::unique_ptr<server::HttpAdmin> admin;
  if (observability) {
    admin = std::make_unique<server::HttpAdmin>(engine, &srv,
                                                server::HttpAdminOptions{});
    const storage::Status admin_st = admin->start();
    if (!admin_st.ok()) {
      std::fprintf(stderr, "fig_serving: admin start failed: %s\n",
                   admin_st.message().c_str());
      return 1;
    }
    std::printf("admin plane on 127.0.0.1:%u\n", admin->port());
  }

  LoadOptions base;
  base.port = srv.port();
  base.duration_s = duration_s;
  base.key_space = preload;
  base.bloom_bits = config.bloom_bits;
  base.want_timing = observability;

  // Preload through the wire so the sweep queries a populated index.
  {
    server::Client client;
    if (!client.connect(base.host, base.port).ok()) {
      std::fprintf(stderr, "fig_serving: connect failed\n");
      return 1;
    }
    const std::size_t kBatch = 256;
    for (std::size_t id = 1; id <= preload; id += kBatch) {
      std::vector<std::uint64_t> ids;
      std::vector<hash::SparseSignature> sigs;
      for (std::size_t j = id; j <= preload && j < id + kBatch; ++j) {
        ids.push_back(j);
        sigs.push_back(
            synth_signature(j, base.bloom_bits, base.sig_bits_set));
      }
      const auto r = client.insert_batch(ids, sigs);
      if (!r.ok() || r.value().status != server::Status::kOk) {
        std::fprintf(stderr, "fig_serving: preload failed\n");
        return 1;
      }
    }
    std::printf("preloaded %zu keys\n", preload);
  }

  // 1. Closed-loop concurrency sweep.
  util::Table closed({"conns", "ops", "qps", "p50 ms", "p99 ms", "p999 ms",
                      "retry", "err"});
  double peak_qps = 0.0;
  for (const std::size_t conns : {1, 2, 4, 8, 16}) {
    LoadOptions opt = base;
    opt.connections = conns;
    const LoadReport r = run_load(opt);
    peak_qps = std::max(peak_qps, r.qps());
    add_report_row(closed, std::to_string(conns), r);
    if (r.errors != 0) {
      std::fprintf(stderr, "fig_serving: closed-loop errors\n");
      return 1;
    }
  }
  closed.print("Serving — closed loop, zipf(0.99) 90/10 read/write");

  // 2. Open-loop arrival sweep around the closed-loop peak: tail latency
  // and shed rate as offered load crosses capacity. With observability on,
  // the negotiated server-timing trailer splits p99 into net (wire +
  // client) vs queue (admission to pickup) vs exec (engine work) — the
  // queue column is what grows as offered load crosses capacity.
  util::Table open(
      observability
          ? std::vector<std::string>{"offered", "ops", "qps", "p50 ms",
                                     "p99 ms", "net p99", "queue p99",
                                     "exec p99", "retry", "err"}
          : std::vector<std::string>{"offered", "ops", "qps", "p50 ms",
                                     "p99 ms", "p999 ms", "retry", "err"});
  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    LoadOptions opt = base;
    opt.connections = 8;
    opt.arrival_rate = std::max(100.0, peak_qps * frac);
    const LoadReport r = run_load(opt);
    if (observability) {
      add_timed_row(open, fmt(opt.arrival_rate, 0), r);
    } else {
      add_report_row(open, fmt(opt.arrival_rate, 0), r);
    }
  }
  open.print("Serving — open loop, offered rate vs. tail latency");

  // 3. Mixed tenant matrix (QoS, DESIGN.md §3i): a query-only tenant's
  // tail latency with and without a bulk-ingest tenant hammering the
  // other lane. The weighted two-lane dispatch should keep the query p99
  // under combined load within ~2x of the query-only baseline while the
  // bulk tenant still makes progress.
  {
    LoadOptions alone = base;
    alone.tenant = 1;
    alone.connections = 8;
    alone.read_fraction = 1.0;
    const LoadReport baseline = run_load(alone);

    std::vector<TenantLoad> matrix;
    matrix.push_back({/*tenant=*/1, /*connections=*/8,
                      /*read_fraction=*/1.0, /*arrival_rate=*/0.0});
    matrix.push_back({/*tenant=*/2, /*connections=*/4,
                      /*read_fraction=*/0.0, /*arrival_rate=*/0.0});
    const std::vector<LoadReport> mixed = run_mixed_load(base, matrix);

    util::Table qos({"tenant", "ops", "qps", "p50 ms", "p99 ms", "p999 ms",
                     "retry", "err"});
    add_report_row(qos, "1 alone (queries)", baseline);
    add_report_row(qos, "1 mixed (queries)", mixed[0]);
    add_report_row(qos, "2 mixed (bulk)", mixed[1]);
    qos.print("Serving — mixed tenant matrix (query vs. bulk lanes)");
    const double ratio =
        baseline.p99_ms > 0 ? mixed[0].p99_ms / baseline.p99_ms : 0.0;
    std::printf("qos: query p99 alone=%.3fms mixed=%.3fms ratio=%.2fx "
                "bulk_ops=%zu\n",
                baseline.p99_ms, mixed[0].p99_ms, ratio, mixed[1].ops);
    if (mixed[0].errors != 0 || mixed[1].errors != 0 || mixed[1].ops == 0) {
      std::fprintf(stderr, "fig_serving: mixed tenant errors\n");
      return 1;
    }
    if (ratio > 2.0) {
      std::fprintf(stderr,
                   "fig_serving: WARNING query p99 degraded %.2fx under "
                   "bulk load (target <= 2x)\n",
                   ratio);
    }
  }

  // 4. Prometheus scrape through the wire.
  {
    server::Client client;
    if (!client.connect(base.host, base.port).ok()) {
      std::fprintf(stderr, "fig_serving: scrape connect failed\n");
      return 1;
    }
    const auto r = client.metrics();
    if (!r.ok() || r.value().status != server::Status::kOk) {
      std::fprintf(stderr, "fig_serving: metrics scrape failed\n");
      return 1;
    }
    const std::string& text = r.value().text;
    std::printf("prometheus scrape: %zu bytes, server_* series %s\n",
                text.size(),
                text.find("server_requests") != std::string::npos
                    ? "present"
                    : "MISSING");
    if (text.find("server_requests") == std::string::npos) return 1;
  }

  // 5. Admin plane over plain HTTP (observability runs): the same series
  // from a stock GET /metrics, liveness/readiness, and /varz rates.
  if (admin != nullptr) {
    int status = 0;
    std::string body;
    if (!server::http_get("127.0.0.1", admin->port(), "/metrics", &status,
                          &body) ||
        status != 200 ||
        body.find("server_requests") == std::string::npos ||
        body.find("process_rss_bytes") == std::string::npos) {
      std::fprintf(stderr, "fig_serving: admin /metrics check failed\n");
      return 1;
    }
    if (!server::http_get("127.0.0.1", admin->port(), "/healthz", &status,
                          &body) ||
        status != 200) {
      std::fprintf(stderr, "fig_serving: admin /healthz check failed\n");
      return 1;
    }
    if (!server::http_get("127.0.0.1", admin->port(), "/varz", &status,
                          &body) ||
        status != 200 || body.find("\"rates\"") == std::string::npos) {
      std::fprintf(stderr, "fig_serving: admin /varz check failed\n");
      return 1;
    }
    std::printf("admin plane: /metrics /healthz /varz ok\n");
  }

  srv.stop();
  if (admin != nullptr) admin->stop();
  std::printf("graceful stop: connections=%zu running=%d\n",
              srv.connection_count(), srv.running() ? 1 : 0);
  return 0;
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  double duration_s = 2.0;
  std::size_t preload = 10000;
  bool observability = true;
  if (argc > 1) duration_s = std::atof(argv[1]);
  if (argc > 2) preload = static_cast<std::size_t>(std::atoll(argv[2]));
  if (argc > 3) observability = std::atoi(argv[3]) != 0;
  if (duration_s <= 0 || duration_s > 600) duration_s = 2.0;
  std::printf("== bench fig_serving: network front door ==\n");
  return fast::bench::run(duration_s, preload, observability);
}
