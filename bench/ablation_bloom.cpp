// Ablation — Bloom summary geometry (DESIGN.md §5): filter width m,
// quantization cell size and descriptor group size vs. the signature
// separation (source vs unrelated Jaccard) and retrieval recall.
#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

void run(const workload::DatasetSpec& spec, std::size_t queries) {
  DatasetEnv env = make_dataset_env(spec, queries);
  print_dataset_banner(env.dataset);

  util::Table table({"m(bits)", "cell", "group", "sig bytes", "src J",
                     "cross J", "src recall@5"});
  for (std::size_t bits : {4096, 16384, 65536}) {
    for (float cell : {1.0f, 2.0f, 3.0f}) {
      core::FastConfig cfg;
      cfg.bloom_bits = bits;
      cfg.lsh.dim = bits;
      cfg.quantize_cell = cell;
      SchemeConfig scfg;
      std::unique_ptr<core::FastIndex> index =
          build_fast_only(env, scfg, cfg);

      // Signature stats.
      std::vector<hash::SparseSignature> sigs;
      util::OnlineStats bytes;
      for (const auto& photo : env.dataset.photos) {
        sigs.push_back(index->summarize(photo.image));
        bytes.add(static_cast<double>(sigs.back().storage_bytes()));
        index->insert_signature(photo.id, sigs.back());
      }
      util::OnlineStats src_j, cross_j;
      std::size_t recall = 0;
      for (const auto& q : env.queries) {
        const auto qs = index->summarize(q.image);
        for (std::size_t i = 0; i < sigs.size(); ++i) {
          const double j = hash::SparseSignature::jaccard(qs, sigs[i]);
          if (i == q.source) {
            src_j.add(j);
          } else if (env.dataset.photos[i].landmark != q.landmark) {
            cross_j.add(j);
          }
        }
        recall += contains_id(index->query_signature(qs, 5).hits, q.source);
      }
      table.add_row(
          {std::to_string(bits), util::fmt_double(cell, 1),
           std::to_string(index->config().quantize_group_dims),
           util::fmt_bytes(bytes.mean()), util::fmt_double(src_j.mean(), 3),
           util::fmt_double(cross_j.mean(), 3),
           util::fmt_percent(static_cast<double>(recall) /
                                 static_cast<double>(env.queries.size()),
                             1)});
    }
  }
  table.print("Ablation — Bloom summary geometry (" + env.dataset.spec.name +
              ")");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  std::printf("== bench ablation_bloom: summary geometry ==\n");
  bench::run(workload::DatasetSpec::wuhan(scale.wuhan_images), scale.queries);
  return 0;
}
