#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>

#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/scene_generator.hpp"

namespace fast::bench {

BenchScale BenchScale::from_args(int argc, char** argv) {
  BenchScale scale;
  if (argc > 1 && std::atoi(argv[1]) > 0) {
    scale.wuhan_images = static_cast<std::size_t>(std::atoi(argv[1]));
  }
  if (argc > 2 && std::atoi(argv[2]) > 0) {
    scale.shanghai_images = static_cast<std::size_t>(std::atoi(argv[2]));
  } else {
    // Preserve Table II's 21:39 ratio when only Wuhan is overridden.
    scale.shanghai_images = scale.wuhan_images * 39 / 21;
  }
  if (argc > 3 && std::atoi(argv[3]) > 0) {
    scale.queries = static_cast<std::size_t>(std::atoi(argv[3]));
  }
  return scale;
}

DatasetEnv make_dataset_env(const workload::DatasetSpec& spec,
                            std::size_t queries) {
  DatasetEnv env;
  env.dataset = workload::SceneGenerator(spec).generate();
  std::vector<img::Image> sample;
  const std::size_t train_n = std::min<std::size_t>(16, env.dataset.photos.size());
  for (std::size_t i = 0; i < train_n; ++i) {
    sample.push_back(env.dataset.photos[i].image);
  }
  env.pca = vision::train_pca_sift(sample, env.pca_cfg, 1500);
  env.queries = workload::make_dup_queries(env.dataset, queries,
                                           0xbe9c ^ spec.seed);
  env.cal_queries = workload::make_dup_queries(env.dataset, 12,
                                               0xca1 ^ spec.seed);
  return env;
}

Schemes build_schemes(const DatasetEnv& env, const SchemeConfig& cfg) {
  Schemes s;
  baseline::SiftBaselineConfig scfg;
  scfg.max_keypoints = cfg.max_keypoints;
  scfg.cache_pages = cfg.cache_pages;
  s.sift = std::make_unique<baseline::SiftBaseline>(scfg, cfg.cost);

  baseline::PcaSiftBaselineConfig pcfg;
  pcfg.max_keypoints = cfg.max_keypoints;
  pcfg.cache_pages = cfg.cache_pages;
  pcfg.pca_sift = env.pca_cfg;
  s.pca_sift =
      std::make_unique<baseline::PcaSiftBaseline>(pcfg, cfg.cost, env.pca);

  baseline::RnpeConfig rcfg;
  s.rnpe = std::make_unique<baseline::Rnpe>(rcfg, cfg.cost);

  s.fast = build_fast_only(env, cfg);

  for (const auto& photo : env.dataset.photos) {
    s.sift_build.merge(s.sift->insert(photo.id, photo.image).cost);
    s.pca_build.merge(s.pca_sift->insert(photo.id, photo.image).cost);
    s.rnpe_build.merge(s.rnpe
                           ->insert(photo.id, photo.geo_x, photo.geo_y,
                                    photo.landmark, photo.view)
                           .cost);
    s.fast_build.merge(s.fast->insert(photo.id, photo.image).cost);
  }
  return s;
}

std::unique_ptr<core::FastIndex> build_fast_only(const DatasetEnv& env,
                                                 const SchemeConfig& cfg,
                                                 core::FastConfig base) {
  base.pca_sift = env.pca_cfg;
  base.max_keypoints = cfg.max_keypoints;
  base.cost = cfg.cost;
  auto index = std::make_unique<core::FastIndex>(base, env.pca);
  // Calibration (needed by the p-stable backend; harmless for MinHash).
  std::vector<hash::SparseSignature> corpus_sample, query_sample;
  const std::size_t sample_n =
      std::min<std::size_t>(48, env.dataset.photos.size());
  for (std::size_t i = 0; i < sample_n; ++i) {
    corpus_sample.push_back(index->summarize(env.dataset.photos[i].image));
  }
  for (const auto& q : env.cal_queries) {
    query_sample.push_back(index->summarize(q.image));
  }
  util::ThreadPool pool;
  index->calibrate_scale(query_sample, corpus_sample, &pool);
  return index;
}

void print_dataset_banner(const workload::Dataset& dataset) {
  std::printf(
      "dataset %-9s: %zu images (scaled stand-in for Table II), "
      "%zu landmarks, %s of original photo data\n",
      dataset.spec.name.c_str(), dataset.photos.size(),
      dataset.spec.landmarks,
      util::fmt_bytes(static_cast<double>(dataset.total_file_bytes())).c_str());
}

void dump_metrics(const util::MetricsRegistry& registry,
                  const std::string& name) {
  const char* override_dir = std::getenv("FAST_METRICS_DIR");
  const std::string dir = override_dir != nullptr ? override_dir : "results";
  try {
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/" + name + "_metrics.json";
    registry.write_json(path);
    std::printf("metrics: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics dump failed for %s: %s\n", name.c_str(),
                 e.what());
  }
}

bool contains_id(const std::vector<core::ScoredId>& hits,
                 std::uint64_t wanted) {
  for (const auto& h : hits) {
    if (h.id == wanted) return true;
  }
  return false;
}

}  // namespace fast::bench
