#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string_view>

#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "workload/scene_generator.hpp"

namespace fast::bench {

BenchScale BenchScale::from_args(int argc, char** argv) {
  BenchScale scale;
  // Environment first (FAST_TRACE et al.), then explicit flags on top, so
  // `--trace` wins over an exported FAST_TRACE=0.01.
  util::configure_global_tracer_from_env();
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      util::TraceOptions opts = util::Tracer::global().options();
      opts.sample_rate =
          arg == "--trace" ? 1.0 : std::atof(arg.data() + sizeof("--trace=") - 1);
      util::Tracer::global().configure(opts);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 0 && std::atoi(positional[0]) > 0) {
    scale.wuhan_images = static_cast<std::size_t>(std::atoi(positional[0]));
  }
  if (positional.size() > 1 && std::atoi(positional[1]) > 0) {
    scale.shanghai_images = static_cast<std::size_t>(std::atoi(positional[1]));
  } else {
    // Preserve Table II's 21:39 ratio when only Wuhan is overridden.
    scale.shanghai_images = scale.wuhan_images * 39 / 21;
  }
  if (positional.size() > 2 && std::atoi(positional[2]) > 0) {
    scale.queries = static_cast<std::size_t>(std::atoi(positional[2]));
  }
  return scale;
}

DatasetEnv make_dataset_env(const workload::DatasetSpec& spec,
                            std::size_t queries) {
  DatasetEnv env;
  env.dataset = workload::SceneGenerator(spec).generate();
  std::vector<img::Image> sample;
  const std::size_t train_n = std::min<std::size_t>(16, env.dataset.photos.size());
  for (std::size_t i = 0; i < train_n; ++i) {
    sample.push_back(env.dataset.photos[i].image);
  }
  env.pca = vision::train_pca_sift(sample, env.pca_cfg, 1500);
  env.queries = workload::make_dup_queries(env.dataset, queries,
                                           0xbe9c ^ spec.seed);
  env.cal_queries = workload::make_dup_queries(env.dataset, 12,
                                               0xca1 ^ spec.seed);
  return env;
}

Schemes build_schemes(const DatasetEnv& env, const SchemeConfig& cfg) {
  Schemes s;
  baseline::SiftBaselineConfig scfg;
  scfg.max_keypoints = cfg.max_keypoints;
  scfg.cache_pages = cfg.cache_pages;
  s.sift = std::make_unique<baseline::SiftBaseline>(scfg, cfg.cost);

  baseline::PcaSiftBaselineConfig pcfg;
  pcfg.max_keypoints = cfg.max_keypoints;
  pcfg.cache_pages = cfg.cache_pages;
  pcfg.pca_sift = env.pca_cfg;
  s.pca_sift =
      std::make_unique<baseline::PcaSiftBaseline>(pcfg, cfg.cost, env.pca);

  baseline::RnpeConfig rcfg;
  s.rnpe = std::make_unique<baseline::Rnpe>(rcfg, cfg.cost);

  s.fast = build_fast_only(env, cfg);

  for (const auto& photo : env.dataset.photos) {
    s.sift_build.merge(s.sift->insert(photo.id, photo.image).cost);
    s.pca_build.merge(s.pca_sift->insert(photo.id, photo.image).cost);
    s.rnpe_build.merge(s.rnpe
                           ->insert(photo.id, photo.geo_x, photo.geo_y,
                                    photo.landmark, photo.view)
                           .cost);
    s.fast_build.merge(s.fast->insert(photo.id, photo.image).cost);
  }
  return s;
}

std::unique_ptr<core::FastIndex> build_fast_only(const DatasetEnv& env,
                                                 const SchemeConfig& cfg,
                                                 core::FastConfig base) {
  base.pca_sift = env.pca_cfg;
  base.max_keypoints = cfg.max_keypoints;
  base.cost = cfg.cost;
  auto index = std::make_unique<core::FastIndex>(base, env.pca);
  // Calibration (needed by the p-stable backend; harmless for MinHash).
  std::vector<hash::SparseSignature> corpus_sample, query_sample;
  const std::size_t sample_n =
      std::min<std::size_t>(48, env.dataset.photos.size());
  for (std::size_t i = 0; i < sample_n; ++i) {
    corpus_sample.push_back(index->summarize(env.dataset.photos[i].image));
  }
  for (const auto& q : env.cal_queries) {
    query_sample.push_back(index->summarize(q.image));
  }
  util::ThreadPool pool;
  index->calibrate_scale(query_sample, corpus_sample, &pool);
  return index;
}

void print_dataset_banner(const workload::Dataset& dataset) {
  std::printf(
      "dataset %-9s: %zu images (scaled stand-in for Table II), "
      "%zu landmarks, %s of original photo data\n",
      dataset.spec.name.c_str(), dataset.photos.size(),
      dataset.spec.landmarks,
      util::fmt_bytes(static_cast<double>(dataset.total_file_bytes())).c_str());
}

void dump_metrics(const util::MetricsRegistry& registry,
                  const std::string& name) {
  const char* override_dir = std::getenv("FAST_METRICS_DIR");
  const std::string dir = override_dir != nullptr ? override_dir : "results";
  try {
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/" + name + "_metrics.json";
    registry.write_json(path);
    std::printf("metrics: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics dump failed for %s: %s\n", name.c_str(),
                 e.what());
  }
}

void dump_trace(const std::string& name) {
  util::Tracer& tracer = util::Tracer::global();
  const util::Tracer::Stats stats = tracer.stats();
  if (!tracer.enabled() && stats.spans_recorded == 0) return;
  const char* trace_dir = std::getenv("FAST_TRACE_DIR");
  const char* metrics_dir = std::getenv("FAST_METRICS_DIR");
  const std::string dir = trace_dir != nullptr     ? trace_dir
                          : metrics_dir != nullptr ? metrics_dir
                                                   : "results";
  try {
    std::filesystem::create_directories(dir);
    const std::string trace_path = dir + "/" + name + ".trace.json";
    const std::string profiles_path = dir + "/" + name + ".query_profiles.json";
    tracer.write_chrome_trace(trace_path);
    tracer.write_profiles(profiles_path);
    std::printf(
        "trace: %s (%llu spans, %llu/%llu requests sampled, %llu slow, "
        "%llu dropped)\n",
        trace_path.c_str(),
        static_cast<unsigned long long>(stats.spans_recorded),
        static_cast<unsigned long long>(stats.requests_sampled),
        static_cast<unsigned long long>(stats.requests_seen),
        static_cast<unsigned long long>(stats.slow_queries),
        static_cast<unsigned long long>(stats.spans_dropped));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace dump failed for %s: %s\n", name.c_str(),
                 e.what());
  }
  // Per-configuration scoping: the tracer is process-global, so without this
  // reset a bench's second configuration would re-export (and mis-attribute)
  // every span the first one recorded.
  tracer.reset();
}

bool contains_id(const std::vector<core::ScoredId>& hits,
                 std::uint64_t wanted) {
  for (const auto& h : hits) {
    if (h.id == wanted) return true;
  }
  return false;
}

}  // namespace fast::bench
