// Table IV — Space overhead normalized to SIFT, on both datasets.
//
// Each scheme's index_bytes() counts what it would persist per image:
// SIFT/PCA-SIFT feature blobs + SQL rows, RNPE location records + view
// thumbnails + R-tree nodes, FAST sparse signatures + cuckoo tables +
// correlation groups.
#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

void run_dataset(const workload::DatasetSpec& spec) {
  DatasetEnv env = make_dataset_env(spec, 4);
  print_dataset_banner(env.dataset);
  SchemeConfig cfg;
  Schemes schemes = build_schemes(env, cfg);

  const auto sift_b = static_cast<double>(schemes.sift->index_bytes());
  const auto pca_b = static_cast<double>(schemes.pca_sift->index_bytes());
  const auto rnpe_b = static_cast<double>(schemes.rnpe->index_bytes());
  const auto fast_b = static_cast<double>(schemes.fast->index_bytes());
  const auto n = static_cast<double>(env.dataset.photos.size());

  util::Table table({"scheme", "index bytes", "bytes/image", "vs SIFT"});
  auto row = [&](const char* name, double bytes) {
    table.add_row({name, util::fmt_bytes(bytes), util::fmt_bytes(bytes / n),
                   util::fmt_double(bytes / sift_b, 3)});
  };
  row("SIFT", sift_b);
  row("PCA-SIFT", pca_b);
  row("RNPE", rnpe_b);
  row("FAST", fast_b);
  table.print("Table IV — space overhead normalized to SIFT (" +
              env.dataset.spec.name + ")");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  std::printf("== bench table4: space overhead ==\n");
  bench::run_dataset(workload::DatasetSpec::wuhan(scale.wuhan_images));
  bench::run_dataset(workload::DatasetSpec::shanghai(scale.shanghai_images));
  return 0;
}
