// Recovery bench — durable ingest and crash-recovery timing for the
// snapshot+WAL persistence layer (DESIGN.md §3d). Two experiments:
//
//  1. Durable ingest throughput vs. the group-commit knob
//     (DurabilityOptions::wal_sync_every): every record is WAL-logged, but
//     fsync frequency sets how much of the disk barrier each record pays.
//
//  2. Recovery cost vs. index size: snapshot write time and size, restart
//     from snapshot + a short WAL tail, and worst-case restart from a full
//     WAL replay (no snapshot), with the replay rate in records/s.
//
// Signatures are synthetic (no image pipeline) so the numbers isolate the
// persistence layer itself. argv[1] scales the record counts, argv[2] sets
// the ingest-experiment record count.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/fast_index.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace fast::bench {
namespace {

core::FastConfig bench_config() {
  core::FastConfig cfg;
  cfg.cuckoo.capacity = 4096;  // tables still double proactively past 80%
  return cfg;
}

/// Random ~100-set-bit signature, the shape the SM stage produces.
hash::SparseSignature synthetic_signature(std::uint64_t id,
                                          std::size_t bloom_bits) {
  util::Rng rng(id * 0x9e3779b97f4a7c15ULL + 0xf16);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(bloom_bits / 101));
    if (cur >= bloom_bits) break;
    bits.push_back(cur);
  }
  return hash::SparseSignature(bits, bloom_bits);
}

/// Bench-local stand-in eigenspace: recovery never projects descriptors, so
/// the model only has to exist (and round-trip through the snapshot).
vision::PcaModel synthetic_pca() {
  vision::PcaModel model;
  const std::size_t d_in = 578, d_out = 36;
  model.mean.assign(d_in, 0.0f);
  model.eigenvalues.assign(d_out, 1.0f / static_cast<float>(d_in));
  util::Rng rng(0xbe9c);
  model.components.resize(d_out);
  for (auto& row : model.components) {
    row.resize(d_in);
    for (auto& v : row) v = static_cast<float>(rng.gaussian());
  }
  return model;
}

std::string fresh_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("fast_fig_recovery_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

core::FastIndex open_durable(const std::string& dir, std::size_t sync_every,
                             core::RecoveryStats* stats = nullptr) {
  core::DurabilityOptions opts;
  opts.dir = dir;
  opts.wal_sync_every = sync_every;
  auto opened = core::FastIndex::open_or_recover(bench_config(),
                                                 synthetic_pca(), opts, stats);
  if (!opened.ok()) {
    std::fprintf(stderr, "open_or_recover(%s) failed: %s\n", dir.c_str(),
                 opened.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(opened).value();
}

void insert_range(core::FastIndex& index, std::uint64_t begin,
                  std::uint64_t end) {
  const std::size_t bits = index.config().bloom_bits;
  for (std::uint64_t id = begin; id < end; ++id) {
    index.insert_signature(id, synthetic_signature(id, bits));
  }
}

std::uintmax_t snapshot_bytes(const std::string& dir) {
  std::uintmax_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0) total += entry.file_size();
  }
  return total;
}

/// Experiment 1: WAL-logged ingest throughput vs. fsync cadence.
void run_ingest(std::size_t records) {
  util::Table table({"sync every", "records", "wall", "records/s"});
  for (const std::size_t sync_every : {std::size_t{1}, std::size_t{8},
                                       std::size_t{64}, std::size_t{512}}) {
    const std::string dir = fresh_dir("ingest_" + std::to_string(sync_every));
    core::FastIndex index = open_durable(dir, sync_every);
    util::WallTimer timer;
    insert_range(index, 0, records);
    const double secs = timer.elapsed_seconds();
    table.add_row({std::to_string(sync_every), std::to_string(records),
                   util::fmt_duration(secs),
                   util::fmt_double(static_cast<double>(records) / secs, 0)});
    std::filesystem::remove_all(dir);
    // One artifact per fsync cadence: wal.append/wal.sync spans from one
    // configuration must not leak into the next one's trace.
    dump_trace("fig_recovery_ingest_sync" + std::to_string(sync_every));
  }
  table.print("Recovery bench — durable ingest vs. wal_sync_every");
}

/// Experiment 2: snapshot + restart cost as the index grows.
void run_recovery(const std::vector<std::size_t>& sizes) {
  constexpr std::size_t kIngestSyncEvery = 512;  // ingest is not under test
  util::Table table({"records", "snapshot", "snap write", "recover snap+tail",
                     "tail replayed", "recover full WAL", "replay rec/s"});
  for (const std::size_t n : sizes) {
    const std::size_t tail = n / 8;

    // Snapshot path: N records, snapshot, then a WAL tail of N/8. The
    // writer is closed (scope exit) before reopening so its buffered tail
    // reaches the filesystem — recovery reads what a restart would see.
    const std::string snap_dir = fresh_dir("snap_" + std::to_string(n));
    double snap_secs = 0;
    {
      core::FastIndex index = open_durable(snap_dir, kIngestSyncEvery);
      insert_range(index, 0, n);
      util::WallTimer timer;
      const storage::Status status = index.save_snapshot();
      if (!status.ok()) {
        std::fprintf(stderr, "save_snapshot failed: %s\n",
                     status.to_string().c_str());
        std::exit(1);
      }
      snap_secs = timer.elapsed_seconds();
      insert_range(index, n, n + tail);
    }
    core::RecoveryStats stats;
    util::WallTimer reopen_timer;
    const core::FastIndex reopened =
        open_durable(snap_dir, kIngestSyncEvery, &stats);
    const double reopen_secs = reopen_timer.elapsed_seconds();
    if (!stats.loaded_snapshot || stats.replayed_records != tail ||
        reopened.size() != n + tail) {
      std::fprintf(stderr, "unexpected recovery shape at n=%zu\n", n);
      std::exit(1);
    }

    // Worst case: the same record count with no snapshot at all.
    const std::string wal_dir = fresh_dir("wal_" + std::to_string(n));
    {
      core::FastIndex wal_only = open_durable(wal_dir, kIngestSyncEvery);
      insert_range(wal_only, 0, n + tail);
    }
    core::RecoveryStats wal_stats;
    util::WallTimer replay_timer;
    const core::FastIndex replayed =
        open_durable(wal_dir, kIngestSyncEvery, &wal_stats);
    const double replay_secs = replay_timer.elapsed_seconds();
    if (wal_stats.loaded_snapshot || wal_stats.replayed_records != n + tail ||
        replayed.size() != n + tail) {
      std::fprintf(stderr, "unexpected full-replay shape at n=%zu\n", n);
      std::exit(1);
    }

    table.add_row(
        {std::to_string(n),
         util::fmt_bytes(static_cast<double>(snapshot_bytes(snap_dir))),
         util::fmt_duration(snap_secs), util::fmt_duration(reopen_secs),
         std::to_string(stats.replayed_records),
         util::fmt_duration(replay_secs),
         util::fmt_double(static_cast<double>(n + tail) / replay_secs, 0)});
    std::filesystem::remove_all(wal_dir);
    std::filesystem::remove_all(snap_dir);
    dump_trace("fig_recovery_n" + std::to_string(n));
  }
  table.print(
      "Recovery bench — snapshot size/write and restart cost vs. records");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  std::printf("== bench fig_recovery: snapshot + WAL restart cost ==\n");
  fast::util::configure_global_tracer_from_env();
  std::size_t scale = 1;
  std::size_t ingest_records = 2000;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      fast::util::TraceOptions opts = fast::util::Tracer::global().options();
      opts.sample_rate =
          arg == "--trace" ? 1.0 : std::atof(arg.c_str() + sizeof("--trace=") - 1);
      fast::util::Tracer::global().configure(opts);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 0) {
    scale = static_cast<std::size_t>(std::atoi(positional[0]));
  }
  if (positional.size() > 1) {
    ingest_records = static_cast<std::size_t>(std::atoi(positional[1]));
  }
  fast::bench::run_ingest(ingest_records);
  fast::bench::run_recovery(
      {1000 * scale, 4000 * scale, 16000 * scale});
  return 0;
}
