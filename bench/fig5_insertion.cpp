// Fig. 5 — Latency of inserting new images (10,000 ... 50,000), after an
// initial index build, for all four schemes on both datasets.
//
// The figure reports the *storage/indexing* latency of the new images (the
// paper notes all schemes share similar feature-extraction costs; FAST's
// advantage is its O(1) indexing). We measure per-insert simulated storage
// cost on a scaled stream of fresh images and report batch totals for the
// paper's batch sizes, scheduled across the cluster's nodes.
#include <cstdio>

#include "common.hpp"
#include "img/transform.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

void run_dataset(const workload::DatasetSpec& spec, std::size_t stream_n) {
  DatasetEnv env = make_dataset_env(spec, 4);
  print_dataset_banner(env.dataset);
  SchemeConfig cfg;
  Schemes schemes = build_schemes(env, cfg);

  // Fresh images to insert: new shots of existing views.
  util::Rng rng(0x1245 ^ spec.seed);
  img::PerturbParams params;
  baseline::ExtractCosts extract;
  const double fast_fe = schemes.fast->config().feature_extract_s;

  std::vector<double> sift_cost, pca_cost, rnpe_cost, fast_cost;
  const std::uint64_t base_id = env.dataset.photos.size();
  for (std::size_t i = 0; i < stream_n; ++i) {
    const auto& src =
        env.dataset.photos[rng.uniform_u64(env.dataset.photos.size())];
    const img::Image shot = img::make_near_duplicate(src.image, params, rng);
    const std::uint64_t id = base_id + i;
    // Storage-only cost: total insert cost minus the extraction constant.
    sift_cost.push_back(schemes.sift->insert(id, shot).cost.elapsed_s() -
                        extract.sift_s);
    pca_cost.push_back(schemes.pca_sift->insert(id, shot).cost.elapsed_s() -
                       extract.pca_sift_s);
    rnpe_cost.push_back(
        schemes.rnpe
            ->insert(id, src.geo_x + rng.gaussian(0, 0.2),
                     src.geo_y + rng.gaussian(0, 0.2), src.landmark, src.view)
            .cost.elapsed_s() -
        extract.rnpe_s);
    fast_cost.push_back(schemes.fast->insert(id, shot).cost.elapsed_s() -
                        fast_fe);
  }

  auto mean = [](const std::vector<double>& xs) {
    double s = 0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
  };
  // Per-insert mean storage costs; inserts of a batch spread across the
  // cluster's nodes (ingest is disk-bound on each node's local store).
  const double slots = static_cast<double>(cfg.cost.nodes);
  util::Table table({"new images", "SIFT", "PCA-SIFT", "RNPE", "FAST"});
  for (std::size_t batch = 10000; batch <= 50000; batch += 10000) {
    const double b = static_cast<double>(batch);
    table.add_row({std::to_string(batch),
                   util::fmt_duration(mean(sift_cost) * b / slots),
                   util::fmt_duration(mean(pca_cost) * b / slots),
                   util::fmt_duration(mean(rnpe_cost) * b / slots),
                   util::fmt_duration(mean(fast_cost) * b / slots)});
  }
  table.print("Fig. 5 — insertion (storage/indexing) latency (" +
              env.dataset.spec.name + ")");
  std::printf("per-insert storage cost: SIFT %s, PCA-SIFT %s, RNPE %s, "
              "FAST %s\n",
              util::fmt_duration(mean(sift_cost)).c_str(),
              util::fmt_duration(mean(pca_cost)).c_str(),
              util::fmt_duration(mean(rnpe_cost)).c_str(),
              util::fmt_duration(mean(fast_cost)).c_str());
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  std::printf("== bench fig5: insertion latency ==\n");
  bench::run_dataset(workload::DatasetSpec::wuhan(scale.wuhan_images),
                     scale.queries);
  bench::run_dataset(workload::DatasetSpec::shanghai(scale.shanghai_images),
                     scale.queries);
  return 0;
}
