// Fig. 5 — Latency of inserting new images (10,000 ... 50,000), after an
// initial index build, for all four schemes on both datasets.
//
// The figure reports the *storage/indexing* latency of the new images (the
// paper notes all schemes share similar feature-extraction costs; FAST's
// advantage is its O(1) indexing). We measure per-insert simulated storage
// cost on a scaled stream of fresh images and report batch totals for the
// paper's batch sizes, scheduled across the cluster's nodes.
// `--churn` switches to the tiered-ingest companion experiment: a
// multi-thread ingest sweep (mutable flat index vs tiered memtable lanes)
// plus a sustained insert/erase churn phase with concurrent queries,
// checked for exactness against a flat ground-truth index rebuilt from the
// final live set. `--churn=smoke` runs a scaled-down slice for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <thread>

#include "common.hpp"
#include "core/concurrent_index.hpp"
#include "img/transform.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fast::bench {
namespace {

void run_dataset(const workload::DatasetSpec& spec, std::size_t stream_n) {
  DatasetEnv env = make_dataset_env(spec, 4);
  print_dataset_banner(env.dataset);
  SchemeConfig cfg;
  Schemes schemes = build_schemes(env, cfg);

  // Fresh images to insert: new shots of existing views.
  util::Rng rng(0x1245 ^ spec.seed);
  img::PerturbParams params;
  baseline::ExtractCosts extract;
  const double fast_fe = schemes.fast->config().feature_extract_s;

  std::vector<double> sift_cost, pca_cost, rnpe_cost, fast_cost;
  const std::uint64_t base_id = env.dataset.photos.size();
  for (std::size_t i = 0; i < stream_n; ++i) {
    const auto& src =
        env.dataset.photos[rng.uniform_u64(env.dataset.photos.size())];
    const img::Image shot = img::make_near_duplicate(src.image, params, rng);
    const std::uint64_t id = base_id + i;
    // Storage-only cost: total insert cost minus the extraction constant.
    sift_cost.push_back(schemes.sift->insert(id, shot).cost.elapsed_s() -
                        extract.sift_s);
    pca_cost.push_back(schemes.pca_sift->insert(id, shot).cost.elapsed_s() -
                       extract.pca_sift_s);
    rnpe_cost.push_back(
        schemes.rnpe
            ->insert(id, src.geo_x + rng.gaussian(0, 0.2),
                     src.geo_y + rng.gaussian(0, 0.2), src.landmark, src.view)
            .cost.elapsed_s() -
        extract.rnpe_s);
    fast_cost.push_back(schemes.fast->insert(id, shot).cost.elapsed_s() -
                        fast_fe);
  }

  auto mean = [](const std::vector<double>& xs) {
    double s = 0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
  };
  // Per-insert mean storage costs; inserts of a batch spread across the
  // cluster's nodes (ingest is disk-bound on each node's local store).
  const double slots = static_cast<double>(cfg.cost.nodes);
  util::Table table({"new images", "SIFT", "PCA-SIFT", "RNPE", "FAST"});
  for (std::size_t batch = 10000; batch <= 50000; batch += 10000) {
    const double b = static_cast<double>(batch);
    table.add_row({std::to_string(batch),
                   util::fmt_duration(mean(sift_cost) * b / slots),
                   util::fmt_duration(mean(pca_cost) * b / slots),
                   util::fmt_duration(mean(rnpe_cost) * b / slots),
                   util::fmt_duration(mean(fast_cost) * b / slots)});
  }
  table.print("Fig. 5 — insertion (storage/indexing) latency (" +
              env.dataset.spec.name + ")");
  std::printf("per-insert storage cost: SIFT %s, PCA-SIFT %s, RNPE %s, "
              "FAST %s\n",
              util::fmt_duration(mean(sift_cost)).c_str(),
              util::fmt_duration(mean(pca_cost)).c_str(),
              util::fmt_duration(mean(rnpe_cost)).c_str(),
              util::fmt_duration(mean(fast_cost)).c_str());
}

// --- Churn companion: tiered vs mutable ingest, queries under compaction --

/// Cheap synthetic eigenspace (ingest-path cost is independent of PCA
/// content; the signature-only churn workload never runs extraction).
vision::PcaModel synthetic_pca() {
  constexpr std::size_t kInputDim = 578;
  constexpr std::size_t kOutputDim = 36;
  vision::PcaModel model;
  model.mean.assign(kInputDim, 0.0f);
  model.eigenvalues.assign(kOutputDim, 1.0f / static_cast<float>(kInputDim));
  util::Rng rng(0xfa4e);
  model.components.resize(kOutputDim);
  for (auto& row : model.components) {
    row.resize(kInputDim);
    for (auto& v : row) v = static_cast<float>(rng.gaussian());
  }
  return model;
}

hash::SparseSignature churn_signature(std::uint64_t seed,
                                      std::size_t bloom_bits) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xc4u);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(bloom_bits / 101));
    if (cur >= bloom_bits) break;
    bits.push_back(cur);
  }
  return hash::SparseSignature(bits, bloom_bits);
}

core::FastConfig churn_flat_config() { return core::FastConfig{}; }

core::FastConfig churn_tiered_config(std::size_t seal_threshold = 2000) {
  core::FastConfig cfg;
  cfg.tier.enabled = true;
  cfg.tier.seal_threshold = seal_threshold;
  cfg.tier.lanes = 8;
  cfg.tier.compact_fanin = 4;
  cfg.tier.compact_trigger = 4;
  cfg.tier.background = true;
  return cfg;
}

/// Wall-clock inserts/second for `total` signature inserts spread over
/// `threads` writers with disjoint id ranges.
double measure_ingest(core::ConcurrentFastIndex& index, std::size_t threads,
                      std::size_t total,
                      const std::vector<hash::SparseSignature>& sigs) {
  const std::size_t per_thread = total / threads;
  util::WallTimer timer;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      const std::uint64_t base = 1'000'000ULL * (t + 1);
      for (std::size_t i = 0; i < per_thread; ++i) {
        index.insert_signature(base + i, sigs[(base + i) % sigs.size()]);
      }
    });
  }
  for (auto& w : writers) w.join();
  const double wall = timer.elapsed_seconds();
  return static_cast<double>(per_thread * threads) / wall;
}

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

void run_churn(bool smoke) {
  const std::size_t sweep_inserts = smoke ? 8000 : 40000;
  const std::size_t preload = smoke ? 4000 : 16000;
  const std::size_t churn_ops = smoke ? 4000 : 20000;  // per writer
  const std::size_t phase_queries = smoke ? 100 : 300;
  const std::size_t probes = smoke ? 50 : 100;
  constexpr std::size_t kSigs = 512;
  constexpr std::size_t kChurnWriters = 2;

  const vision::PcaModel pca = synthetic_pca();
  const std::size_t bloom_bits = churn_flat_config().bloom_bits;
  std::vector<hash::SparseSignature> sigs;
  sigs.reserve(kSigs);
  for (std::uint64_t s = 0; s < kSigs; ++s) {
    sigs.push_back(churn_signature(s, bloom_bits));
  }

  // --- Ingest sweep: one global writer lock vs hash-partitioned lanes ---
  // Wall-clock columns are whatever this host can show; the modeled column
  // projects the measured serial/parallel split to T true cores, in the
  // same spirit as the SimClock numbers elsewhere in the suite. The flat
  // facade derives keys INSIDE its writer lock, so its modeled rate is
  // flat at any thread count; the tiered path only serializes per-lane
  // placement, so key derivation scales with T.
  const std::size_t lanes = churn_tiered_config().tier.lanes;
  util::Table sweep({"threads", "mutable (ins/s)", "tiered (ins/s)",
                     "wall speedup", "tiered modeled", "modeled speedup"});
  double flat_rate_1 = 0.0;   // measured single-thread rates calibrate the
  double insert_s_1 = 0.0;    // model: total insert time and its lock-free
  double keys_s_1 = 0.0;      // key-derivation share.
  double modeled_speedup_at_max = 0.0;
  double wall_speedup_at_max = 0.0;
  std::size_t max_threads = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::ConcurrentFastIndex flat(churn_flat_config(), pca, threads);
    const double flat_rate = measure_ingest(flat, threads, sweep_inserts,
                                            sigs);
    core::ConcurrentFastIndex tiered(churn_tiered_config(), pca, threads);
    const double tiered_rate = measure_ingest(tiered, threads, sweep_inserts,
                                              sigs);
    tiered.tiered()->wait_idle();
    if (threads == 1) {
      flat_rate_1 = flat_rate;
      insert_s_1 = 1.0 / tiered_rate;
      const auto snap = tiered.metrics().snapshot();
      keys_s_1 = snap.histograms.at("sa.keys_wall_s").sum /
                 static_cast<double>(sweep_inserts);
    }
    // Modeled wall at T cores: lock-free work divides by T, per-lane
    // critical sections divide by the lane count (hash-spread writers).
    const double critical_s = std::max(insert_s_1 - keys_s_1, 1e-9);
    const double modeled_wall_per_insert = std::max(
        insert_s_1 / static_cast<double>(threads),
        critical_s / static_cast<double>(std::min(threads, lanes)));
    const double modeled_rate = 1.0 / modeled_wall_per_insert;
    const double modeled_speedup = modeled_rate / flat_rate_1;
    const double wall_speedup = tiered_rate / flat_rate;
    if (threads >= max_threads) {
      max_threads = threads;
      modeled_speedup_at_max = modeled_speedup;
      wall_speedup_at_max = wall_speedup;
    }
    char flat_s[32], tiered_s[32], wall_s[32], model_s[32], mratio_s[32];
    std::snprintf(flat_s, sizeof(flat_s), "%.0f", flat_rate);
    std::snprintf(tiered_s, sizeof(tiered_s), "%.0f", tiered_rate);
    std::snprintf(wall_s, sizeof(wall_s), "%.2fx", wall_speedup);
    std::snprintf(model_s, sizeof(model_s), "%.0f", modeled_rate);
    std::snprintf(mratio_s, sizeof(mratio_s), "%.2fx", modeled_speedup);
    sweep.add_row({std::to_string(threads), flat_s, tiered_s, wall_s,
                   model_s, mratio_s});
  }
  sweep.print("churn — multi-thread ingest sweep (" +
              std::to_string(sweep_inserts) + " signature inserts, host has " +
              std::to_string(std::thread::hardware_concurrency()) +
              " core(s))");
  std::printf("tiered ingest speedup at %zu threads: wall %.2fx, "
              "modeled-at-%zu-cores %.2fx\n",
              max_threads, wall_speedup_at_max, max_threads,
              modeled_speedup_at_max);

  // --- Churn phase: sustained insert/erase + concurrent queries ---------
  // A tighter seal threshold than the sweep so seals and compactions fire
  // repeatedly at bench scale while the reader is timing queries.
  core::ConcurrentFastIndex index(churn_tiered_config(smoke ? 250 : 500),
                                  pca, 2);
  for (std::uint64_t id = 0; id < preload; ++id) {
    index.insert_signature(id, sigs[id % kSigs]);
  }
  index.tiered()->wait_idle();

  // Wall time is whatever a 2-writers-plus-reader schedule on this host
  // gives; the simulated cost is the index work a query actually did
  // (candidates gathered, buckets probed), immune to preemption noise.
  auto timed_queries = [&](std::vector<double>& walls,
                           std::vector<double>& sims) {
    for (std::size_t q = 0; q < phase_queries; ++q) {
      util::WallTimer timer;
      const core::QueryResult r = index.query_signature(sigs[q % kSigs], 10);
      walls.push_back(timer.elapsed_seconds());
      sims.push_back(r.cost.elapsed_s());
    }
  };
  std::vector<double> idle_walls, idle_sims;
  timed_queries(idle_walls, idle_sims);

  // Each writer keeps a sliding window of its own fresh ids live (erases
  // hit the mutable memtable) and retires preload ids by parity (erases
  // hit sealed segments, leaving tombstones) — so seals, tombstone
  // shadowing and compactions all fire while the reader times queries.
  constexpr std::uint64_t kWindow = 512;
  const std::uint64_t retire_per_writer = preload / 4;  // half, split by parity
  std::vector<double> churn_walls, churn_sims;
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kChurnWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::uint64_t base = 10'000'000ULL * (w + 1);
      for (std::uint64_t i = 0; i < churn_ops; ++i) {
        index.insert_signature(base + i, sigs[(base + i) % kSigs]);
        if (i >= kWindow) index.erase(base + i - kWindow);
        if (i % 2 == 0 && i / 2 < retire_per_writer) {
          index.erase((i & ~std::uint64_t{1}) + w);
        }
      }
    });
  }
  std::thread reader([&] { timed_queries(churn_walls, churn_sims); });
  for (auto& t : writers) t.join();
  reader.join();
  index.tiered()->wait_idle();

  util::Table lat({"phase", "wall p50", "wall p99", "sim p50", "sim p99"});
  lat.add_row({"idle", util::fmt_duration(percentile_of(idle_walls, 50.0)),
               util::fmt_duration(percentile_of(idle_walls, 99.0)),
               util::fmt_duration(percentile_of(idle_sims, 50.0)),
               util::fmt_duration(percentile_of(idle_sims, 99.0))});
  lat.add_row({"during churn",
               util::fmt_duration(percentile_of(churn_walls, 50.0)),
               util::fmt_duration(percentile_of(churn_walls, 99.0)),
               util::fmt_duration(percentile_of(churn_sims, 50.0)),
               util::fmt_duration(percentile_of(churn_sims, 99.0))});
  lat.print("churn — query latency, idle vs during compaction");
  const double idle_sim_p99 = percentile_of(idle_sims, 99.0);
  const double churn_sim_p99 = percentile_of(churn_sims, 99.0);
  std::printf("query p99 ratio churn/idle: wall %.2f, sim (index work) %.2f\n",
              percentile_of(idle_walls, 99.0) > 0
                  ? percentile_of(churn_walls, 99.0) /
                        percentile_of(idle_walls, 99.0)
                  : 0.0,
              idle_sim_p99 > 0 ? churn_sim_p99 / idle_sim_p99 : 0.0);

  // --- Ground truth: flat index rebuilt from the final live set ---------
  const std::size_t expected_live =
      preload - kChurnWriters * retire_per_writer +
      kChurnWriters * std::min<std::uint64_t>(kWindow, churn_ops);
  const std::size_t live = index.size();
  core::FastIndex truth(churn_flat_config(), pca);
  std::size_t rebuilt = 0;
  auto adopt = [&](std::uint64_t id) {
    const auto sig = index.tiered()->find_signature(id);
    if (sig.has_value()) {
      truth.insert_signature(id, *sig);
      ++rebuilt;
    }
  };
  for (std::uint64_t id = 0; id < preload; ++id) adopt(id);
  for (std::size_t w = 0; w < kChurnWriters; ++w) {
    const std::uint64_t base = 10'000'000ULL * (w + 1);
    for (std::uint64_t i = 0; i < churn_ops; ++i) adopt(base + i);
  }

  std::size_t mismatched = 0;
  for (std::size_t q = 0; q < probes; ++q) {
    const auto& sig = sigs[q % kSigs];
    const core::QueryResult a = index.query_signature(sig, 10);
    const core::QueryResult b = truth.query_signature(sig, 10);
    bool same = a.hits.size() == b.hits.size();
    for (std::size_t h = 0; same && h < a.hits.size(); ++h) {
      same = a.hits[h].id == b.hits[h].id && a.hits[h].score == b.hits[h].score;
    }
    if (!same) ++mismatched;
  }
  const bool ok = live == expected_live && rebuilt == live && mismatched == 0;
  std::printf("ground truth: live=%zu (expected %zu), rebuilt=%zu, "
              "probe queries exact %zu/%zu -> %s\n",
              live, expected_live, rebuilt, probes - mismatched, probes,
              ok ? "OK" : "LOST");

  const auto snap = index.metrics().snapshot();
  std::printf("tier: seals=%llu compactions=%llu segments=%.0f "
              "query.wall_s p99=%s\n",
              static_cast<unsigned long long>(snap.counters.at("tier.seals")),
              static_cast<unsigned long long>(
                  snap.counters.at("compaction.runs")),
              snap.gauges.at("segment.count"),
              util::fmt_duration(
                  snap.histograms.at("query.wall_s").percentile(99.0))
                  .c_str());
  dump_metrics(index.metrics(), "fig5_churn");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  // Strip the churn flags before positional-scale parsing.
  bool churn = false;
  bool smoke = false;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--churn") {
      churn = true;
    } else if (arg == "--churn=smoke") {
      churn = smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::BenchScale scale = bench::BenchScale::from_args(
      static_cast<int>(passthrough.size()), passthrough.data());
  if (churn) {
    std::printf("== bench fig5: tiered ingest + churn ==\n");
    bench::run_churn(smoke);
    return 0;
  }
  std::printf("== bench fig5: insertion latency ==\n");
  bench::run_dataset(workload::DatasetSpec::wuhan(scale.wuhan_images),
                     scale.queries);
  bench::run_dataset(workload::DatasetSpec::shanghai(scale.shanghai_images),
                     scale.queries);
  return 0;
}
