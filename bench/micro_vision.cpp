// Google-benchmark micro suite for the vision substrate: Gaussian
// filtering, pyramid construction, DoG detection and the two descriptors.
#include <benchmark/benchmark.h>

#include "img/draw.hpp"
#include "vision/dog_detector.hpp"
#include "vision/gaussian.hpp"
#include "vision/matcher.hpp"
#include "vision/pca_sift.hpp"
#include "vision/pyramid.hpp"
#include "vision/sift_descriptor.hpp"

namespace {

using namespace fast;

img::Image bench_image(std::size_t n) {
  img::Image im(n, n, 0.5f);
  img::add_texture(im, 0, 0, static_cast<std::ptrdiff_t>(n),
                   static_cast<std::ptrdiff_t>(n), 0.25f, 11);
  img::scatter_blobs(im, 0, 0, static_cast<std::ptrdiff_t>(n),
                     static_cast<std::ptrdiff_t>(n), n / 2, 1.5, 3.0, 12);
  im.clamp01();
  return im;
}

void BM_GaussianBlur(benchmark::State& state) {
  const img::Image im = bench_image(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::gaussian_blur(im, 1.6));
  }
}
BENCHMARK(BM_GaussianBlur)->Arg(64)->Arg(128)->Arg(256);

void BM_BuildPyramid(benchmark::State& state) {
  const img::Image im = bench_image(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::build_pyramid(im));
  }
}
BENCHMARK(BM_BuildPyramid)->Arg(64)->Arg(128);

void BM_DetectKeypoints(benchmark::State& state) {
  const img::Image im = bench_image(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::detect_keypoints(im));
  }
}
BENCHMARK(BM_DetectKeypoints)->Arg(96)->Arg(128);

void BM_SiftDescriptor(benchmark::State& state) {
  const img::Image im = bench_image(128);
  const auto kps = vision::detect_keypoints(im);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::compute_sift(im, kps[i++ % kps.size()]));
  }
}
BENCHMARK(BM_SiftDescriptor);

void BM_PcaSiftDescriptor(benchmark::State& state) {
  const img::Image im = bench_image(128);
  const auto kps = vision::detect_keypoints(im);
  std::vector<img::Image> sample{im, bench_image(96)};
  const vision::PcaModel model = vision::train_pca_sift(sample, {}, 300);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vision::compute_pca_sift(im, kps[i++ % kps.size()], model));
  }
}
BENCHMARK(BM_PcaSiftDescriptor);

void BM_MatchFeatures(benchmark::State& state) {
  const img::Image a = bench_image(128);
  const img::Image b = bench_image(96);
  const auto fa = vision::extract_sift_features(a, 64);
  const auto fb = vision::extract_sift_features(b, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::match_features(fa, fb));
  }
}
BENCHMARK(BM_MatchFeatures);

}  // namespace

BENCHMARK_MAIN();
