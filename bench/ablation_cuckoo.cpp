// Ablation — adjacent-neighborhood window size W in the flat cuckoo table
// (DESIGN.md §5): insertion-failure probability at high load, probe count
// per lookup, and achieved load ceiling. W=1 degenerates to (near-)standard
// cuckoo; the paper's design sits around W=4.
//
// Second section — fingerprint compression (DESIGN.md §3h): the flat
// full-key table vs the compact SoA table on an identical mixed hit/miss
// lookup stream. Verifies bit-identical query results (parity) and reports
// probe-path bytes per lookup, resident memory, and the fingerprint
// false-hit rate. Exits nonzero if parity breaks or the probe-path byte
// reduction falls under 4x.
#include <cstdio>
#include <cstdlib>

#include "hash/compact_flat_cuckoo_table.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "hash/hashes.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

void run(std::size_t capacity, std::size_t trials) {
  util::Table table({"window W", "probes/lookup", "fail@70%", "fail@85%",
                     "fail@95%", "max sustainable load"});
  for (std::size_t window : {1, 2, 4, 8}) {
    double rates[3] = {0, 0, 0};
    const double loads[3] = {0.70, 0.85, 0.95};
    for (int li = 0; li < 3; ++li) {
      std::size_t failures = 0, attempts = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        hash::FlatCuckooConfig cfg;
        cfg.capacity = capacity;
        cfg.window = window;
        cfg.seed = 0xabc0 + t;
        hash::FlatCuckooTable tbl(cfg);
        const auto items = static_cast<std::size_t>(
            loads[li] * static_cast<double>(capacity));
        for (std::size_t i = 0; i < items; ++i) {
          failures += !tbl.insert(
              hash::mix64(cfg.seed ^ (i * 0x9e3779b97f4a7c15ULL)), i);
          ++attempts;
        }
      }
      rates[li] = static_cast<double>(failures) / static_cast<double>(attempts);
    }
    // Max sustainable load: largest load with zero failures in one trial.
    double max_load = 0;
    for (double load = 0.50; load <= 0.995; load += 0.025) {
      hash::FlatCuckooConfig cfg;
      cfg.capacity = capacity;
      cfg.window = window;
      hash::FlatCuckooTable t(cfg);
      bool ok = true;
      const auto items =
          static_cast<std::size_t>(load * static_cast<double>(capacity));
      for (std::size_t i = 0; i < items && ok; ++i) {
        ok = t.insert(hash::mix64(0x10ad ^ (i * 0x9e3779b97f4a7c15ULL)), i);
      }
      if (ok) max_load = load;
    }
    hash::FlatCuckooConfig pc;
    pc.window = window;
    table.add_row({std::to_string(window),
                   std::to_string(2 * window),
                   util::fmt_sci(rates[0]), util::fmt_sci(rates[1]),
                   util::fmt_sci(rates[2]),
                   util::fmt_percent(max_load, 1)});
  }
  table.print("Ablation — neighborhood window of the flat cuckoo table");
}

/// Flat vs fingerprint-compressed backend on the same key stream: parity of
/// every insert/find outcome plus the probe-path roofline. Returns false on
/// a parity break or a bytes-per-lookup reduction below `min_ratio`.
bool run_compact(std::size_t capacity, double min_ratio) {
  hash::FlatCuckooConfig cfg;
  cfg.capacity = capacity;
  cfg.seed = 0xc0ffee;
  hash::FlatCuckooTable flat(cfg);
  hash::CompactFlatCuckooTable compact(cfg);

  // Fill to 75% with identical streams; parity covers insert outcomes too.
  const std::size_t items = capacity * 3 / 4;
  bool parity = true;
  for (std::size_t i = 0; i < items; ++i) {
    const std::uint64_t key = hash::mix64(0xf00d ^ (i * 0x9e3779b97f4a7c15ULL));
    parity &= flat.insert(key, i) == compact.insert(key, i);
  }
  parity &= flat.size() == compact.size();

  // Mixed lookup stream: half resident keys, half absent keys.
  hash::ProbeProfile flat_profile, compact_profile;
  const std::size_t lookups = 4 * items;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < lookups; ++i) {
    const std::uint64_t key =
        (i & 1) ? hash::mix64(0xdead ^ (i * 0x9e3779b97f4a7c15ULL))
                : hash::mix64(0xf00d ^ ((i / 2 % items) * 0x9e3779b97f4a7c15ULL));
    const auto f = flat.find(key, &flat_profile);
    const auto c = compact.find(key, &compact_profile);
    parity &= f == c;
    hits += f.has_value();
  }

  const auto per = [&](const hash::ProbeProfile& p) {
    return static_cast<double>(p.bytes_touched) /
           static_cast<double>(lookups);
  };
  const double flat_bytes = per(flat_profile);
  const double compact_bytes = per(compact_profile);
  const double ratio = compact_bytes > 0 ? flat_bytes / compact_bytes : 0;
  const double false_hit_rate =
      static_cast<double>(compact_profile.fingerprint_false_hits) /
      static_cast<double>(lookups);

  util::Table table({"backend", "bytes/lookup", "slots/lookup",
                     "fp false hits/lookup", "resident bytes"});
  table.add_row({"flat", util::fmt_sci(flat_bytes),
                 util::fmt_sci(static_cast<double>(flat_profile.slots_scanned) /
                               static_cast<double>(lookups)),
                 "0", std::to_string(flat.memory_bytes())});
  table.add_row(
      {"flat_compact", util::fmt_sci(compact_bytes),
       util::fmt_sci(static_cast<double>(compact_profile.slots_scanned) /
                     static_cast<double>(lookups)),
       util::fmt_sci(false_hit_rate), std::to_string(compact.memory_bytes())});
  table.print("Ablation — fingerprint-compressed probe path (hits " +
              std::to_string(hits) + "/" + std::to_string(lookups) + ")");

  const bool ok = parity && ratio >= min_ratio && false_hit_rate < 0.05;
  std::printf(
      "compact probe path: bytes/lookup %.1fB -> %.1fB (%.1fx), "
      "fp_false_hit_rate=%.4f, parity=%s -> %s\n",
      flat_bytes, compact_bytes, ratio, false_hit_rate,
      parity ? "OK" : "BROKEN", ok ? "OK" : "FAIL");
  return ok;
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  std::printf("== bench ablation_cuckoo: neighborhood window ==\n");
  std::size_t capacity = 1 << 14;
  std::size_t trials = 6;
  if (argc > 1) capacity = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) trials = static_cast<std::size_t>(std::atoi(argv[2]));
  fast::bench::run(capacity, trials);
  return fast::bench::run_compact(capacity, /*min_ratio=*/4.0) ? 0 : 1;
}
