// Ablation — adjacent-neighborhood window size W in the flat cuckoo table
// (DESIGN.md §5): insertion-failure probability at high load, probe count
// per lookup, and achieved load ceiling. W=1 degenerates to (near-)standard
// cuckoo; the paper's design sits around W=4.
#include <cstdio>
#include <cstdlib>

#include "hash/flat_cuckoo_table.hpp"
#include "hash/hashes.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

void run(std::size_t capacity, std::size_t trials) {
  util::Table table({"window W", "probes/lookup", "fail@70%", "fail@85%",
                     "fail@95%", "max sustainable load"});
  for (std::size_t window : {1, 2, 4, 8}) {
    double rates[3] = {0, 0, 0};
    const double loads[3] = {0.70, 0.85, 0.95};
    for (int li = 0; li < 3; ++li) {
      std::size_t failures = 0, attempts = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        hash::FlatCuckooConfig cfg;
        cfg.capacity = capacity;
        cfg.window = window;
        cfg.seed = 0xabc0 + t;
        hash::FlatCuckooTable tbl(cfg);
        const auto items = static_cast<std::size_t>(
            loads[li] * static_cast<double>(capacity));
        for (std::size_t i = 0; i < items; ++i) {
          failures += !tbl.insert(
              hash::mix64(cfg.seed ^ (i * 0x9e3779b97f4a7c15ULL)), i);
          ++attempts;
        }
      }
      rates[li] = static_cast<double>(failures) / static_cast<double>(attempts);
    }
    // Max sustainable load: largest load with zero failures in one trial.
    double max_load = 0;
    for (double load = 0.50; load <= 0.995; load += 0.025) {
      hash::FlatCuckooConfig cfg;
      cfg.capacity = capacity;
      cfg.window = window;
      hash::FlatCuckooTable t(cfg);
      bool ok = true;
      const auto items =
          static_cast<std::size_t>(load * static_cast<double>(capacity));
      for (std::size_t i = 0; i < items && ok; ++i) {
        ok = t.insert(hash::mix64(0x10ad ^ (i * 0x9e3779b97f4a7c15ULL)), i);
      }
      if (ok) max_load = load;
    }
    hash::FlatCuckooConfig pc;
    pc.window = window;
    table.add_row({std::to_string(window),
                   std::to_string(2 * window),
                   util::fmt_sci(rates[0]), util::fmt_sci(rates[1]),
                   util::fmt_sci(rates[2]),
                   util::fmt_percent(max_load, 1)});
  }
  table.print("Ablation — neighborhood window of the flat cuckoo table");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  std::printf("== bench ablation_cuckoo: neighborhood window ==\n");
  std::size_t capacity = 1 << 14;
  std::size_t trials = 6;
  if (argc > 1) capacity = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) trials = static_cast<std::size_t>(std::atoi(argv[2]));
  fast::bench::run(capacity, trials);
  return 0;
}
