// Fig. 4 — Average query latency vs. number of simultaneous requests
// (1000 ... 5000), for SIFT / PCA-SIFT / RNPE / FAST on both datasets.
//
// Native queries measure the per-request simulated platform cost for each
// scheme; a batch of B simultaneous requests is then scheduled FIFO onto
// the modeled cluster. Disk-bound schemes (SIFT, PCA-SIFT, RNPE) queue on
// the 256 per-node disks; FAST's in-memory probes queue on the 8192 cores.
// The reported value is the mean request completion time — the quantity
// Fig. 4 plots.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "sim/cluster_model.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

/// Per-request cost samples for one scheme.
struct CostSamples {
  std::vector<double> seconds;

  double batch_mean_latency(std::size_t batch, std::size_t slots,
                            util::Rng& rng) const {
    std::vector<double> tasks(batch);
    for (double& t : tasks) {
      t = seconds[rng.uniform_u64(seconds.size())];
    }
    return sim::ClusterModel::mean_completion(tasks, slots);
  }
};

void run_dataset(const workload::DatasetSpec& spec, std::size_t queries,
                 double paper_images) {
  DatasetEnv env = make_dataset_env(spec, queries);
  print_dataset_banner(env.dataset);
  SchemeConfig cfg;
  Schemes schemes = build_schemes(env, cfg);

  CostSamples sift_c, pca_c, rnpe_c, fast_c;
  for (const auto& q : env.queries) {
    sift_c.seconds.push_back(
        schemes.sift->query(q.image, 10).cost.elapsed_s());
    pca_c.seconds.push_back(
        schemes.pca_sift->query(q.image, 10).cost.elapsed_s());
    const auto& src = env.dataset.photos[q.source];
    rnpe_c.seconds.push_back(schemes.rnpe
                                 ->query(src.geo_x, src.geo_y, q.landmark,
                                         q.view, 10)
                                 .cost.elapsed_s());
    fast_c.seconds.push_back(
        schemes.fast->query(q.image, 10).cost.elapsed_s());
  }

  const std::size_t disk_slots = cfg.cost.nodes;  // one disk per node
  const std::size_t core_slots = cfg.cost.nodes * cfg.cost.cores_per_node;

  util::Table table(
      {"requests", "SIFT", "PCA-SIFT", "RNPE", "FAST"});
  util::Rng rng(0xf19 ^ spec.seed);
  for (std::size_t batch = 1000; batch <= 5000; batch += 1000) {
    table.add_row(
        {std::to_string(batch),
         util::fmt_duration(sift_c.batch_mean_latency(batch, disk_slots, rng)),
         util::fmt_duration(pca_c.batch_mean_latency(batch, disk_slots, rng)),
         util::fmt_duration(rnpe_c.batch_mean_latency(batch, disk_slots, rng)),
         util::fmt_duration(
             fast_c.batch_mean_latency(batch, core_slots, rng))});
  }
  table.print("Fig. 4 — mean query latency vs simultaneous requests (" +
              env.dataset.spec.name + ", corpus as generated)");

  // Paper-scale extrapolation: the baselines scan their whole store per
  // query (SIFT/PCA-SIFT) or walk an O(log n) tree over it (RNPE), so
  // per-request cost grows with corpus size; FAST's flat addressing does
  // not. Scaling the measured costs to the paper's image counts reproduces
  // the figure's magnitudes (SIFT ~tens of minutes, FAST ~100 ms).
  const double corpus_scale =
      paper_images / static_cast<double>(env.dataset.photos.size());
  const double log_scale =
      std::log2(paper_images) /
      std::log2(static_cast<double>(env.dataset.photos.size()));
  auto scaled = [](const CostSamples& c, double factor) {
    CostSamples out;
    for (double s : c.seconds) out.seconds.push_back(s * factor);
    return out;
  };
  const CostSamples sift_p = scaled(sift_c, corpus_scale);
  const CostSamples pca_p = scaled(pca_c, corpus_scale);
  const CostSamples rnpe_p = scaled(rnpe_c, log_scale);
  util::Table paper_table({"requests", "SIFT", "PCA-SIFT", "RNPE", "FAST"});
  for (std::size_t batch = 1000; batch <= 5000; batch += 1000) {
    paper_table.add_row(
        {std::to_string(batch),
         util::fmt_duration(sift_p.batch_mean_latency(batch, disk_slots, rng)),
         util::fmt_duration(pca_p.batch_mean_latency(batch, disk_slots, rng)),
         util::fmt_duration(rnpe_p.batch_mean_latency(batch, disk_slots, rng)),
         util::fmt_duration(
             fast_c.batch_mean_latency(batch, core_slots, rng))});
  }
  paper_table.print(
      "Fig. 4 — extrapolated to the paper's corpus scale (" +
      env.dataset.spec.name + ")");

  // Per-stage counters/histograms behind the FAST column (FE/SM, SA, CHS).
  dump_metrics(schemes.fast->metrics(), "fig4_" + env.dataset.spec.name);
  // Per-request spans for the same runs (--trace / FAST_TRACE); exported and
  // reset per dataset so the two trace artifacts do not mix.
  dump_trace("fig4_" + env.dataset.spec.name);
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  std::printf("== bench fig4: concurrent query latency ==\n");
  bench::run_dataset(workload::DatasetSpec::wuhan(scale.wuhan_images),
                     scale.queries, 21e6);
  bench::run_dataset(workload::DatasetSpec::shanghai(scale.shanghai_images),
                     scale.queries, 39e6);
  return 0;
}
