// Fig. 7 — Query latency vs. number of cores (1 ... 32): FAST's flat-
// structured addressing exposes independent probe/rank/extract work units
// that a multicore schedules freely, so per-query latency drops almost
// linearly with core count.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "core/query_engine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace fast::bench {
namespace {

void run_dataset(const workload::DatasetSpec& spec, std::size_t queries) {
  DatasetEnv env = make_dataset_env(spec, queries);
  print_dataset_banner(env.dataset);
  SchemeConfig cfg;
  std::unique_ptr<core::FastIndex> index = build_fast_only(env, cfg);
  for (const auto& photo : env.dataset.photos) {
    index->insert(photo.id, photo.image);
  }

  std::vector<core::QueryResult> results;
  for (const auto& q : env.queries) {
    results.push_back(index->query(q.image, 10));
  }

  util::Table table({"cores", "mean latency", "speedup vs 1 core"});
  double base = 0;
  for (std::size_t cores : {1, 2, 4, 8, 16, 32}) {
    util::OnlineStats lat;
    for (const auto& r : results) {
      lat.add(core::QueryEngine::simulated_query_latency(r, cores));
    }
    if (cores == 1) base = lat.mean();
    table.add_row({std::to_string(cores), util::fmt_duration(lat.mean()),
                   util::fmt_double(base / lat.mean(), 2) + "x"});
  }
  table.print("Fig. 7 — multicore query latency (" + env.dataset.spec.name +
              ")");

  // Native counterpart: run the same query set through query_batch with a
  // real thread pool and report measured wall time per thread count.
  std::vector<const img::Image*> query_images;
  query_images.reserve(env.queries.size());
  for (const auto& q : env.queries) {
    query_images.push_back(&q.image);
  }
  using clock = std::chrono::steady_clock;
  util::Table native({"threads", "batch wall time", "queries/s",
                      "speedup vs 1 thread"});
  double base_s = 0;
  for (std::size_t threads : {1, 2, 4, 8}) {
    util::ThreadPool pool(threads);
    const auto t0 = clock::now();
    const auto batch = index->query_batch(query_images, 10, &pool);
    const double wall_s =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (threads == 1) base_s = wall_s;
    native.add_row({std::to_string(threads), util::fmt_duration(wall_s),
                    util::fmt_double(static_cast<double>(batch.size()) / wall_s,
                                     1),
                    util::fmt_double(base_s / wall_s, 2) + "x"});
  }
  native.print("Fig. 7 addendum — native query_batch wall time (" +
               env.dataset.spec.name + ")");

  dump_metrics(index->metrics(), "fig7_" + env.dataset.spec.name);
  dump_trace("fig7_" + env.dataset.spec.name);
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  std::printf("== bench fig7: multicore parallel queries ==\n");
  bench::run_dataset(workload::DatasetSpec::wuhan(scale.wuhan_images),
                     scale.queries);
  bench::run_dataset(workload::DatasetSpec::shanghai(scale.shanghai_images),
                     scale.queries);
  return 0;
}
