// Ablation — SA backend and probing strategy (DESIGN.md §5).
//
// Compares the paper's p-stable LSH (with and without adjacent-bucket
// probing) against MinHash banding configurations on identical corpus and
// queries: source-recall@5, candidate fraction (the narrowing the SA stage
// exists for) and bucket probes per query.
#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

struct Variant {
  std::string name;
  core::FastConfig cfg;
};

void run(const workload::DatasetSpec& spec, std::size_t queries) {
  DatasetEnv env = make_dataset_env(spec, queries);
  print_dataset_banner(env.dataset);

  std::vector<Variant> variants;
  {
    core::FastConfig c;
    c.sa_backend = core::FastConfig::SaBackend::kPStable;
    c.probe_depth = 0;
    variants.push_back({"pstable L7 M10 (no adj probes)", c});
    c.probe_depth = 1;
    variants.push_back({"pstable L7 M10 + adjacent", c});
    c.probe_depth = 2;
    variants.push_back({"pstable L7 M10 + 2-coord adj", c});
  }
  for (std::size_t bands : {24, 48, 96}) {
    for (std::size_t bs : {2, 3}) {
      for (bool mp : {false, true}) {
        core::FastConfig c;
        c.minhash.bands = bands;
        c.minhash.band_size = bs;
        c.minhash_multiprobe = mp;
        char name[64];
        std::snprintf(name, sizeof(name), "minhash b=%zu r=%zu%s", bands, bs,
                      mp ? " +probe" : "");
        variants.push_back({name, c});
      }
    }
  }

  util::Table table({"variant", "src recall@5", "candidates", "probes/query"});
  for (const Variant& v : variants) {
    SchemeConfig scfg;
    std::unique_ptr<core::FastIndex> index =
        build_fast_only(env, scfg, v.cfg);
    for (const auto& photo : env.dataset.photos) {
      index->insert(photo.id, photo.image);
    }
    std::size_t recall = 0;
    double candidates = 0, probes = 0;
    for (const auto& q : env.queries) {
      const core::QueryResult r = index->query(q.image, 5);
      recall += contains_id(r.hits, q.source);
      candidates += static_cast<double>(r.candidates);
      probes += static_cast<double>(r.bucket_probes);
    }
    const auto nq = static_cast<double>(env.queries.size());
    table.add_row(
        {v.name,
         util::fmt_percent(static_cast<double>(recall) / nq, 1),
         util::fmt_percent(candidates / nq /
                               static_cast<double>(index->size()),
                           1) +
             " of corpus",
         util::fmt_double(probes / nq, 0)});
  }
  table.print("Ablation — SA backend (" + env.dataset.spec.name + ")");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  std::printf("== bench ablation_lsh: SA backend comparison ==\n");
  bench::run(workload::DatasetSpec::wuhan(scale.wuhan_images), scale.queries);
  return 0;
}
