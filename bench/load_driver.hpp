// Closed- and open-loop load driver over the fast::server wire protocol
// (DESIGN.md §3g) — the traffic source behind `loadgen` and fig_serving.
//
// Closed loop: `connections` threads, each with one TCP connection, issue
// the next request the moment the previous response lands — throughput is
// admission-limited and latency reflects queueing inside the server only.
// Open loop: requests are paced at a fixed aggregate arrival rate
// (exponential inter-arrivals, split evenly across connections) and
// pipelined — a sender thread keeps pacing regardless of response
// latency while a receiver thread matches responses by seq, so overload
// shows up as rising latency and kRetryAfter rejections, not as a slowed
// generator.
//
// The workload is the paper's serving mix: zipf-skewed keys over a fixed
// key space, a configurable read fraction (queries) with the remainder
// writes (inserts, plus occasional erases of previously written keys).
// Signatures are synthesized deterministically per key, so the same key
// always queries/inserts the same signature — which is also what makes
// exact ground-truth comparison possible in the server tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hash/sparse_signature.hpp"

namespace fast::bench {

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 8;
  double duration_s = 5.0;
  /// Fraction of requests that are queries; the rest are writes (9:1
  /// insert:erase).
  double read_fraction = 0.9;
  double zipf_skew = 0.99;
  std::size_t key_space = 10000;
  std::size_t top_k = 10;
  /// 0 = closed loop. > 0 = open loop at this aggregate requests/second.
  double arrival_rate = 0.0;
  std::uint64_t seed = 42;
  /// Signature geometry — must match the server's bloom_bits.
  std::size_t bloom_bits = 16384;
  /// Set bits per synthetic signature (~ the paper's per-image popcount).
  std::size_t sig_bits_set = 64;
  /// Tenant id announced with a kHello handshake on connect. 0 = no
  /// handshake (the legacy tenant-less client path).
  std::uint16_t tenant = 0;
  /// Negotiate kCapServerTiming on connect (forces a kHello even for
  /// tenant 0): kOk responses then carry queue_ns/exec_ns, and the report
  /// splits observed latency into network vs queue vs execute.
  bool want_timing = false;
};

struct LoadReport {
  std::size_t ops = 0;       ///< kOk responses
  std::size_t retries = 0;   ///< kRetryAfter rejections
  std::size_t errors = 0;    ///< transport errors / kError / kBadRequest
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;

  /// Server-timing breakdown (LoadOptions::want_timing): per kOk response
  /// the trailer's queue/exec halves plus net = total - queue - exec
  /// (clamped at 0 — the wire and client-side cost). 0 samples when the
  /// capability was not negotiated.
  std::size_t timing_samples = 0;
  double net_p50_ms = 0.0;
  double net_p99_ms = 0.0;
  double queue_p50_ms = 0.0;
  double queue_p99_ms = 0.0;
  double exec_p50_ms = 0.0;
  double exec_p99_ms = 0.0;

  double qps() const noexcept {
    return wall_s > 0 ? static_cast<double>(ops) / wall_s : 0.0;
  }
};

/// One tenant's row of a mixed traffic matrix: overrides applied to the
/// base LoadOptions for that tenant's connections.
struct TenantLoad {
  std::uint16_t tenant = 0;
  std::size_t connections = 4;
  double read_fraction = 0.9;
  /// 0 = closed loop; > 0 = open loop at this aggregate rate.
  double arrival_rate = 0.0;
};

/// Ceil-rank percentile over an ascending-sorted sample vector: the
/// smallest sample whose rank is >= ceil(p/100 * n) (so p100 = max,
/// p50 over two samples = the lower one). Returns 0 on an empty vector.
double percentile(const std::vector<double>& sorted, double p);

/// Deterministic synthetic signature for `key`: the same key always maps
/// to the same signature, at the given geometry.
hash::SparseSignature synth_signature(std::uint64_t key,
                                      std::size_t bloom_bits,
                                      std::size_t bits_set);

/// Runs the configured load against a listening server and reports
/// sustained throughput and full-distribution latency percentiles.
LoadReport run_load(const LoadOptions& options);

/// Runs every tenant's load concurrently against the same server (each row
/// derives its options from `base` + its TenantLoad overrides, with a
/// per-tenant seed offset) and reports each tenant separately — the QoS
/// isolation figure: per-tenant QPS and p50/p99/p999 under combined load.
std::vector<LoadReport> run_mixed_load(const LoadOptions& base,
                                       const std::vector<TenantLoad>& tenants);

}  // namespace fast::bench
