// loadgen — standalone traffic generator against a running fast_server
// (README "Serving quick-start", CI serving-smoke).
//
//   loadgen --port=N [--host=A] [--conns=N] [--duration=S] [--reads=F]
//           [--skew=S] [--keys=N] [--k=N] [--rate=QPS] [--preload=N]
//           [--bloom-bits=N] [--seed=N] [--tenant=N] [--mix=SPEC,...]
//           [--timing=0|1] [--json=0|1]
//
// --rate=0 (default) runs closed-loop: each connection issues the next
// request when the previous response lands. --rate>0 runs open-loop at
// that aggregate arrival rate with pipelined connections. --preload
// inserts N zipf-keyed signatures first so queries hit real data.
// --tenant sends a kHello handshake on every connection (QoS accounting);
// 0 (default) is the legacy tenant-less client. --seed makes open-loop
// arrival times and the key/op streams reproducible. --timing=1 (default)
// negotiates the kCapServerTiming trailer and splits latency into
// net/queue/exec percentiles (--timing=0 measures the legacy wire format
// byte for byte). --json=1 emits each result as one JSON object line
// instead of the key=value line.
//
// --mix runs a mixed tenant traffic matrix instead of a single load: a
// comma-separated list of TENANT:CONNS:READS:RATE rows, all run
// concurrently against the same server, reported per tenant — e.g.
//   --mix=1:8:1.0:0,2:4:0.0:0
// is tenant 1 closed-loop pure queries beside tenant 2 closed-loop pure
// bulk writes.
//
// Prints one machine-parsable result line per load:
//   loadgen: mode=closed tenant=0 conns=8 duration_s=5.00 reads=0.90
//     ops=12345 qps=2469.0 p50_ms=0.81 p99_ms=2.40 p999_ms=4.10
//     net_p99=0.40 queue_p99=1.10 exec_p99=0.90 retry=0 errors=0
// (the net/queue/exec fields appear when server timing was negotiated).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "load_driver.hpp"
#include "server/client.hpp"
#include "util/env.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port=N [--host=A] [--conns=N] [--duration=S] [--reads=F]\n"
      "          [--skew=S] [--keys=N] [--k=N] [--rate=QPS] [--preload=N]\n"
      "          [--bloom-bits=N] [--seed=N] [--scrape=0|1] [--tenant=N]\n"
      "          [--mix=TENANT:CONNS:READS:RATE,...] [--timing=0|1]\n"
      "          [--json=0|1]\n",
      argv0);
  return 2;
}

/// Parses one TENANT:CONNS:READS:RATE row of a --mix matrix.
bool parse_mix_row(const std::string& spec, fast::bench::TenantLoad* out) {
  std::vector<std::string> part;
  std::size_t start = 0;
  while (part.size() < 4) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      part.push_back(spec.substr(start));
      break;
    }
    part.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (part.size() != 4) return false;
  const auto tenant = fast::util::parse_checked_count(
      "--mix tenant", part[0].c_str(), 0, 65535);
  const auto conns =
      fast::util::parse_checked_count("--mix conns", part[1].c_str(), 1, 4096);
  const auto reads = fast::util::parse_checked_number(
      "--mix reads", part[2].c_str(), 0.0, 1.0);
  const auto rate = fast::util::parse_checked_number("--mix rate",
                                                     part[3].c_str(), 0.0, 1e9);
  if (!tenant || !conns || !reads || !rate) return false;
  out->tenant = static_cast<std::uint16_t>(*tenant);
  out->connections = *conns;
  out->read_fraction = *reads;
  out->arrival_rate = *rate;
  return true;
}

void print_report(const fast::bench::LoadOptions& opt, std::uint16_t tenant,
                  std::size_t conns, double reads, double rate, bool json,
                  const fast::bench::LoadReport& report) {
  const char* mode = rate > 0 ? "open" : "closed";
  if (json) {
    std::printf(
        "{\"mode\": \"%s\", \"tenant\": %u, \"conns\": %zu, "
        "\"duration_s\": %.2f, \"reads\": %.2f, \"rate\": %.1f, "
        "\"ops\": %zu, \"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"p999_ms\": %.3f, \"timing_samples\": %zu, \"net_p99_ms\": %.3f, "
        "\"queue_p99_ms\": %.3f, \"exec_p99_ms\": %.3f, \"retry\": %zu, "
        "\"errors\": %zu}\n",
        mode, tenant, conns, report.wall_s, reads, rate, report.ops,
        report.qps(), report.p50_ms, report.p99_ms, report.p999_ms,
        report.timing_samples, report.net_p99_ms, report.queue_p99_ms,
        report.exec_p99_ms, report.retries, report.errors);
    return;
  }
  std::printf(
      "loadgen: mode=%s tenant=%u conns=%zu duration_s=%.2f reads=%.2f "
      "rate=%.1f ops=%zu qps=%.1f p50_ms=%.3f p99_ms=%.3f p999_ms=%.3f",
      mode, tenant, conns, report.wall_s, reads, rate, report.ops,
      report.qps(), report.p50_ms, report.p99_ms, report.p999_ms);
  if (report.timing_samples > 0) {
    std::printf(" net_p99=%.3f queue_p99=%.3f exec_p99=%.3f",
                report.net_p99_ms, report.queue_p99_ms, report.exec_p99_ms);
  }
  std::printf(" retry=%zu errors=%zu\n", report.retries, report.errors);
  (void)opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fast;

  bench::LoadOptions opt;
  opt.want_timing = true;  // --timing=0 restores the legacy wire format
  std::size_t preload = 0;
  bool scrape = false;
  bool json = false;
  std::vector<bench::TenantLoad> mix;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) return usage(argv[0]);
    const std::string name = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto count = [&](unsigned long min, unsigned long max) {
      return util::parse_checked_count(name.c_str(), value.c_str(), min, max);
    };
    const auto number = [&](double min, double max) {
      return util::parse_checked_number(name.c_str(), value.c_str(), min,
                                        max);
    };
    if (name == "--port") {
      const auto v = count(1, 65535);
      if (!v) return usage(argv[0]);
      opt.port = static_cast<std::uint16_t>(*v);
    } else if (name == "--host") {
      opt.host = value;
    } else if (name == "--conns") {
      const auto v = count(1, 4096);
      if (!v) return usage(argv[0]);
      opt.connections = *v;
    } else if (name == "--duration") {
      const auto v = number(0.01, 3600.0);
      if (!v) return usage(argv[0]);
      opt.duration_s = *v;
    } else if (name == "--reads") {
      const auto v = number(0.0, 1.0);
      if (!v) return usage(argv[0]);
      opt.read_fraction = *v;
    } else if (name == "--skew") {
      const auto v = number(0.0, 10.0);
      if (!v) return usage(argv[0]);
      opt.zipf_skew = *v;
    } else if (name == "--keys") {
      const auto v = count(1, 100000000);
      if (!v) return usage(argv[0]);
      opt.key_space = *v;
    } else if (name == "--k") {
      const auto v = count(1, 1000);
      if (!v) return usage(argv[0]);
      opt.top_k = *v;
    } else if (name == "--rate") {
      const auto v = number(0.0, 1e9);
      if (!v) return usage(argv[0]);
      opt.arrival_rate = *v;
    } else if (name == "--preload") {
      const auto v = count(0, 100000000);
      if (!v) return usage(argv[0]);
      preload = *v;
    } else if (name == "--bloom-bits") {
      const auto v = count(64, 1u << 24);
      if (!v) return usage(argv[0]);
      opt.bloom_bits = *v;
    } else if (name == "--seed") {
      const auto v = count(0, ~0UL);
      if (!v) return usage(argv[0]);
      opt.seed = *v;
    } else if (name == "--scrape") {
      const auto v = count(0, 1);
      if (!v) return usage(argv[0]);
      scrape = *v != 0;
    } else if (name == "--tenant") {
      const auto v = count(0, 65535);
      if (!v) return usage(argv[0]);
      opt.tenant = static_cast<std::uint16_t>(*v);
    } else if (name == "--timing") {
      const auto v = count(0, 1);
      if (!v) return usage(argv[0]);
      opt.want_timing = *v != 0;
    } else if (name == "--json") {
      const auto v = count(0, 1);
      if (!v) return usage(argv[0]);
      json = *v != 0;
    } else if (name == "--mix") {
      std::size_t start = 0;
      while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string spec =
            comma == std::string::npos ? value.substr(start)
                                       : value.substr(start, comma - start);
        bench::TenantLoad row;
        if (!parse_mix_row(spec, &row)) return usage(argv[0]);
        mix.push_back(row);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.port == 0) return usage(argv[0]);

  if (preload > 0) {
    server::Client client;
    const storage::Status st = client.connect(opt.host, opt.port);
    if (!st.ok()) {
      std::fprintf(stderr, "loadgen: connect failed: %s\n",
                   st.message().c_str());
      return 1;
    }
    const std::size_t kBatch = 256;
    std::size_t loaded = 0;
    for (std::size_t base = 1; base <= preload; base += kBatch) {
      std::vector<std::uint64_t> ids;
      std::vector<hash::SparseSignature> sigs;
      for (std::size_t id = base; id <= preload && id < base + kBatch; ++id) {
        ids.push_back(id);
        sigs.push_back(
            bench::synth_signature(id, opt.bloom_bits, opt.sig_bits_set));
      }
      const auto r = client.insert_batch(ids, sigs);
      if (!r.ok() || r.value().status != server::Status::kOk) {
        std::fprintf(stderr, "loadgen: preload failed at id %zu\n", base);
        return 1;
      }
      loaded += ids.size();
    }
    std::printf("loadgen: preloaded %zu keys\n", loaded);
  }

  if (scrape) {
    // Standalone Prometheus scrape through the wire (kMetrics op); dumps
    // the exposition text so CI can assert the serving series export.
    server::Client client;
    const storage::Status st = client.connect(opt.host, opt.port);
    if (!st.ok()) {
      std::fprintf(stderr, "loadgen: scrape connect failed: %s\n",
                   st.message().c_str());
      return 1;
    }
    const auto r = client.metrics();
    if (!r.ok() || r.value().status != server::Status::kOk) {
      std::fprintf(stderr, "loadgen: metrics scrape failed\n");
      return 1;
    }
    std::fwrite(r.value().text.data(), 1, r.value().text.size(), stdout);
    return 0;
  }

  if (!mix.empty()) {
    const std::vector<bench::LoadReport> reports =
        bench::run_mixed_load(opt, mix);
    std::size_t errors = 0;
    for (std::size_t i = 0; i < mix.size(); ++i) {
      print_report(opt, mix[i].tenant, mix[i].connections,
                   mix[i].read_fraction, mix[i].arrival_rate, json,
                   reports[i]);
      errors += reports[i].errors;
    }
    return errors == 0 ? 0 : 1;
  }

  const bench::LoadReport report = bench::run_load(opt);
  print_report(opt, opt.tenant, opt.connections, opt.read_fraction,
               opt.arrival_rate, json, report);
  return report.errors == 0 ? 0 : 1;
}
