// Google-benchmark micro suite for the hashing substrate: raw hash
// functions, Bloom operations, sparse-signature algebra, LSH backends and
// the cuckoo tables (standard vs flat vs fingerprint-compressed). The find
// benches publish roofline counters — bytes_per_lookup and
// slots_per_lookup from the ProbeProfile instrumentation — so the probe
// working-set gap between backends is visible next to the timings.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "hash/bloom_filter.hpp"
#include "hash/compact_flat_cuckoo_table.hpp"
#include "hash/cuckoo_table.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "hash/group_stores.hpp"
#include "hash/hashes.hpp"
#include "hash/lsh_table_chained.hpp"
#include "hash/minhash.hpp"
#include "hash/pstable_lsh.hpp"
#include "hash/sparse_signature.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace fast;

std::vector<std::uint8_t> make_key(std::size_t len) {
  util::Rng rng(len);
  std::vector<std::uint8_t> key(len);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  return key;
}

void BM_Murmur3(benchmark::State& state) {
  const auto key = make_key(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::murmur3_128(key.data(), key.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Murmur3)->Arg(16)->Arg(144)->Arg(4096);

void BM_Fnv1a(benchmark::State& state) {
  const auto key = make_key(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::fnv1a_64(key.data(), key.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fnv1a)->Arg(16)->Arg(144);

void BM_BloomInsert(benchmark::State& state) {
  hash::BloomFilter bf(16384, 8);
  std::uint64_t i = 0;
  for (auto _ : state) {
    bf.insert_u64(i++);
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  hash::BloomFilter bf(16384, 8);
  for (std::uint64_t i = 0; i < 500; ++i) bf.insert_u64(i);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.maybe_contains_u64(i++ % 1000));
  }
}
BENCHMARK(BM_BloomQuery);

hash::SparseSignature make_signature(std::size_t popcount,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < popcount; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(16));
    bits.push_back(cur);
  }
  return hash::SparseSignature(std::move(bits), cur + 1);
}

void BM_SparseJaccard(benchmark::State& state) {
  const auto a = make_signature(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = make_signature(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::SparseSignature::jaccard(a, b));
  }
}
BENCHMARK(BM_SparseJaccard)->Arg(256)->Arg(2048);

void BM_SparseEncode(benchmark::State& state) {
  const auto sig = make_signature(2048, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig.encode());
  }
}
BENCHMARK(BM_SparseEncode);

void BM_PStableAllKeys(benchmark::State& state) {
  hash::LshConfig cfg;
  cfg.dim = static_cast<std::size_t>(state.range(0));
  hash::PStableLsh lsh(cfg);
  util::Rng rng(5);
  std::vector<float> v(cfg.dim);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.all_keys(v));
  }
}
BENCHMARK(BM_PStableAllKeys)->Arg(256)->Arg(4096)->Arg(16384);

// Sparse-gather counterpart: BM_PStableAllKeysSparse/<dim>/<nnz> derives
// all L tables' keys for a 0/1 signature with nnz set bits. The
// speedup_vs_dense counter divides a dense all_keys reference timing
// (measured once at setup) by this benchmark's per-iteration time; expect
// roughly dim/nnz.
void BM_PStableAllKeysSparse(benchmark::State& state) {
  hash::LshConfig cfg;
  cfg.dim = static_cast<std::size_t>(state.range(0));
  const auto nnz = static_cast<std::size_t>(state.range(1));
  hash::PStableLsh lsh(cfg);
  util::Rng rng(5);
  std::vector<std::uint32_t> bits;
  const std::size_t stride = cfg.dim / (nnz + 1);
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < nnz; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(
                   stride > 1 ? stride - 1 : 1));
    bits.push_back(std::min(cur, static_cast<std::uint32_t>(cfg.dim - 1)));
  }
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());

  // Dense reference: the same signature through the pre-sparse path.
  std::vector<float> dense(cfg.dim, 0.0f);
  for (const std::uint32_t b : bits) dense[b] = 1.0f;
  double dense_s = 0.0;
  {
    constexpr int kReps = 16;
    util::WallTimer timer;
    for (int r = 0; r < kReps; ++r) {
      benchmark::DoNotOptimize(lsh.all_keys(dense));
    }
    dense_s = timer.elapsed_seconds() / kReps;
  }

  hash::SparseProjectionScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsh.all_keys_sparse(bits, 1.0f, scratch).data());
  }
  state.counters["nnz"] = static_cast<double>(bits.size());
  // dense_s * iterations / elapsed == dense_s / sparse_s.
  state.counters["speedup_vs_dense"] = benchmark::Counter(
      dense_s * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PStableAllKeysSparse)
    ->Args({256, 64})
    ->Args({4096, 256})
    ->Args({16384, 512})
    ->Args({16384, 1024});

void BM_MinHashAll(benchmark::State& state) {
  hash::MinHasher mh(hash::MinHashConfig{});
  const auto sig = make_signature(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mh.minhashes(sig));
  }
}
BENCHMARK(BM_MinHashAll)->Arg(256)->Arg(2048);

void BM_CuckooInsert_Standard(benchmark::State& state) {
  const std::size_t cap = 1 << 16;
  hash::CuckooTable table(cap);
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (table.size() > cap / 2) {
      state.PauseTiming();
      table = hash::CuckooTable(cap);
      state.ResumeTiming();
    }
    const std::uint64_t key = hash::mix64(i);
    ++i;
    benchmark::DoNotOptimize(table.insert(key, i));
  }
}
BENCHMARK(BM_CuckooInsert_Standard);

void BM_CuckooInsert_Flat(benchmark::State& state) {
  hash::FlatCuckooConfig cfg;
  cfg.capacity = 1 << 16;
  hash::FlatCuckooTable table(cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (table.size() > cfg.capacity * 9 / 10) {
      state.PauseTiming();
      table = hash::FlatCuckooTable(cfg);
      state.ResumeTiming();
    }
    const std::uint64_t key = hash::mix64(i);
    ++i;
    benchmark::DoNotOptimize(table.insert(key, i));
  }
}
BENCHMARK(BM_CuckooInsert_Flat);

void BM_CuckooInsert_Compact(benchmark::State& state) {
  hash::FlatCuckooConfig cfg;
  cfg.capacity = 1 << 16;
  hash::CompactFlatCuckooTable table(cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (table.size() > cfg.capacity * 9 / 10) {
      state.PauseTiming();
      table = hash::CompactFlatCuckooTable(cfg);
      state.ResumeTiming();
    }
    const std::uint64_t key = hash::mix64(i);
    ++i;
    benchmark::DoNotOptimize(table.insert(key, i));
  }
}
BENCHMARK(BM_CuckooInsert_Compact);

void BM_CuckooFind_Standard(benchmark::State& state) {
  hash::CuckooTable table(1 << 16);
  for (std::uint64_t i = 0; i < (1 << 15); ++i) {
    table.insert(hash::mix64(i), i);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(hash::mix64(i++ % (1 << 15))));
  }
}
BENCHMARK(BM_CuckooFind_Standard);

/// Attaches the roofline counters derived from an accumulated ProbeProfile:
/// per-lookup bytes touched and slots scanned, plus the fingerprint
/// false-hit rate (nonzero only for the compact backend).
void set_roofline_counters(benchmark::State& state,
                           const hash::ProbeProfile& profile) {
  const auto n = static_cast<double>(state.iterations());
  if (n == 0) return;
  state.counters["bytes_per_lookup"] =
      static_cast<double>(profile.bytes_touched) / n;
  state.counters["slots_per_lookup"] =
      static_cast<double>(profile.slots_scanned) / n;
  state.counters["fp_false_hit_rate"] =
      static_cast<double>(profile.fingerprint_false_hits) / n;
}

void BM_CuckooFind_Flat(benchmark::State& state) {
  hash::FlatCuckooConfig cfg;
  cfg.capacity = 1 << 16;
  hash::FlatCuckooTable table(cfg);
  for (std::uint64_t i = 0; i < (1 << 15); ++i) {
    table.insert(hash::mix64(i), i);
  }
  std::uint64_t i = 0;
  hash::ProbeProfile profile;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(hash::mix64(i++ % (1 << 15)),
                                        &profile));
  }
  set_roofline_counters(state, profile);
}
BENCHMARK(BM_CuckooFind_Flat);

void BM_CuckooFind_Compact(benchmark::State& state) {
  hash::FlatCuckooConfig cfg;
  cfg.capacity = 1 << 16;
  hash::CompactFlatCuckooTable table(cfg);
  for (std::uint64_t i = 0; i < (1 << 15); ++i) {
    table.insert(hash::mix64(i), i);
  }
  std::uint64_t i = 0;
  hash::ProbeProfile profile;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(hash::mix64(i++ % (1 << 15)),
                                        &profile));
  }
  set_roofline_counters(state, profile);
}
BENCHMARK(BM_CuckooFind_Compact);

void BM_ChainedFind(benchmark::State& state) {
  hash::LshTableChained table(1 << 12);  // heavy chains: vertical addressing
  for (std::uint64_t i = 0; i < (1 << 15); ++i) {
    table.insert(hash::mix64(i % 2048), i);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(hash::mix64(i++ % 2048)));
  }
}
BENCHMARK(BM_ChainedFind);

// GroupStore-level roofline: the same mixed hit/miss lookup stream through
// each CHS backend's full find path, with bytes/slots per lookup from the
// uniform ProbeProfile plumbing. This is the apples-to-apples probe
// working-set comparison the flat_compact backend exists for.
void group_store_find(benchmark::State& state,
                      core::pipeline::GroupStore& store) {
  constexpr std::uint64_t kResident = 1 << 14;
  for (std::uint64_t i = 0; i < kResident; ++i) {
    store.place(0, hash::mix64(i), i);
  }
  std::uint64_t i = 0;
  hash::ProbeProfile profile;
  for (auto _ : state) {
    // Even iterations hit, odd iterations miss.
    const std::uint64_t draw = i++;
    const std::uint64_t key = (draw & 1) ? hash::mix64(kResident + draw)
                                         : hash::mix64(draw % kResident);
    std::size_t probes = 0;
    benchmark::DoNotOptimize(store.find(0, key, &probes, &profile));
  }
  set_roofline_counters(state, profile);
}

void BM_GroupStoreFind_Flat(benchmark::State& state) {
  hash::FlatCuckooConfig cfg;
  cfg.capacity = 1 << 15;
  hash::FlatCuckooGroupStore store(cfg, 1);
  group_store_find(state, store);
}
BENCHMARK(BM_GroupStoreFind_Flat);

void BM_GroupStoreFind_Compact(benchmark::State& state) {
  hash::FlatCuckooConfig cfg;
  cfg.capacity = 1 << 15;
  hash::CompactFlatCuckooGroupStore store(cfg, 1);
  group_store_find(state, store);
}
BENCHMARK(BM_GroupStoreFind_Compact);

void BM_GroupStoreFind_Chained(benchmark::State& state) {
  hash::ChainedGroupStore store(1 << 13, 0x5eed, 1);
  group_store_find(state, store);
}
BENCHMARK(BM_GroupStoreFind_Chained);

}  // namespace

BENCHMARK_MAIN();
