// Table III — Query accuracy normalized to SIFT, vs. number of queries
// (1000 ... 5000), on both datasets.
//
// Accuracy here is measurable exactly (the generator knows each query's
// source photo): a query counts as correct when its source appears in the
// scheme's top-5. Larger batches draw from a wider, harder range of
// perturbations (mirroring the paper's decline in accuracy as the query
// population grows); each batch's accuracy is evaluated on a fixed-size
// sample of its requests and normalized to SIFT's on the same sample.
#include <cstdio>

#include "common.hpp"
#include "img/transform.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

/// Queries of graded difficulty: `hardness` in [0, 1] scales the
/// perturbation ranges from gentle burst-shot jitter to strong variation.
workload::DupQuery make_query(const workload::Dataset& dataset,
                              double hardness, util::Rng& rng) {
  img::PerturbParams params;
  params.max_rotation_rad = 0.03 + 0.08 * hardness;
  params.min_scale = 1.0 - (0.03 + 0.07 * hardness);
  params.max_scale = 1.0 + (0.03 + 0.07 * hardness);
  params.max_translate_px = 2.0 + 5.0 * hardness;
  params.max_noise_stddev = 0.008 + 0.02 * hardness;
  const auto& photo = dataset.photos[rng.uniform_u64(dataset.photos.size())];
  workload::DupQuery q;
  q.image = img::make_near_duplicate(photo.image, params, rng);
  q.source = photo.id;
  q.landmark = photo.landmark;
  q.view = photo.view;
  return q;
}

void run_dataset(const workload::DatasetSpec& spec, std::size_t sample_n) {
  DatasetEnv env = make_dataset_env(spec, 8);
  print_dataset_banner(env.dataset);
  SchemeConfig cfg;
  Schemes schemes = build_schemes(env, cfg);

  util::Table table({"queries", "SIFT", "PCA-SIFT", "RNPE", "FAST",
                     "PCA-SIFT/SIFT", "RNPE/SIFT", "FAST/SIFT"});
  util::Rng rng(0xacc ^ spec.seed);
  for (std::size_t batch = 1000; batch <= 5000; batch += 1000) {
    // Hardness of this batch's tail grows with the batch size.
    const double max_hardness = static_cast<double>(batch) / 5000.0;
    std::size_t sift_ok = 0, pca_ok = 0, rnpe_ok = 0, fast_ok = 0;
    for (std::size_t i = 0; i < sample_n; ++i) {
      const double hardness =
          max_hardness * static_cast<double>(i) / static_cast<double>(sample_n);
      const workload::DupQuery q = make_query(env.dataset, hardness, rng);
      sift_ok += contains_id(schemes.sift->query(q.image, 5).hits, q.source);
      pca_ok +=
          contains_id(schemes.pca_sift->query(q.image, 5).hits, q.source);
      // RNPE queries with what a fresh shot actually carries: a GPS fix
      // with receiver noise and view tags inferred by the same error-prone
      // process that labelled the corpus.
      const auto& src = env.dataset.photos[q.source];
      const double qx = src.geo_x + rng.gaussian(0.0, 0.8);
      const double qy = src.geo_y + rng.gaussian(0.0, 0.8);
      std::uint32_t view_tag = q.view;
      if (rng.bernoulli(0.12 + 0.12 * hardness)) {
        view_tag = static_cast<std::uint32_t>(rng.uniform_u64(8));
      }
      rnpe_ok += contains_id(
          schemes.rnpe->query(qx, qy, q.landmark, view_tag, 5).hits,
          q.source);
      fast_ok += contains_id(schemes.fast->query(q.image, 5).hits, q.source);
    }
    const auto n = static_cast<double>(sample_n);
    const double sift_acc = static_cast<double>(sift_ok) / n;
    const double pca_acc = static_cast<double>(pca_ok) / n;
    const double rnpe_acc = static_cast<double>(rnpe_ok) / n;
    const double fast_acc = static_cast<double>(fast_ok) / n;
    auto norm = [&](double a) {
      return sift_acc > 0 ? a / sift_acc : 0.0;
    };
    table.add_row({std::to_string(batch), util::fmt_percent(sift_acc),
                   util::fmt_percent(pca_acc), util::fmt_percent(rnpe_acc),
                   util::fmt_percent(fast_acc),
                   util::fmt_percent(norm(pca_acc)),
                   util::fmt_percent(norm(rnpe_acc)),
                   util::fmt_percent(norm(fast_acc))});
  }
  table.print("Table III — accuracy normalized to SIFT (" +
              env.dataset.spec.name + ")");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  const bench::BenchScale scale = bench::BenchScale::from_args(argc, argv);
  std::printf("== bench table3: query accuracy ==\n");
  bench::run_dataset(workload::DatasetSpec::wuhan(scale.wuhan_images),
                     scale.queries);
  bench::run_dataset(workload::DatasetSpec::shanghai(scale.shanghai_images),
                     scale.queries);
  return 0;
}
