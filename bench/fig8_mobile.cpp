// Fig. 8 — Smartphone transmission overhead (a) and energy consumption (b)
// for FAST's near-dedup uploading vs. chunk-based transmission, across
// three crowdsourcing user groups and growing batch sizes.
//
// The paper's x-axis (1000 ... 6000 images per batch) is scaled down via
// the bench scale; the reported quantities — bandwidth savings and energy
// savings relative to the chunk scheme — are scale-free.
#include <cstdio>

#include "common.hpp"
#include "mobile/transmitter.hpp"
#include "mobile/user_groups.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

void run(const workload::DatasetSpec& spec, std::size_t max_batch) {
  DatasetEnv env = make_dataset_env(spec, 4);
  print_dataset_banner(env.dataset);

  const auto groups = mobile::make_user_groups(env.dataset, 3);
  util::Table bw({"images", "group", "chunk sent", "FAST sent",
                  "bandwidth savings"});
  util::Table energy({"images", "group", "chunk energy", "FAST energy",
                      "energy savings"});

  for (std::size_t batch = max_batch / 4; batch <= max_batch;
       batch += max_batch / 4) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto items = mobile::make_upload_batch(
          env.dataset, groups[g], batch, 0xf18 + g * 31 + batch);

      mobile::ChunkTransmitter chunk_tx(mobile::ChunkerConfig{},
                                        sim::EnergyModel{});
      const mobile::TransmissionReport chunk = chunk_tx.upload_batch(items);

      SchemeConfig cfg;
      std::unique_ptr<core::FastIndex> index = build_fast_only(env, cfg);
      mobile::FastTransmitter fast_tx(*index, sim::EnergyModel{}, 0.14);
      const mobile::TransmissionReport fast = fast_tx.upload_batch(items);

      bw.add_row({std::to_string(batch), groups[g].name,
                  util::fmt_bytes(static_cast<double>(chunk.sent_bytes)),
                  util::fmt_bytes(static_cast<double>(fast.sent_bytes)),
                  util::fmt_percent(
                      1.0 - static_cast<double>(fast.sent_bytes) /
                                static_cast<double>(chunk.sent_bytes))});
      energy.add_row(
          {std::to_string(batch), groups[g].name,
           util::fmt_double(chunk.energy_joule, 1) + "J",
           util::fmt_double(fast.energy_joule, 1) + "J",
           util::fmt_percent(1.0 - fast.energy_joule / chunk.energy_joule)});
    }
  }
  bw.print("Fig. 8(a) — network transmission overhead");
  energy.print("Fig. 8(b) — energy consumption");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using namespace fast;
  std::printf("== bench fig8: smartphone transmission & energy ==\n");
  std::size_t images = 240;
  std::size_t max_batch = 160;
  if (argc > 1) images = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) max_batch = static_cast<std::size_t>(std::atoi(argv[2]));
  workload::DatasetSpec spec = workload::DatasetSpec::wuhan(images);
  bench::run(spec, max_batch);
  return 0;
}
