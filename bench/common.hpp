// Shared environment for the paper-reproduction benches: scaled datasets,
// a trained PCA-SIFT eigenspace, and ready-built instances of FAST and the
// three baselines. Every bench binary prints Table II-style header info so
// runs are self-describing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/pca_sift_baseline.hpp"
#include "baseline/rnpe.hpp"
#include "baseline/sift_baseline.hpp"
#include "core/fast_index.hpp"
#include "util/metrics.hpp"
#include "vision/pca.hpp"
#include "vision/pca_sift.hpp"
#include "workload/dataset.hpp"
#include "workload/query_gen.hpp"

namespace fast::bench {

/// Scaling knobs, overridable from the command line: argv[1] = wuhan image
/// count, argv[2] = shanghai image count (keeping Table II's 21:39 ratio by
/// default), argv[3] = queries per experiment point.
///
/// from_args also consumes tracing flags before positional parsing:
/// `--trace` (sample every request) or `--trace=RATE` (e.g. --trace=0.01)
/// configure the global tracer, as do the FAST_TRACE* environment variables
/// (see util/trace.hpp); benches then emit results/<name>.trace.json via
/// dump_trace().
struct BenchScale {
  std::size_t wuhan_images = 160;
  std::size_t shanghai_images = 300;
  std::size_t queries = 30;

  static BenchScale from_args(int argc, char** argv);
};

/// One dataset plus everything the schemes need to run on it.
struct DatasetEnv {
  workload::Dataset dataset;
  vision::PcaModel pca;
  vision::PcaSiftConfig pca_cfg;
  std::vector<workload::DupQuery> queries;      ///< evaluation queries
  std::vector<workload::DupQuery> cal_queries;  ///< calibration-only queries
};

/// Generates a dataset, trains the eigenspace and draws query sets.
DatasetEnv make_dataset_env(const workload::DatasetSpec& spec,
                            std::size_t queries);

/// The four schemes of the paper's evaluation, built over one dataset.
struct Schemes {
  std::unique_ptr<baseline::SiftBaseline> sift;
  std::unique_ptr<baseline::PcaSiftBaseline> pca_sift;
  std::unique_ptr<baseline::Rnpe> rnpe;
  std::unique_ptr<core::FastIndex> fast;

  /// Accumulated simulated insert costs, split into the Fig. 3 components.
  sim::SimClock sift_build, pca_build, rnpe_build, fast_build;
};

struct SchemeConfig {
  std::size_t max_keypoints = 128;
  std::size_t cache_pages = 4096;
  sim::CostModel cost;
};

/// Builds (and populates) all four schemes over the dataset, accounting the
/// simulated construction costs.
Schemes build_schemes(const DatasetEnv& env, const SchemeConfig& cfg = {});

/// Builds only the FAST index (cheaper, for FAST-focused benches).
std::unique_ptr<core::FastIndex> build_fast_only(
    const DatasetEnv& env, const SchemeConfig& cfg = {},
    core::FastConfig base = {});

/// Prints a Table II-style banner describing the scaled dataset.
void print_dataset_banner(const workload::Dataset& dataset);

/// Writes `registry` as JSON to results/<name>_metrics.json (creating
/// results/ if needed; FAST_METRICS_DIR overrides the directory) and prints
/// the path, so every bench run leaves a machine-readable per-stage record
/// next to its tables. Failures are reported, not fatal.
void dump_metrics(const util::MetricsRegistry& registry,
                  const std::string& name);

/// Exports the global tracer's spans and query profiles for one bench
/// configuration — results/<name>.trace.json (Chrome trace_event format)
/// and results/<name>.query_profiles.json (FAST_TRACE_DIR, then
/// FAST_METRICS_DIR, override the directory) — then reset()s the tracer so
/// the next configuration in the same process starts from a clean buffer.
/// No-op (and no output) when tracing never recorded anything.
void dump_trace(const std::string& name);

/// True if `hits` contains `wanted` among its ids.
bool contains_id(const std::vector<core::ScoredId>& hits, std::uint64_t wanted);

}  // namespace fast::bench
