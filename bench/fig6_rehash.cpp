// Fig. 6 — Insertion-failure (rehash) probability vs. number of items
// inserted: FAST's flat-structured cuckoo (adjacent-neighborhood windows)
// vs. standard two-choice cuckoo hashing.
//
// Tables of fixed capacity receive increasing item counts; the failure
// probability is (insertions that exhausted the kick budget) / (insertions
// attempted), averaged over independent seeds. The paper reports FAST about
// three orders of magnitude below standard cuckoo hashing.
#include <cstdio>

#include "hash/cuckoo_table.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "util/table.hpp"

namespace fast::bench {
namespace {

struct FailureRates {
  double standard_rate = 0;
  double flat_rate = 0;
};

FailureRates measure(std::size_t capacity, std::size_t items,
                     std::size_t trials, std::uint64_t dataset_salt) {
  std::size_t std_failures = 0, flat_failures = 0, attempts = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = dataset_salt * 1000 + trial;
    hash::CuckooTable standard(capacity, seed, 500);
    hash::FlatCuckooConfig fcfg;
    fcfg.capacity = capacity;
    fcfg.seed = seed;
    hash::FlatCuckooTable flat(fcfg);
    for (std::size_t i = 0; i < items; ++i) {
      const std::uint64_t key =
          hash::mix64(seed ^ (0xa11ceULL + i * 0x9e3779b97f4a7c15ULL));
      std_failures += !standard.insert(key, i);
      flat_failures += !flat.insert(key, i);
      ++attempts;
    }
  }
  return FailureRates{
      static_cast<double>(std_failures) / static_cast<double>(attempts),
      static_cast<double>(flat_failures) / static_cast<double>(attempts)};
}

void run_dataset(const char* name, std::uint64_t salt, std::size_t capacity,
                 std::size_t trials) {
  util::Table table({"items", "load", "standard cuckoo", "FAST (flat)",
                     "ratio"});
  for (double load = 0.30; load <= 0.951; load += 0.10) {
    const auto items = static_cast<std::size_t>(load *
                                                static_cast<double>(capacity));
    const FailureRates rates = measure(capacity, items, trials, salt);
    const double floor =
        1.0 / (static_cast<double>(items) * static_cast<double>(trials));
    const double flat_shown =
        rates.flat_rate > 0 ? rates.flat_rate : floor;  // detection floor
    table.add_row({std::to_string(items), util::fmt_percent(load, 0),
                   util::fmt_sci(rates.standard_rate),
                   rates.flat_rate > 0
                       ? util::fmt_sci(rates.flat_rate)
                       : ("<" + util::fmt_sci(floor)),
                   rates.standard_rate > 0
                       ? util::fmt_double(rates.standard_rate / flat_shown, 0)
                       : "-"});
  }
  table.print(std::string("Fig. 6 — insertion-failure (rehash) probability (") +
              name + ")");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  std::printf("== bench fig6: rehash probability ==\n");
  std::size_t capacity = 1 << 15;
  std::size_t trials = 8;
  if (argc > 1) capacity = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) trials = static_cast<std::size_t>(std::atoi(argv[2]));
  fast::bench::run_dataset("wuhan", 0x8a11, capacity, trials);
  fast::bench::run_dataset("shanghai", 0x54a4, capacity, trials);
  return 0;
}
