file(REMOVE_RECURSE
  "CMakeFiles/fig7_multicore.dir/fig7_multicore.cpp.o"
  "CMakeFiles/fig7_multicore.dir/fig7_multicore.cpp.o.d"
  "fig7_multicore"
  "fig7_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
