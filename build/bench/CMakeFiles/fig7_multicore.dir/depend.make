# Empty dependencies file for fig7_multicore.
# This may be replaced when dependencies are built.
