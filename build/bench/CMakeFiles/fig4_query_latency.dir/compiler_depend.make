# Empty compiler generated dependencies file for fig4_query_latency.
# This may be replaced when dependencies are built.
