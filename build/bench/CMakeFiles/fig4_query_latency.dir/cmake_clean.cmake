file(REMOVE_RECURSE
  "CMakeFiles/fig4_query_latency.dir/fig4_query_latency.cpp.o"
  "CMakeFiles/fig4_query_latency.dir/fig4_query_latency.cpp.o.d"
  "fig4_query_latency"
  "fig4_query_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_query_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
