# Empty compiler generated dependencies file for fig5_insertion.
# This may be replaced when dependencies are built.
