file(REMOVE_RECURSE
  "CMakeFiles/fig5_insertion.dir/fig5_insertion.cpp.o"
  "CMakeFiles/fig5_insertion.dir/fig5_insertion.cpp.o.d"
  "fig5_insertion"
  "fig5_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
