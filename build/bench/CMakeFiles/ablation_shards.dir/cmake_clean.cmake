file(REMOVE_RECURSE
  "CMakeFiles/ablation_shards.dir/ablation_shards.cpp.o"
  "CMakeFiles/ablation_shards.dir/ablation_shards.cpp.o.d"
  "ablation_shards"
  "ablation_shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
