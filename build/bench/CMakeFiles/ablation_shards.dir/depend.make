# Empty dependencies file for ablation_shards.
# This may be replaced when dependencies are built.
