# Empty compiler generated dependencies file for ablation_bloom.
# This may be replaced when dependencies are built.
