file(REMOVE_RECURSE
  "CMakeFiles/ablation_bloom.dir/ablation_bloom.cpp.o"
  "CMakeFiles/ablation_bloom.dir/ablation_bloom.cpp.o.d"
  "ablation_bloom"
  "ablation_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
