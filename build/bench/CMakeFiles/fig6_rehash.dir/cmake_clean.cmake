file(REMOVE_RECURSE
  "CMakeFiles/fig6_rehash.dir/fig6_rehash.cpp.o"
  "CMakeFiles/fig6_rehash.dir/fig6_rehash.cpp.o.d"
  "fig6_rehash"
  "fig6_rehash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rehash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
