# Empty dependencies file for fig6_rehash.
# This may be replaced when dependencies are built.
