# Empty compiler generated dependencies file for fast_bench_common.
# This may be replaced when dependencies are built.
