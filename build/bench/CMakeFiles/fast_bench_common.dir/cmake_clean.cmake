file(REMOVE_RECURSE
  "CMakeFiles/fast_bench_common.dir/common.cpp.o"
  "CMakeFiles/fast_bench_common.dir/common.cpp.o.d"
  "libfast_bench_common.a"
  "libfast_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
