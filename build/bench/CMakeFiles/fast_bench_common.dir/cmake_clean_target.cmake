file(REMOVE_RECURSE
  "libfast_bench_common.a"
)
