# Empty compiler generated dependencies file for fig8_mobile.
# This may be replaced when dependencies are built.
