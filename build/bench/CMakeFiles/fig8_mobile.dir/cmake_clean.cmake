file(REMOVE_RECURSE
  "CMakeFiles/fig8_mobile.dir/fig8_mobile.cpp.o"
  "CMakeFiles/fig8_mobile.dir/fig8_mobile.cpp.o.d"
  "fig8_mobile"
  "fig8_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
