# Empty dependencies file for table3_accuracy.
# This may be replaced when dependencies are built.
