file(REMOVE_RECURSE
  "CMakeFiles/table3_accuracy.dir/table3_accuracy.cpp.o"
  "CMakeFiles/table3_accuracy.dir/table3_accuracy.cpp.o.d"
  "table3_accuracy"
  "table3_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
