file(REMOVE_RECURSE
  "CMakeFiles/ablation_cuckoo.dir/ablation_cuckoo.cpp.o"
  "CMakeFiles/ablation_cuckoo.dir/ablation_cuckoo.cpp.o.d"
  "ablation_cuckoo"
  "ablation_cuckoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
