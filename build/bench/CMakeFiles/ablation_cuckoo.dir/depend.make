# Empty dependencies file for ablation_cuckoo.
# This may be replaced when dependencies are built.
