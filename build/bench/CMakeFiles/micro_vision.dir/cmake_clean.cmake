file(REMOVE_RECURSE
  "CMakeFiles/micro_vision.dir/micro_vision.cpp.o"
  "CMakeFiles/micro_vision.dir/micro_vision.cpp.o.d"
  "micro_vision"
  "micro_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
