# Empty dependencies file for fig3_index_construction.
# This may be replaced when dependencies are built.
