file(REMOVE_RECURSE
  "CMakeFiles/fig3_index_construction.dir/fig3_index_construction.cpp.o"
  "CMakeFiles/fig3_index_construction.dir/fig3_index_construction.cpp.o.d"
  "fig3_index_construction"
  "fig3_index_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_index_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
