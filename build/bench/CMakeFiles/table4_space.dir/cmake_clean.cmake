file(REMOVE_RECURSE
  "CMakeFiles/table4_space.dir/table4_space.cpp.o"
  "CMakeFiles/table4_space.dir/table4_space.cpp.o.d"
  "table4_space"
  "table4_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
