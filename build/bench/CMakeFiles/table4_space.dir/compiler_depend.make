# Empty compiler generated dependencies file for table4_space.
# This may be replaced when dependencies are built.
