file(REMOVE_RECURSE
  "CMakeFiles/ablation_lsh.dir/ablation_lsh.cpp.o"
  "CMakeFiles/ablation_lsh.dir/ablation_lsh.cpp.o.d"
  "ablation_lsh"
  "ablation_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
