# Empty compiler generated dependencies file for ablation_lsh.
# This may be replaced when dependencies are built.
