# Empty compiler generated dependencies file for index_persistence.
# This may be replaced when dependencies are built.
