file(REMOVE_RECURSE
  "CMakeFiles/index_persistence.dir/index_persistence.cpp.o"
  "CMakeFiles/index_persistence.dir/index_persistence.cpp.o.d"
  "index_persistence"
  "index_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
