
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/metadata_search.cpp" "examples/CMakeFiles/metadata_search.dir/metadata_search.cpp.o" "gcc" "examples/CMakeFiles/metadata_search.dir/metadata_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hash/CMakeFiles/fast_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fast_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fast_util.dir/DependInfo.cmake"
  "/root/repo/build/src/img/CMakeFiles/fast_img.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
