file(REMOVE_RECURSE
  "CMakeFiles/metadata_search.dir/metadata_search.cpp.o"
  "CMakeFiles/metadata_search.dir/metadata_search.cpp.o.d"
  "metadata_search"
  "metadata_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
