# Empty compiler generated dependencies file for metadata_search.
# This may be replaced when dependencies are built.
