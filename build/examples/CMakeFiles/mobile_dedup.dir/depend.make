# Empty dependencies file for mobile_dedup.
# This may be replaced when dependencies are built.
