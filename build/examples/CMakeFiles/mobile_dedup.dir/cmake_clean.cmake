file(REMOVE_RECURSE
  "CMakeFiles/mobile_dedup.dir/mobile_dedup.cpp.o"
  "CMakeFiles/mobile_dedup.dir/mobile_dedup.cpp.o.d"
  "mobile_dedup"
  "mobile_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
