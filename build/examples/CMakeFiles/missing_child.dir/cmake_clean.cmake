file(REMOVE_RECURSE
  "CMakeFiles/missing_child.dir/missing_child.cpp.o"
  "CMakeFiles/missing_child.dir/missing_child.cpp.o.d"
  "missing_child"
  "missing_child.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/missing_child.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
