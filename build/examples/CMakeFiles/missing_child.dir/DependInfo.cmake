
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/missing_child.cpp" "examples/CMakeFiles/missing_child.dir/missing_child.cpp.o" "gcc" "examples/CMakeFiles/missing_child.dir/missing_child.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fast_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/img/CMakeFiles/fast_img.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/fast_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fast_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/fast_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
