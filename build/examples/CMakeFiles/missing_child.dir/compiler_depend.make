# Empty compiler generated dependencies file for missing_child.
# This may be replaced when dependencies are built.
