file(REMOVE_RECURSE
  "libfast_hash.a"
)
