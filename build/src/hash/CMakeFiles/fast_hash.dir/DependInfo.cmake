
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/bloom_filter.cpp" "src/hash/CMakeFiles/fast_hash.dir/bloom_filter.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/bloom_filter.cpp.o.d"
  "/root/repo/src/hash/counting_bloom.cpp" "src/hash/CMakeFiles/fast_hash.dir/counting_bloom.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/counting_bloom.cpp.o.d"
  "/root/repo/src/hash/cuckoo_table.cpp" "src/hash/CMakeFiles/fast_hash.dir/cuckoo_table.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/cuckoo_table.cpp.o.d"
  "/root/repo/src/hash/flat_cuckoo_table.cpp" "src/hash/CMakeFiles/fast_hash.dir/flat_cuckoo_table.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/flat_cuckoo_table.cpp.o.d"
  "/root/repo/src/hash/hashes.cpp" "src/hash/CMakeFiles/fast_hash.dir/hashes.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/hashes.cpp.o.d"
  "/root/repo/src/hash/ls_bloom_filter.cpp" "src/hash/CMakeFiles/fast_hash.dir/ls_bloom_filter.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/ls_bloom_filter.cpp.o.d"
  "/root/repo/src/hash/lsh_table_chained.cpp" "src/hash/CMakeFiles/fast_hash.dir/lsh_table_chained.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/lsh_table_chained.cpp.o.d"
  "/root/repo/src/hash/minhash.cpp" "src/hash/CMakeFiles/fast_hash.dir/minhash.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/minhash.cpp.o.d"
  "/root/repo/src/hash/multi_probe.cpp" "src/hash/CMakeFiles/fast_hash.dir/multi_probe.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/multi_probe.cpp.o.d"
  "/root/repo/src/hash/pstable_lsh.cpp" "src/hash/CMakeFiles/fast_hash.dir/pstable_lsh.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/pstable_lsh.cpp.o.d"
  "/root/repo/src/hash/sparse_signature.cpp" "src/hash/CMakeFiles/fast_hash.dir/sparse_signature.cpp.o" "gcc" "src/hash/CMakeFiles/fast_hash.dir/sparse_signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
