# Empty dependencies file for fast_hash.
# This may be replaced when dependencies are built.
