file(REMOVE_RECURSE
  "CMakeFiles/fast_hash.dir/bloom_filter.cpp.o"
  "CMakeFiles/fast_hash.dir/bloom_filter.cpp.o.d"
  "CMakeFiles/fast_hash.dir/counting_bloom.cpp.o"
  "CMakeFiles/fast_hash.dir/counting_bloom.cpp.o.d"
  "CMakeFiles/fast_hash.dir/cuckoo_table.cpp.o"
  "CMakeFiles/fast_hash.dir/cuckoo_table.cpp.o.d"
  "CMakeFiles/fast_hash.dir/flat_cuckoo_table.cpp.o"
  "CMakeFiles/fast_hash.dir/flat_cuckoo_table.cpp.o.d"
  "CMakeFiles/fast_hash.dir/hashes.cpp.o"
  "CMakeFiles/fast_hash.dir/hashes.cpp.o.d"
  "CMakeFiles/fast_hash.dir/ls_bloom_filter.cpp.o"
  "CMakeFiles/fast_hash.dir/ls_bloom_filter.cpp.o.d"
  "CMakeFiles/fast_hash.dir/lsh_table_chained.cpp.o"
  "CMakeFiles/fast_hash.dir/lsh_table_chained.cpp.o.d"
  "CMakeFiles/fast_hash.dir/minhash.cpp.o"
  "CMakeFiles/fast_hash.dir/minhash.cpp.o.d"
  "CMakeFiles/fast_hash.dir/multi_probe.cpp.o"
  "CMakeFiles/fast_hash.dir/multi_probe.cpp.o.d"
  "CMakeFiles/fast_hash.dir/pstable_lsh.cpp.o"
  "CMakeFiles/fast_hash.dir/pstable_lsh.cpp.o.d"
  "CMakeFiles/fast_hash.dir/sparse_signature.cpp.o"
  "CMakeFiles/fast_hash.dir/sparse_signature.cpp.o.d"
  "libfast_hash.a"
  "libfast_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
