# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("img")
subdirs("vision")
subdirs("hash")
subdirs("index")
subdirs("storage")
subdirs("workload")
subdirs("baseline")
subdirs("mobile")
subdirs("core")
