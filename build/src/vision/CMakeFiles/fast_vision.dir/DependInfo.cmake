
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/dog_detector.cpp" "src/vision/CMakeFiles/fast_vision.dir/dog_detector.cpp.o" "gcc" "src/vision/CMakeFiles/fast_vision.dir/dog_detector.cpp.o.d"
  "/root/repo/src/vision/gaussian.cpp" "src/vision/CMakeFiles/fast_vision.dir/gaussian.cpp.o" "gcc" "src/vision/CMakeFiles/fast_vision.dir/gaussian.cpp.o.d"
  "/root/repo/src/vision/matcher.cpp" "src/vision/CMakeFiles/fast_vision.dir/matcher.cpp.o" "gcc" "src/vision/CMakeFiles/fast_vision.dir/matcher.cpp.o.d"
  "/root/repo/src/vision/pca.cpp" "src/vision/CMakeFiles/fast_vision.dir/pca.cpp.o" "gcc" "src/vision/CMakeFiles/fast_vision.dir/pca.cpp.o.d"
  "/root/repo/src/vision/pca_sift.cpp" "src/vision/CMakeFiles/fast_vision.dir/pca_sift.cpp.o" "gcc" "src/vision/CMakeFiles/fast_vision.dir/pca_sift.cpp.o.d"
  "/root/repo/src/vision/pyramid.cpp" "src/vision/CMakeFiles/fast_vision.dir/pyramid.cpp.o" "gcc" "src/vision/CMakeFiles/fast_vision.dir/pyramid.cpp.o.d"
  "/root/repo/src/vision/sift_descriptor.cpp" "src/vision/CMakeFiles/fast_vision.dir/sift_descriptor.cpp.o" "gcc" "src/vision/CMakeFiles/fast_vision.dir/sift_descriptor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/img/CMakeFiles/fast_img.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
