file(REMOVE_RECURSE
  "libfast_vision.a"
)
