file(REMOVE_RECURSE
  "CMakeFiles/fast_vision.dir/dog_detector.cpp.o"
  "CMakeFiles/fast_vision.dir/dog_detector.cpp.o.d"
  "CMakeFiles/fast_vision.dir/gaussian.cpp.o"
  "CMakeFiles/fast_vision.dir/gaussian.cpp.o.d"
  "CMakeFiles/fast_vision.dir/matcher.cpp.o"
  "CMakeFiles/fast_vision.dir/matcher.cpp.o.d"
  "CMakeFiles/fast_vision.dir/pca.cpp.o"
  "CMakeFiles/fast_vision.dir/pca.cpp.o.d"
  "CMakeFiles/fast_vision.dir/pca_sift.cpp.o"
  "CMakeFiles/fast_vision.dir/pca_sift.cpp.o.d"
  "CMakeFiles/fast_vision.dir/pyramid.cpp.o"
  "CMakeFiles/fast_vision.dir/pyramid.cpp.o.d"
  "CMakeFiles/fast_vision.dir/sift_descriptor.cpp.o"
  "CMakeFiles/fast_vision.dir/sift_descriptor.cpp.o.d"
  "libfast_vision.a"
  "libfast_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
