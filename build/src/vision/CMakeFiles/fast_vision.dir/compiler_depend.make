# Empty compiler generated dependencies file for fast_vision.
# This may be replaced when dependencies are built.
