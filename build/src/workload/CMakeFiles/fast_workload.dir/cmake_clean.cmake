file(REMOVE_RECURSE
  "CMakeFiles/fast_workload.dir/dataset.cpp.o"
  "CMakeFiles/fast_workload.dir/dataset.cpp.o.d"
  "CMakeFiles/fast_workload.dir/metadata.cpp.o"
  "CMakeFiles/fast_workload.dir/metadata.cpp.o.d"
  "CMakeFiles/fast_workload.dir/query_gen.cpp.o"
  "CMakeFiles/fast_workload.dir/query_gen.cpp.o.d"
  "CMakeFiles/fast_workload.dir/scene_generator.cpp.o"
  "CMakeFiles/fast_workload.dir/scene_generator.cpp.o.d"
  "CMakeFiles/fast_workload.dir/tune.cpp.o"
  "CMakeFiles/fast_workload.dir/tune.cpp.o.d"
  "libfast_workload.a"
  "libfast_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
