# Empty compiler generated dependencies file for fast_workload.
# This may be replaced when dependencies are built.
