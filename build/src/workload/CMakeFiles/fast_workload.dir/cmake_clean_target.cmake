file(REMOVE_RECURSE
  "libfast_workload.a"
)
